// Seed-faithful replicas of the pre-fast-path hot structures, shared by the
// equivalence gtests (tests/cdb/engine_fastpath_test.cc and friends) and the
// hot-path bench (bench/bench_micro_hotpaths.cc).
//
// Everything in hunter::seedref reproduces the pre-PR implementations
// verbatim: SeedBufferPool is the std::list + std::unordered_map LRU,
// SeedZipf is the per-Rng cached Zipf with its per-draw std::pow(0.5, theta),
// SeedLockSimulate is the std::unordered_map lock table, and SeedEngine is
// the engine Run() that constructed a fresh pool per evaluation, funneled
// page draws and lock-row draws through one shared Zipf constants cache, and
// iterated the WAL fixed point with the epsilon-only convergence test. The
// replicas consume the same Rng draw sequence as the production code, so
// "replica output == engine output, bit for bit, on a shared seed" is the
// equivalence contract the fast path is gated on (tolerance 0.0).
//
// These are reference implementations for tests and benches only — they are
// deliberately NOT annotated as hot and never ship in src/.

#ifndef HUNTER_TESTS_CDB_SEED_ENGINE_REF_H_
#define HUNTER_TESTS_CDB_SEED_ENGINE_REF_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdb/instance_type.h"
#include "cdb/knob.h"
#include "cdb/lock_manager.h"
#include "cdb/metric_catalog.h"
#include "cdb/simulated_engine.h"
#include "cdb/wal.h"
#include "cdb/workload_profile.h"
#include "common/rng.h"

namespace hunter::seedref {

// ---------------------------------------------------------------------------
// SeedBufferPool: the pre-PR std::list + std::unordered_map LRU, verbatim.
// ---------------------------------------------------------------------------
class SeedBufferPool {
 public:
  explicit SeedBufferPool(uint64_t capacity_pages)
      : capacity_(std::max<uint64_t>(1, capacity_pages)) {
    entries_.reserve(capacity_);
  }

  bool Access(uint64_t page_id, bool make_dirty) {
    auto it = entries_.find(page_id);
    if (it != entries_.end()) {
      ++hits_;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(page_id);
      it->second.lru_pos = lru_.begin();
      if (make_dirty && !it->second.dirty) {
        it->second.dirty = true;
        ++dirty_count_;
      }
      return true;
    }
    ++misses_;
    if (entries_.size() >= capacity_) EvictOne();
    lru_.push_front(page_id);
    Entry entry;
    entry.lru_pos = lru_.begin();
    entry.dirty = make_dirty;
    if (make_dirty) ++dirty_count_;
    entries_.emplace(page_id, entry);
    return false;
  }

  uint64_t FlushDirty(uint64_t max_pages) {
    uint64_t cleaned = 0;
    for (auto it = lru_.rbegin(); it != lru_.rend() && cleaned < max_pages;
         ++it) {
      auto entry = entries_.find(*it);
      if (entry->second.dirty) {
        entry->second.dirty = false;
        --dirty_count_;
        ++cleaned;
      }
    }
    return cleaned;
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return entries_.size(); }
  uint64_t dirty_pages() const { return dirty_count_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

  double HitRatio() const {
    const uint64_t total = hits_ + misses_;
    return total == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(total);
  }

  double DirtyFraction() const {
    return entries_.empty() ? 0.0
                            : static_cast<double>(dirty_count_) /
                                  static_cast<double>(entries_.size());
  }

  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
    dirty_evictions_ = 0;
  }

  void Prewarm(uint64_t n) {
    const uint64_t count = std::min(n, capacity_);
    for (uint64_t page = 0; page < count; ++page) {
      if (entries_.find(page) == entries_.end()) {
        if (entries_.size() >= capacity_) EvictOne();
        lru_.push_back(page);
        Entry entry;
        entry.lru_pos = std::prev(lru_.end());
        entries_.emplace(page, entry);
      }
    }
  }

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  void EvictOne() {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it->second.dirty) {
      ++dirty_evictions_;
      --dirty_count_;
    }
    entries_.erase(it);
  }

  uint64_t capacity_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t dirty_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dirty_evictions_ = 0;
};

// ---------------------------------------------------------------------------
// SeedZipf: the pre-PR Rng::Zipf with its cache hoisted into an explicit
// state object (the seed kept this state on the Rng itself, one cache shared
// by every distribution drawn through that Rng). The per-draw
// std::pow(0.5, theta) in the rank mapping is preserved.
// ---------------------------------------------------------------------------
struct SeedZipfState {
  uint64_t n = 0;
  double theta = -1.0;
  double zetan = 0.0;
  double alpha = 0.0;
  double eta = 0.0;
};

inline uint64_t SeedZipf(SeedZipfState* s, common::Rng* rng, uint64_t n,
                         double theta) {
  if (n <= 1 || theta <= 0.0) return n == 0 ? 0 : rng->NextU64() % n;
  if (n != s->n || theta != s->theta) {
    s->n = n;
    s->theta = theta;
    constexpr uint64_t kExactTerms = 16384;
    double zetan = 0.0;
    const uint64_t exact = std::min(n, kExactTerms);
    for (uint64_t i = 1; i <= exact; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > exact && theta != 1.0) {
      const double a = static_cast<double>(exact);
      const double b = static_cast<double>(n);
      zetan += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
               (1.0 - theta);
    }
    s->zetan = zetan;
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    s->alpha = 1.0 / (1.0 - theta);
    s->eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zetan);
  }
  const double u = rng->Uniform();
  const double uz = u * s->zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, s->theta)) return 1;
  const double rank =
      static_cast<double>(s->n) *
      std::pow(s->eta * u - s->eta + 1.0, s->alpha);
  uint64_t result = static_cast<uint64_t>(rank);
  return result >= s->n ? s->n - 1 : result;
}

// ---------------------------------------------------------------------------
// SeedLockSimulate: the pre-PR LockManager::Simulate, verbatim, with its
// std::unordered_map lock table and its row draws going through the shared
// per-Rng Zipf cache (`zipf_state`).
// ---------------------------------------------------------------------------
inline cdb::LockSimResult SeedLockSimulate(const cdb::LockSimConfig& config,
                                           common::Rng* rng,
                                           SeedZipfState* zipf_state) {
  cdb::LockSimResult result;
  if (config.num_txns == 0 || config.writes_per_txn <= 0.0) return result;

  struct LockEntry {
    double release_time = 0.0;
    double acquire_end = 0.0;
  };
  std::unordered_map<uint64_t, LockEntry> lock_table;
  lock_table.reserve(config.num_txns);

  const double inter_arrival =
      config.hold_time_ms / std::max(1.0, config.concurrency);
  const double acquire_phase = 0.4 * config.hold_time_ms;

  double total_wait = 0.0;
  size_t conflicted = 0, deadlocks = 0, timeouts = 0;

  for (size_t txn = 0; txn < config.num_txns; ++txn) {
    const double arrival = static_cast<double>(txn) * inter_arrival;
    const size_t writes = static_cast<size_t>(std::max(
        1.0, std::round(config.writes_per_txn + rng->Gaussian(0.0, 0.5))));
    double now = arrival;
    double txn_wait = 0.0;
    bool waited = false;
    bool dead = false;
    size_t held = 0;

    for (size_t w = 0; w < writes; ++w) {
      const uint64_t row =
          SeedZipf(zipf_state, rng, config.hot_rows, config.zipf_theta);
      now = arrival + acquire_phase * static_cast<double>(w + 1) /
                          static_cast<double>(writes) +
            txn_wait;
      auto it = lock_table.find(row);
      if (it != lock_table.end() && it->second.release_time > now) {
        waited = true;
        if (held > 0 && now < it->second.acquire_end && rng->Bernoulli(0.25)) {
          ++deadlocks;
          dead = true;
          if (config.deadlock_detect) {
            txn_wait += 1.0;
            break;
          }
          txn_wait += config.lock_wait_timeout_ms;
          ++timeouts;
          break;
        }
        const double wait = it->second.release_time - now;
        if (wait > config.lock_wait_timeout_ms) {
          txn_wait += config.lock_wait_timeout_ms;
          ++timeouts;
          break;
        }
        txn_wait += wait;
        now += wait;
      }
      LockEntry entry;
      entry.release_time = arrival + txn_wait + config.hold_time_ms;
      entry.acquire_end = arrival + txn_wait + acquire_phase;
      lock_table[row] = entry;
      ++held;
    }

    total_wait += txn_wait;
    if (waited) ++conflicted;
    (void)dead;
  }

  const double n = static_cast<double>(config.num_txns);
  result.mean_wait_ms = total_wait / n;
  result.conflict_rate = static_cast<double>(conflicted) / n;
  result.deadlock_rate = static_cast<double>(deadlocks) / n;
  result.timeout_rate = static_cast<double>(timeouts) / n;
  return result;
}

// ---------------------------------------------------------------------------
// SeedEngine: the pre-PR SimulatedEngine, verbatim. A fresh SeedBufferPool
// is constructed per Run, every Zipf draw (pages and lock rows) goes through
// one shared SeedZipfState replicating the per-Rng cache — so the two
// distributions thrash each other's constants within every Run, exactly as
// the seed did — and the WAL fixed point uses the epsilon-only convergence
// test.
// ---------------------------------------------------------------------------
class SeedEngine {
 public:
  SeedEngine(const cdb::KnobCatalog* catalog, cdb::InstanceType instance,
             cdb::EngineTuning tuning)
      : catalog_(catalog), instance_(instance), tuning_(tuning) {
    constexpr size_t kNumRoles =
        static_cast<size_t>(cdb::KnobRole::kGeneric) + 1;
    role_index_.assign(kNumRoles, -1);
    for (size_t i = 0; i < catalog_->size(); ++i) {
      const cdb::KnobDef& def = catalog_->knob(i);
      if (def.role == cdb::KnobRole::kGeneric) {
        const uint64_t h = HashName(def.name);
        generic_knobs_.push_back({i, 0.0008 + 0.0045 * UnitHash(h),
                                  0.15 + 0.7 * UnitHash(h ^ 0x5bd1e995u)});
      } else if (role_index_[static_cast<size_t>(def.role)] < 0) {
        role_index_[static_cast<size_t>(def.role)] = static_cast<int>(i);
      }
    }
  }

  bool ValidateBoot(const cdb::Configuration& config,
                    std::string* reason) const {
    const double ram_mb = instance_.ram_gb * 1024.0;
    const double bp_mb =
        KnobValue(config, cdb::KnobRole::kBufferPoolSize, 128.0);
    const double max_conn =
        KnobValue(config, cdb::KnobRole::kMaxConnections, 151.0);
    const double log_buffer_mb =
        KnobValue(config, cdb::KnobRole::kLogBufferSize, 16.0);
    const double committed =
        bp_mb + max_conn * kConnectionMemoryMb + log_buffer_mb;
    if (committed > kRamBudgetFraction * ram_mb) {
      if (reason != nullptr) {
        *reason = "configured memory " + std::to_string(committed) +
                  " MB exceeds budget of instance RAM " +
                  std::to_string(ram_mb) + " MB";
      }
      return false;
    }
    return true;
  }

  cdb::PerfResult Run(const cdb::Configuration& config,
                      const cdb::WorkloadProfile& workload, bool warm_start,
                      common::Rng* rng) const {
    if (!ValidateBoot(config, nullptr)) return cdb::BootFailureResult();

    // ---- Knob extraction.
    const double bp_mb =
        KnobValue(config, cdb::KnobRole::kBufferPoolSize, 128.0);
    const int flush_policy = static_cast<int>(
        KnobValue(config, cdb::KnobRole::kFlushPolicy, 1.0));
    const double binlog_sync =
        KnobValue(config, cdb::KnobRole::kBinlogSync, 1.0);
    const double log_file_mb =
        KnobValue(config, cdb::KnobRole::kLogFileSize, 48.0);
    const double log_buffer_mb =
        KnobValue(config, cdb::KnobRole::kLogBufferSize, 16.0);
    const double io_capacity =
        KnobValue(config, cdb::KnobRole::kIoCapacity, 200.0);
    const double io_capacity_max = std::max(
        io_capacity, KnobValue(config, cdb::KnobRole::kIoCapacityMax, 2000.0));
    const double thread_concurrency =
        KnobValue(config, cdb::KnobRole::kThreadConcurrency, 0.0);
    const double max_conn =
        KnobValue(config, cdb::KnobRole::kMaxConnections, 151.0);
    const double bp_instances = std::max(
        1.0, KnobValue(config, cdb::KnobRole::kBufferPoolInstances, 1.0));
    const double read_io_threads =
        std::max(1.0, KnobValue(config, cdb::KnobRole::kReadIoThreads, 4.0));
    const double thread_cache =
        KnobValue(config, cdb::KnobRole::kThreadCache, 9.0);
    const int flush_method = static_cast<int>(
        KnobValue(config, cdb::KnobRole::kFlushMethod, 0.0));
    const bool adaptive_hash =
        KnobValue(config, cdb::KnobRole::kAdaptiveHash, 1.0) >= 0.5;
    const double change_buffering =
        KnobValue(config, cdb::KnobRole::kChangeBuffering, 2.0);
    const double max_dirty_pct =
        KnobValue(config, cdb::KnobRole::kMaxDirtyPct, 75.0);
    const double lru_scan_depth =
        KnobValue(config, cdb::KnobRole::kLruScanDepth, 1024.0);
    const double lock_wait_timeout_s =
        KnobValue(config, cdb::KnobRole::kLockWaitTimeout, 50.0);
    const bool deadlock_detect =
        KnobValue(config, cdb::KnobRole::kDeadlockDetect, 1.0) >= 0.5;
    const double table_cache =
        KnobValue(config, cdb::KnobRole::kTableCache, 2000.0);
    const bool doublewrite =
        KnobValue(config, cdb::KnobRole::kDoubleWrite, 1.0) >= 0.5;

    // ---- Effective concurrency.
    double n_clients =
        std::min<double>(workload.client_threads, std::max(1.0, max_conn));
    if (workload.max_replay_parallelism > 0.0) {
      n_clients = std::min(n_clients, workload.max_replay_parallelism);
    }
    const double n_exec = thread_concurrency > 0.5
                              ? std::min(n_clients, thread_concurrency)
                              : n_clients;

    // ---- Buffer pool simulation (real LRU over a scaled page space).
    const double data_mb = workload.data_size_gb * 1024.0;
    const double page_mb = std::max(1.0, std::ceil(data_mb / kMaxDataPages));
    const uint64_t data_pages =
        std::max<uint64_t>(16, static_cast<uint64_t>(data_mb / page_mb));
    const uint64_t bp_pages =
        std::max<uint64_t>(1, static_cast<uint64_t>(bp_mb / page_mb));
    SeedBufferPool pool(bp_pages);
    if (warm_start) {
      pool.Prewarm(std::min<uint64_t>(bp_pages, data_pages));
    }
    const double write_access_fraction = 1.0 - workload.read_fraction;
    const int warmup = warm_start ? kWarmupAccesses / 4 : kWarmupAccesses;
    const size_t total_accesses =
        static_cast<size_t>(warmup) + static_cast<size_t>(kMeasuredAccesses);
    access_pages_.resize(total_accesses);
    access_is_write_.resize(total_accesses);
    for (size_t i = 0; i < total_accesses; ++i) {
      access_pages_[i] =
          SeedZipf(&zipf_state_, rng, data_pages, workload.zipf_theta);
      access_is_write_[i] = rng->Bernoulli(write_access_fraction) ? 1 : 0;
    }
    for (int i = 0; i < warmup; ++i) {
      const size_t a = static_cast<size_t>(i);
      pool.Access(access_pages_[a], access_is_write_[a] != 0);
    }
    pool.ResetCounters();
    for (int i = 0; i < kMeasuredAccesses; ++i) {
      const size_t a = static_cast<size_t>(warmup + i);
      pool.Access(access_pages_[a], access_is_write_[a] != 0);
      if ((i & 255) == 0) {
        pool.FlushDirty(static_cast<uint64_t>(io_capacity / 256.0) + 1);
      }
    }
    const double miss_ratio = 1.0 - pool.HitRatio();
    const double dirty_fraction = pool.DirtyFraction();

    // ---- Per-transaction demand components.
    const double read_ops = workload.ops_per_txn * workload.read_fraction;
    const double write_ops = workload.ops_per_txn - read_ops;
    const double point_reads = read_ops * (1.0 - workload.scan_fraction);
    const double scan_reads = read_ops * workload.scan_fraction;
    const double page_reads_per_txn = point_reads + scan_reads * 16.0 * 0.5;
    const double misses_per_txn = page_reads_per_txn * miss_ratio;

    const double prefetch =
        std::clamp(std::sqrt(read_io_threads / 4.0), 0.7, 2.2);
    const double io_wait_ms = misses_per_txn * tuning_.io_read_ms / prefetch;

    double dirty_pages_per_txn = workload.write_rows_per_txn * 0.4;
    if (change_buffering >= 1.5) {
      dirty_pages_per_txn *= 0.75;
    } else if (change_buffering >= 0.5) {
      dirty_pages_per_txn *= 0.88;
    }

    double cpu_ms =
        workload.ops_per_txn * workload.cpu_ms_per_op * tuning_.cpu_scale;
    if (adaptive_hash) cpu_ms *= 1.0 - 0.08 * workload.read_fraction;
    if (change_buffering >= 1.5) {
      cpu_ms *= 1.0 + 0.02 * workload.read_fraction;
    }
    const double write_io_threads =
        std::max(1.0, KnobValue(config, cdb::KnobRole::kWriteIoThreads, 4.0));
    cpu_ms *= 1.0 + 0.0025 * (read_io_threads + write_io_threads);
    {
      const double ram_mb = instance_.ram_gb * 1024.0;
      const double committed_fraction =
          (bp_mb + max_conn * kConnectionMemoryMb + log_buffer_mb) / ram_mb;
      if (committed_fraction > 0.80) {
        cpu_ms *= 1.0 + 3.0 * (committed_fraction - 0.80);
      }
    }
    double generic_penalty = 0.0;
    for (const GenericKnobEffect& g : generic_knobs_) {
      const double opt = g.opt_base + 0.1 * (workload.read_fraction - 0.5);
      const double x = catalog_->Normalize(g.knob_index, config[g.knob_index]);
      const double d = x - std::clamp(opt, 0.05, 0.95);
      generic_penalty += g.weight * d * d;
    }
    cpu_ms *= 1.0 + generic_penalty;
    cpu_ms += misses_per_txn * 0.025;
    cpu_ms += 0.05 * std::max(0.0, 1.0 - table_cache / 1500.0);
    const double churn_prob =
        0.02 * std::max(0.0, 1.0 - thread_cache / (0.3 * n_clients + 1.0));
    cpu_ms += churn_prob * 2.0;

    // ---- Lock contention (miniature lock-table replay).
    const double base_service_ms = cpu_ms + io_wait_ms;
    cdb::LockSimConfig lock_config;
    lock_config.num_txns = 400;
    lock_config.concurrency = n_exec;
    lock_config.writes_per_txn = workload.hot_writes_per_txn;
    lock_config.hot_rows = workload.hot_rows;
    lock_config.zipf_theta = workload.lock_zipf_theta;
    lock_config.hold_time_ms = std::max(0.5, base_service_ms);
    lock_config.lock_wait_timeout_ms = lock_wait_timeout_s * 1000.0;
    lock_config.deadlock_detect = deadlock_detect;
    const cdb::LockSimResult locks =
        SeedLockSimulate(lock_config, rng, &zipf_state_);
    if (deadlock_detect) {
      cpu_ms += 0.3 * locks.conflict_rate;
    }

    // ---- USL-style latch contention on the CPU path.
    const double bp_partition_factor =
        std::max(0.22, (1.0 + 4.0 / bp_instances) / 5.0);
    double sigma = tuning_.latch_sigma * bp_partition_factor;
    if (adaptive_hash) sigma += 0.0008 * (1.0 - workload.read_fraction);
    const double latch_eff = 1.0 + sigma * (n_exec - 1.0) +
                             tuning_.latch_kappa * n_exec * (n_exec - 1.0);

    // ---- Fixed point over throughput.
    double throughput = n_clients / std::max(0.1, base_service_ms) * 1000.0;
    cdb::WalConfig wal_config;
    wal_config.flush_policy = flush_policy;
    wal_config.binlog_sync_every = static_cast<int>(binlog_sync);
    wal_config.log_file_mb = log_file_mb;
    wal_config.log_buffer_mb = log_buffer_mb;
    wal_config.fsync_ms = instance_.fsync_latency_ms;
    wal_config.flush_method = flush_method;
    wal_config.doublewrite = doublewrite;
    wal_config.io_capacity = io_capacity;
    cdb::WalWorkload wal_workload;
    wal_workload.redo_kb_per_txn = workload.redo_kb_per_txn;
    wal_workload.concurrent_committers = n_exec;
    const cdb::WalInvariants wal_invariants =
        cdb::WalModel::Precompute(wal_config, wal_workload);
    const double write_activity =
        std::clamp(workload.redo_kb_per_txn / 0.5, 0.0, 1.0);
    cdb::WalCost wal;
    double stall_ms = 0.0;
    for (int iter = 0; iter < 40; ++iter) {
      wal = cdb::WalModel::EstimateAtRate(wal_invariants, throughput);
      wal.commit_cost_ms *= write_activity;
      wal.log_wait_ms *= write_activity;

      const bool bursting = dirty_fraction * 100.0 > max_dirty_pct;
      const double cleaner_eff =
          std::clamp(lru_scan_depth / 1024.0, 0.5, 2.0);
      const double flush_capacity =
          (bursting ? io_capacity_max : io_capacity) * cleaner_eff;
      const double dirty_rate = throughput * dirty_pages_per_txn;
      const double surplus = std::max(0.0, dirty_rate - flush_capacity);
      stall_ms = surplus / std::max(1.0, throughput) * tuning_.fg_flush_ms *
                 wal.write_amplification;
      if (bursting) stall_ms += 0.05;
      if (max_dirty_pct > 90.0) stall_ms += 0.02 * (max_dirty_pct - 90.0);
      stall_ms += 0.00002 * lru_scan_depth;

      const double service_ms = cpu_ms + io_wait_ms + wal.commit_cost_ms +
                                wal.log_wait_ms + wal.checkpoint_stall_ms +
                                locks.mean_wait_ms + stall_ms;
      const double x_threads = n_exec / service_ms * 1000.0;
      const double x_cpu = instance_.cpu_cores * 1000.0 / cpu_ms / latch_eff;
      const double device_ops_per_txn =
          misses_per_txn + dirty_pages_per_txn * wal.write_amplification * 0.5;
      const double excess_flush =
          std::max(0.0, flush_capacity - 2.0 * std::max(10.0, dirty_rate));
      const double read_iops_available =
          std::max(instance_.disk_read_iops * 0.2,
                   instance_.disk_read_iops - 0.5 * excess_flush);
      const double x_io =
          read_iops_available / std::max(0.01, device_ops_per_txn);
      const double x_log = 1000.0 / std::max(0.004, wal.commit_cost_ms);
      const double fg_flush_capacity =
          instance_.disk_write_iops * 0.3 / wal.write_amplification;
      const double x_dirty =
          dirty_pages_per_txn > 0.01
              ? (flush_capacity + fg_flush_capacity) / dirty_pages_per_txn
              : std::numeric_limits<double>::infinity();
      const double x_new = std::min(
          std::min(std::min(x_threads, x_cpu), std::min(x_io, x_log)),
          x_dirty);
      const double next = 0.5 * throughput + 0.5 * x_new;
      const bool converged = std::abs(next - throughput) < 0.002 * throughput;
      throughput = next;
      if (converged) break;
    }

    // ---- Latency from the closed-loop population.
    const double latency_avg_ms = n_clients / throughput * 1000.0;
    const double variability = 1.05 + 0.6 * locks.conflict_rate +
                               std::min(1.0, stall_ms / 2.0) +
                               std::min(0.5, wal.checkpoint_stall_ms * 10.0);
    double latency_p95 = latency_avg_ms * variability;
    double latency_p99 = latency_p95 * 1.35;

    // ---- Run-to-run noise.
    const double noise = 1.0 + rng->Gaussian(0.0, tuning_.noise_sigma);
    throughput *= std::max(0.5, noise);
    latency_p95 *= std::max(0.5, 2.0 - noise);
    latency_p99 *= std::max(0.5, 2.0 - noise);

    // ---- Latents and metrics.
    cdb::PerfResult result;
    result.throughput_tps = throughput;
    result.latency_p95_ms = latency_p95;
    result.latency_p99_ms = latency_p99;
    result.latents[cdb::kLatHitRatio] = 1.0 - miss_ratio;
    result.latents[cdb::kLatMissRate] = misses_per_txn * throughput;
    result.latents[cdb::kLatDirtyFraction] = dirty_fraction;
    result.latents[cdb::kLatFlushRate] = std::min(
        throughput * dirty_pages_per_txn,
        io_capacity_max * std::clamp(lru_scan_depth / 1024.0, 0.5, 2.0));
    result.latents[cdb::kLatLogWait] = wal.log_wait_ms + wal.commit_cost_ms;
    result.latents[cdb::kLatLockWait] = locks.mean_wait_ms;
    result.latents[cdb::kLatDeadlockRate] = locks.deadlock_rate * 1000.0;
    result.latents[cdb::kLatThreadsRunning] =
        std::min(n_exec, throughput * (cpu_ms + io_wait_ms) / 1000.0 + 1.0);
    result.latents[cdb::kLatCpuUtil] = std::clamp(
        throughput * cpu_ms / 1000.0 / instance_.cpu_cores, 0.0, 1.0);
    result.latents[cdb::kLatIoUtil] =
        std::clamp(throughput * (misses_per_txn + dirty_pages_per_txn) /
                       instance_.disk_read_iops,
                   0.0, 1.0);
    result.latents[cdb::kLatCommitRate] = throughput;
    result.latents[cdb::kLatReadRowRate] = throughput * read_ops;
    result.latents[cdb::kLatWriteRowRate] = throughput * write_ops;
    result.latents[cdb::kLatCheckpointRate] = wal.checkpoints_per_sec;
    result.latents[cdb::kLatTmpUsage] = throughput * scan_reads * 0.3;
    result.latents[cdb::kLatConnChurn] = churn_prob * throughput;
    result.metrics = cdb::LatentsToMetrics(result.latents, rng);
    return result;
  }

 private:
  struct GenericKnobEffect {
    size_t knob_index = 0;
    double weight = 0.0;
    double opt_base = 0.0;
  };

  // Local copies of the engine's file-static hash helpers.
  static uint64_t HashName(const std::string& name) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (char c : name) {
      h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ull;
    }
    return h;
  }

  static double UnitHash(uint64_t h) {
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  double KnobValue(const cdb::Configuration& config, cdb::KnobRole role,
                   double fallback) const {
    const int index = role_index_[static_cast<size_t>(role)];
    if (index < 0) return fallback;
    return config[static_cast<size_t>(index)];
  }

  static constexpr double kConnectionMemoryMb = 1.5;
  static constexpr double kRamBudgetFraction = 0.95;
  static constexpr int kWarmupAccesses = 2000;
  static constexpr int kMeasuredAccesses = 3000;
  static constexpr double kMaxDataPages = 8192.0;

  const cdb::KnobCatalog* catalog_;  // not owned
  cdb::InstanceType instance_;
  cdb::EngineTuning tuning_;
  std::vector<int> role_index_;
  std::vector<GenericKnobEffect> generic_knobs_;
  mutable std::vector<uint64_t> access_pages_;
  mutable std::vector<uint8_t> access_is_write_;
  // The seed's per-Rng Zipf cache: shared by page draws and lock-row draws.
  mutable SeedZipfState zipf_state_;
};

}  // namespace hunter::seedref

#endif  // HUNTER_TESTS_CDB_SEED_ENGINE_REF_H_
