#include <gtest/gtest.h>

#include "cdb/lock_manager.h"
#include "cdb/wal.h"
#include "common/rng.h"

namespace hunter::cdb {
namespace {

LockSimConfig BaseLockConfig() {
  LockSimConfig config;
  config.num_txns = 2000;
  config.concurrency = 32;
  config.writes_per_txn = 5;
  config.hot_rows = 100000;
  config.zipf_theta = 0.8;
  config.hold_time_ms = 5.0;
  return config;
}

TEST(LockManagerTest, NoWritesNoConflicts) {
  common::Rng rng(1);
  LockSimConfig config = BaseLockConfig();
  config.writes_per_txn = 0;
  const LockSimResult result = LockManager::Simulate(config, &rng);
  EXPECT_DOUBLE_EQ(result.mean_wait_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.conflict_rate, 0.0);
}

TEST(LockManagerTest, HugeKeySpaceHasLowConflict) {
  common::Rng rng(2);
  LockSimConfig config = BaseLockConfig();
  config.hot_rows = 100000000;
  config.zipf_theta = 0.0;
  const LockSimResult result = LockManager::Simulate(config, &rng);
  EXPECT_LT(result.conflict_rate, 0.01);
}

TEST(LockManagerTest, SmallHotSetConflictsHeavily) {
  common::Rng rng(3);
  LockSimConfig config = BaseLockConfig();
  config.hot_rows = 200;
  const LockSimResult result = LockManager::Simulate(config, &rng);
  EXPECT_GT(result.conflict_rate, 0.2);
  EXPECT_GT(result.mean_wait_ms, 0.1);
}

TEST(LockManagerTest, ConflictGrowsWithConcurrency) {
  LockSimConfig config = BaseLockConfig();
  config.hot_rows = 5000;
  common::Rng rng_low(4), rng_high(4);
  config.concurrency = 4;
  const LockSimResult low = LockManager::Simulate(config, &rng_low);
  config.concurrency = 128;
  const LockSimResult high = LockManager::Simulate(config, &rng_high);
  EXPECT_GT(high.conflict_rate, low.conflict_rate);
}

TEST(LockManagerTest, DeadlockDetectionAvoidsTimeouts) {
  LockSimConfig config = BaseLockConfig();
  config.hot_rows = 100;
  config.zipf_theta = 0.9;
  config.lock_wait_timeout_ms = 1000.0;
  common::Rng rng_a(5), rng_b(5);
  config.deadlock_detect = true;
  const LockSimResult with_detect = LockManager::Simulate(config, &rng_a);
  config.deadlock_detect = false;
  const LockSimResult without = LockManager::Simulate(config, &rng_b);
  // Without detection, deadlocked waiters must burn the full timeout.
  EXPECT_GT(without.mean_wait_ms, with_detect.mean_wait_ms);
  EXPECT_GE(without.timeout_rate, with_detect.timeout_rate);
}

TEST(LockManagerTest, TimeoutCapsWaits) {
  LockSimConfig config = BaseLockConfig();
  config.hot_rows = 100;
  config.hold_time_ms = 1000.0;
  config.lock_wait_timeout_ms = 10.0;
  common::Rng rng(6);
  const LockSimResult result = LockManager::Simulate(config, &rng);
  // Mean wait cannot exceed a few timeouts' worth per txn.
  EXPECT_LT(result.mean_wait_ms, 50.0);
}

TEST(WalModelTest, FlushPolicyOrdering) {
  WalConfig config;
  WalWorkload workload;
  config.flush_policy = 1;
  const double sync_every = WalModel::Estimate(config, workload).commit_cost_ms;
  config.flush_policy = 2;
  const double per_second = WalModel::Estimate(config, workload).commit_cost_ms;
  config.flush_policy = 0;
  const double none = WalModel::Estimate(config, workload).commit_cost_ms;
  EXPECT_GT(sync_every, per_second);
  EXPECT_GT(per_second, none);
}

TEST(WalModelTest, GroupCommitAmortizesAtHighRate) {
  WalConfig config;
  config.flush_policy = 1;
  config.binlog_sync_every = 0;
  WalWorkload slow;
  slow.commit_rate_tps = 100;
  WalWorkload fast;
  fast.commit_rate_tps = 50000;
  EXPECT_GT(WalModel::Estimate(config, slow).commit_cost_ms,
            WalModel::Estimate(config, fast).commit_cost_ms);
}

TEST(WalModelTest, BinlogSyncEveryNReducesCost) {
  WalConfig config;
  config.flush_policy = 0;
  WalWorkload workload;
  config.binlog_sync_every = 1;
  const double every = WalModel::Estimate(config, workload).commit_cost_ms;
  config.binlog_sync_every = 100;
  const double batched = WalModel::Estimate(config, workload).commit_cost_ms;
  config.binlog_sync_every = 0;
  const double never = WalModel::Estimate(config, workload).commit_cost_ms;
  EXPECT_GT(every, batched);
  EXPECT_GE(batched, never);
}

TEST(WalModelTest, SmallLogBufferCausesWaits) {
  WalConfig config;
  WalWorkload workload;
  workload.commit_rate_tps = 5000;
  workload.redo_kb_per_txn = 16;
  config.log_buffer_mb = 1;
  const double small = WalModel::Estimate(config, workload).log_wait_ms;
  config.log_buffer_mb = 256;
  const double large = WalModel::Estimate(config, workload).log_wait_ms;
  EXPECT_GT(small, 0.0);
  EXPECT_LT(large, small);
}

TEST(WalModelTest, LargerLogFileReducesCheckpointStall) {
  WalConfig config;
  WalWorkload workload;
  workload.commit_rate_tps = 2000;
  config.log_file_mb = 48;
  const WalCost small = WalModel::Estimate(config, workload);
  config.log_file_mb = 4096;
  const WalCost large = WalModel::Estimate(config, workload);
  EXPECT_GT(small.checkpoint_stall_ms, large.checkpoint_stall_ms);
  EXPECT_GT(small.checkpoints_per_sec, large.checkpoints_per_sec);
}

TEST(WalModelTest, HigherIoCapacityAbsorbsCheckpoints) {
  WalConfig config;
  WalWorkload workload;
  workload.commit_rate_tps = 2000;
  config.io_capacity = 200;
  const double slow_io = WalModel::Estimate(config, workload).checkpoint_stall_ms;
  config.io_capacity = 10000;
  const double fast_io = WalModel::Estimate(config, workload).checkpoint_stall_ms;
  EXPECT_GT(slow_io, fast_io);
}

TEST(WalModelTest, DoublewriteAndBufferedIoAmplifyWrites) {
  WalConfig config;
  WalWorkload workload;
  config.doublewrite = true;
  config.flush_method = 0;
  const double both = WalModel::Estimate(config, workload).write_amplification;
  config.doublewrite = false;
  config.flush_method = 2;
  const double neither =
      WalModel::Estimate(config, workload).write_amplification;
  EXPECT_GT(both, neither);
  EXPECT_DOUBLE_EQ(neither, 1.0);
}

}  // namespace
}  // namespace hunter::cdb
