#include "cdb/buffer_pool.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hunter::cdb {
namespace {

TEST(BufferPoolTest, ColdMissesThenHits) {
  BufferPool pool(10);
  EXPECT_FALSE(pool.Access(1, false));
  EXPECT_TRUE(pool.Access(1, false));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1, false);
  pool.Access(2, false);
  pool.Access(1, false);   // 1 now most recent
  pool.Access(3, false);   // evicts 2
  EXPECT_TRUE(pool.Access(1, false));
  EXPECT_FALSE(pool.Access(2, false));
}

TEST(BufferPoolTest, CapacityNeverExceeded) {
  BufferPool pool(5);
  for (uint64_t p = 0; p < 100; ++p) pool.Access(p, false);
  EXPECT_EQ(pool.resident_pages(), 5u);
}

TEST(BufferPoolTest, DirtyTrackingAndFlush) {
  BufferPool pool(10);
  pool.Access(1, true);
  pool.Access(2, true);
  pool.Access(3, false);
  EXPECT_EQ(pool.dirty_pages(), 2u);
  EXPECT_DOUBLE_EQ(pool.DirtyFraction(), 2.0 / 3.0);
  EXPECT_EQ(pool.FlushDirty(1), 1u);
  EXPECT_EQ(pool.dirty_pages(), 1u);
  EXPECT_EQ(pool.FlushDirty(10), 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(BufferPoolTest, DirtyEvictionCounted) {
  BufferPool pool(1);
  pool.Access(1, true);
  pool.Access(2, false);  // evicts dirty page 1
  EXPECT_EQ(pool.dirty_evictions(), 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(BufferPoolTest, RewriteDoesNotDoubleCountDirty) {
  BufferPool pool(4);
  pool.Access(1, true);
  pool.Access(1, true);
  EXPECT_EQ(pool.dirty_pages(), 1u);
}

TEST(BufferPoolTest, HitRatioGrowsWithCapacityUnderZipf) {
  common::Rng rng(1);
  auto measure = [&](uint64_t capacity) {
    BufferPool pool(capacity);
    common::Rng local(42);
    for (int i = 0; i < 5000; ++i) pool.Access(local.Zipf(4096, 0.8), false);
    pool.ResetCounters();
    for (int i = 0; i < 5000; ++i) pool.Access(local.Zipf(4096, 0.8), false);
    return pool.HitRatio();
  };
  const double small = measure(64);
  const double medium = measure(512);
  const double large = measure(4096);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_GT(large, 0.80);  // most of the working set resident
  EXPECT_GT(small, 0.15);  // Zipf head still caught by a small pool
}

TEST(BufferPoolTest, PrewarmMakesHotPagesResident) {
  BufferPool pool(100);
  pool.Prewarm(100);
  EXPECT_EQ(pool.resident_pages(), 100u);
  EXPECT_TRUE(pool.Access(0, false));
  EXPECT_TRUE(pool.Access(99, false));
  EXPECT_FALSE(pool.Access(100, false));
}

TEST(BufferPoolTest, PrewarmRespectsCapacity) {
  BufferPool pool(10);
  pool.Prewarm(100);
  EXPECT_EQ(pool.resident_pages(), 10u);
}

TEST(BufferPoolTest, ResetCountersKeepsContents) {
  BufferPool pool(4);
  pool.Access(7, false);
  pool.ResetCounters();
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_TRUE(pool.Access(7, false));
}

TEST(BufferPoolTest, ZeroCapacityClampedToOne) {
  BufferPool pool(0);
  EXPECT_EQ(pool.capacity(), 1u);
  pool.Access(1, false);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

}  // namespace
}  // namespace hunter::cdb
