#include "cdb/buffer_pool.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/cdb/seed_engine_ref.h"

namespace hunter::cdb {
namespace {

TEST(BufferPoolTest, ColdMissesThenHits) {
  BufferPool pool(10);
  EXPECT_FALSE(pool.Access(1, false));
  EXPECT_TRUE(pool.Access(1, false));
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(2);
  pool.Access(1, false);
  pool.Access(2, false);
  pool.Access(1, false);   // 1 now most recent
  pool.Access(3, false);   // evicts 2
  EXPECT_TRUE(pool.Access(1, false));
  EXPECT_FALSE(pool.Access(2, false));
}

TEST(BufferPoolTest, CapacityNeverExceeded) {
  BufferPool pool(5);
  for (uint64_t p = 0; p < 100; ++p) pool.Access(p, false);
  EXPECT_EQ(pool.resident_pages(), 5u);
}

TEST(BufferPoolTest, DirtyTrackingAndFlush) {
  BufferPool pool(10);
  pool.Access(1, true);
  pool.Access(2, true);
  pool.Access(3, false);
  EXPECT_EQ(pool.dirty_pages(), 2u);
  EXPECT_DOUBLE_EQ(pool.DirtyFraction(), 2.0 / 3.0);
  EXPECT_EQ(pool.FlushDirty(1), 1u);
  EXPECT_EQ(pool.dirty_pages(), 1u);
  EXPECT_EQ(pool.FlushDirty(10), 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(BufferPoolTest, DirtyEvictionCounted) {
  BufferPool pool(1);
  pool.Access(1, true);
  pool.Access(2, false);  // evicts dirty page 1
  EXPECT_EQ(pool.dirty_evictions(), 1u);
  EXPECT_EQ(pool.dirty_pages(), 0u);
}

TEST(BufferPoolTest, RewriteDoesNotDoubleCountDirty) {
  BufferPool pool(4);
  pool.Access(1, true);
  pool.Access(1, true);
  EXPECT_EQ(pool.dirty_pages(), 1u);
}

TEST(BufferPoolTest, HitRatioGrowsWithCapacityUnderZipf) {
  common::Rng rng(1);
  auto measure = [&](uint64_t capacity) {
    BufferPool pool(capacity);
    common::Rng local(42);
    for (int i = 0; i < 5000; ++i) pool.Access(local.Zipf(4096, 0.8), false);
    pool.ResetCounters();
    for (int i = 0; i < 5000; ++i) pool.Access(local.Zipf(4096, 0.8), false);
    return pool.HitRatio();
  };
  const double small = measure(64);
  const double medium = measure(512);
  const double large = measure(4096);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_GT(large, 0.80);  // most of the working set resident
  EXPECT_GT(small, 0.15);  // Zipf head still caught by a small pool
}

TEST(BufferPoolTest, PrewarmMakesHotPagesResident) {
  BufferPool pool(100);
  pool.Prewarm(100);
  EXPECT_EQ(pool.resident_pages(), 100u);
  EXPECT_TRUE(pool.Access(0, false));
  EXPECT_TRUE(pool.Access(99, false));
  EXPECT_FALSE(pool.Access(100, false));
}

TEST(BufferPoolTest, PrewarmRespectsCapacity) {
  BufferPool pool(10);
  pool.Prewarm(100);
  EXPECT_EQ(pool.resident_pages(), 10u);
}

TEST(BufferPoolTest, ResetCountersKeepsContents) {
  BufferPool pool(4);
  pool.Access(7, false);
  pool.ResetCounters();
  EXPECT_EQ(pool.misses(), 0u);
  EXPECT_TRUE(pool.Access(7, false));
}

TEST(BufferPoolTest, ZeroCapacityClampedToOne) {
  BufferPool pool(0);
  EXPECT_EQ(pool.capacity(), 1u);
  pool.Access(1, false);
  EXPECT_EQ(pool.resident_pages(), 1u);
}

// ---------------------------------------------------------------------------
// Golden equivalence against the seed std::list + std::unordered_map pool
// (tests/cdb/seed_engine_ref.h). The flat intrusive LRU must reproduce the
// seed's hit/miss booleans and counter trajectories exactly, access by
// access, under adversarial streams.
// ---------------------------------------------------------------------------

// Drives both pools through the same access/flush stream, asserting the
// per-access hit/miss boolean and all observable counters after every step.
void ReplayAndCompare(BufferPool* pool, seedref::SeedBufferPool* seed,
                      common::Rng* rng, uint64_t page_space, double dirty_prob,
                      int steps, uint64_t flush_every, uint64_t flush_budget,
                      const std::string& context) {
  for (int i = 0; i < steps; ++i) {
    const uint64_t page = rng->Zipf(page_space, 0.9);
    const bool dirty = rng->Bernoulli(dirty_prob);
    const bool want = seed->Access(page, dirty);
    const bool got = pool->Access(page, dirty);
    ASSERT_EQ(want, got) << context << " step " << i;
    if (flush_every > 0 && static_cast<uint64_t>(i) % flush_every == 0) {
      ASSERT_EQ(seed->FlushDirty(flush_budget), pool->FlushDirty(flush_budget))
          << context << " flush at step " << i;
    }
    ASSERT_EQ(seed->hits(), pool->hits()) << context << " step " << i;
    ASSERT_EQ(seed->misses(), pool->misses()) << context << " step " << i;
    ASSERT_EQ(seed->dirty_pages(), pool->dirty_pages())
        << context << " step " << i;
    ASSERT_EQ(seed->dirty_evictions(), pool->dirty_evictions())
        << context << " step " << i;
    ASSERT_EQ(seed->resident_pages(), pool->resident_pages())
        << context << " step " << i;
  }
  EXPECT_DOUBLE_EQ(seed->HitRatio(), pool->HitRatio()) << context;
  EXPECT_DOUBLE_EQ(seed->DirtyFraction(), pool->DirtyFraction()) << context;
}

TEST(BufferPoolEquivalenceTest, AdversarialStreamsMatchSeedExactly) {
  struct Scenario {
    const char* name;
    uint64_t capacity;
    uint64_t page_space;
    double dirty_prob;
    uint64_t flush_every;
    uint64_t flush_budget;
    uint64_t prewarm;
  };
  const Scenario scenarios[] = {
      // Thrashing single slot: every distinct page evicts.
      {"capacity one", 1, 64, 0.5, 0, 0, 0},
      // Pool larger than the page space: no evictions ever.
      {"oversized pool", 4096, 256, 0.3, 0, 0, 0},
      // The engine's shape: prewarmed pool, periodic budgeted flushing.
      {"prewarmed with flushing", 512, 2048, 0.4, 256, 8, 512},
      // Tight pool with aggressive flush interleaving.
      {"flush every step", 16, 128, 0.9, 1, 2, 16},
      // Prewarm beyond capacity (clamped inside Prewarm).
      {"prewarm overflow", 32, 1024, 0.2, 64, 4, 1000},
  };
  for (const Scenario& s : scenarios) {
    BufferPool pool(s.capacity);
    seedref::SeedBufferPool seed(s.capacity);
    if (s.prewarm > 0) {
      pool.Prewarm(s.prewarm);
      seed.Prewarm(s.prewarm);
    }
    common::Rng rng(1234);
    ReplayAndCompare(&pool, &seed, &rng, s.page_space, s.dirty_prob, 4000,
                     s.flush_every, s.flush_budget, s.name);
  }
}

TEST(BufferPoolEquivalenceTest, ResetReplaysLikeAFreshSeedPool) {
  // One pool driven through Reset cycles of varying capacities must behave
  // like a factory-fresh seed pool of each capacity — reused slabs carry no
  // observable state across cycles.
  BufferPool pool(2048);  // sizes the slabs once, up front
  const uint64_t capacities[] = {2048, 64, 1, 512, 64};
  const uint64_t reuses_before = pool.slab_reuses();
  uint64_t expected_resets = pool.resets();
  for (const uint64_t capacity : capacities) {
    pool.Reset(capacity);
    ++expected_resets;
    EXPECT_EQ(pool.resets(), expected_resets);
    EXPECT_EQ(pool.capacity(), capacity);
    EXPECT_EQ(pool.resident_pages(), 0u);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.misses(), 0u);
    EXPECT_EQ(pool.dirty_pages(), 0u);
    seedref::SeedBufferPool seed(capacity);
    common::Rng rng(42 + capacity);
    ReplayAndCompare(&pool, &seed, &rng, 4 * capacity, 0.5, 3000, 128, 4,
                     "reset to " + std::to_string(capacity));
  }
  // Every re-arm fits inside the original 2048-page slabs.
  EXPECT_EQ(pool.slab_reuses() - reuses_before,
            sizeof(capacities) / sizeof(capacities[0]));
}

}  // namespace
}  // namespace hunter::cdb
