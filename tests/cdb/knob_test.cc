#include "cdb/knob.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"

namespace hunter::cdb {
namespace {

TEST(KnobCatalogTest, MySqlHas65Knobs) {
  const KnobCatalog catalog = MySqlCatalog();
  EXPECT_EQ(catalog.size(), 65u);
  EXPECT_EQ(catalog.dbms_name(), "mysql");
}

TEST(KnobCatalogTest, PostgresHas65Knobs) {
  const KnobCatalog catalog = PostgresCatalog();
  EXPECT_EQ(catalog.size(), 65u);
  EXPECT_EQ(catalog.dbms_name(), "postgresql");
}

TEST(KnobCatalogTest, NamesAreUniqueAndIndexed) {
  for (const KnobCatalog& catalog : {MySqlCatalog(), PostgresCatalog()}) {
    for (size_t i = 0; i < catalog.size(); ++i) {
      EXPECT_EQ(catalog.IndexOf(catalog.knob(i).name), static_cast<int>(i))
          << catalog.dbms_name() << " knob " << catalog.knob(i).name;
    }
  }
}

TEST(KnobCatalogTest, UnknownNameReturnsMinusOne) {
  EXPECT_EQ(MySqlCatalog().IndexOf("no_such_knob"), -1);
}

TEST(KnobCatalogTest, AllCoreRolesPresentInBothCatalogs) {
  const KnobRole roles[] = {
      KnobRole::kBufferPoolSize, KnobRole::kFlushPolicy,
      KnobRole::kLogFileSize,    KnobRole::kIoCapacity,
      KnobRole::kMaxConnections, KnobRole::kThreadConcurrency,
      KnobRole::kLockWaitTimeout};
  for (const KnobCatalog& catalog : {MySqlCatalog(), PostgresCatalog()}) {
    for (KnobRole role : roles) {
      EXPECT_GE(catalog.IndexOfRole(role), 0)
          << catalog.dbms_name() << " missing role "
          << static_cast<int>(role);
    }
  }
}

TEST(KnobCatalogTest, DefaultsAreWithinRange) {
  for (const KnobCatalog& catalog : {MySqlCatalog(), PostgresCatalog()}) {
    const Configuration defaults = catalog.DefaultConfiguration();
    for (size_t i = 0; i < catalog.size(); ++i) {
      const KnobDef& def = catalog.knob(i);
      EXPECT_GE(defaults[i], def.min_value) << def.name;
      EXPECT_LE(defaults[i], def.max_value) << def.name;
    }
  }
}

TEST(KnobCatalogTest, NormalizeDenormalizeRoundTrip) {
  const KnobCatalog catalog = MySqlCatalog();
  const Configuration defaults = catalog.DefaultConfiguration();
  const std::vector<double> normalized =
      catalog.NormalizeConfiguration(defaults);
  const Configuration recovered =
      catalog.DenormalizeConfiguration(normalized);
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_NEAR(recovered[i], defaults[i],
                1e-6 * std::max(1.0, std::abs(defaults[i])))
        << catalog.knob(i).name;
  }
}

TEST(KnobCatalogTest, NormalizedValuesInUnitInterval) {
  const KnobCatalog catalog = PostgresCatalog();
  const std::vector<double> normalized =
      catalog.NormalizeConfiguration(catalog.DefaultConfiguration());
  for (double v : normalized) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(KnobCatalogTest, DenormalizeSnapsIntegers) {
  const KnobCatalog catalog = MySqlCatalog();
  const int bp = catalog.IndexOf("innodb_buffer_pool_size");
  ASSERT_GE(bp, 0);
  const double raw = catalog.Denormalize(static_cast<size_t>(bp), 0.5);
  EXPECT_DOUBLE_EQ(raw, std::round(raw));
}

TEST(KnobCatalogTest, DenormalizeExtremesHitBounds) {
  const KnobCatalog catalog = MySqlCatalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_DOUBLE_EQ(catalog.Denormalize(i, 0.0), catalog.knob(i).min_value);
    EXPECT_NEAR(catalog.Denormalize(i, 1.0), catalog.knob(i).max_value,
                1e-6 * std::max(1.0, std::abs(catalog.knob(i).max_value)));
  }
}

TEST(KnobCatalogTest, LogScaleSpreadsSmallValues) {
  const KnobCatalog catalog = MySqlCatalog();
  const size_t bp =
      static_cast<size_t>(catalog.IndexOf("innodb_buffer_pool_size"));
  // In log space, 1 GB out of [128 MB, 48 GB] should normalize well above
  // the linear position (~0.018).
  const double norm = catalog.Normalize(bp, 1024.0);
  EXPECT_GT(norm, 0.2);
  EXPECT_LT(norm, 0.7);
}

TEST(KnobCatalogTest, SnapClampsOutOfRange) {
  const KnobCatalog catalog = MySqlCatalog();
  const size_t bp =
      static_cast<size_t>(catalog.IndexOf("innodb_buffer_pool_size"));
  EXPECT_DOUBLE_EQ(catalog.Snap(bp, -5.0), 128.0);
  EXPECT_DOUBLE_EQ(catalog.Snap(bp, 1e9), 49152.0);
}

TEST(KnobCatalogTest, EnumKnobsHaveMatchingRange) {
  for (const KnobCatalog& catalog : {MySqlCatalog(), PostgresCatalog()}) {
    for (size_t i = 0; i < catalog.size(); ++i) {
      const KnobDef& def = catalog.knob(i);
      if (def.type == KnobType::kEnum) {
        EXPECT_EQ(def.max_value,
                  static_cast<double>(def.enum_values.size()) - 1)
            << def.name;
      }
    }
  }
}

TEST(KnobCatalogTest, StaticKnobsExist) {
  // The availability story needs some knobs to require restarts.
  const KnobCatalog catalog = MySqlCatalog();
  int static_knobs = 0;
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (!catalog.knob(i).dynamic) ++static_knobs;
  }
  EXPECT_GE(static_knobs, 5);
}

}  // namespace
}  // namespace hunter::cdb
