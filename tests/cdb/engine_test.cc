#include "cdb/simulated_engine.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "common/rng.h"
#include "workload/workloads.h"

namespace hunter::cdb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : catalog_(MySqlCatalog()),
        engine_(&catalog_, MySqlEvaluationInstance(), MySqlEngineTuning()) {}

  PerfResult Run(const Configuration& config, const WorkloadProfile& workload,
                 uint64_t seed = 99) {
    common::Rng rng(seed);
    return engine_.Run(config, workload, /*warm_start=*/true, &rng);
  }

  // Averages throughput over a few seeds to smooth run-to-run noise.
  double MeanThroughput(const Configuration& config,
                        const WorkloadProfile& workload, int repeats = 4) {
    double total = 0.0;
    for (int i = 0; i < repeats; ++i) {
      total += Run(config, workload, 100 + static_cast<uint64_t>(i))
                   .throughput_tps;
    }
    return total / repeats;
  }

  void Set(Configuration* config, const char* name, double value) {
    const int index = catalog_.IndexOf(name);
    ASSERT_GE(index, 0) << name;
    (*config)[static_cast<size_t>(index)] = value;
  }

  KnobCatalog catalog_;
  SimulatedEngine engine_;
};

TEST_F(EngineTest, DefaultConfigurationBoots) {
  std::string reason;
  EXPECT_TRUE(engine_.ValidateBoot(catalog_.DefaultConfiguration(), &reason))
      << reason;
}

TEST_F(EngineTest, OversizedBufferPoolFailsBoot) {
  Configuration config = catalog_.DefaultConfiguration();
  Set(&config, "innodb_buffer_pool_size", 48000);  // ~47 GB on a 32 GB box
  std::string reason;
  EXPECT_FALSE(engine_.ValidateBoot(config, &reason));
  EXPECT_FALSE(reason.empty());
}

TEST_F(EngineTest, ConnectionMemoryCountsAgainstRam) {
  Configuration config = catalog_.DefaultConfiguration();
  Set(&config, "innodb_buffer_pool_size", 24000);
  Set(&config, "max_connections", 10000);  // 15 GB of connection arenas
  EXPECT_FALSE(engine_.ValidateBoot(config, nullptr));
}

TEST_F(EngineTest, BootFailureResultMatchesPaperSentinel) {
  Configuration config = catalog_.DefaultConfiguration();
  Set(&config, "innodb_buffer_pool_size", 49152);
  const PerfResult result = Run(config, workload::Tpcc());
  EXPECT_TRUE(result.boot_failed);
  EXPECT_DOUBLE_EQ(result.throughput_tps, -1000.0);
  EXPECT_TRUE(std::isinf(result.latency_p95_ms));
}

TEST_F(EngineTest, ProducesAllMetrics) {
  const PerfResult result =
      Run(catalog_.DefaultConfiguration(), workload::Tpcc());
  EXPECT_EQ(result.metrics.size(), kNumMetrics);
  EXPECT_FALSE(result.boot_failed);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_GT(result.latency_p95_ms, 0.0);
}

TEST_F(EngineTest, BiggerBufferPoolHelpsIoBoundWorkload) {
  // Relax the commit path first so the log device is not the bottleneck;
  // then buffer pool size governs the IO-bound throughput.
  Configuration small = catalog_.DefaultConfiguration();
  Set(&small, "innodb_flush_log_at_trx_commit", 2);
  Set(&small, "sync_binlog", 0);
  Configuration large = small;
  Set(&large, "innodb_buffer_pool_size", 16384);
  const auto workload = workload::Tpcc();
  EXPECT_GT(MeanThroughput(large, workload),
            1.08 * MeanThroughput(small, workload));
}

TEST_F(EngineTest, RelaxedFlushPolicyHelpsWrites) {
  Configuration strict = catalog_.DefaultConfiguration();
  Configuration relaxed = catalog_.DefaultConfiguration();
  Set(&relaxed, "innodb_flush_log_at_trx_commit", 2);
  Set(&relaxed, "sync_binlog", 1000);
  const auto workload = workload::SysbenchWriteOnly();
  EXPECT_GT(MeanThroughput(relaxed, workload),
            1.3 * MeanThroughput(strict, workload));
}

TEST_F(EngineTest, FlushPolicyIrrelevantForReadOnly) {
  Configuration strict = catalog_.DefaultConfiguration();
  Configuration relaxed = catalog_.DefaultConfiguration();
  Set(&relaxed, "innodb_flush_log_at_trx_commit", 0);
  const auto workload = workload::SysbenchReadOnly();
  const double t_strict = MeanThroughput(strict, workload);
  const double t_relaxed = MeanThroughput(relaxed, workload);
  EXPECT_NEAR(t_relaxed / t_strict, 1.0, 0.05);
}

TEST_F(EngineTest, ThreadConcurrencyHasInteriorOptimum) {
  // For the 512-thread Sysbench workload, an uncapped engine suffers latch
  // contention; a moderate cap beats both extremes.
  auto workload = workload::SysbenchReadOnly();
  Configuration uncapped = catalog_.DefaultConfiguration();
  Set(&uncapped, "innodb_buffer_pool_size", 12288);
  Configuration capped = uncapped;
  Set(&capped, "innodb_thread_concurrency", 40);
  Configuration tiny = uncapped;
  Set(&tiny, "innodb_thread_concurrency", 2);
  const double t_uncapped = MeanThroughput(uncapped, workload);
  const double t_capped = MeanThroughput(capped, workload);
  const double t_tiny = MeanThroughput(tiny, workload);
  EXPECT_GT(t_capped, t_uncapped);
  EXPECT_GT(t_capped, t_tiny);
}

TEST_F(EngineTest, IoCapacityHasARidge) {
  // Too little background flushing stalls writers; vastly too much steals
  // read bandwidth.
  auto workload = workload::SysbenchWriteOnly();
  Configuration base = catalog_.DefaultConfiguration();
  Set(&base, "innodb_buffer_pool_size", 12288);
  Set(&base, "innodb_flush_log_at_trx_commit", 2);
  Set(&base, "sync_binlog", 0);
  Configuration low = base, mid = base, high = base;
  Set(&low, "innodb_io_capacity", 100);
  Set(&mid, "innodb_io_capacity", 6000);
  Set(&high, "innodb_io_capacity", 20000);
  Set(&high, "innodb_io_capacity_max", 40000);
  const double t_low = MeanThroughput(low, workload);
  const double t_mid = MeanThroughput(mid, workload);
  EXPECT_GT(t_mid, t_low);
}

TEST_F(EngineTest, WarmStartBeatsColdStart) {
  Configuration config = catalog_.DefaultConfiguration();
  const auto workload = workload::Tpcc();
  common::Rng rng_cold(5), rng_warm(5);
  const PerfResult cold = engine_.Run(config, workload, false, &rng_cold);
  const PerfResult warm = engine_.Run(config, workload, true, &rng_warm);
  // Warm buffer pool -> fewer misses -> at least as good throughput.
  EXPECT_GE(warm.throughput_tps, 0.95 * cold.throughput_tps);
  EXPECT_GE(warm.latents[kLatHitRatio], cold.latents[kLatHitRatio] - 0.02);
}

TEST_F(EngineTest, DeterministicGivenSeed) {
  Configuration config = catalog_.DefaultConfiguration();
  const PerfResult a = Run(config, workload::Tpcc(), 7);
  const PerfResult b = Run(config, workload::Tpcc(), 7);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST_F(EngineTest, LatencyScalesWithPopulationOverThroughput) {
  const PerfResult result =
      Run(catalog_.DefaultConfiguration(), workload::Tpcc());
  const double avg_ms = 32.0 / result.throughput_tps * 1000.0;
  EXPECT_GT(result.latency_p95_ms, avg_ms);        // p95 above mean
  EXPECT_LT(result.latency_p95_ms, avg_ms * 4.0);  // but bounded
  EXPECT_GT(result.latency_p99_ms, result.latency_p95_ms);
}

TEST_F(EngineTest, PostgresCatalogRunsThroughSameEngine) {
  KnobCatalog pg = PostgresCatalog();
  SimulatedEngine engine(&pg, PostgresEvaluationInstance(),
                         PostgresEngineTuning());
  common::Rng rng(3);
  const PerfResult result =
      engine.Run(pg.DefaultConfiguration(), workload::Tpcc(), true, &rng);
  EXPECT_FALSE(result.boot_failed);
  EXPECT_GT(result.throughput_tps, 50.0);
}

TEST_F(EngineTest, MetricsReflectLatents) {
  common::Rng rng(11);
  std::array<double, kNumLatents> latents{};
  latents[kLatCommitRate] = 1000.0;
  const auto metrics = LatentsToMetrics(latents, nullptr);
  const auto& names = MetricNames();
  ASSERT_EQ(metrics.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "trx_commits") {
      EXPECT_NEAR(metrics[i], 1000.0, 1e-9);
    }
  }
}

TEST_F(EngineTest, MetricNamesAreUnique) {
  const auto& names = MetricNames();
  EXPECT_EQ(names.size(), kNumMetrics);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), kNumMetrics);
}

TEST_F(EngineTest, InstanceUpgradeImprovesThroughput) {
  Configuration tuned = catalog_.DefaultConfiguration();
  Set(&tuned, "innodb_buffer_pool_size", 1024);
  Set(&tuned, "innodb_flush_log_at_trx_commit", 2);
  Set(&tuned, "sync_binlog", 0);
  const auto workload = workload::Tpcc();
  SimulatedEngine small(&catalog_, InstanceTypeByName("B"),
                        MySqlEngineTuning());
  SimulatedEngine big(&catalog_, InstanceTypeByName("H"),
                      MySqlEngineTuning());
  common::Rng rng_a(5), rng_b(5);
  EXPECT_GT(big.Run(tuned, workload, true, &rng_b).throughput_tps,
            small.Run(tuned, workload, true, &rng_a).throughput_tps);
}

}  // namespace
}  // namespace hunter::cdb
