#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "cdb/cdb_instance.h"
#include "cdb/fitness.h"
#include "cdb/instance_type.h"
#include "cdb/knob_catalog.h"
#include "workload/workloads.h"

namespace hunter::cdb {
namespace {

TEST(FitnessTest, ZeroAtDefaults) {
  PerformanceSummary defaults{1000.0, 50.0};
  EXPECT_DOUBLE_EQ(Fitness(0.5, defaults, defaults), 0.0);
}

TEST(FitnessTest, Equation1KnownValue) {
  PerformanceSummary defaults{1000.0, 50.0};
  PerformanceSummary current{1500.0, 40.0};  // +50% T, -20% L
  EXPECT_NEAR(Fitness(0.5, current, defaults), 0.5 * 0.5 + 0.5 * 0.2, 1e-12);
}

TEST(FitnessTest, AlphaShiftsAttention) {
  PerformanceSummary defaults{1000.0, 50.0};
  PerformanceSummary fast_but_slow_latency{1500.0, 60.0};
  const double throughput_lover = Fitness(1.0, fast_but_slow_latency, defaults);
  const double latency_lover = Fitness(0.0, fast_but_slow_latency, defaults);
  EXPECT_NEAR(throughput_lover, 0.5, 1e-12);
  EXPECT_NEAR(latency_lover, -0.2, 1e-12);
}

TEST(FitnessTest, BootFailureClamped) {
  PerformanceSummary defaults{1000.0, 50.0};
  PerformanceSummary failed{-1000.0,
                            std::numeric_limits<double>::infinity()};
  EXPECT_DOUBLE_EQ(Fitness(0.5, failed, defaults), kBootFailureFitness);
}

TEST(FitnessTest, TerriblePerformanceClampedToFailureFloor) {
  PerformanceSummary defaults{1000.0, 50.0};
  PerformanceSummary awful{1.0, 1e9};
  EXPECT_DOUBLE_EQ(Fitness(0.5, awful, defaults), kBootFailureFitness);
}

TEST(InstanceTypeTest, Table7HasEightTypes) {
  const auto types = Table7InstanceTypes();
  ASSERT_EQ(types.size(), 8u);
  EXPECT_EQ(types[0].name, "A");
  EXPECT_EQ(types[0].cpu_cores, 1);
  EXPECT_DOUBLE_EQ(types[0].ram_gb, 2.0);
  EXPECT_EQ(types[7].name, "H");
  EXPECT_EQ(types[7].cpu_cores, 16);
  EXPECT_DOUBLE_EQ(types[7].ram_gb, 64.0);
}

TEST(InstanceTypeTest, LookupByNameAndFallback) {
  EXPECT_EQ(InstanceTypeByName("C").cpu_cores, 4);
  EXPECT_DOUBLE_EQ(InstanceTypeByName("C").ram_gb, 12.0);
  EXPECT_EQ(InstanceTypeByName("nope").name, "F");
}

TEST(InstanceTypeTest, EvaluationInstancesMatchPaperSetup) {
  EXPECT_EQ(MySqlEvaluationInstance().cpu_cores, 8);
  EXPECT_DOUBLE_EQ(MySqlEvaluationInstance().ram_gb, 32.0);
  EXPECT_EQ(PostgresEvaluationInstance().cpu_cores, 8);
  EXPECT_DOUBLE_EQ(PostgresEvaluationInstance().ram_gb, 16.0);
  EXPECT_EQ(ProductionEvaluationInstance().cpu_cores, 4);
  EXPECT_DOUBLE_EQ(ProductionEvaluationInstance().ram_gb, 16.0);
}

class CdbInstanceTest : public ::testing::Test {
 protected:
  CdbInstanceTest()
      : catalog_(MySqlCatalog()),
        instance_(&catalog_, MySqlEvaluationInstance(), MySqlEngineTuning(),
                  42) {}
  KnobCatalog catalog_;
  CdbInstance instance_;
};

TEST_F(CdbInstanceTest, DynamicKnobChangeAvoidsRestart) {
  Configuration config = catalog_.DefaultConfiguration();
  const int io_cap = catalog_.IndexOf("innodb_io_capacity");  // dynamic
  config[static_cast<size_t>(io_cap)] = 2000;
  const DeployOutcome outcome = instance_.DeployConfiguration(config);
  EXPECT_TRUE(outcome.booted);
  EXPECT_FALSE(outcome.restarted);
  EXPECT_DOUBLE_EQ(outcome.deploy_seconds,
                   CdbInstance::kDynamicDeploySeconds);
}

TEST_F(CdbInstanceTest, StaticKnobChangeRequiresRestart) {
  Configuration config = catalog_.DefaultConfiguration();
  const int log_size = catalog_.IndexOf("innodb_log_file_size");  // static
  config[static_cast<size_t>(log_size)] = 2048;
  const DeployOutcome outcome = instance_.DeployConfiguration(config);
  EXPECT_TRUE(outcome.booted);
  EXPECT_TRUE(outcome.restarted);
  EXPECT_EQ(instance_.restarts(), 1u);
  EXPECT_DOUBLE_EQ(outcome.deploy_seconds,
                   CdbInstance::kRestartDeploySeconds +
                       CdbInstance::kWarmupSeconds);
}

TEST_F(CdbInstanceTest, FailedBootKeepsPreviousConfiguration) {
  const Configuration before = instance_.active_configuration();
  Configuration bad = before;
  bad[static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"))] =
      49152;
  const DeployOutcome outcome = instance_.DeployConfiguration(bad);
  EXPECT_FALSE(outcome.booted);
  EXPECT_EQ(instance_.active_configuration(), before);
}

TEST_F(CdbInstanceTest, StressTestWarmsInstance) {
  EXPECT_FALSE(instance_.warm());
  instance_.StressTest(workload::Tpcc());
  EXPECT_TRUE(instance_.warm());
}

TEST_F(CdbInstanceTest, CloneStartsColdWithSameConfig) {
  Configuration config = catalog_.DefaultConfiguration();
  config[static_cast<size_t>(catalog_.IndexOf("innodb_io_capacity"))] = 5000;
  instance_.DeployConfiguration(config);
  instance_.StressTest(workload::Tpcc());
  auto clone = instance_.Clone();
  EXPECT_EQ(clone->active_configuration(), instance_.active_configuration());
  EXPECT_FALSE(clone->warm());
  // Clone runs independently.
  const PerfResult result = clone->StressTest(workload::Tpcc());
  EXPECT_GT(result.throughput_tps, 0.0);
}

TEST_F(CdbInstanceTest, PointInTimeRecoveryResetsWarmState) {
  instance_.StressTest(workload::Tpcc());
  ASSERT_TRUE(instance_.warm());
  instance_.PointInTimeRecover();
  EXPECT_FALSE(instance_.warm());
}

TEST_F(CdbInstanceTest, ResizeChangesInstanceTypeAndRestarts) {
  const uint64_t restarts = instance_.restarts();
  instance_.ResizeInstance(InstanceTypeByName("H"));
  EXPECT_EQ(instance_.instance_type().name, "H");
  EXPECT_EQ(instance_.restarts(), restarts + 1);
}

}  // namespace
}  // namespace hunter::cdb
