// Golden equivalence gates for the engine-evaluation fast path.
//
// The production engine (flat intrusive LRU pool reused across runs,
// per-purpose cached Zipf samplers, hoisted + bit-exact-early-exit fixed
// point) must be observably indistinguishable — bit for bit, tolerance 0.0 —
// from the seed implementation it replaced. hunter::seedref (in
// seed_engine_ref.h) carries the seed replicas; every test here drives both
// sides from identically seeded Rngs and asserts exact equality on outputs
// AND on the post-run RNG state (so the number and order of draws is pinned,
// not just the arithmetic).

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cdb/instance_type.h"
#include "cdb/knob_catalog.h"
#include "cdb/simulated_engine.h"
#include "cdb/workload_profile.h"
#include "common/rng.h"
#include "tests/cdb/seed_engine_ref.h"
#include "workload/workloads.h"

namespace hunter::cdb {
namespace {

// Asserts bit-level equality of two PerfResults: scalars, the full latent
// vector, and all 63 metrics. EXPECT_EQ on doubles is exact comparison, the
// contract the fast path is gated on (engine outputs never contain NaNs;
// boot failures carry matching infinities).
void ExpectBitIdentical(const PerfResult& seed, const PerfResult& fast,
                        const std::string& context) {
  EXPECT_EQ(seed.boot_failed, fast.boot_failed) << context;
  EXPECT_EQ(seed.throughput_tps, fast.throughput_tps) << context;
  EXPECT_EQ(seed.latency_p95_ms, fast.latency_p95_ms) << context;
  EXPECT_EQ(seed.latency_p99_ms, fast.latency_p99_ms) << context;
  ASSERT_EQ(seed.latents.size(), fast.latents.size()) << context;
  for (size_t i = 0; i < seed.latents.size(); ++i) {
    EXPECT_EQ(seed.latents[i], fast.latents[i]) << context << " latent " << i;
  }
  ASSERT_EQ(seed.metrics.size(), fast.metrics.size()) << context;
  for (size_t i = 0; i < seed.metrics.size(); ++i) {
    EXPECT_EQ(seed.metrics[i], fast.metrics[i]) << context << " metric " << i;
  }
}

struct EngineFixture {
  KnobCatalog catalog;
  SimulatedEngine engine;
  seedref::SeedEngine seed;

  EngineFixture(KnobCatalog cat, const InstanceType& instance,
                const EngineTuning& tuning)
      : catalog(std::move(cat)),
        engine(&catalog, instance, tuning),
        seed(&catalog, instance, tuning) {}
};

// Runs both engines over the same (config, workload, warmth, seed) and
// asserts bit-identity of results and post-run RNG fingerprints.
void CheckRun(EngineFixture* fx, const Configuration& config,
              const WorkloadProfile& workload, bool warm, uint64_t rng_seed,
              const std::string& context) {
  common::Rng seed_rng(rng_seed);
  common::Rng fast_rng(rng_seed);
  const PerfResult want = fx->seed.Run(config, workload, warm, &seed_rng);
  const PerfResult got = fx->engine.Run(config, workload, warm, &fast_rng);
  ExpectBitIdentical(want, got, context);
  EXPECT_EQ(seed_rng.StateFingerprint(), fast_rng.StateFingerprint())
      << context << " (draw count/order diverged)";
}

// Random raw configuration: uniform in normalized space, snapped to each
// knob's domain by DenormalizeConfiguration.
Configuration RandomConfig(const KnobCatalog& catalog, common::Rng* rng) {
  std::vector<double> normalized(catalog.size());
  for (double& v : normalized) v = rng->Uniform();
  return catalog.DenormalizeConfiguration(normalized);
}

TEST(EngineFastPathTest, DefaultsMatchSeedAcrossWorkloadsAndWarmth) {
  EngineFixture mysql(MySqlCatalog(), MySqlEvaluationInstance(),
                      MySqlEngineTuning());
  EngineFixture postgres(PostgresCatalog(), PostgresEvaluationInstance(),
                         PostgresEngineTuning());
  uint64_t seed = 11;
  for (const WorkloadProfile& wl : workload::AllStandardWorkloads()) {
    for (const bool warm : {false, true}) {
      CheckRun(&mysql, mysql.catalog.DefaultConfiguration(), wl, warm, seed,
               "mysql/" + wl.name + (warm ? "/warm" : "/cold"));
      CheckRun(&postgres, postgres.catalog.DefaultConfiguration(), wl, warm,
               seed, "postgres/" + wl.name + (warm ? "/warm" : "/cold"));
      ++seed;
    }
  }
}

TEST(EngineFastPathTest, RandomConfigsMatchSeedBitExact) {
  EngineFixture mysql(MySqlCatalog(), MySqlEvaluationInstance(),
                      MySqlEngineTuning());
  common::Rng config_rng(2026);
  const WorkloadProfile tpcc = workload::Tpcc();
  const WorkloadProfile rw = workload::SysbenchReadWrite();
  for (int i = 0; i < 24; ++i) {
    const Configuration config = RandomConfig(mysql.catalog, &config_rng);
    const WorkloadProfile& wl = (i % 2 == 0) ? tpcc : rw;
    CheckRun(&mysql, config, wl, /*warm=*/i % 3 == 0,
             1000 + static_cast<uint64_t>(i),
             "random config " + std::to_string(i));
  }
}

// Fixed-point corner cases: the stall/burst branches, the checkpoint-storm
// penalty (max_dirty_pct > 90), capped thread concurrency, deadlock
// detection off, and starved io_capacity all steer the iteration the
// early-exit rule must not perturb.
TEST(EngineFastPathTest, FixedPointCornersMatchSeed) {
  EngineFixture fx(MySqlCatalog(), MySqlEvaluationInstance(),
                   MySqlEngineTuning());
  auto set = [&fx](Configuration* config, const char* name, double value) {
    const int index = fx.catalog.IndexOf(name);
    ASSERT_GE(index, 0) << name;
    (*config)[static_cast<size_t>(index)] = value;
  };

  const WorkloadProfile wl = workload::SysbenchWriteOnly();
  Configuration storm = fx.catalog.DefaultConfiguration();
  set(&storm, "innodb_max_dirty_pages_pct", 97.0);
  set(&storm, "innodb_io_capacity", 100.0);
  CheckRun(&fx, storm, wl, false, 7, "dirty storm");

  Configuration starved = fx.catalog.DefaultConfiguration();
  set(&starved, "innodb_io_capacity", 100.0);
  set(&starved, "innodb_io_capacity_max", 120.0);
  set(&starved, "innodb_lru_scan_depth", 256.0);
  CheckRun(&fx, starved, wl, false, 8, "starved flushing");

  Configuration capped = fx.catalog.DefaultConfiguration();
  set(&capped, "innodb_thread_concurrency", 8.0);
  set(&capped, "innodb_deadlock_detect", 0.0);
  set(&capped, "innodb_lock_wait_timeout", 1.0);
  CheckRun(&fx, capped, wl, true, 9, "capped concurrency, no detect");

  Configuration burst = fx.catalog.DefaultConfiguration();
  set(&burst, "innodb_io_capacity_max", 20000.0);
  set(&burst, "innodb_lru_scan_depth", 8192.0);
  CheckRun(&fx, burst, workload::Tpcc(), false, 10, "oversized cleaning");
}

TEST(EngineFastPathTest, BootFailureMatchesSeed) {
  EngineFixture fx(MySqlCatalog(), MySqlEvaluationInstance(),
                   MySqlEngineTuning());
  Configuration config = fx.catalog.DefaultConfiguration();
  const int bp = fx.catalog.IndexOf("innodb_buffer_pool_size");
  ASSERT_GE(bp, 0);
  config[static_cast<size_t>(bp)] = 49152.0;  // ~48 GB on a 32 GB box
  CheckRun(&fx, config, workload::Tpcc(), false, 21, "boot failure");
}

// Pool/sampler reuse must be stateless: the N-th Run on a long-lived engine
// (slabs warm, Zipf constants cached) must equal the same Run on a factory-
// fresh engine given the same RNG state. This is the gate on the "reuse one
// pool via Reset()" half of the fast path.
TEST(EngineFastPathTest, SlabAndSamplerReuseIsObservablyStateless) {
  const KnobCatalog catalog = MySqlCatalog();
  const Configuration defaults = catalog.DefaultConfiguration();
  const WorkloadProfile tpcc = workload::Tpcc();
  const WorkloadProfile ro = workload::SysbenchReadOnly();

  SimulatedEngine reused(&catalog, MySqlEvaluationInstance(),
                         MySqlEngineTuning());
  common::Rng rng(77);
  const uint64_t resets0 = reused.pool_resets();
  const uint64_t reuses0 = reused.pool_slab_reuses();
  // First run warms the slabs and both Zipf tables (Sysbench RO has the
  // finer page granularity, hence the larger pool)...
  (void)reused.Run(defaults, ro, false, &rng);
  const common::Rng rng_checkpoint = rng;  // same state for the fresh engine
  // ...second run (different workload: smaller pool capacity, different Zipf
  // parameters) executes entirely on reused slabs.
  const PerfResult via_reuse = reused.Run(defaults, tpcc, true, &rng);
  EXPECT_EQ(reused.pool_resets() - resets0, 2u);
  EXPECT_GE(reused.pool_slab_reuses() - reuses0, 1u);

  SimulatedEngine fresh(&catalog, MySqlEvaluationInstance(),
                        MySqlEngineTuning());
  common::Rng fresh_rng = rng_checkpoint;
  const PerfResult via_fresh = fresh.Run(defaults, tpcc, true, &fresh_rng);
  ExpectBitIdentical(via_fresh, via_reuse, "reused vs fresh engine");
  EXPECT_EQ(rng.StateFingerprint(), fresh_rng.StateFingerprint());
}

}  // namespace
}  // namespace hunter::cdb
