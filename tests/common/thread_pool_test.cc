#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 285);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  // Regression: submitting after shutdown used to enqueue a task no worker
  // would ever run, so the returned future's get() hung forever.
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_THROW(pool.Submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndDrainsQueue) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor must finish all queued work before joining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace hunter::common
