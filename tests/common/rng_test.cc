#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(1000, 0.8), 1000u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(31);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(10000, 0.9) < 100) ++low;  // top 1% of keys
  }
  // With theta=0.9 the head should absorb far more than the uniform 1%.
  EXPECT_GT(static_cast<double>(low) / n, 0.2);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(37);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 0.0) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsIsUniform) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // Forking perturbs the parent; child stream differs from parent stream.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

// ---------------------------------------------------------------------------
// Zipf fast-path equivalence. SeedFormulaZipf below is the pre-fast-path
// Rng::Zipf verbatim (per-Rng constants cache, per-draw std::pow(0.5, theta)
// in the rank mapping); the cached implementation must reproduce its stream
// bit for bit — same draws consumed, same ranks returned — across every
// (n, theta) cache transition and the degenerate paths.
// ---------------------------------------------------------------------------

struct SeedFormulaZipfState {
  uint64_t n = 0;
  double theta = -1.0;
  double zetan = 0.0;
  double alpha = 0.0;
  double eta = 0.0;
};

uint64_t SeedFormulaZipf(SeedFormulaZipfState* s, Rng* rng, uint64_t n,
                         double theta) {
  if (n <= 1 || theta <= 0.0) return n == 0 ? 0 : rng->NextU64() % n;
  if (n != s->n || theta != s->theta) {
    s->n = n;
    s->theta = theta;
    constexpr uint64_t kExactTerms = 16384;
    double zetan = 0.0;
    const uint64_t exact = std::min(n, kExactTerms);
    for (uint64_t i = 1; i <= exact; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (n > exact && theta != 1.0) {
      const double a = static_cast<double>(exact);
      const double b = static_cast<double>(n);
      zetan += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
               (1.0 - theta);
    }
    s->zetan = zetan;
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
    s->alpha = 1.0 / (1.0 - theta);
    s->eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zetan);
  }
  const double u = rng->Uniform();
  const double uz = u * s->zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, s->theta)) return 1;
  const double rank = static_cast<double>(s->n) *
                      std::pow(s->eta * u - s->eta + 1.0, s->alpha);
  uint64_t result = static_cast<uint64_t>(rank);
  return result >= s->n ? s->n - 1 : result;
}

TEST(RngTest, ZipfBitIdenticalToSeedFormulaAcrossCacheTransitions) {
  // Alternating (n, theta) pairs force a constants recompute on nearly every
  // draw block, exercising both sides of the cache (small exact-sum n, large
  // integral-tail n) plus the degenerate paths.
  const struct {
    uint64_t n;
    double theta;
  } params[] = {
      {4096, 0.9},    {1u << 24, 0.8}, {4096, 0.9}, {100, 0.99},
      {1, 0.9},       {64, 0.0},       {0, 0.5},    {1u << 24, 0.8},
      {16384, 1.2},   {16385, 0.7},
  };
  Rng seed_rng(2024);
  Rng fast_rng(2024);
  SeedFormulaZipfState state;
  for (int round = 0; round < 32; ++round) {
    for (const auto& p : params) {
      for (int i = 0; i < 8; ++i) {
        const uint64_t want = SeedFormulaZipf(&state, &seed_rng, p.n, p.theta);
        const uint64_t got = fast_rng.Zipf(p.n, p.theta);
        ASSERT_EQ(want, got)
            << "n=" << p.n << " theta=" << p.theta << " round " << round;
      }
    }
  }
  // Same draw count and order on both sides.
  EXPECT_EQ(seed_rng.NextU64(), fast_rng.NextU64());
}

TEST(RngTest, ZipfTableSampleMatchesRngZipfDrawForDraw) {
  Rng direct_rng(7);
  Rng table_rng(7);
  for (const double theta : {0.0, 0.6, 0.99}) {
    for (const uint64_t n : {uint64_t{1}, uint64_t{512}, uint64_t{1} << 20}) {
      ZipfTable table(n, theta);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(direct_rng.Zipf(n, theta), table.Sample(&table_rng))
            << "n=" << n << " theta=" << theta;
      }
    }
  }
  EXPECT_EQ(direct_rng.NextU64(), table_rng.NextU64());
}

TEST(RngTest, ZipfTableFillMatchesSequentialSample) {
  ZipfTable table(8192, 0.85);
  Rng fill_rng(9);
  Rng sample_rng(9);
  std::vector<uint64_t> filled(1000);
  table.Fill(&fill_rng, filled.data(), filled.size());
  for (size_t i = 0; i < filled.size(); ++i) {
    ASSERT_EQ(filled[i], table.Sample(&sample_rng)) << "draw " << i;
  }
}

TEST(RngTest, ZipfTableRebindIsNoOpOnSameParameters) {
  ZipfTable table(4096, 0.9);
  Rng a(31);
  Rng b(31);
  const uint64_t before = table.Sample(&a);
  table.Rebind(4096, 0.9);  // must not perturb the mapping
  EXPECT_EQ(before, table.Sample(&b));
}

}  // namespace
}  // namespace hunter::common
