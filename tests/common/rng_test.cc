#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Zipf(1000, 0.8), 1000u);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(31);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(10000, 0.9) < 100) ++low;  // top 1% of keys
  }
  // With theta=0.9 the head should absorb far more than the uniform 1%.
  EXPECT_GT(static_cast<double>(low) / n, 0.2);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(37);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 0.0) < 100) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.1, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsIsUniform) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // Forking perturbs the parent; child stream differs from parent stream.
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

}  // namespace
}  // namespace hunter::common
