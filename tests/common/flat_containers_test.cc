#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_hash.h"
#include "common/flat_lru.h"
#include "common/rng.h"

namespace hunter::common {
namespace {

TEST(FlatHashMap64Test, InsertFindErase) {
  FlatHashMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);

  map.At(42) = 7;
  map.At(43) = 8;
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7);
  EXPECT_EQ(*map.Find(43), 8);
  EXPECT_EQ(map.size(), 2u);

  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Erase(42));
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(43), 8);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap64Test, AtDefaultInsertsAndIsStableAcrossGrowth) {
  FlatHashMap64<uint64_t> map;
  for (uint64_t k = 0; k < 1000; ++k) map.At(k) = k * 3;
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k * 3);
  }
  EXPECT_EQ(map.Find(1000), nullptr);
}

TEST(FlatHashMap64Test, MatchesStdMapUnderRandomOps) {
  FlatHashMap64<uint32_t> flat;
  std::map<uint64_t, uint32_t> ref;
  Rng rng(0xF1A7);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextU64() % 257;  // force collisions + reuse
    const double which = rng.Uniform();
    if (which < 0.5) {
      const uint32_t value = static_cast<uint32_t>(rng.NextU64());
      flat.At(key) = value;
      ref[key] = value;
    } else if (which < 0.8) {
      const uint32_t* found = flat.Find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end()) << "op " << op;
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    } else {
      EXPECT_EQ(flat.Erase(key), ref.erase(key) > 0) << "op " << op;
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
}

TEST(FlatHashMap64Test, ResetReusesSlab) {
  FlatHashMap64<int> map;
  EXPECT_FALSE(map.Reset(100));  // first sizing allocates
  for (uint64_t k = 0; k < 100; ++k) map.At(k) = 1;
  EXPECT_TRUE(map.Reset(100));  // same size: slab reused
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_TRUE(map.Reset(10));   // smaller: still reused
  EXPECT_FALSE(map.Reset(100000));  // bigger: must grow
}

TEST(FlatLruTest, InsertEvictOrder) {
  FlatLru lru(3);
  lru.InsertFront(10);
  lru.InsertFront(11);
  lru.InsertFront(12);
  EXPECT_EQ(lru.size(), 3u);
  EXPECT_EQ(lru.key(lru.front()), 12u);
  EXPECT_EQ(lru.key(lru.back()), 10u);

  lru.MoveToFront(lru.Find(10));  // 10 becomes MRU; 11 is now LRU
  const uint32_t victim = lru.EvictBack();
  EXPECT_EQ(lru.key(victim), 11u);
  EXPECT_EQ(lru.Find(11), FlatLru::kNil);
  EXPECT_NE(lru.Find(10), FlatLru::kNil);
  EXPECT_EQ(lru.size(), 2u);
}

TEST(FlatLruTest, InsertBackIsColdest) {
  FlatLru lru(4);
  lru.InsertFront(1);
  lru.InsertBack(2);
  EXPECT_EQ(lru.key(lru.back()), 2u);
  EXPECT_EQ(lru.key(lru.EvictBack()), 2u);
}

TEST(FlatLruTest, WalkColdToWarm) {
  FlatLru lru(4);
  for (uint64_t k = 0; k < 4; ++k) lru.InsertFront(k);
  std::vector<uint64_t> cold_to_warm;
  for (uint32_t slot = lru.back(); slot != FlatLru::kNil;
       slot = lru.Warmer(slot)) {
    cold_to_warm.push_back(lru.key(slot));
  }
  EXPECT_EQ(cold_to_warm, (std::vector<uint64_t>{0, 1, 2, 3}));
}

TEST(FlatLruTest, ResetReusesSlabAndClears) {
  FlatLru lru(8);
  for (uint64_t k = 0; k < 8; ++k) lru.InsertFront(k);
  EXPECT_TRUE(lru.Reset(8));
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.front(), FlatLru::kNil);
  EXPECT_EQ(lru.Find(3), FlatLru::kNil);
  EXPECT_TRUE(lru.Reset(4));    // shrink reuses
  EXPECT_FALSE(lru.Reset(16));  // growth reallocates
  for (uint64_t k = 0; k < 16; ++k) lru.InsertFront(k);
  EXPECT_EQ(lru.size(), 16u);
}

// Mirror a reference LRU (deque + map) through a random mixed workload.
TEST(FlatLruTest, MatchesReferenceUnderRandomOps) {
  constexpr uint64_t kCapacity = 13;
  FlatLru lru(kCapacity);
  std::deque<uint64_t> ref;  // front = MRU
  Rng rng(0x10C4);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextU64() % 40;
    const uint32_t slot = lru.Find(key);
    const auto it = std::find(ref.begin(), ref.end(), key);
    ASSERT_EQ(slot != FlatLru::kNil, it != ref.end()) << "op " << op;
    if (slot != FlatLru::kNil) {
      lru.MoveToFront(slot);
      ref.erase(it);
      ref.push_front(key);
    } else {
      if (lru.size() >= kCapacity) {
        EXPECT_EQ(lru.key(lru.EvictBack()), ref.back());
        ref.pop_back();
      }
      lru.InsertFront(key);
      ref.push_front(key);
    }
    ASSERT_EQ(lru.size(), ref.size());
    ASSERT_EQ(lru.key(lru.front()), ref.front());
    ASSERT_EQ(lru.key(lru.back()), ref.back());
  }
}

}  // namespace
}  // namespace hunter::common
