#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(Mean({}), 0.0); }

TEST(StatsTest, VarianceOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(Variance({5.0, 5.0, 5.0}), 0.0);
}

TEST(StatsTest, VarianceOfKnownValues) {
  // Sample variance (n-1 denominator) of {2,4,4,4,5,5,7,9} is 32/7.
  EXPECT_DOUBLE_EQ(Variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0));
}

TEST(StatsTest, VarianceAgreesWithRunningStat) {
  // Regression: Variance used the population (n) denominator while
  // RunningStat::variance used the sample (n-1) denominator.
  const std::vector<double> v = {1.5, -2.0, 3.25, 0.0, 7.5, 4.0};
  RunningStat rs;
  for (double x : v) rs.Add(x);
  EXPECT_NEAR(Variance(v), rs.variance(), 1e-12);
  EXPECT_NEAR(StdDev(v), rs.stddev(), 1e-12);
}

TEST(StatsTest, PercentileEndpoints) {
  std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  std::vector<double> v = {30, 10, 40, 20};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
}

TEST(StatsTest, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 95), 0.0);
}

TEST(StatsTest, PearsonPerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {2, 3, 4}), 0.0);
}

TEST(RunningStatTest, MatchesBatchStatistics) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStat rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance uses n-1: 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatTest, EmptyExtremaAreNaNNotZero) {
  // Regression: min()/max() used to return 0.0 before any Add(), which is
  // indistinguishable from a genuine observation of 0.0 in metric
  // snapshots. The empty case must be explicit.
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_TRUE(std::isnan(rs.min()));
  EXPECT_TRUE(std::isnan(rs.max()));
  // Negative-only samples are the case the old sentinel got wrong.
  rs.Add(-4.5);
  EXPECT_DOUBLE_EQ(rs.min(), -4.5);
  EXPECT_DOUBLE_EQ(rs.max(), -4.5);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat rs;
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
}

}  // namespace
}  // namespace hunter::common
