#include "common/fault_injector.h"

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (uint64_t op = 0; op < 100; ++op) {
    EXPECT_FALSE(injector.TransientDeployFailure(0, op));
    EXPECT_FALSE(injector.CrashesDuringRun(0, op));
    EXPECT_DOUBLE_EQ(injector.ExecutionSlowdown(0, op), 1.0);
    EXPECT_FALSE(injector.DiesPermanently(0, op));
  }
}

TEST(FaultInjectorTest, DeterministicAcrossInstancesAndCallOrder) {
  FaultInjectorOptions options;
  options.seed = 1234;
  options.transient_deploy_failure_rate = 0.2;
  options.crash_rate = 0.1;
  options.straggler_rate = 0.15;
  const FaultInjector a(options);
  const FaultInjector b(options);
  for (int clone = 0; clone < 4; ++clone) {
    for (uint64_t op = 0; op < 200; ++op) {
      EXPECT_EQ(a.TransientDeployFailure(clone, op),
                b.TransientDeployFailure(clone, op));
      EXPECT_EQ(a.CrashesDuringRun(clone, op), b.CrashesDuringRun(clone, op));
      EXPECT_DOUBLE_EQ(a.ExecutionSlowdown(clone, op),
                       b.ExecutionSlowdown(clone, op));
      EXPECT_DOUBLE_EQ(a.CrashFraction(clone, op), b.CrashFraction(clone, op));
    }
  }
}

TEST(FaultInjectorTest, RatesApproximatelyRespected) {
  FaultInjectorOptions options;
  options.seed = 7;
  options.transient_deploy_failure_rate = 0.2;
  const FaultInjector injector(options);
  int failures = 0;
  const int n = 20000;
  for (int op = 0; op < n; ++op) {
    if (injector.TransientDeployFailure(1, static_cast<uint64_t>(op))) {
      ++failures;
    }
  }
  const double rate = static_cast<double>(failures) / n;
  EXPECT_GT(rate, 0.17);
  EXPECT_LT(rate, 0.23);
}

TEST(FaultInjectorTest, IndependentStreamsPerClone) {
  FaultInjectorOptions options;
  options.seed = 99;
  options.transient_deploy_failure_rate = 0.5;
  const FaultInjector injector(options);
  int differing = 0;
  for (uint64_t op = 0; op < 256; ++op) {
    if (injector.TransientDeployFailure(0, op) !=
        injector.TransientDeployFailure(1, op)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);  // clone 1 is not a replay of clone 0
}

TEST(FaultInjectorTest, PermanentDeathHonorsSchedule) {
  FaultInjectorOptions options;
  options.seed = 5;
  options.permanent_deaths = {{3, 5}};
  const FaultInjector injector(options);
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(injector.DiesPermanently(3, 4));
  EXPECT_TRUE(injector.DiesPermanently(3, 5));
  EXPECT_TRUE(injector.DiesPermanently(3, 9));  // dead stays dead
  EXPECT_FALSE(injector.DiesPermanently(2, 5));
  EXPECT_FALSE(injector.DiesPermanently(4, 100));
}

TEST(FaultInjectorTest, SlowdownIsBinaryAndBothValuesOccur) {
  FaultInjectorOptions options;
  options.seed = 11;
  options.straggler_rate = 0.5;
  options.straggler_slowdown = 8.0;
  const FaultInjector injector(options);
  int straggled = 0, normal = 0;
  for (uint64_t op = 0; op < 200; ++op) {
    const double slowdown = injector.ExecutionSlowdown(2, op);
    if (slowdown == 8.0) {
      ++straggled;
    } else {
      EXPECT_DOUBLE_EQ(slowdown, 1.0);
      ++normal;
    }
  }
  EXPECT_GT(straggled, 0);
  EXPECT_GT(normal, 0);
}

TEST(FaultInjectorTest, CrashFractionStaysInsideRun) {
  FaultInjectorOptions options;
  options.seed = 21;
  options.crash_rate = 1.0;
  const FaultInjector injector(options);
  for (uint64_t op = 0; op < 500; ++op) {
    const double fraction = injector.CrashFraction(0, op);
    EXPECT_GT(fraction, 0.0);
    EXPECT_LT(fraction, 1.0);
  }
}

}  // namespace
}  // namespace hunter::common
