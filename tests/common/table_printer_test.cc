#include "common/table_printer.h"

#include <locale>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

// A numpunct facet that renders decimals the way e.g. de_DE does: comma
// decimal point, dot thousands separator. Used to prove the emitters are
// pinned to the classic locale rather than whatever the process inherits.
class CommaNumpunct : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

class ScopedGlobalCommaLocale {
 public:
  ScopedGlobalCommaLocale()
      : saved_(std::locale::global(
            std::locale(std::locale::classic(), new CommaNumpunct))) {}
  ~ScopedGlobalCommaLocale() { std::locale::global(saved_); }

 private:
  std::locale saved_;
};

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| x |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"h"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"r"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatDoubleTest, IgnoresHostileGlobalLocale) {
  // Regression: FormatDouble went through snprintf("%.*f"), which honours
  // the process locale — under a comma-decimal locale report tables (and
  // anything diffing them) would change byte-for-byte.
  ScopedGlobalCommaLocale comma_locale;
  EXPECT_EQ(FormatDouble(1234.5, 1), "1234.5");
  EXPECT_EQ(FormatDouble(-0.25, 2), "-0.25");
}

}  // namespace
}  // namespace hunter::common
