#include "common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace hunter::common {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| x |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter table({"h"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"r"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace hunter::common
