#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workload/dependency_graph.h"
#include "workload/workload_generator.h"
#include "workload/workloads.h"

namespace hunter::workload {
namespace {

TEST(WorkloadsTest, Table2RatiosAndSizes) {
  EXPECT_DOUBLE_EQ(SysbenchReadOnly().read_fraction, 1.0);   // 1:0
  EXPECT_DOUBLE_EQ(SysbenchWriteOnly().read_fraction, 0.0);  // 0:1
  EXPECT_DOUBLE_EQ(SysbenchReadWrite().read_fraction, 0.5);  // 1:1
  EXPECT_NEAR(Tpcc().read_fraction, 19.0 / 29.0, 1e-12);     // 19:10
  EXPECT_DOUBLE_EQ(SysbenchReadOnly().data_size_gb, 8.0);
  EXPECT_DOUBLE_EQ(Tpcc().data_size_gb, 8.97);
  EXPECT_DOUBLE_EQ(Production(true).data_size_gb, 256.0);
  EXPECT_EQ(SysbenchReadWrite().client_threads, 512);
  EXPECT_EQ(Tpcc().client_threads, 32);
}

TEST(WorkloadsTest, RwRatioVariant) {
  const auto four_to_one = SysbenchReadWriteRatio(4.0);
  EXPECT_NEAR(four_to_one.read_fraction, 0.8, 1e-12);
  EXPECT_LT(SysbenchReadWriteRatio(1.0).read_fraction,
            four_to_one.read_fraction);
}

TEST(WorkloadsTest, ProductionDriftIsMoreWriteHeavy) {
  const auto morning = Production(true);
  const auto evening = Production(false);
  EXPECT_GT(morning.read_fraction, evening.read_fraction);
  EXPECT_NE(morning.zipf_theta, evening.zipf_theta);
  EXPECT_NE(morning.name, evening.name);
}

TEST(WorkloadsTest, ScaleDataSizeScalesVolume) {
  const auto base = SysbenchReadWrite();
  const auto scaled = ScaleDataSize(base, 10.0);
  EXPECT_DOUBLE_EQ(scaled.data_size_gb, 80.0);
  EXPECT_EQ(scaled.hot_rows, base.hot_rows * 10);
}

TEST(WorkloadsTest, AllStandardWorkloadsNamed) {
  const auto all = AllStandardWorkloads();
  EXPECT_EQ(all.size(), 5u);
  std::set<std::string> names;
  for (const auto& w : all) names.insert(w.name);
  EXPECT_EQ(names.size(), 5u);
}

TEST(TraceTest, GeneratesRequestedShape) {
  common::Rng rng(1);
  const auto trace = GenerateTrace(100, 10000, 0.8, 5, 3, &rng);
  ASSERT_EQ(trace.size(), 100u);
  double reads = 0, writes = 0;
  for (const auto& txn : trace) {
    reads += static_cast<double>(txn.read_set.size());
    writes += static_cast<double>(txn.write_set.size());
  }
  EXPECT_NEAR(reads / 100, 5.0, 1.0);
  EXPECT_NEAR(writes / 100, 3.0, 1.0);
}

TEST(DependencyGraphTest, PaperFigure3Example) {
  // Fig. 3: A1 and A2 independent; B1, B2 depend on A1; B3 depends on A1
  // and A2. Model with row conflicts: A1 writes {1,2}, A2 writes {3},
  // B1 reads {1}, B2 reads {2}, B3 reads {2,3}... B3 needs A1 and A2.
  std::vector<TracedTransaction> trace(5);
  trace[0].id = 0;  // A1
  trace[0].write_set = {1, 2};
  trace[1].id = 1;  // A2
  trace[1].write_set = {3};
  trace[2].id = 2;  // B1
  trace[2].read_set = {1};
  trace[3].id = 3;  // B2
  trace[3].read_set = {2};
  trace[4].id = 4;  // B3
  trace[4].read_set = {2, 3};
  TxnDependencyGraph graph(trace);
  const auto waves = graph.WaveSchedule();
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[0], (std::vector<uint32_t>{0, 1}));
  std::vector<uint32_t> wave1 = waves[1];
  std::sort(wave1.begin(), wave1.end());
  EXPECT_EQ(wave1, (std::vector<uint32_t>{2, 3, 4}));
  EXPECT_EQ(graph.CriticalPathLength(), 2u);
  EXPECT_DOUBLE_EQ(graph.EffectiveParallelism(), 2.5);
}

TEST(DependencyGraphTest, NoConflictsMeansOneWave) {
  std::vector<TracedTransaction> trace(10);
  for (size_t i = 0; i < 10; ++i) {
    trace[i].id = i;
    trace[i].write_set = {100 + i};  // disjoint rows
  }
  TxnDependencyGraph graph(trace);
  EXPECT_EQ(graph.num_edges(), 0u);
  EXPECT_EQ(graph.CriticalPathLength(), 1u);
  EXPECT_DOUBLE_EQ(graph.EffectiveParallelism(), 10.0);
}

TEST(DependencyGraphTest, WriteChainSerializes) {
  std::vector<TracedTransaction> trace(5);
  for (size_t i = 0; i < 5; ++i) {
    trace[i].id = i;
    trace[i].write_set = {7};  // all write the same row
  }
  TxnDependencyGraph graph(trace);
  EXPECT_EQ(graph.CriticalPathLength(), 5u);
  EXPECT_DOUBLE_EQ(graph.EffectiveParallelism(), 1.0);
}

TEST(DependencyGraphTest, ReadersShareAWaveAfterWriter) {
  std::vector<TracedTransaction> trace(4);
  trace[0].write_set = {1};
  trace[1].read_set = {1};
  trace[2].read_set = {1};
  trace[3].read_set = {1};
  for (size_t i = 0; i < 4; ++i) trace[i].id = i;
  TxnDependencyGraph graph(trace);
  const auto waves = graph.WaveSchedule();
  ASSERT_EQ(waves.size(), 2u);
  EXPECT_EQ(waves[1].size(), 3u);  // readers run concurrently
}

TEST(DependencyGraphTest, AntiDependencyOrdersWriteAfterRead) {
  // T0 reads row 5, T1 writes row 5: T1 must wait for T0.
  std::vector<TracedTransaction> trace(2);
  trace[0].id = 0;
  trace[0].read_set = {5};
  trace[1].id = 1;
  trace[1].write_set = {5};
  TxnDependencyGraph graph(trace);
  EXPECT_EQ(graph.CriticalPathLength(), 2u);
  EXPECT_EQ(graph.parent_count(1), 1u);
}

TEST(DependencyGraphTest, EveryTransactionScheduledExactlyOnce) {
  common::Rng rng(3);
  const auto trace = GenerateTrace(500, 2000, 0.9, 4, 4, &rng);
  TxnDependencyGraph graph(trace);
  const auto waves = graph.WaveSchedule();
  std::set<uint32_t> seen;
  size_t total = 0;
  for (const auto& wave : waves) {
    for (uint32_t txn : wave) seen.insert(txn);
    total += wave.size();
  }
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(seen.size(), 500u);
}

TEST(DependencyGraphTest, SkewReducesParallelism) {
  common::Rng rng_a(4), rng_b(4);
  const auto uniform = GenerateTrace(400, 100000, 0.0, 2, 2, &rng_a);
  const auto skewed = GenerateTrace(400, 1000, 0.95, 2, 2, &rng_b);
  EXPECT_GT(TxnDependencyGraph(uniform).EffectiveParallelism(),
            TxnDependencyGraph(skewed).EffectiveParallelism());
}

TEST(WorkloadGeneratorTest, BuildsReplayProfileFromWindow) {
  common::Rng rng(5);
  CaptureWindow window;
  window.num_txns = 1000;
  window.reads_per_txn = 6;
  window.writes_per_txn = 2;
  const auto generated =
      WorkloadGenerator::Build(Production(true), window, &rng);
  EXPECT_GT(generated.dag_parallelism, 1.0);
  EXPECT_GE(generated.profile.max_replay_parallelism, 1.0);
  EXPECT_NEAR(generated.profile.read_fraction, 0.75, 1e-9);
  EXPECT_NE(generated.profile.name.find("_replay"), std::string::npos);
}

TEST(WorkloadGeneratorTest, DagBeatsArrivalOrderReplay) {
  common::Rng rng(6);
  CaptureWindow window;
  window.num_txns = 2000;
  const auto generated =
      WorkloadGenerator::Build(Production(true), window, &rng);
  // The DAG exposes concurrency the naive arrival-order replay (1-at-a-time)
  // cannot.
  EXPECT_GT(generated.dag_parallelism,
            generated.arrival_order_parallelism);
}


TEST(DependencyGraphTest, ScheduleRespectsEveryEdge) {
  // Property: for random traces, every edge (parent -> child) must place
  // the parent in a strictly earlier wave than the child.
  for (uint64_t seed : {11u, 12u, 13u}) {
    common::Rng rng(seed);
    const auto trace = GenerateTrace(300, 500, 0.9, 3, 3, &rng);
    TxnDependencyGraph graph(trace);
    const auto waves = graph.WaveSchedule();
    std::vector<size_t> wave_of(trace.size(), 0);
    for (size_t w = 0; w < waves.size(); ++w) {
      for (uint32_t txn : waves[w]) wave_of[txn] = w;
    }
    for (size_t parent = 0; parent < trace.size(); ++parent) {
      for (uint32_t child : graph.children(parent)) {
        EXPECT_LT(wave_of[parent], wave_of[child])
            << "edge " << parent << " -> " << child << " seed " << seed;
      }
    }
  }
}

TEST(DependencyGraphTest, EdgesOnlyPointForward) {
  common::Rng rng(14);
  const auto trace = GenerateTrace(200, 300, 0.8, 4, 4, &rng);
  TxnDependencyGraph graph(trace);
  for (uint32_t parent = 0; parent < trace.size(); ++parent) {
    for (uint32_t child : graph.children(parent)) {
      EXPECT_GT(child, parent);  // acyclic by construction
    }
  }
}

// Reference edge builder: the construction algorithm as originally written
// (associative maps for last_writer/readers_since, a per-transaction seen
// set for parent dedupe). Edge emission order depends only on point lookups
// in trace order — never on container iteration — so the flat-container
// graph must reproduce this edge list byte for byte.
std::vector<std::vector<uint32_t>> ReferenceChildren(
    const std::vector<TracedTransaction>& trace) {
  const size_t n = trace.size();
  std::vector<std::vector<uint32_t>> children(n);
  std::map<uint64_t, uint32_t> last_writer;
  std::map<uint64_t, std::vector<uint32_t>> readers_since;
  for (uint32_t i = 0; i < n; ++i) {
    std::set<uint32_t> parents;
    auto add_edge = [&](uint32_t from, uint32_t to) {
      if (from == to) return;
      if (!parents.insert(from).second) return;
      children[from].push_back(to);
    };
    for (uint64_t row : trace[i].read_set) {
      auto writer = last_writer.find(row);
      if (writer != last_writer.end()) add_edge(writer->second, i);
    }
    for (uint64_t row : trace[i].write_set) {
      auto writer = last_writer.find(row);
      if (writer != last_writer.end()) add_edge(writer->second, i);
      auto readers = readers_since.find(row);
      if (readers != readers_since.end()) {
        for (uint32_t reader : readers->second) add_edge(reader, i);
      }
    }
    for (uint64_t row : trace[i].write_set) {
      last_writer[row] = i;
      readers_since[row].clear();
    }
    for (uint64_t row : trace[i].read_set) {
      readers_since[row].push_back(i);
    }
  }
  return children;
}

TEST(DependencyGraphTest, FlatContainersEmitByteIdenticalEdgeOrder) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    common::Rng rng(seed);
    // High skew + small row space maximizes conflicts (and thus edges).
    const auto trace = GenerateTrace(400, 120, 0.95, 4, 3, &rng);
    TxnDependencyGraph graph(trace);
    const auto expected = ReferenceChildren(trace);
    size_t edges = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(graph.children(i), expected[i]) << "txn " << i << " seed "
                                                << seed;
      edges += expected[i].size();
    }
    EXPECT_EQ(graph.num_edges(), edges);
    EXPECT_GT(edges, 0u);
  }
}

}  // namespace
}  // namespace hunter::workload
