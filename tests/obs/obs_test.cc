// Unit tests for the observability layer: metrics registry semantics, the
// tracer's clock-partition contract, and journal serialization (byte-stable
// write -> parse -> write, hostile-locale independence).

#include <cmath>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "common/text.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hunter::obs {
namespace {

// --------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, NamesFollowRegistrationOrder) {
  MetricsRegistry registry;
  registry.RegisterCounter("b.count");
  registry.RegisterGauge("a.gauge");
  registry.RegisterHistogram("c.hist");
  EXPECT_EQ(registry.Names(),
            (std::vector<std::string>{"b.count", "a.gauge", "c.hist"}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, ReRegisteringSameKindReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* first = registry.RegisterCounter("retries");
  first->Increment(2.0);
  Counter* second = registry.RegisterCounter("retries");
  ASSERT_EQ(first, second);
  EXPECT_DOUBLE_EQ(second->value(), 2.0);
  EXPECT_EQ(registry.size(), 1u);  // no duplicate schema entry
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.RegisterCounter("x"), nullptr);
  EXPECT_EQ(registry.RegisterGauge("x"), nullptr);
  EXPECT_EQ(registry.RegisterHistogram("x"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotReportsEmptyAsNaN) {
  MetricsRegistry registry;
  registry.RegisterGauge("unset");
  registry.RegisterHistogram("empty");
  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(std::isnan(snap[0].value));  // unset gauge
  EXPECT_EQ(snap[1].count, 0u);
  EXPECT_TRUE(std::isnan(snap[1].min));
  EXPECT_TRUE(std::isnan(snap[1].max));
  EXPECT_TRUE(std::isnan(snap[1].p95));
}

TEST(MetricsRegistryTest, HistogramSnapshotSummarizesDistribution) {
  MetricsRegistry registry;
  Histogram* hist = registry.RegisterHistogram("latency");
  for (double v : {10.0, 20.0, 30.0, 40.0}) hist->Observe(v);
  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 4u);
  EXPECT_DOUBLE_EQ(snap[0].mean, 25.0);
  EXPECT_DOUBLE_EQ(snap[0].min, 10.0);
  EXPECT_DOUBLE_EQ(snap[0].max, 40.0);
  EXPECT_DOUBLE_EQ(snap[0].p50, 25.0);
}

// --------------------------------------------------------------------------
// Tracer

TEST(TracerTest, ChargedSpansPartitionTheClock) {
  common::SimClock clock;
  MetricsRegistry registry;
  Journal journal(&clock, &registry);
  Tracer& tracer = journal.tracer();

  tracer.Charge("deploy", "d", 3.0);
  tracer.Charge("execution", "e", 142.5, {{"attempt", "1"}});
  tracer.Span("execution", "detail", 3.0, 100.0);  // must not touch the clock
  tracer.Charge("collection", "c", 0.25);
  tracer.Event("done");

  EXPECT_DOUBLE_EQ(clock.seconds(), 3.0 + 142.5 + 0.25);
  EXPECT_DOUBLE_EQ(tracer.charged_seconds(), clock.seconds());

  double folded = 0.0;
  for (const Record& r : journal.records()) {
    if (r.type == Record::Type::kSpan && r.span.charged) {
      folded += r.span.duration_seconds;
    }
  }
  EXPECT_DOUBLE_EQ(folded, clock.seconds());
}

TEST(TracerTest, ChargeRecordsStartBeforeAdvancing) {
  common::SimClock clock;
  Journal journal(&clock, nullptr);
  journal.tracer().Charge("deploy", "a", 2.0);
  journal.tracer().Charge("deploy", "b", 5.0);
  ASSERT_EQ(journal.records().size(), 2u);
  EXPECT_DOUBLE_EQ(journal.records()[0].span.start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(journal.records()[1].span.start_seconds, 2.0);
}

TEST(TracerTest, NegativeChargeClampsToZeroLikeSimClock) {
  common::SimClock clock;
  Journal journal(&clock, nullptr);
  journal.tracer().Charge("deploy", "bogus", -4.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
  ASSERT_EQ(journal.records().size(), 1u);
  EXPECT_DOUBLE_EQ(journal.records()[0].span.duration_seconds, 0.0);
}

// --------------------------------------------------------------------------
// Journal serialization

std::string WriteToString(const Journal& journal) {
  std::ostringstream os;
  journal.Write(os);
  return os.str();
}

// Fills a journal with one record of every flavour. The journal owns a
// tracer pointing back at itself, so it is populated in place rather than
// returned by value.
void PopulateSmallJournal(Journal* journal, MetricsRegistry* registry) {
  registry->RegisterCounter("rounds")->Increment();
  registry->RegisterGauge("unset_gauge");
  registry->RegisterHistogram("empty_hist");
  journal->tracer().Charge("deploy", "clone0_deploy", 3.0,
                           {{"config", "0"}, {"attempt", "1"}});
  journal->tracer().Span("execution", "clone1_stress", 0.5, 1.25);
  journal->tracer().Event("crash", {{"clone", "1"}});
  journal->SnapshotMetrics("batch0");
}

TEST(JournalTest, WriteParseWriteIsByteIdentical) {
  common::SimClock clock;
  MetricsRegistry registry;
  Journal journal(&clock, &registry, {{"seed", "7"}});
  PopulateSmallJournal(&journal, &registry);
  const std::string first = WriteToString(journal);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find(kJournalSchema), std::string::npos);

  std::istringstream in(first);
  ParsedJournal parsed;
  std::string error;
  ASSERT_TRUE(ParseJournal(in, &parsed, &error)) << error;
  EXPECT_EQ(parsed.schema, kJournalSchema);
  EXPECT_EQ(parsed.records.size(), journal.records().size());

  std::ostringstream out;
  WriteParsed(parsed, out);
  EXPECT_EQ(out.str(), first);
}

TEST(JournalTest, NonFiniteMetricsSurviveRoundTrip) {
  common::SimClock clock;
  MetricsRegistry registry;
  registry.RegisterGauge("never_set");  // snapshots as NaN
  Journal journal(&clock, &registry);
  journal.SnapshotMetrics("s");
  const std::string text = WriteToString(journal);
  EXPECT_NE(text.find("\"NaN\""), std::string::npos);

  std::istringstream in(text);
  ParsedJournal parsed;
  std::string error;
  ASSERT_TRUE(ParseJournal(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.records.size(), 1u);
  ASSERT_EQ(parsed.records[0].metrics.size(), 1u);
  EXPECT_TRUE(std::isnan(parsed.records[0].metrics[0].value));
}

TEST(JournalTest, BytesIgnoreHostileGlobalLocale) {
  class CommaNumpunct : public std::numpunct<char> {
   protected:
    char do_decimal_point() const override { return ','; }
    std::string do_grouping() const override { return "\3"; }
  };

  common::SimClock clock_a;
  MetricsRegistry registry_a;
  Journal classic(&clock_a, &registry_a, {{"seed", "7"}});
  PopulateSmallJournal(&classic, &registry_a);
  const std::string classic_bytes = WriteToString(classic);

  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new CommaNumpunct));
  common::SimClock clock_b;
  MetricsRegistry registry_b;
  Journal comma(&clock_b, &registry_b, {{"seed", "7"}});
  PopulateSmallJournal(&comma, &registry_b);
  const std::string comma_bytes = WriteToString(comma);

  std::istringstream in(classic_bytes);
  ParsedJournal parsed;
  std::string error;
  const bool parse_ok = ParseJournal(in, &parsed, &error);
  std::locale::global(saved);

  EXPECT_EQ(comma_bytes, classic_bytes);
  ASSERT_TRUE(parse_ok) << error;
}

TEST(JournalTest, EscapesStringsInAttrs) {
  common::SimClock clock;
  Journal journal(&clock, nullptr,
                  {{"note", "quote \" backslash \\ newline \n tab \t"}});
  const std::string text = WriteToString(journal);
  EXPECT_NE(text.find("quote \\\" backslash \\\\ newline \\n tab \\t"),
            std::string::npos);

  std::istringstream in(text);
  ParsedJournal parsed;
  std::string error;
  ASSERT_TRUE(ParseJournal(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.meta.size(), 1u);
  EXPECT_EQ(parsed.meta[0].value, "quote \" backslash \\ newline \n tab \t");
}

TEST(JournalTest, FormatDouble17RoundTripsAwkwardValues) {
  // The journal renders every double with FormatDouble17; shortest-17
  // round-trip means parse(format(x)) == x for any finite x, which is what
  // keeps Write -> Parse -> Write byte-stable on real (non-curated) data.
  for (double v : {142.7, 0.1 + 0.2, 1e-300, -3.0e21, 5908.0977}) {
    const std::string s = common::FormatDouble17(v);
    double back = 0.0;
    std::istringstream is(s);
    is >> back;
    EXPECT_EQ(back, v) << s;
  }
}

}  // namespace
}  // namespace hunter::obs
