// Parameterized property tests: invariants swept across workloads,
// catalogs, alpha preferences, and random configurations.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "cdb/fitness.h"
#include "cdb/knob_catalog.h"
#include "cdb/simulated_engine.h"
#include "common/rng.h"
#include "hunter/rules.h"
#include "workload/workloads.h"

namespace hunter {
namespace {

// ---------------------------------------------------------------- catalogs

class CatalogProperty : public ::testing::TestWithParam<std::string> {
 protected:
  cdb::KnobCatalog Catalog() const {
    return GetParam() == "mysql" ? cdb::MySqlCatalog()
                                 : cdb::PostgresCatalog();
  }
};

TEST_P(CatalogProperty, RandomNormalizedRoundTripIsIdempotent) {
  const cdb::KnobCatalog catalog = Catalog();
  common::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> normalized(catalog.size());
    for (double& v : normalized) v = rng.Uniform();
    // Denormalize -> normalize -> denormalize must be a fixed point: the
    // first denormalization snaps to the knob's grid, after which the
    // round trip is exact.
    const cdb::Configuration raw1 =
        catalog.DenormalizeConfiguration(normalized);
    const cdb::Configuration raw2 = catalog.DenormalizeConfiguration(
        catalog.NormalizeConfiguration(raw1));
    for (size_t i = 0; i < catalog.size(); ++i) {
      EXPECT_NEAR(raw1[i], raw2[i],
                  1e-6 * std::max(1.0, std::abs(raw1[i])))
          << catalog.knob(i).name;
    }
  }
}

TEST_P(CatalogProperty, SnappedValuesRespectDomains) {
  const cdb::KnobCatalog catalog = Catalog();
  common::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    for (size_t i = 0; i < catalog.size(); ++i) {
      const cdb::KnobDef& def = catalog.knob(i);
      const double snapped = catalog.Snap(i, rng.Uniform(-1e7, 1e7));
      EXPECT_GE(snapped, def.min_value) << def.name;
      EXPECT_LE(snapped, def.max_value) << def.name;
      if (def.type != cdb::KnobType::kDouble) {
        EXPECT_DOUBLE_EQ(snapped, std::round(snapped)) << def.name;
      }
    }
  }
}

TEST_P(CatalogProperty, NormalizeIsMonotone) {
  const cdb::KnobCatalog catalog = Catalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    const cdb::KnobDef& def = catalog.knob(i);
    double previous = -1.0;
    for (int step = 0; step <= 10; ++step) {
      const double raw = def.min_value +
                         (def.max_value - def.min_value) * step / 10.0;
      const double norm = catalog.Normalize(i, raw);
      EXPECT_GE(norm, previous - 1e-12) << def.name;
      previous = norm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothCatalogs, CatalogProperty,
                         ::testing::Values("mysql", "postgresql"));

// ---------------------------------------------------------------- engine

class EngineProperty
    : public ::testing::TestWithParam<cdb::WorkloadProfile> {};

TEST_P(EngineProperty, AllConfigurationsProduceSanePerformance) {
  const cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  cdb::SimulatedEngine engine(&catalog, cdb::MySqlEvaluationInstance(),
                              cdb::MySqlEngineTuning());
  common::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> normalized(catalog.size());
    for (double& v : normalized) v = rng.Uniform();
    const cdb::Configuration config =
        catalog.DenormalizeConfiguration(normalized);
    const cdb::PerfResult result =
        engine.Run(config, GetParam(), true, &rng);
    if (result.boot_failed) {
      EXPECT_DOUBLE_EQ(result.throughput_tps, -1000.0);
      continue;
    }
    EXPECT_GT(result.throughput_tps, 0.0);
    EXPECT_LT(result.throughput_tps, 1e6);
    EXPECT_GT(result.latency_p95_ms, 0.0);
    EXPECT_TRUE(std::isfinite(result.latency_p95_ms));
    EXPECT_GE(result.latency_p99_ms, result.latency_p95_ms);
    ASSERT_EQ(result.metrics.size(), cdb::kNumMetrics);
    for (double m : result.metrics) EXPECT_TRUE(std::isfinite(m));
    EXPECT_GE(result.latents[cdb::kLatHitRatio], 0.0);
    EXPECT_LE(result.latents[cdb::kLatHitRatio], 1.0);
    EXPECT_GE(result.latents[cdb::kLatCpuUtil], 0.0);
    EXPECT_LE(result.latents[cdb::kLatCpuUtil], 1.0);
  }
}

TEST_P(EngineProperty, ThroughputLatencyClosedLoopConsistency) {
  // In a closed system, average latency = population / throughput; the p95
  // must sit between 1x and ~5x that average.
  const cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  cdb::SimulatedEngine engine(&catalog, cdb::MySqlEvaluationInstance(),
                              cdb::MySqlEngineTuning());
  common::Rng rng(17);
  const cdb::PerfResult result =
      engine.Run(catalog.DefaultConfiguration(), GetParam(), true, &rng);
  ASSERT_FALSE(result.boot_failed);
  const double effective_clients = std::min<double>(
      GetParam().client_threads,
      GetParam().max_replay_parallelism > 0
          ? GetParam().max_replay_parallelism
          : GetParam().client_threads);
  const double avg_ms =
      std::min(effective_clients, 151.0) /  // default max_connections
      result.throughput_tps * 1000.0;
  EXPECT_GE(result.latency_p95_ms, 0.9 * avg_ms);
  EXPECT_LE(result.latency_p95_ms, 5.0 * avg_ms);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EngineProperty,
    ::testing::Values(workload::SysbenchReadOnly(),
                      workload::SysbenchReadWrite(),
                      workload::SysbenchWriteOnly(), workload::Tpcc(),
                      workload::Production(true),
                      workload::Production(false)),
    [](const ::testing::TestParamInfo<cdb::WorkloadProfile>& param_info) {
      std::string name = param_info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------- fitness

class FitnessProperty : public ::testing::TestWithParam<double> {};

TEST_P(FitnessProperty, MonotoneInThroughputAndLatency) {
  const double alpha = GetParam();
  const cdb::PerformanceSummary defaults{1000.0, 50.0};
  common::Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const cdb::PerformanceSummary a{rng.Uniform(100, 3000),
                                    rng.Uniform(5, 500)};
    // Strictly better on both axes must never lower the fitness.
    const cdb::PerformanceSummary better{a.throughput_tps * 1.1,
                                         a.latency_p95_ms * 0.9};
    EXPECT_GE(cdb::Fitness(alpha, better, defaults),
              cdb::Fitness(alpha, a, defaults));
  }
}

TEST_P(FitnessProperty, BoundedBelowByFailureFloor) {
  const double alpha = GetParam();
  const cdb::PerformanceSummary defaults{1000.0, 50.0};
  common::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const cdb::PerformanceSummary p{rng.Uniform(-2000, 5000),
                                    rng.Uniform(0.1, 1e6)};
    EXPECT_GE(cdb::Fitness(alpha, p, defaults), cdb::kBootFailureFitness);
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, FitnessProperty,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0));

// ---------------------------------------------------------------- rules

class RulesProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(RulesProperty, ApplyIsIdempotent) {
  const cdb::KnobCatalog catalog = GetParam() == "mysql"
                                       ? cdb::MySqlCatalog()
                                       : cdb::PostgresCatalog();
  core::Rules rules;
  rules.FixKnob(catalog.knob(0).name, catalog.knob(0).max_value);
  rules.RestrictRange(catalog.knob(3).name, catalog.knob(3).min_value,
                      catalog.knob(3).default_value);
  common::Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> normalized(catalog.size());
    for (double& v : normalized) v = rng.Uniform();
    const auto once = rules.Apply(catalog, normalized);
    const auto twice = rules.Apply(catalog, once);
    EXPECT_EQ(once, twice);
  }
}

INSTANTIATE_TEST_SUITE_P(BothCatalogs, RulesProperty,
                         ::testing::Values("mysql", "postgresql"));

}  // namespace
}  // namespace hunter
