// End-to-end determinism properties of the run journal (DESIGN.md §10),
// pinned on a full Controller + HUNTER tuning run with faults enabled:
//
//  * two runs with the same seed serialize byte-identical journals;
//  * folding the charged spans in record order reproduces the simulated
//    clock total bit-exactly (no double- or missed charges anywhere in the
//    tuning loop, including retry/crash/straggler/reclone paths);
//  * runs with different seeds tell different stories but share the same
//    schema: same meta keys, same ordered metric-name vocabulary, same
//    Table-1 stage vocabulary.

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "obs/journal.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

namespace hunter {
namespace {

struct RunDigest {
  std::string journal_bytes;
  double clock_seconds = 0.0;
  double folded_charged_seconds = 0.0;  // record-order fold over charged spans
  double tracer_charged_seconds = 0.0;
  std::vector<std::string> meta_keys;
  std::vector<std::string> metric_names;  // from the first metrics record
  std::set<std::string> stages;
  size_t records = 0;
  double eval_cache_hits = 0.0;  // from the last metrics record
};

// One small tuning run (2 clones, ~0.8 simulated hours, faults on) — the
// same shape as examples/trace_journal.cpp, reduced for test runtime.
// `memo_cache` toggles the clones' steady-state memoization; the journal
// must not be able to tell the difference (the cache saves real CPU only).
RunDigest RunOnce(uint64_t seed, bool memo_cache = true) {
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto user_instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
      seed);

  controller::ControllerOptions controller_options;
  controller_options.num_clones = 2;
  controller_options.seed = seed;
  controller_options.concurrent_actors = false;
  controller_options.faults.seed = seed;
  controller_options.faults.transient_deploy_failure_rate = 0.08;
  controller_options.faults.crash_rate = 0.04;
  controller_options.faults.straggler_rate = 0.25;
  controller_options.straggler_timeout_seconds = 400.0;
  controller_options.engine_memo_cache = memo_cache;
  controller::Controller controller(std::move(user_instance),
                                    workload::Tpcc(), controller_options);

  core::HunterOptions hunter_options;
  hunter_options.ga.target_samples = 8;
  core::HunterTuner hunter(&catalog, core::Rules(), hunter_options, seed + 1);
  tuners::HarnessOptions harness;
  harness.budget_hours = 0.8;
  const tuners::TuningResult result =
      tuners::RunTuning(&hunter, &controller, harness);
  controller.DeployToUser(result.best_sample.knobs);

  RunDigest digest;
  std::ostringstream os;
  controller.journal().Write(os);
  digest.journal_bytes = os.str();
  digest.clock_seconds = controller.clock().seconds();
  digest.tracer_charged_seconds =
      controller.journal().tracer().charged_seconds();
  digest.records = controller.journal().records().size();
  for (const obs::Attr& attr : controller.journal().meta()) {
    digest.meta_keys.push_back(attr.key);
  }
  for (const obs::Record& r : controller.journal().records()) {
    switch (r.type) {
      case obs::Record::Type::kSpan:
        digest.stages.insert(r.span.stage);
        if (r.span.charged) {
          digest.folded_charged_seconds += r.span.duration_seconds;
        }
        break;
      case obs::Record::Type::kMetrics:
        if (digest.metric_names.empty()) {
          for (const obs::MetricSnapshot& m : r.metrics) {
            digest.metric_names.push_back(m.name);
          }
        }
        for (const obs::MetricSnapshot& m : r.metrics) {
          if (m.name == "engine.eval_cache_hits") {
            digest.eval_cache_hits = m.value;  // last record wins
          }
        }
        break;
      case obs::Record::Type::kEvent:
        break;
    }
  }
  return digest;
}

TEST(JournalDeterminismTest, SameSeedRunsAreByteIdentical) {
  const RunDigest a = RunOnce(42);
  const RunDigest b = RunOnce(42);
  ASSERT_GT(a.records, 0u);
  EXPECT_EQ(a.journal_bytes, b.journal_bytes);
  EXPECT_DOUBLE_EQ(a.clock_seconds, b.clock_seconds);
}

TEST(JournalDeterminismTest, MemoCacheOnAndOffAreByteIdentical) {
  // The engine memo cache may only save real CPU: with it on, a straggler's
  // rolled-back retry is served from the cache; with it off, the engine
  // re-runs the identical replay. Same seed, same simulated time, same
  // counters (lookup bookkeeping runs either way) — byte-identical journal.
  const RunDigest cached = RunOnce(42, /*memo_cache=*/true);
  const RunDigest uncached = RunOnce(42, /*memo_cache=*/false);
  ASSERT_GT(cached.records, 0u);
  EXPECT_EQ(cached.journal_bytes, uncached.journal_bytes);
  EXPECT_DOUBLE_EQ(cached.clock_seconds, uncached.clock_seconds);
  // The run must actually exercise the cache (straggler retries hit it),
  // otherwise this test proves nothing.
  EXPECT_GT(cached.eval_cache_hits, 0.0);
  EXPECT_EQ(cached.eval_cache_hits, uncached.eval_cache_hits);
}

TEST(JournalDeterminismTest, ChargedSpansReproduceClockTotalExactly) {
  const RunDigest digest = RunOnce(42);
  // Bit-exact, not approximate: the fold replays the identical sequence of
  // IEEE additions the clock performed, starting from zero.
  EXPECT_DOUBLE_EQ(digest.folded_charged_seconds, digest.clock_seconds);
  EXPECT_DOUBLE_EQ(digest.tracer_charged_seconds, digest.clock_seconds);
  EXPECT_GT(digest.clock_seconds, 0.0);
}

TEST(JournalDeterminismTest, DifferentSeedsShareTheSchema) {
  const RunDigest a = RunOnce(42);
  const RunDigest b = RunOnce(43);
  // Different runs...
  EXPECT_NE(a.journal_bytes, b.journal_bytes);
  // ...same schema: meta keys, metric vocabulary (names and order), and
  // every span stage drawn from the Table-1 vocabulary.
  EXPECT_EQ(a.meta_keys, b.meta_keys);
  ASSERT_FALSE(a.metric_names.empty());
  EXPECT_EQ(a.metric_names, b.metric_names);
  const std::set<std::string> known = {"deploy",       "execution",
                                       "collection",   "model_update",
                                       "backoff",      "recovery"};
  for (const std::string& stage : a.stages) {
    EXPECT_TRUE(known.count(stage)) << stage;
  }
  for (const std::string& stage : b.stages) {
    EXPECT_TRUE(known.count(stage)) << stage;
  }
  // Both journals parse under the same schema tag.
  for (const RunDigest* d : {&a, &b}) {
    std::istringstream in(d->journal_bytes);
    obs::ParsedJournal parsed;
    std::string error;
    ASSERT_TRUE(obs::ParseJournal(in, &parsed, &error)) << error;
    EXPECT_EQ(parsed.schema, obs::kJournalSchema);
  }
}

}  // namespace
}  // namespace hunter
