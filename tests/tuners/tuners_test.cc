#include <memory>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "tuners/bestconfig.h"
#include "tuners/cdbtune.h"
#include "tuners/ottertune.h"
#include "tuners/qtune.h"
#include "tuners/random_tuner.h"
#include "tuners/restune.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

namespace hunter::tuners {
namespace {

constexpr size_t kDim = 65;

void ExpectValidProposals(Tuner* tuner, size_t count, size_t dim) {
  const auto proposals = tuner->Propose(count);
  ASSERT_EQ(proposals.size(), count);
  for (const auto& proposal : proposals) {
    ASSERT_EQ(proposal.size(), dim);
    for (double v : proposal) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

controller::Sample MakeSample(const std::vector<double>& knobs,
                              double fitness) {
  controller::Sample sample;
  sample.knobs = knobs;
  sample.metrics.assign(cdb::kNumMetrics, 1.0);
  sample.fitness = fitness;
  sample.throughput_tps = 1000 * (1 + fitness);
  sample.latency_p95_ms = 50 / (1 + fitness);
  return sample;
}

// Synthetic objective: fitness peaks at 0.7 in every dimension.
double SyntheticFitness(const std::vector<double>& knobs) {
  double sum = 0.0;
  for (double v : knobs) sum -= (v - 0.7) * (v - 0.7);
  return sum / static_cast<double>(knobs.size()) + 0.5;
}

template <typename T>
void DriveSyntheticLoop(T* tuner, int rounds, size_t batch) {
  for (int r = 0; r < rounds; ++r) {
    const auto proposals = tuner->Propose(batch);
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      samples.push_back(MakeSample(p, SyntheticFitness(p)));
    }
    tuner->Observe(samples);
  }
}

TEST(RandomTunerTest, ProposalsInRangeAndVaried) {
  RandomTuner tuner(kDim, 1);
  ExpectValidProposals(&tuner, 8, kDim);
  const auto a = tuner.Propose(1);
  const auto b = tuner.Propose(1);
  EXPECT_NE(a[0], b[0]);
}

TEST(LhsTunerTest, BlocksAreStratified) {
  LhsTuner tuner(3, 10, 2);
  const auto proposals = tuner.Propose(10);
  for (size_t d = 0; d < 3; ++d) {
    std::set<int> strata;
    for (const auto& p : proposals) {
      strata.insert(static_cast<int>(p[d] * 10));
    }
    EXPECT_EQ(strata.size(), 10u);
  }
}

TEST(BestConfigTest, ShrinksTowardGoodRegion) {
  BestConfigOptions options;
  options.round_size = 30;
  options.shrink_factor = 0.6;  // aggressive shrink for a quick test
  BestConfigTuner tuner(8, options, 3);
  // Recursive bound-and-search should find a near-optimal point (the
  // objective's maximum is 0.5 at x = 0.7 in every dimension).
  double best = -1e9;
  for (int r = 0; r < 20; ++r) {
    const auto proposals = tuner.Propose(30);
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      const double f = SyntheticFitness(p);
      best = std::max(best, f);
      samples.push_back(MakeSample(p, f));
    }
    tuner.Observe(samples);
  }
  EXPECT_GT(best, 0.47);
}

TEST(BestConfigTest, HandlesBootFailures) {
  BestConfigTuner tuner(4, BestConfigOptions{}, 4);
  auto proposals = tuner.Propose(4);
  std::vector<controller::Sample> samples;
  for (const auto& p : proposals) {
    controller::Sample s = MakeSample(p, -2.0);
    s.boot_failed = true;
    samples.push_back(s);
  }
  tuner.Observe(samples);       // must not crash or divide by zero
  ExpectValidProposals(&tuner, 4, 4);
}

TEST(OtterTuneTest, InitialSamplesThenModelBased) {
  OtterTuneOptions options;
  options.initial_samples = 6;
  OtterTuneTuner tuner(5, options, 5);
  ExpectValidProposals(&tuner, 6, 5);  // the LHS bootstrap
  // Feed observations and ask for model-based proposals.
  DriveSyntheticLoop(&tuner, 5, 6);
  ExpectValidProposals(&tuner, 3, 5);
}

TEST(OtterTuneTest, ConvergesOnSyntheticObjective) {
  OtterTuneOptions options;
  options.initial_samples = 10;
  options.candidates = 200;
  options.local_candidates = 20;
  OtterTuneTuner tuner(4, options, 6);
  double best = -1e9;
  for (int r = 0; r < 40; ++r) {
    const auto proposals = tuner.Propose(2);
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      const double f = SyntheticFitness(p);
      best = std::max(best, f);
      samples.push_back(MakeSample(p, f));
    }
    tuner.Observe(samples);
  }
  EXPECT_GT(best, 0.47);  // optimum is 0.5
}

TEST(CdbTuneTest, WarmupThenPolicyProposals) {
  CdbTuneOptions options;
  options.random_warmup = 4;
  CdbTuneTuner tuner(cdb::kNumMetrics, kDim, {}, options, 7);
  ExpectValidProposals(&tuner, 8, kDim);
  DriveSyntheticLoop(&tuner, 3, 8);
  ExpectValidProposals(&tuner, 8, kDim);
}

TEST(CdbTuneTest, LearnsFromRewardSignal) {
  CdbTuneOptions options;
  options.random_warmup = 20;
  options.noise_sigma_start = 0.3;
  options.noise_sigma_end = 0.02;
  options.noise_decay_steps = 150;
  CdbTuneTuner tuner(cdb::kNumMetrics, 6, {}, options, 8);
  DriveSyntheticLoop(&tuner, 120, 2);
  // The learned policy (with annealed noise) should propose near 0.7.
  const auto proposals = tuner.Propose(10);
  double mean = 0.0;
  for (const auto& p : proposals) {
    for (double v : p) mean += v;
  }
  mean /= 10 * 6;
  EXPECT_NEAR(mean, 0.7, 0.2);
}

TEST(QTuneTest, WorkloadFeaturesAreBoundedAndWorkloadSpecific) {
  const auto tpcc = WorkloadFeatures(workload::Tpcc());
  const auto sysbench = WorkloadFeatures(workload::SysbenchReadOnly());
  EXPECT_EQ(tpcc.size(), sysbench.size());
  EXPECT_NE(tpcc, sysbench);
  for (double f : tpcc) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.5);
  }
}

TEST(QTuneTest, ProposesValidConfigs) {
  CdbTuneOptions options;
  options.random_warmup = 2;
  QTuneTuner tuner(cdb::kNumMetrics, kDim, workload::Tpcc(), options, 9);
  EXPECT_EQ(tuner.name(), "QTune");
  ExpectValidProposals(&tuner, 4, kDim);
}

TEST(ResTuneTest, EmptyHistoryBehavesLikeBo) {
  OtterTuneOptions options;
  options.initial_samples = 4;
  ResTuneTuner tuner(4, options, 10);
  EXPECT_EQ(tuner.name(), "ResTune");
  ExpectValidProposals(&tuner, 4, 4);
  DriveSyntheticLoop(&tuner, 4, 4);
  ExpectValidProposals(&tuner, 2, 4);
}

TEST(ResTuneTest, HistoricalModelInfluencesAcquisition) {
  OtterTuneOptions options;
  options.initial_samples = 2;
  ResTuneTuner tuner(2, options, 11);
  tuner.SetWorkloadFeatures({0.5, 0.5});
  // Base model trained to love x = (0.2, 0.2).
  auto base = std::make_shared<ml::GaussianProcess>();
  linalg::Matrix x(std::vector<std::vector<double>>{
      {0.2, 0.2}, {0.8, 0.8}, {0.5, 0.5}});
  base->Fit(x, {1.0, -1.0, 0.0});
  tuner.AddHistoricalModel(base, {0.5, 0.5});
  DriveSyntheticLoop(&tuner, 2, 2);
  ExpectValidProposals(&tuner, 2, 2);  // meta path exercised without crash
}

TEST(HarnessTest, RespectsBudgetAndRecordsCurve) {
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 1);
  controller::ControllerOptions copts;
  copts.num_clones = 1;
  copts.concurrent_actors = false;
  controller::Controller controller(std::move(instance), workload::Tpcc(),
                                    copts);
  RandomTuner tuner(catalog.size(), 2);
  HarnessOptions options;
  options.budget_hours = 1.0;  // ~20 steps
  const TuningResult result = RunTuning(&tuner, &controller, options);
  EXPECT_GT(result.steps, 10u);
  EXPECT_LT(result.steps, 40u);
  EXPECT_FALSE(result.curve.empty());
  EXPECT_GT(result.best_throughput, 0.0);
  // Curve is monotone non-decreasing in best throughput.
  for (size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_GE(result.curve[i].best_throughput,
              result.curve[i - 1].best_throughput);
    EXPECT_GE(result.curve[i].hours, result.curve[i - 1].hours);
  }
  EXPECT_LE(result.recommendation_hours, result.curve.back().hours);
}

TEST(TunerFaultToleranceTest, BaselinesTolerateEvaluationFailedSamples) {
  // A sample the clone fleet gave up on carries the boot-failure clamp plus
  // evaluation_failed; every baseline must keep proposing valid configs
  // after observing a batch dominated by such samples.
  controller::Sample failed = MakeSample(std::vector<double>(kDim, 0.5), 0.0);
  failed.boot_failed = true;
  failed.evaluation_failed = true;
  failed.fitness = cdb::kBootFailureFitness;
  failed.throughput_tps = -1000.0;
  const controller::Sample ok = MakeSample(std::vector<double>(kDim, 0.6), 0.2);
  const std::vector<controller::Sample> batch = {failed, ok, failed};

  BestConfigTuner bestconfig(kDim, BestConfigOptions{}, 1);
  OtterTuneTuner ottertune(kDim, OtterTuneOptions{}, 2);
  CdbTuneTuner cdbtune(cdb::kNumMetrics, kDim, {}, CdbTuneOptions{}, 3);
  RandomTuner random(kDim, 4);
  std::vector<Tuner*> tuners = {&bestconfig, &ottertune, &cdbtune, &random};
  for (Tuner* tuner : tuners) {
    for (int round = 0; round < 3; ++round) {
      (void)tuner->Propose(3);
      tuner->Observe(batch);
    }
    ExpectValidProposals(tuner, 3, kDim);
  }
}

TEST(HarnessTest, TargetThroughputStopsEarly) {
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 1);
  controller::ControllerOptions copts;
  copts.num_clones = 1;
  copts.concurrent_actors = false;
  controller::Controller controller(std::move(instance), workload::Tpcc(),
                                    copts);
  RandomTuner tuner(catalog.size(), 3);
  HarnessOptions options;
  options.budget_hours = 10.0;
  options.target_throughput = 1.0;  // met immediately
  const TuningResult result = RunTuning(&tuner, &controller, options);
  EXPECT_EQ(result.curve.size(), 1u);
}

}  // namespace
}  // namespace hunter::tuners
