#include "ml/mlp.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hunter::ml {
namespace {

TEST(MlpTest, ShapesAreConsistent) {
  common::Rng rng(1);
  Mlp net({4, 8, 3}, Activation::kReLU, Activation::kLinear, &rng);
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 3u);
  const auto out = net.Predict({0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(out.size(), 3u);
}

TEST(MlpTest, ForwardMatchesPredict) {
  common::Rng rng(2);
  Mlp net({3, 5, 2}, Activation::kTanh, Activation::kLinear, &rng);
  const std::vector<double> x = {0.5, -0.2, 0.9};
  EXPECT_EQ(net.Forward(x), net.Predict(x));
}

TEST(MlpTest, TanhOutputBounded) {
  common::Rng rng(3);
  Mlp net({2, 16, 4}, Activation::kReLU, Activation::kTanh, &rng);
  const auto out = net.Predict({100.0, -100.0});
  for (double v : out) {
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, -1.0);
  }
}

TEST(MlpTest, LearnsLinearFunction) {
  common::Rng rng(4);
  Mlp net({2, 16, 1}, Activation::kReLU, Activation::kLinear, &rng);
  // Train y = 2a - b on random points.
  for (int epoch = 0; epoch < 2000; ++epoch) {
    net.ZeroGradients();
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    const double target = 2 * a - b;
    const auto out = net.Forward({a, b});
    net.Backward({2.0 * (out[0] - target)});
    net.AdamStep(1e-2, 1);
  }
  double max_err = 0.0;
  for (int i = 0; i < 20; ++i) {
    double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    max_err = std::max(max_err,
                       std::abs(net.Predict({a, b})[0] - (2 * a - b)));
  }
  EXPECT_LT(max_err, 0.2);
}

TEST(MlpTest, BackwardGradientMatchesFiniteDifference) {
  common::Rng rng(5);
  Mlp net({3, 6, 1}, Activation::kTanh, Activation::kLinear, &rng);
  const std::vector<double> x = {0.3, -0.4, 0.7};
  net.Forward(x);
  const std::vector<double> analytic = net.Backward({1.0});
  const double eps = 1e-6;
  for (size_t i = 0; i < x.size(); ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric =
        (net.Predict(xp)[0] - net.Predict(xm)[0]) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5);
  }
}

TEST(MlpTest, SoftUpdateMovesTowardSource) {
  common::Rng rng(6);
  Mlp a({2, 4, 1}, Activation::kReLU, Activation::kLinear, &rng);
  Mlp b({2, 4, 1}, Activation::kReLU, Activation::kLinear, &rng);
  const auto before = b.Predict({0.5, 0.5})[0];
  const auto target = a.Predict({0.5, 0.5})[0];
  for (int i = 0; i < 400; ++i) b.SoftUpdateFrom(a, 0.05);
  const auto after = b.Predict({0.5, 0.5})[0];
  EXPECT_LT(std::abs(after - target), std::abs(before - target) + 1e-9);
  EXPECT_NEAR(after, target, 1e-3);
}

TEST(MlpTest, CopyFromReplicatesExactly) {
  common::Rng rng(7);
  Mlp a({3, 8, 2}, Activation::kReLU, Activation::kTanh, &rng);
  Mlp b({3, 8, 2}, Activation::kReLU, Activation::kTanh, &rng);
  b.CopyFrom(a);
  const std::vector<double> x = {0.1, 0.9, -0.5};
  EXPECT_EQ(a.Predict(x), b.Predict(x));
}

TEST(MlpTest, SaveLoadRoundTrip) {
  common::Rng rng(8);
  Mlp a({4, 10, 3}, Activation::kReLU, Activation::kTanh, &rng);
  Mlp b({4, 10, 3}, Activation::kReLU, Activation::kTanh, &rng);
  const std::vector<double> params = a.SaveParameters();
  b.LoadParameters(params);
  const std::vector<double> x = {0.2, 0.4, 0.6, 0.8};
  EXPECT_EQ(a.Predict(x), b.Predict(x));
  EXPECT_EQ(b.SaveParameters(), params);
}

TEST(MlpTest, ForwardBatchMatchesPerSampleForward) {
  common::Rng rng(10);
  Mlp net({5, 12, 7, 3}, Activation::kReLU, Activation::kTanh, &rng);
  const size_t batch = 9;
  linalg::Matrix input(batch, 5);
  for (size_t r = 0; r < batch; ++r) {
    for (size_t c = 0; c < 5; ++c) input.At(r, c) = rng.Uniform(-2.0, 2.0);
  }
  linalg::Matrix output;
  net.ForwardBatch(input, &output);
  ASSERT_EQ(output.rows(), batch);
  ASSERT_EQ(output.cols(), 3u);
  for (size_t r = 0; r < batch; ++r) {
    const std::vector<double> expected = net.Predict(input.Row(r));
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(output.At(r, c), expected[c], 1e-9)
          << "row " << r << " col " << c;
    }
  }
}

TEST(MlpTest, BatchedTrainingMatchesPerSampleTraining) {
  // Two identical networks, one trained per-sample and one batched, must
  // stay equal (to 1e-9) across several Adam steps — the golden-equivalence
  // contract the batched DDPG path relies on.
  common::Rng rng(11);
  Mlp scalar_net({4, 10, 6, 2}, Activation::kReLU, Activation::kLinear, &rng);
  Mlp batch_net = scalar_net;
  const size_t batch = 8;
  common::Rng data_rng(12);
  for (int step = 0; step < 25; ++step) {
    linalg::Matrix input(batch, 4);
    linalg::Matrix grad(batch, 2);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t c = 0; c < 4; ++c) input.At(r, c) = data_rng.Uniform(-1, 1);
      for (size_t c = 0; c < 2; ++c) grad.At(r, c) = data_rng.Uniform(-1, 1);
    }
    scalar_net.ZeroGradients();
    std::vector<std::vector<double>> scalar_grad_in(batch);
    for (size_t r = 0; r < batch; ++r) {
      scalar_net.Forward(input.Row(r));
      scalar_grad_in[r] = scalar_net.Backward(grad.Row(r));
    }
    scalar_net.AdamStep(1e-3, batch);

    batch_net.ZeroGradients();
    linalg::Matrix output, grad_in;
    batch_net.ForwardBatch(input, &output);
    batch_net.BackwardBatch(grad, &grad_in);
    batch_net.AdamStep(1e-3, batch);

    ASSERT_EQ(grad_in.rows(), batch);
    for (size_t r = 0; r < batch; ++r) {
      for (size_t c = 0; c < 4; ++c) {
        ASSERT_NEAR(grad_in.At(r, c), scalar_grad_in[r][c], 1e-9)
            << "step " << step;
      }
    }
  }
  const std::vector<double> a = scalar_net.SaveParameters();
  const std::vector<double> b = batch_net.SaveParameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-9);
}

TEST(MlpTest, ZeroGradientsPreventsAccumulationCarryOver) {
  common::Rng rng(9);
  Mlp net({2, 4, 1}, Activation::kReLU, Activation::kLinear, &rng);
  net.Forward({1.0, 1.0});
  net.Backward({1.0});
  net.ZeroGradients();
  const auto before = net.Predict({1.0, 1.0});
  net.AdamStep(0.1, 1);  // gradients are zero -> parameters unchanged
  EXPECT_EQ(net.Predict({1.0, 1.0}), before);
}

}  // namespace
}  // namespace hunter::ml
