#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/her.h"
#include "ml/latin_hypercube.h"
#include "ml/ou_noise.h"

namespace hunter::ml {
namespace {

TEST(LatinHypercubeTest, ShapeAndRange) {
  common::Rng rng(1);
  const auto samples = LatinHypercube(20, 5, &rng);
  EXPECT_EQ(samples.size(), 20u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.size(), 5u);
    for (double v : s) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(LatinHypercubeTest, OneSamplePerStratum) {
  common::Rng rng(2);
  const size_t n = 16;
  const auto samples = LatinHypercube(n, 3, &rng);
  for (size_t d = 0; d < 3; ++d) {
    std::set<size_t> strata;
    for (const auto& s : samples) {
      strata.insert(static_cast<size_t>(s[d] * static_cast<double>(n)));
    }
    EXPECT_EQ(strata.size(), n);  // every stratum hit exactly once
  }
}

TEST(LatinHypercubeTest, ZeroSamplesIsEmpty) {
  common::Rng rng(3);
  EXPECT_TRUE(LatinHypercube(0, 4, &rng).empty());
}

TEST(OuNoiseTest, MeanRevertsTowardMu) {
  common::Rng rng(4);
  OuNoise noise(1, /*theta=*/0.5, /*sigma=*/0.0, /*mu=*/0.0);
  // With sigma 0, the process decays exponentially from any excursion.
  // Start it by sampling once with sigma then turning sigma off.
  OuNoise noisy(1, 0.15, 1.0, 0.0);
  double x = 0.0;
  for (int i = 0; i < 5; ++i) x = noisy.Sample(&rng)[0];
  (void)x;
  noise.Sample(&rng);
  EXPECT_DOUBLE_EQ(noise.Sample(&rng)[0], 0.0);
}

TEST(OuNoiseTest, StationaryVarianceBounded) {
  common::Rng rng(5);
  OuNoise noise(1, 0.15, 0.2, 0.0);
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = noise.Sample(&rng)[0];
    sum_sq += v * v;
  }
  // OU stationary variance approx sigma^2/(2 theta) = 0.133.
  EXPECT_NEAR(sum_sq / n, 0.2 * 0.2 / (2 * 0.15), 0.05);
}

TEST(OuNoiseTest, ResetReturnsToMu) {
  common::Rng rng(6);
  OuNoise noise(3, 0.15, 0.5, 0.0);
  noise.Sample(&rng);
  noise.Reset();
  OuNoise fresh(3, 0.15, 0.5, 0.0);
  common::Rng rng2(6);
  // After reset the next sample distribution matches a fresh process fed the
  // same random stream only if states are equal; check states via sigma=0.
  noise.set_sigma(0.0);
  fresh.set_sigma(0.0);
  common::Rng dummy(1);
  EXPECT_EQ(noise.Sample(&dummy), fresh.Sample(&dummy));
}

TEST(HerTest, AugmentedSizeMatchesOption) {
  common::Rng rng(7);
  std::vector<Transition> transitions(10);
  for (size_t i = 0; i < 10; ++i) {
    transitions[i].reward = 0.1 * static_cast<double>(i);
  }
  HerOptions options;
  options.relabels_per_transition = 3;
  const auto augmented = HerAugment(transitions, options, &rng);
  EXPECT_EQ(augmented.size(), 10u + 30u);
}

TEST(HerTest, RelabeledRewardsWithinBounds) {
  common::Rng rng(8);
  std::vector<Transition> transitions(20);
  for (size_t i = 0; i < 20; ++i) {
    transitions[i].reward = -1.0 + 0.1 * static_cast<double>(i);
  }
  const auto augmented = HerAugment(transitions, HerOptions{}, &rng);
  for (size_t i = 20; i < augmented.size(); ++i) {
    EXPECT_GE(augmented[i].reward, -1.0);
    EXPECT_LE(augmented[i].reward, 1.0);
  }
}

TEST(HerTest, GoalReachedGetsPositiveReward) {
  common::Rng rng(9);
  // All transitions share one reward -> every hindsight goal is achieved.
  std::vector<Transition> transitions(5);
  for (auto& t : transitions) t.reward = 0.5;
  const auto augmented = HerAugment(transitions, HerOptions{}, &rng);
  for (size_t i = 5; i < augmented.size(); ++i) {
    EXPECT_DOUBLE_EQ(augmented[i].reward, 1.0);
  }
}

TEST(HerTest, EmptyInputYieldsEmptyOutput) {
  common::Rng rng(10);
  EXPECT_TRUE(HerAugment({}, HerOptions{}, &rng).empty());
}

}  // namespace
}  // namespace hunter::ml
