#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/cart.h"
#include "ml/random_forest.h"

namespace hunter::ml {
namespace {

// y depends strongly on features 0 and 1, weakly on 2, not at all on 3..9.
void MakeKnobLikeData(size_t n, linalg::Matrix* x, std::vector<double>* y,
                      common::Rng* rng) {
  *x = linalg::Matrix(n, 10);
  y->resize(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 10; ++c) x->At(r, c) = rng->Uniform();
    (*y)[r] = 5.0 * x->At(r, 0) + 3.0 * std::sin(3.0 * x->At(r, 1)) +
              0.3 * x->At(r, 2) + 0.05 * rng->Gaussian();
  }
}

TEST(CartTest, FitsPiecewiseConstantFunction) {
  common::Rng rng(1);
  linalg::Matrix x(200, 1);
  std::vector<double> y(200);
  for (size_t r = 0; r < 200; ++r) {
    x.At(r, 0) = rng.Uniform();
    y[r] = x.At(r, 0) > 0.5 ? 10.0 : -10.0;
  }
  CartTree tree;
  tree.Fit(x, y, CartOptions{}, &rng);
  EXPECT_NEAR(tree.Predict({0.9}), 10.0, 0.5);
  EXPECT_NEAR(tree.Predict({0.1}), -10.0, 0.5);
}

TEST(CartTest, ConstantLabelsGiveSingleLeaf) {
  common::Rng rng(2);
  linalg::Matrix x(50, 3);
  std::vector<double> y(50, 7.0);
  for (size_t r = 0; r < 50; ++r) {
    for (size_t c = 0; c < 3; ++c) x.At(r, c) = rng.Uniform();
  }
  CartTree tree;
  tree.Fit(x, y, CartOptions{}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({0.5, 0.5, 0.5}), 7.0);
}

TEST(CartTest, RespectsMaxDepth) {
  common::Rng rng(3);
  linalg::Matrix x(512, 1);
  std::vector<double> y(512);
  for (size_t r = 0; r < 512; ++r) {
    x.At(r, 0) = static_cast<double>(r) / 512.0;
    y[r] = std::sin(20.0 * x.At(r, 0));
  }
  CartOptions options;
  options.max_depth = 2;
  CartTree tree;
  tree.Fit(x, y, options, &rng);
  // Depth-2 binary tree has at most 7 nodes.
  EXPECT_LE(tree.num_nodes(), 7u);
}

TEST(CartTest, ImportanceConcentratesOnInformativeFeature) {
  common::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  MakeKnobLikeData(300, &x, &y, &rng);
  CartTree tree;
  tree.Fit(x, y, CartOptions{}, &rng);
  const auto& importance = tree.feature_importance();
  EXPECT_GT(importance[0], importance[5]);
  EXPECT_GT(importance[1], importance[5]);
}

TEST(RandomForestTest, PredictsSmoothFunction) {
  common::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  MakeKnobLikeData(400, &x, &y, &rng);
  RandomForestOptions options;
  options.num_trees = 40;
  RandomForest forest;
  forest.Fit(x, y, options, &rng);
  // Check in-sample fit quality on a handful of points.
  double total_abs_err = 0.0;
  for (size_t r = 0; r < 50; ++r) {
    total_abs_err += std::abs(forest.Predict(x.Row(r)) - y[r]);
  }
  EXPECT_LT(total_abs_err / 50.0, 0.8);
}

TEST(RandomForestTest, ImportanceSumsToOne) {
  common::Rng rng(6);
  linalg::Matrix x;
  std::vector<double> y;
  MakeKnobLikeData(200, &x, &y, &rng);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 20;
  forest.Fit(x, y, options, &rng);
  double total = 0.0;
  for (double v : forest.feature_importance()) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForestTest, RanksInformativeKnobsFirst) {
  common::Rng rng(7);
  linalg::Matrix x;
  std::vector<double> y;
  MakeKnobLikeData(500, &x, &y, &rng);
  RandomForest forest;
  RandomForestOptions options;
  options.num_trees = 60;
  forest.Fit(x, y, options, &rng);
  const std::vector<size_t> ranking = forest.RankFeatures();
  // Features 0 and 1 must rank within the top 3.
  EXPECT_LE(std::min(ranking[0], ranking[1]), 1u);
  const auto& imp = forest.feature_importance();
  EXPECT_GT(imp[0] + imp[1], 0.6);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  linalg::Matrix x;
  std::vector<double> y;
  common::Rng data_rng(8);
  MakeKnobLikeData(150, &x, &y, &data_rng);
  RandomForestOptions options;
  options.num_trees = 10;

  common::Rng rng_a(99), rng_b(99);
  RandomForest fa, fb;
  fa.Fit(x, y, options, &rng_a);
  fb.Fit(x, y, options, &rng_b);
  EXPECT_EQ(fa.feature_importance(), fb.feature_importance());
  EXPECT_DOUBLE_EQ(fa.Predict(x.Row(3)), fb.Predict(x.Row(3)));
}

TEST(RandomForestTest, PaperScaleTwoHundredTrees) {
  // The paper's forest is 200 CARTs; ensure that scale trains fast enough
  // and produces a sane ranking on a small dataset.
  common::Rng rng(9);
  linalg::Matrix x;
  std::vector<double> y;
  MakeKnobLikeData(140, &x, &y, &rng);
  RandomForest forest;
  forest.Fit(x, y, RandomForestOptions{}, &rng);  // default 200 trees
  EXPECT_EQ(forest.num_trees(), 200u);
  const std::vector<size_t> ranking = forest.RankFeatures();
  EXPECT_EQ(ranking.size(), 10u);
}

}  // namespace
}  // namespace hunter::ml
