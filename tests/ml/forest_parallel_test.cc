// Determinism contract of the pool-parallel RandomForest::Fit: per-tree
// RNGs are forked up front in tree order, so the fitted forest must be
// bit-identical to the serial fit at every thread count (the same
// discipline the controller's FaultInjector follows). Runs under the
// `concurrency` ctest label so sanitizer configurations exercise it.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "ml/cart.h"
#include "ml/random_forest.h"

namespace hunter::ml {
namespace {

void MakeData(size_t n, size_t d, linalg::Matrix* x, std::vector<double>* y) {
  common::Rng rng(0xF0123);
  *x = linalg::Matrix(n, d);
  y->resize(n);
  for (size_t r = 0; r < n; ++r) {
    double label = 0.0;
    for (size_t c = 0; c < d; ++c) {
      const double v = rng.Uniform(0.0, 1.0);
      x->At(r, c) = v;
      if (c < 3) label += (3.0 - static_cast<double>(c)) * v;
    }
    (*y)[r] = label + rng.Gaussian(0.0, 0.05);
  }
}

RandomForestOptions SmallForest() {
  RandomForestOptions options;
  options.num_trees = 24;
  options.tree.max_depth = 6;
  return options;
}

TEST(ForestParallelTest, ParallelFitBitIdenticalToSerial) {
  linalg::Matrix x;
  std::vector<double> y;
  MakeData(80, 10, &x, &y);

  RandomForest serial;
  {
    common::Rng rng(99);
    serial.Fit(x, y, SmallForest(), &rng);
  }

  for (const size_t threads : {2u, 3u, 4u, 8u}) {
    common::ThreadPool pool(threads);
    RandomForest parallel;
    common::Rng rng(99);
    parallel.Fit(x, y, SmallForest(), &rng, &pool);

    ASSERT_EQ(parallel.feature_importance().size(),
              serial.feature_importance().size());
    for (size_t c = 0; c < serial.feature_importance().size(); ++c) {
      EXPECT_EQ(parallel.feature_importance()[c],
                serial.feature_importance()[c])
          << "threads=" << threads << " feature=" << c;
    }
    EXPECT_EQ(parallel.RankFeatures(), serial.RankFeatures());
    for (size_t r = 0; r < x.rows(); r += 7) {
      const std::vector<double> row = x.Row(r);
      EXPECT_DOUBLE_EQ(parallel.Predict(row), serial.Predict(row))
          << "threads=" << threads << " row=" << r;
    }
  }
}

TEST(ForestParallelTest, SingleThreadPoolTakesSerialPath) {
  linalg::Matrix x;
  std::vector<double> y;
  MakeData(40, 6, &x, &y);

  RandomForest serial;
  {
    common::Rng rng(7);
    serial.Fit(x, y, SmallForest(), &rng);
  }
  common::ThreadPool pool(1);
  RandomForest pooled;
  common::Rng rng(7);
  pooled.Fit(x, y, SmallForest(), &rng, &pool);
  EXPECT_EQ(pooled.feature_importance(), serial.feature_importance());
}

TEST(ForestParallelTest, FitIndicesWithIdentityMatchesFit) {
  linalg::Matrix x;
  std::vector<double> y;
  MakeData(50, 8, &x, &y);
  std::vector<size_t> identity(x.rows());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;

  CartOptions options;
  options.max_depth = 6;
  options.max_features = 4;

  CartTree via_fit;
  CartTree via_indices;
  common::Rng rng_a(11);
  common::Rng rng_b(11);
  via_fit.Fit(x, y, options, &rng_a);
  via_indices.FitIndices(x, y, identity, options, &rng_b);

  EXPECT_EQ(via_fit.num_nodes(), via_indices.num_nodes());
  EXPECT_EQ(via_fit.feature_importance(), via_indices.feature_importance());
  for (size_t r = 0; r < x.rows(); ++r) {
    const std::vector<double> row = x.Row(r);
    EXPECT_DOUBLE_EQ(via_fit.Predict(row), via_indices.Predict(row));
  }
}

TEST(ForestParallelTest, BootstrapViewWithDuplicatesFits) {
  linalg::Matrix x;
  std::vector<double> y;
  MakeData(30, 5, &x, &y);
  // A heavily duplicated view must still produce a valid tree.
  std::vector<size_t> view;
  for (size_t i = 0; i < 60; ++i) view.push_back(i % 10);

  CartOptions options;
  options.max_depth = 4;
  CartTree tree;
  common::Rng rng(3);
  tree.FitIndices(x, y, view, options, &rng);
  EXPECT_GE(tree.num_nodes(), 1u);
  const double prediction = tree.Predict(x.Row(0));
  EXPECT_TRUE(std::isfinite(prediction));
}

}  // namespace
}  // namespace hunter::ml
