#include "ml/gaussian_process.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {
namespace {

TEST(GpTest, InterpolatesTrainingPoints) {
  linalg::Matrix x({{0.1}, {0.5}, {0.9}});
  std::vector<double> y = {1.0, 3.0, 2.0};
  GpOptions options;
  options.length_scale = 0.2;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(gp.Predict(x.Row(i)).mean, y[i], 0.1);
  }
}

TEST(GpTest, VarianceSmallNearDataLargeFar) {
  linalg::Matrix x({{0.4}, {0.5}, {0.6}});
  std::vector<double> y = {1.0, 1.1, 0.9};
  GpOptions options;
  options.length_scale = 0.1;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  const double near = gp.Predict({0.5}).variance;
  const double far = gp.Predict({0.0}).variance;
  EXPECT_LT(near, far);
  EXPECT_GT(far, 0.5);  // far points revert toward prior variance 1.0
}

TEST(GpTest, UnfittedPredictsPrior) {
  GaussianProcess gp;
  const auto p = gp.Predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(GpTest, MeanRevertsToDataMeanFarAway) {
  linalg::Matrix x({{0.45}, {0.5}, {0.55}});
  std::vector<double> y = {10.0, 12.0, 11.0};
  GpOptions options;
  options.length_scale = 0.05;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  EXPECT_NEAR(gp.Predict({0.0}).mean, 11.0, 0.5);
}

TEST(GpTest, ExpectedImprovementPositiveWhereUncertain) {
  linalg::Matrix x(std::vector<std::vector<double>>{{0.2}, {0.3}});
  std::vector<double> y = {1.0, 1.2};
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y));
  const double ei_far = gp.ExpectedImprovement({0.9}, 1.2);
  EXPECT_GT(ei_far, 0.0);
}

TEST(GpTest, ExpectedImprovementNearZeroAtDominatedKnownPoint) {
  linalg::Matrix x(std::vector<std::vector<double>>{{0.2}, {0.8}});
  std::vector<double> y = {0.0, 2.0};
  GpOptions options;
  options.length_scale = 0.1;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  // At the known bad point, EI over best=2.0 should be tiny.
  EXPECT_LT(gp.ExpectedImprovement({0.2}, 2.0), 0.05);
  EXPECT_GT(gp.ExpectedImprovement({0.5}, 2.0),
            gp.ExpectedImprovement({0.2}, 2.0));
}

// ---------------------------------------------------------------------------
// Incremental-fit and batch-scoring contracts (DESIGN.md §11).

void MakeRandomTraining(size_t n, size_t d, common::Rng* rng, linalg::Matrix* x,
                        std::vector<double>* y) {
  *x = linalg::Matrix(n, d);
  y->resize(n);
  for (size_t r = 0; r < n; ++r) {
    double label = 0.0;
    for (size_t c = 0; c < d; ++c) {
      const double v = rng->Uniform(0.0, 1.0);
      x->At(r, c) = v;
      label += v * static_cast<double>(c + 1) * 0.3;
    }
    (*y)[r] = std::sin(label) + rng->Gaussian(0.0, 0.05);
  }
}

linalg::Matrix RowSlice(const linalg::Matrix& x, size_t begin, size_t end) {
  linalg::Matrix out(end - begin, x.cols());
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < x.cols(); ++c) out.At(r - begin, c) = x.At(r, c);
  }
  return out;
}

TEST(GpTest, IncrementalFitMatchesFullRefit) {
  common::Rng rng(101);
  const size_t n = 30;
  const size_t d = 5;
  linalg::Matrix x;
  std::vector<double> y;
  MakeRandomTraining(n, d, &rng, &x, &y);

  GaussianProcess incremental;
  for (size_t m = 3; m <= n; ++m) {
    std::vector<double> ym(y.begin(), y.begin() + static_cast<long>(m));
    ASSERT_TRUE(incremental.Fit(RowSlice(x, 0, m), ym));
  }
  EXPECT_EQ(incremental.full_refits(), 1u);  // only the first Fit
  EXPECT_EQ(incremental.incremental_updates(), n - 3);

  GaussianProcess full;
  ASSERT_TRUE(full.Fit(x, y));
  EXPECT_EQ(full.full_refits(), 1u);

  for (int p = 0; p < 20; ++p) {
    std::vector<double> q(d);
    for (double& v : q) v = rng.Uniform(0.0, 1.0);
    const auto pi = incremental.Predict(q);
    const auto pf = full.Predict(q);
    EXPECT_NEAR(pi.mean, pf.mean, 1e-9);
    EXPECT_NEAR(pi.variance, pf.variance, 1e-9);
    EXPECT_NEAR(incremental.ExpectedImprovement(q, 0.4),
                full.ExpectedImprovement(q, 0.4), 1e-9);
  }
}

TEST(GpTest, SlidingWindowFallsBackToFullRefit) {
  common::Rng rng(102);
  const size_t n = 12;
  linalg::Matrix x;
  std::vector<double> y;
  MakeRandomTraining(n, 3, &rng, &x, &y);

  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(RowSlice(x, 0, 8), {y.begin(), y.begin() + 8}));
  ASSERT_TRUE(gp.Fit(RowSlice(x, 0, 9), {y.begin(), y.begin() + 9}));
  EXPECT_EQ(gp.full_refits(), 1u);
  EXPECT_EQ(gp.incremental_updates(), 1u);

  // A slid window (drops the oldest row) is not an extension: full refit.
  ASSERT_TRUE(gp.Fit(RowSlice(x, 1, 10), {y.begin() + 1, y.begin() + 10}));
  EXPECT_EQ(gp.full_refits(), 2u);
  EXPECT_EQ(gp.incremental_updates(), 1u);

  GaussianProcess fresh;
  ASSERT_TRUE(fresh.Fit(RowSlice(x, 1, 10), {y.begin() + 1, y.begin() + 10}));
  for (int p = 0; p < 10; ++p) {
    std::vector<double> q = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_NEAR(gp.Predict(q).mean, fresh.Predict(q).mean, 1e-12);
    EXPECT_NEAR(gp.Predict(q).variance, fresh.Predict(q).variance, 1e-12);
  }
}

TEST(GpTest, BatchPredictionMatchesScalarPath) {
  common::Rng rng(103);
  const size_t n = 25;
  const size_t d = 4;
  linalg::Matrix x;
  std::vector<double> y;
  MakeRandomTraining(n, d, &rng, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y));

  const size_t queries = 40;
  linalg::Matrix q(queries, d);
  for (size_t r = 0; r < queries; ++r) {
    for (size_t c = 0; c < d; ++c) q.At(r, c) = rng.Uniform(-0.2, 1.2);
  }
  std::vector<GaussianProcess::Prediction> batch;
  gp.PredictBatch(q, &batch);
  std::vector<double> ei_batch;
  gp.ExpectedImprovementBatch(q, 0.7, &ei_batch);
  ASSERT_EQ(batch.size(), queries);
  ASSERT_EQ(ei_batch.size(), queries);
  for (size_t r = 0; r < queries; ++r) {
    const auto scalar = gp.Predict(q.Row(r));
    EXPECT_NEAR(batch[r].mean, scalar.mean, 1e-9);
    EXPECT_NEAR(batch[r].variance, scalar.variance, 1e-9);
    EXPECT_NEAR(ei_batch[r], gp.ExpectedImprovement(q.Row(r), 0.7), 1e-9);
  }
}

TEST(GpTest, BatchOnUnfittedGpReturnsPrior) {
  GaussianProcess gp;
  linalg::Matrix q(std::vector<std::vector<double>>{{0.1}, {0.9}});
  std::vector<GaussianProcess::Prediction> batch;
  gp.PredictBatch(q, &batch);
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& p : batch) {
    EXPECT_DOUBLE_EQ(p.mean, 0.0);
    EXPECT_DOUBLE_EQ(p.variance, 1.0);
  }
}

TEST(GpTest, FitsMultiDimensionalFunction) {
  common::Rng rng(1);
  const size_t n = 60;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Uniform();
    x.At(i, 1) = rng.Uniform();
    y[i] = std::sin(3 * x.At(i, 0)) + x.At(i, 1);
  }
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y));
  double total_err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> q = {rng.Uniform(), rng.Uniform()};
    total_err += std::abs(gp.Predict(q).mean - (std::sin(3 * q[0]) + q[1]));
  }
  EXPECT_LT(total_err / 20.0, 0.15);
}

}  // namespace
}  // namespace hunter::ml
