#include "ml/gaussian_process.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {
namespace {

TEST(GpTest, InterpolatesTrainingPoints) {
  linalg::Matrix x({{0.1}, {0.5}, {0.9}});
  std::vector<double> y = {1.0, 3.0, 2.0};
  GpOptions options;
  options.length_scale = 0.2;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(gp.Predict(x.Row(i)).mean, y[i], 0.1);
  }
}

TEST(GpTest, VarianceSmallNearDataLargeFar) {
  linalg::Matrix x({{0.4}, {0.5}, {0.6}});
  std::vector<double> y = {1.0, 1.1, 0.9};
  GpOptions options;
  options.length_scale = 0.1;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  const double near = gp.Predict({0.5}).variance;
  const double far = gp.Predict({0.0}).variance;
  EXPECT_LT(near, far);
  EXPECT_GT(far, 0.5);  // far points revert toward prior variance 1.0
}

TEST(GpTest, UnfittedPredictsPrior) {
  GaussianProcess gp;
  const auto p = gp.Predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.0);
}

TEST(GpTest, MeanRevertsToDataMeanFarAway) {
  linalg::Matrix x({{0.45}, {0.5}, {0.55}});
  std::vector<double> y = {10.0, 12.0, 11.0};
  GpOptions options;
  options.length_scale = 0.05;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  EXPECT_NEAR(gp.Predict({0.0}).mean, 11.0, 0.5);
}

TEST(GpTest, ExpectedImprovementPositiveWhereUncertain) {
  linalg::Matrix x(std::vector<std::vector<double>>{{0.2}, {0.3}});
  std::vector<double> y = {1.0, 1.2};
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y));
  const double ei_far = gp.ExpectedImprovement({0.9}, 1.2);
  EXPECT_GT(ei_far, 0.0);
}

TEST(GpTest, ExpectedImprovementNearZeroAtDominatedKnownPoint) {
  linalg::Matrix x(std::vector<std::vector<double>>{{0.2}, {0.8}});
  std::vector<double> y = {0.0, 2.0};
  GpOptions options;
  options.length_scale = 0.1;
  options.noise_variance = 1e-6;
  GaussianProcess gp(options);
  ASSERT_TRUE(gp.Fit(x, y));
  // At the known bad point, EI over best=2.0 should be tiny.
  EXPECT_LT(gp.ExpectedImprovement({0.2}, 2.0), 0.05);
  EXPECT_GT(gp.ExpectedImprovement({0.5}, 2.0),
            gp.ExpectedImprovement({0.2}, 2.0));
}

TEST(GpTest, FitsMultiDimensionalFunction) {
  common::Rng rng(1);
  const size_t n = 60;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Uniform();
    x.At(i, 1) = rng.Uniform();
    y[i] = std::sin(3 * x.At(i, 0)) + x.At(i, 1);
  }
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y));
  double total_err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> q = {rng.Uniform(), rng.Uniform()};
    total_err += std::abs(gp.Predict(q).mean - (std::sin(3 * q[0]) + q[1]));
  }
  EXPECT_LT(total_err / 20.0, 0.15);
}

}  // namespace
}  // namespace hunter::ml
