#include "ml/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {
namespace {

// Builds a dataset where `dim` observed columns are linear mixtures of
// `latent` independent factors (plus small noise), mimicking how the 63 CDB
// metrics derive from a handful of internal engine quantities.
linalg::Matrix LatentMixture(size_t n, size_t dim, size_t latent,
                             double noise, common::Rng* rng) {
  linalg::Matrix mixing(latent, dim);
  for (size_t l = 0; l < latent; ++l) {
    for (size_t d = 0; d < dim; ++d) mixing.At(l, d) = rng->Gaussian();
  }
  linalg::Matrix data(n, dim);
  for (size_t r = 0; r < n; ++r) {
    std::vector<double> factors(latent);
    for (size_t l = 0; l < latent; ++l) factors[l] = rng->Gaussian();
    for (size_t d = 0; d < dim; ++d) {
      double value = 0.0;
      for (size_t l = 0; l < latent; ++l) value += factors[l] * mixing.At(l, d);
      data.At(r, d) = value + noise * rng->Gaussian();
    }
  }
  return data;
}

TEST(PcaTest, ExplainedVarianceSumsToOne) {
  common::Rng rng(1);
  Pca pca;
  pca.Fit(LatentMixture(200, 10, 3, 0.1, &rng));
  double total = 0.0;
  for (double r : pca.explained_variance_ratio()) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PcaTest, RatiosAreDescending) {
  common::Rng rng(2);
  Pca pca;
  pca.Fit(LatentMixture(200, 12, 4, 0.1, &rng));
  const auto& ratios = pca.explained_variance_ratio();
  for (size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_LE(ratios[i], ratios[i - 1] + 1e-12);
  }
}

TEST(PcaTest, LatentDimensionRecovered) {
  common::Rng rng(3);
  Pca pca;
  // 30 metrics driven by 5 latent factors: ~5 components should explain 90%.
  pca.Fit(LatentMixture(400, 30, 5, 0.05, &rng));
  const size_t k = pca.ComponentsForVariance(0.90);
  EXPECT_LE(k, 7u);
  EXPECT_GE(k, 4u);
}

TEST(PcaTest, CumulativeRatioMonotone) {
  common::Rng rng(4);
  Pca pca;
  pca.Fit(LatentMixture(100, 8, 3, 0.2, &rng));
  const auto cdf = pca.CumulativeVarianceRatio();
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

TEST(PcaTest, TransformReducesDimension) {
  common::Rng rng(5);
  Pca pca;
  linalg::Matrix data = LatentMixture(100, 10, 3, 0.1, &rng);
  pca.Fit(data);
  const auto projected = pca.Transform(data.Row(0), 4);
  EXPECT_EQ(projected.size(), 4u);
  linalg::Matrix all = pca.TransformMatrix(data, 4);
  EXPECT_EQ(all.rows(), 100u);
  EXPECT_EQ(all.cols(), 4u);
}

TEST(PcaTest, ComponentsAreUncorrelated) {
  common::Rng rng(6);
  Pca pca;
  linalg::Matrix data = LatentMixture(300, 10, 4, 0.1, &rng);
  pca.Fit(data);
  linalg::Matrix z = pca.TransformMatrix(data, 3);
  linalg::Matrix cov = linalg::Covariance(z);
  EXPECT_NEAR(cov.At(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(cov.At(0, 2), 0.0, 1e-6);
  EXPECT_NEAR(cov.At(1, 2), 0.0, 1e-6);
}

TEST(PcaTest, FirstComponentCapturesDominantDirection) {
  // Two columns, second = 3x first: one component should capture ~everything.
  common::Rng rng(7);
  linalg::Matrix data(100, 2);
  for (size_t r = 0; r < 100; ++r) {
    const double v = rng.Gaussian();
    data.At(r, 0) = v;
    data.At(r, 1) = 3.0 * v;
  }
  Pca pca;
  pca.Fit(data);
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.999);
  EXPECT_EQ(pca.ComponentsForVariance(0.9), 1u);
}

TEST(PcaTest, StandardizationHandlesScaleDifferences) {
  // Without standardization a huge-scale noise column dominates; with it,
  // the correlated structure should dominate component 1.
  common::Rng rng(8);
  linalg::Matrix data(200, 3);
  for (size_t r = 0; r < 200; ++r) {
    const double shared = rng.Gaussian();
    data.At(r, 0) = shared;
    data.At(r, 1) = shared + 0.01 * rng.Gaussian();
    data.At(r, 2) = 1e6 * rng.Gaussian();  // independent, huge units
  }
  Pca pca;
  pca.Fit(data, /*standardize=*/true);
  // Shared factor spans 2 of 3 standardized columns -> ~2/3 of variance.
  EXPECT_GT(pca.explained_variance_ratio()[0], 0.6);
}

}  // namespace
}  // namespace hunter::ml
