#include "ml/ddpg.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hunter::ml {
namespace {

DdpgOptions SmallOptions() {
  DdpgOptions options;
  options.state_dim = 3;
  options.action_dim = 2;
  options.actor_hidden = {16, 16};
  options.critic_hidden = {16, 16};
  options.batch_size = 16;
  return options;
}

TEST(DdpgTest, ActionsInUnitInterval) {
  common::Rng rng(1);
  Ddpg agent(SmallOptions(), &rng);
  for (int i = 0; i < 20; ++i) {
    common::Rng srng(static_cast<uint64_t>(i));
    const std::vector<double> state = {srng.Uniform(), srng.Uniform(),
                                       srng.Uniform()};
    const auto action = agent.Act(state);
    ASSERT_EQ(action.size(), 2u);
    for (double a : action) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST(DdpgTest, TrainStepOnEmptyBufferIsNoOp) {
  common::Rng rng(2);
  Ddpg agent(SmallOptions(), &rng);
  EXPECT_DOUBLE_EQ(agent.TrainStep(), 0.0);
}

TEST(DdpgTest, CriticLossDecreasesOnStationaryData) {
  common::Rng rng(3);
  Ddpg agent(SmallOptions(), &rng);
  // Bandit-style data: reward depends only on the action.
  common::Rng data_rng(17);
  for (int i = 0; i < 200; ++i) {
    Transition t;
    t.state = {0.5, 0.5, 0.5};
    t.action = {data_rng.Uniform(), data_rng.Uniform()};
    t.reward = 1.0 - std::abs(t.action[0] - 0.7) - std::abs(t.action[1] - 0.3);
    t.next_state = t.state;
    t.terminal = true;
    agent.AddTransition(std::move(t));
  }
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 30; ++i) early += agent.TrainStep();
  for (int i = 0; i < 300; ++i) agent.TrainStep();
  for (int i = 0; i < 30; ++i) late += agent.TrainStep();
  EXPECT_LT(late, early);
}

TEST(DdpgTest, ActorMovesTowardHighRewardAction) {
  common::Rng rng(4);
  DdpgOptions options = SmallOptions();
  options.actor_lr = 3e-3;
  Ddpg agent(options, &rng);
  common::Rng data_rng(23);
  // Optimal action is (0.8, 0.2) regardless of state.
  for (int i = 0; i < 300; ++i) {
    Transition t;
    t.state = {data_rng.Uniform(), data_rng.Uniform(), data_rng.Uniform()};
    t.action = {data_rng.Uniform(), data_rng.Uniform()};
    t.reward = 1.0 - std::abs(t.action[0] - 0.8) - std::abs(t.action[1] - 0.2);
    t.next_state = t.state;
    t.terminal = true;
    agent.AddTransition(std::move(t));
  }
  for (int i = 0; i < 1500; ++i) agent.TrainStep();
  const auto action = agent.Act({0.5, 0.5, 0.5});
  EXPECT_NEAR(action[0], 0.8, 0.25);
  EXPECT_NEAR(action[1], 0.2, 0.25);
}

TEST(DdpgTest, QValueReflectsRewardOrdering) {
  common::Rng rng(5);
  Ddpg agent(SmallOptions(), &rng);
  common::Rng data_rng(29);
  for (int i = 0; i < 300; ++i) {
    Transition t;
    t.state = {0.5, 0.5, 0.5};
    const double a = data_rng.Uniform();
    t.action = {a, a};
    t.reward = a;  // higher action -> higher reward
    t.next_state = t.state;
    t.terminal = true;
    agent.AddTransition(std::move(t));
  }
  for (int i = 0; i < 800; ++i) agent.TrainStep();
  const std::vector<double> state = {0.5, 0.5, 0.5};
  EXPECT_GT(agent.EvaluateQ(state, {0.9, 0.9}),
            agent.EvaluateQ(state, {0.1, 0.1}));
}

TEST(DdpgTest, SaveLoadRoundTripPreservesPolicy) {
  common::Rng rng_a(6);
  Ddpg a(SmallOptions(), &rng_a);
  common::Rng rng_b(77);
  Ddpg b(SmallOptions(), &rng_b);
  const std::vector<double> state = {0.3, 0.6, 0.9};
  EXPECT_NE(a.Act(state), b.Act(state));
  b.LoadParameters(a.SaveParameters());
  EXPECT_EQ(a.Act(state), b.Act(state));
}

TEST(DdpgTest, DeterministicGivenSeed) {
  auto build_and_train = [](uint64_t seed) {
    common::Rng rng(seed);
    Ddpg agent(SmallOptions(), &rng);
    common::Rng data_rng(31);
    for (int i = 0; i < 100; ++i) {
      Transition t;
      t.state = {data_rng.Uniform(), 0.5, 0.5};
      t.action = {data_rng.Uniform(), data_rng.Uniform()};
      t.reward = t.action[0];
      t.next_state = t.state;
      agent.AddTransition(std::move(t));
    }
    for (int i = 0; i < 50; ++i) agent.TrainStep();
    return agent.Act({0.5, 0.5, 0.5});
  };
  EXPECT_EQ(build_and_train(42), build_and_train(42));
}

TEST(DdpgTest, BatchedTrainingMatchesScalarTraining) {
  // Two agents from the same seed, differing only in the batched_training
  // flag, must track each other to 1e-9: same per-step losses, same final
  // policy, same parameters.
  auto make_agent = [](bool batched) {
    common::Rng rng(7);
    DdpgOptions options = SmallOptions();
    options.batched_training = batched;
    return Ddpg(options, &rng);
  };
  Ddpg scalar_agent = make_agent(false);
  Ddpg batched_agent = make_agent(true);
  common::Rng data_rng(37);
  for (int i = 0; i < 120; ++i) {
    Transition t;
    t.state = {data_rng.Uniform(), data_rng.Uniform(), data_rng.Uniform()};
    t.action = {data_rng.Uniform(), data_rng.Uniform()};
    t.reward = t.action[0] - 0.5 * t.action[1];
    t.next_state = {data_rng.Uniform(), data_rng.Uniform(),
                    data_rng.Uniform()};
    t.terminal = data_rng.Bernoulli(0.1);
    Transition copy = t;
    scalar_agent.AddTransition(std::move(t));
    batched_agent.AddTransition(std::move(copy));
  }
  for (int i = 0; i < 40; ++i) {
    const double scalar_loss = scalar_agent.TrainStep();
    const double batched_loss = batched_agent.TrainStep();
    ASSERT_NEAR(scalar_loss, batched_loss, 1e-9) << "step " << i;
  }
  const std::vector<double> state = {0.4, 0.1, 0.8};
  const auto scalar_action = scalar_agent.Act(state);
  const auto batched_action = batched_agent.Act(state);
  ASSERT_EQ(scalar_action.size(), batched_action.size());
  for (size_t i = 0; i < scalar_action.size(); ++i) {
    EXPECT_NEAR(scalar_action[i], batched_action[i], 1e-9);
  }
  const std::vector<double> scalar_params = scalar_agent.SaveParameters();
  const std::vector<double> batched_params = batched_agent.SaveParameters();
  ASSERT_EQ(scalar_params.size(), batched_params.size());
  for (size_t i = 0; i < scalar_params.size(); ++i) {
    ASSERT_NEAR(scalar_params[i], batched_params[i], 1e-9);
  }
}

TEST(ReplayBufferTest, EvictsOldestBeyondCapacity) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.reward = i;
    buffer.Add(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_DOUBLE_EQ(buffer.transitions().front().reward, 2.0);
  EXPECT_DOUBLE_EQ(buffer.transitions().back().reward, 4.0);
}

TEST(ReplayBufferTest, SampleBatchSizeAndSource) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 4; ++i) {
    Transition t;
    t.reward = i;
    buffer.Add(std::move(t));
  }
  common::Rng rng(1);
  const auto batch = buffer.SampleBatch(8, &rng);
  EXPECT_EQ(batch.size(), 8u);
  for (const auto& t : batch) {
    EXPECT_GE(t.reward, 0.0);
    EXPECT_LE(t.reward, 3.0);
  }
}

TEST(ReplayBufferTest, SampleFromEmptyIsEmpty) {
  ReplayBuffer buffer(10);
  common::Rng rng(1);
  EXPECT_TRUE(buffer.SampleBatch(5, &rng).empty());
  std::vector<size_t> indices = {1, 2, 3};
  buffer.SampleIndices(5, &rng, &indices);
  EXPECT_TRUE(indices.empty());
}

TEST(ReplayBufferTest, SampleIndicesMatchesSampleBatch) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 6; ++i) {
    Transition t;
    t.reward = i;
    buffer.Add(std::move(t));
  }
  // Same seed -> SampleIndices and SampleBatch draw the same transitions
  // (SampleBatch is implemented on top of SampleIndices).
  common::Rng rng_a(5);
  common::Rng rng_b(5);
  std::vector<size_t> indices;
  buffer.SampleIndices(7, &rng_a, &indices);
  const auto batch = buffer.SampleBatch(7, &rng_b);
  ASSERT_EQ(indices.size(), 7u);
  ASSERT_EQ(batch.size(), 7u);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_LT(indices[i], buffer.size());
    EXPECT_DOUBLE_EQ(buffer.at(indices[i]).reward, batch[i].reward);
  }
}

}  // namespace
}  // namespace hunter::ml
