#include "hunter/model_io.h"

#include <cstdio>
#include <locale>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::core {
namespace {

HunterModel MakeModel(bool with_pca) {
  HunterModel model;
  model.space.state_dim = with_pca ? 5 : 63;
  model.space.use_pca = with_pca;
  model.space.selected_knobs = {3, 1, 41, 7};
  model.space.knob_importance.assign(65, 0.01);
  model.space.knob_importance[3] = 0.4;
  if (with_pca) {
    common::Rng rng(1);
    linalg::Matrix data(40, 8);
    for (size_t r = 0; r < 40; ++r) {
      for (size_t c = 0; c < 8; ++c) data.At(r, c) = rng.Gaussian();
    }
    model.space.pca.Fit(data);
  }
  model.ddpg_parameters = {0.5, -1.25, 3.75, 0.0009765625};
  model.base_config.assign(65, 0.25);
  model.signature = model.space.Signature();
  return model;
}

TEST(ModelIoTest, RoundTripWithoutPca) {
  const HunterModel original = MakeModel(false);
  std::stringstream stream;
  ASSERT_TRUE(SaveModel(original, stream));
  HunterModel loaded;
  ASSERT_TRUE(LoadModel(stream, &loaded));
  EXPECT_EQ(loaded.space.state_dim, original.space.state_dim);
  EXPECT_EQ(loaded.space.use_pca, original.space.use_pca);
  EXPECT_EQ(loaded.space.selected_knobs, original.space.selected_knobs);
  EXPECT_EQ(loaded.space.knob_importance, original.space.knob_importance);
  EXPECT_EQ(loaded.ddpg_parameters, original.ddpg_parameters);
  EXPECT_EQ(loaded.base_config, original.base_config);
  EXPECT_EQ(loaded.signature, original.signature);
}

TEST(ModelIoTest, RoundTripWithPcaPreservesTransform) {
  const HunterModel original = MakeModel(true);
  std::stringstream stream;
  ASSERT_TRUE(SaveModel(original, stream));
  HunterModel loaded;
  ASSERT_TRUE(LoadModel(stream, &loaded));
  ASSERT_TRUE(loaded.space.pca.fitted());
  // The restored transform must project identically.
  const std::vector<double> point = {0.1, -0.3, 0.7, 1.1, -0.5, 0.0, 2.0,
                                     -1.0};
  const auto a = original.space.pca.Transform(point, 4);
  const auto b = loaded.space.pca.Transform(point, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(ModelIoTest, FileRoundTrip) {
  const HunterModel original = MakeModel(true);
  const std::string path = ::testing::TempDir() + "/hunter_model_test.txt";
  ASSERT_TRUE(SaveModelToFile(original, path));
  HunterModel loaded;
  ASSERT_TRUE(LoadModelFromFile(path, &loaded));
  EXPECT_EQ(loaded.signature, original.signature);
  EXPECT_EQ(loaded.ddpg_parameters, original.ddpg_parameters);
  std::remove(path.c_str());
}

TEST(ModelIoTest, RoundTripSurvivesHostileGlobalLocale) {
  // Regression: Save/LoadModel used the stream's inherited locale, so a
  // comma-decimal global locale would write "0,5"-style doubles and fail
  // to read back models written under the classic locale.
  class CommaNumpunct : public std::numpunct<char> {
   protected:
    char do_decimal_point() const override { return ','; }
    std::string do_grouping() const override { return "\3"; }
  };
  const HunterModel original = MakeModel(false);
  std::stringstream classic_stream;
  ASSERT_TRUE(SaveModel(original, classic_stream));
  const std::string classic_bytes = classic_stream.str();

  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new CommaNumpunct));
  std::stringstream comma_stream;
  const bool saved_ok = SaveModel(original, comma_stream);
  HunterModel loaded;
  const bool loaded_ok = LoadModel(comma_stream, &loaded);
  std::locale::global(saved);

  ASSERT_TRUE(saved_ok);
  ASSERT_TRUE(loaded_ok);
  EXPECT_EQ(comma_stream.str(), classic_bytes);
  EXPECT_EQ(loaded.ddpg_parameters, original.ddpg_parameters);
}

TEST(ModelIoTest, RejectsWrongMagic) {
  std::stringstream stream("NOT_A_MODEL 1 2 3");
  HunterModel model;
  EXPECT_FALSE(LoadModel(stream, &model));
}

TEST(ModelIoTest, RejectsTruncatedStream) {
  const HunterModel original = MakeModel(false);
  std::stringstream stream;
  ASSERT_TRUE(SaveModel(original, stream));
  const std::string text = stream.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  HunterModel model;
  EXPECT_FALSE(LoadModel(truncated, &model));
}

TEST(ModelIoTest, MissingFileFails) {
  HunterModel model;
  EXPECT_FALSE(LoadModelFromFile("/no/such/dir/model.txt", &model));
}

TEST(ModelIoTest, EmptySignatureRoundTrips) {
  HunterModel model = MakeModel(false);
  model.signature.clear();
  std::stringstream stream;
  ASSERT_TRUE(SaveModel(model, stream));
  HunterModel loaded;
  ASSERT_TRUE(LoadModel(stream, &loaded));
  EXPECT_TRUE(loaded.signature.empty());
}

}  // namespace
}  // namespace hunter::core
