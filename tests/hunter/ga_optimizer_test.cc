#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "cdb/metric_catalog.h"
#include "hunter/ga.h"
#include "hunter/search_space_optimizer.h"

namespace hunter::core {
namespace {

controller::Sample MakeSample(const std::vector<double>& knobs,
                              double fitness, common::Rng* rng) {
  controller::Sample sample;
  sample.knobs = knobs;
  sample.fitness = fitness;
  sample.metrics.resize(cdb::kNumMetrics);
  // Metrics correlated with a few latent drivers plus noise.
  const double latent_a = knobs[0];
  const double latent_b = knobs[1];
  for (size_t i = 0; i < cdb::kNumMetrics; ++i) {
    const double mix = (i % 2 == 0) ? latent_a : latent_b;
    sample.metrics[i] =
        mix * (1.0 + 0.1 * static_cast<double>(i % 5)) + 0.01 * rng->Gaussian();
  }
  sample.throughput_tps = 1000 * (1 + fitness);
  sample.latency_p95_ms = 50;
  return sample;
}

// Separable objective with one dominant knob per index parity.
double Objective(const std::vector<double>& knobs) {
  double f = 0.0;
  f += 1.0 - std::abs(knobs[0] - 0.8);   // knob 0 matters a lot
  f += 0.8 * (1.0 - std::abs(knobs[1] - 0.3));
  for (size_t i = 2; i < knobs.size(); ++i) {
    f += 0.002 * knobs[i];  // long tail of near-irrelevant knobs
  }
  return f;
}

class GaTest : public ::testing::Test {
 protected:
  GaTest() : catalog_(cdb::MySqlCatalog()) {}
  cdb::KnobCatalog catalog_;
  Rules rules_;
};

TEST_F(GaTest, RespectsSampleBudget) {
  GaOptions options;
  options.target_samples = 50;
  GeneticSampleFactory factory(&catalog_, &rules_, options, 1);
  size_t total = 0;
  common::Rng rng(1);
  while (!factory.Done()) {
    auto proposals = factory.Propose(8);
    ASSERT_FALSE(proposals.empty());
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      samples.push_back(MakeSample(p, Objective(p), &rng));
    }
    factory.Observe(samples);
    total += samples.size();
  }
  EXPECT_EQ(total, 50u);
  EXPECT_EQ(factory.evaluated(), 50u);
  EXPECT_TRUE(factory.Propose(4).empty());
}

TEST_F(GaTest, ImprovesOverGenerations) {
  GaOptions options;
  options.target_samples = 200;
  options.population = 20;
  GeneticSampleFactory factory(&catalog_, &rules_, options, 2);
  common::Rng rng(2);
  double first_gen_best = -1e9;
  double last_gen_best = -1e9;
  size_t seen = 0;
  while (!factory.Done()) {
    auto proposals = factory.Propose(20);
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      const double f = Objective(p);
      if (seen < 20) first_gen_best = std::max(first_gen_best, f);
      if (seen >= 180) last_gen_best = std::max(last_gen_best, f);
      ++seen;
      samples.push_back(MakeSample(p, f, &rng));
    }
    factory.Observe(samples);
  }
  EXPECT_GT(last_gen_best, first_gen_best);
  // The dominant knob should have been pushed toward its optimum 0.8.
  EXPECT_NEAR(factory.best_individual()[0], 0.8, 0.2);
}

TEST_F(GaTest, RespectsRules) {
  Rules rules;
  rules.FixKnob("innodb_adaptive_hash_index", 0);
  GaOptions options;
  options.target_samples = 60;
  GeneticSampleFactory factory(&catalog_, &rules, options, 3);
  const size_t ahi =
      static_cast<size_t>(catalog_.IndexOf("innodb_adaptive_hash_index"));
  common::Rng rng(3);
  while (!factory.Done()) {
    auto proposals = factory.Propose(10);
    for (const auto& p : proposals) {
      EXPECT_DOUBLE_EQ(catalog_.Denormalize(ahi, p[ahi]), 0.0);
    }
    std::vector<controller::Sample> samples;
    for (const auto& p : proposals) {
      samples.push_back(MakeSample(p, Objective(p), &rng));
    }
    factory.Observe(samples);
  }
}

TEST_F(GaTest, DeterministicGivenSeed) {
  auto run = [&](uint64_t seed) {
    GaOptions options;
    options.target_samples = 40;
    GeneticSampleFactory factory(&catalog_, &rules_, options, seed);
    common::Rng rng(9);
    std::vector<double> last;
    while (!factory.Done()) {
      auto proposals = factory.Propose(10);
      std::vector<controller::Sample> samples;
      for (const auto& p : proposals) {
        samples.push_back(MakeSample(p, Objective(p), &rng));
        last = p;
      }
      factory.Observe(samples);
    }
    return last;
  };
  EXPECT_EQ(run(42), run(42));
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(cdb::MySqlCatalog()), rng_(5) {}

  std::vector<controller::Sample> MakePool(size_t n) {
    std::vector<controller::Sample> pool;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> knobs(catalog_.size());
      for (double& v : knobs) v = rng_.Uniform();
      pool.push_back(MakeSample(knobs, Objective(knobs), &rng_));
    }
    return pool;
  }

  cdb::KnobCatalog catalog_;
  Rules rules_;
  common::Rng rng_;
};

TEST_F(OptimizerTest, PcaCompressesMetricSpace) {
  OptimizerOptions options;
  options.forest.num_trees = 30;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(140), catalog_, rules_, options, &rng_);
  EXPECT_TRUE(space.use_pca);
  // The synthetic metrics derive from 2 latents: huge compression expected.
  EXPECT_LT(space.state_dim, 10u);
  EXPECT_GE(space.state_dim, 1u);
}

TEST_F(OptimizerTest, RfSelectsTopKnobsIncludingDominantOnes) {
  OptimizerOptions options;
  options.forest.num_trees = 60;
  options.top_knobs = 20;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(280), catalog_, rules_, options, &rng_);
  EXPECT_EQ(space.selected_knobs.size(), 20u);
  // Knob 0 dominates the synthetic objective; it must be selected.
  EXPECT_NE(std::find(space.selected_knobs.begin(),
                      space.selected_knobs.end(), 0u),
            space.selected_knobs.end());
}

TEST_F(OptimizerTest, DisabledPcaKeepsRawMetrics) {
  OptimizerOptions options;
  options.use_pca = false;
  options.forest.num_trees = 20;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(60), catalog_, rules_, options, &rng_);
  EXPECT_FALSE(space.use_pca);
  EXPECT_EQ(space.state_dim, cdb::kNumMetrics);
  const std::vector<double> metrics(cdb::kNumMetrics, 2.0);
  EXPECT_EQ(space.EncodeState(metrics), metrics);
}

TEST_F(OptimizerTest, DisabledRfKeepsAllTunableKnobs) {
  OptimizerOptions options;
  options.use_rf = false;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(60), catalog_, rules_, options, &rng_);
  EXPECT_EQ(space.selected_knobs.size(), catalog_.size());
}

TEST_F(OptimizerTest, FixedKnobsNeverSelected) {
  Rules rules;
  rules.FixKnob("innodb_buffer_pool_size", 4096);
  OptimizerOptions options;
  options.forest.num_trees = 20;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(100), catalog_, rules, options, &rng_);
  const size_t bp =
      static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"));
  EXPECT_EQ(std::find(space.selected_knobs.begin(),
                      space.selected_knobs.end(), bp),
            space.selected_knobs.end());
}

TEST_F(OptimizerTest, SignatureStableAcrossEquivalentSpaces) {
  OptimizedSpace a, b;
  a.state_dim = 13;
  a.selected_knobs = {5, 1, 9};
  b.state_dim = 13;
  b.selected_knobs = {9, 5, 1};  // different order, same set
  EXPECT_EQ(a.Signature(), b.Signature());
  b.state_dim = 12;
  EXPECT_NE(a.Signature(), b.Signature());
}

TEST_F(OptimizerTest, SmallPoolFallsBackGracefully) {
  OptimizerOptions options;
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      MakePool(4), catalog_, rules_, options, &rng_);
  // Not enough data for PCA or RF: raw metrics + all knobs.
  EXPECT_FALSE(space.use_pca);
  EXPECT_EQ(space.selected_knobs.size(), catalog_.size());
}

}  // namespace
}  // namespace hunter::core
