#include "hunter/hunter.h"

#include <memory>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/recommender.h"
#include "workload/workloads.h"

namespace hunter::core {
namespace {

class HunterTest : public ::testing::Test {
 protected:
  HunterTest() : catalog_(cdb::MySqlCatalog()) {}

  std::unique_ptr<controller::Controller> MakeController(int clones) {
    auto instance = std::make_unique<cdb::CdbInstance>(
        &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
        42);
    controller::ControllerOptions options;
    options.num_clones = clones;
    options.seed = 42;
    options.concurrent_actors = false;
    return std::make_unique<controller::Controller>(
        std::move(instance), workload::Tpcc(), options);
  }

  HunterOptions FastOptions() {
    HunterOptions options;
    options.ga.target_samples = 30;
    options.ga.population = 10;
    options.optimizer.forest.num_trees = 20;
    options.recommender.warm_start_updates = 20;
    return options;
  }

  cdb::KnobCatalog catalog_;
};

TEST_F(HunterTest, PhaseTransitionAfterGaBudget) {
  auto controller = MakeController(1);
  HunterTuner tuner(&catalog_, Rules(), FastOptions(), 7);
  EXPECT_EQ(tuner.phase(), HunterTuner::Phase::kSampleFactory);
  for (int round = 0; round < 35; ++round) {
    const auto proposals = tuner.Propose(1);
    tuner.Observe(controller->EvaluateBatch(proposals));
  }
  EXPECT_EQ(tuner.phase(), HunterTuner::Phase::kRecommend);
  EXPECT_GE(tuner.shared_pool().size(), 30u);
  ASSERT_NE(tuner.recommender(), nullptr);
  EXPECT_EQ(tuner.recommender()->space().selected_knobs.size(), 20u);
}

TEST_F(HunterTest, FullLoopImprovesOverDefaults) {
  auto controller = MakeController(2);
  HunterTuner tuner(&catalog_, Rules(), FastOptions(), 8);
  tuners::HarnessOptions harness;
  harness.budget_hours = 8.0;
  const tuners::TuningResult result =
      tuners::RunTuning(&tuner, controller.get(), harness);
  const double default_throughput =
      controller->DefaultPerformance().throughput_tps;
  EXPECT_GT(result.best_throughput, 1.2 * default_throughput);
  EXPECT_GT(result.best_sample.fitness, 0.0);
}

TEST_F(HunterTest, SurvivesFaultyCloneFleet) {
  // Full tuning loop on a fleet with transient failures, crashes, a
  // straggler policy, and one permanent clone death: no hangs, the best
  // configuration still clearly beats the defaults, and no infra-failure
  // sentinel leaks into the Shared Pool.
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  controller::ControllerOptions coptions;
  coptions.num_clones = 4;
  coptions.seed = 42;
  coptions.concurrent_actors = false;
  coptions.faults.seed = 13;
  coptions.faults.transient_deploy_failure_rate = 0.12;
  coptions.faults.crash_rate = 0.04;
  coptions.faults.straggler_rate = 0.05;
  coptions.faults.permanent_deaths = {{2, 3}};
  coptions.straggler_timeout_seconds = 3.0 * controller::Actor::kExecutionSeconds;
  auto controller = std::make_unique<controller::Controller>(
      std::move(instance), workload::Tpcc(), coptions);

  HunterTuner tuner(&catalog_, Rules(), FastOptions(), 8);
  tuners::HarnessOptions harness;
  harness.budget_hours = 8.0;
  const tuners::TuningResult result =
      tuners::RunTuning(&tuner, controller.get(), harness);

  const controller::FaultStats& stats = controller->fault_stats();
  EXPECT_GT(stats.transient_deploy_failures, 0u);
  EXPECT_EQ(stats.permanent_deaths, 1u);
  const double default_throughput =
      controller->DefaultPerformance().throughput_tps;
  EXPECT_GT(result.best_throughput, 1.2 * default_throughput);
  for (const controller::Sample& sample : tuner.shared_pool().Snapshot()) {
    EXPECT_FALSE(sample.evaluation_failed);
  }
}

TEST_F(HunterTest, AblationWithoutGaUsesRandomWarmup) {
  auto controller = MakeController(1);
  HunterOptions options = FastOptions();
  options.use_ga = false;
  options.random_warmup_without_ga = 5;
  HunterTuner tuner(&catalog_, Rules(), options, 9);
  for (int round = 0; round < 8; ++round) {
    const auto proposals = tuner.Propose(1);
    ASSERT_FALSE(proposals.empty());
    tuner.Observe(controller->EvaluateBatch(proposals));
  }
  EXPECT_EQ(tuner.phase(), HunterTuner::Phase::kRecommend);
}

TEST_F(HunterTest, AblationFlagsPropagate) {
  auto controller = MakeController(1);
  HunterOptions options = FastOptions();
  options.use_pca = false;
  options.use_rf = false;
  options.use_fes = false;
  HunterTuner tuner(&catalog_, Rules(), options, 10);
  for (int round = 0; round < 35; ++round) {
    tuner.Observe(controller->EvaluateBatch(tuner.Propose(1)));
  }
  ASSERT_NE(tuner.recommender(), nullptr);
  // No PCA: raw 63-metric state. No RF: all 65 knobs tuned.
  EXPECT_EQ(tuner.recommender()->space().state_dim, cdb::kNumMetrics);
  EXPECT_EQ(tuner.recommender()->space().selected_knobs.size(),
            catalog_.size());
}

TEST_F(HunterTest, RulesAreEnforcedInEveryPhase) {
  auto controller = MakeController(1);
  Rules rules;
  rules.FixKnob("innodb_flush_log_at_trx_commit", 1);
  HunterTuner tuner(&catalog_, rules, FastOptions(), 11);
  const size_t flush = static_cast<size_t>(
      catalog_.IndexOf("innodb_flush_log_at_trx_commit"));
  for (int round = 0; round < 40; ++round) {
    const auto proposals = tuner.Propose(1);
    for (const auto& p : proposals) {
      EXPECT_DOUBLE_EQ(catalog_.Denormalize(flush, p[flush]), 1.0)
          << "round " << round;
    }
    tuner.Observe(controller->EvaluateBatch(proposals));
  }
}

TEST_F(HunterTest, ExportBeforeRecommendPhaseIsEmpty) {
  HunterTuner tuner(&catalog_, Rules(), FastOptions(), 12);
  EXPECT_FALSE(tuner.ExportModel().has_value());
}

TEST_F(HunterTest, ModelReuseRoundTrip) {
  auto controller = MakeController(1);
  HunterTuner teacher(&catalog_, Rules(), FastOptions(), 13);
  for (int round = 0; round < 40; ++round) {
    teacher.Observe(controller->EvaluateBatch(teacher.Propose(1)));
  }
  const auto model = teacher.ExportModel();
  ASSERT_TRUE(model.has_value());
  EXPECT_FALSE(model->signature.empty());
  EXPECT_FALSE(model->ddpg_parameters.empty());

  // A fresh HUNTER imports the model and skips straight to recommending.
  HunterTuner student(&catalog_, Rules(), FastOptions(), 14);
  student.ImportModel(*model);
  EXPECT_EQ(student.phase(), HunterTuner::Phase::kRecommend);
  auto controller2 = MakeController(1);
  const auto proposals = student.Propose(2);
  ASSERT_EQ(proposals.size(), 2u);
  const auto samples = controller2->EvaluateBatch(proposals);
  EXPECT_FALSE(samples[0].boot_failed);
}

TEST_F(HunterTest, ModelRegistryMatchesBySignature) {
  ModelRegistry registry;
  HunterModel model;
  model.space.state_dim = 13;
  model.space.selected_knobs = {1, 2, 3};
  model.signature = model.space.Signature();
  registry.Store(model);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Match(model.signature).has_value());
  EXPECT_FALSE(registry.Match("v7:9,").has_value());
}

TEST(RecommenderTest, FesProbabilitySatisfiesPaperEquations) {
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  Rules rules;
  OptimizedSpace space;
  space.state_dim = 5;
  space.use_pca = false;
  space.selected_knobs = {0, 1, 2};
  RecommenderOptions options;
  Recommender recommender(&catalog, &rules, space, options, 1);
  // Eq. boundary condition: P(A_c)|_{t=0} = 0.3.
  EXPECT_NEAR(recommender.ProbabilityCurrent(0), 0.3, 1e-12);
  // Eq. 7: strictly increasing (until the cap).
  double previous = 0.0;
  for (size_t t = 0; t < 400; t += 20) {
    const double p = recommender.ProbabilityCurrent(t);
    EXPECT_GE(p, previous);
    previous = p;
  }
  // Eq. 6: approaches its limit for large t.
  EXPECT_NEAR(recommender.ProbabilityCurrent(100000),
              options.fes_p_current_cap, 1e-9);
}

TEST(RecommenderTest, WarmStartSeedsReplayAndTracksBest) {
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  Rules rules;
  OptimizedSpace space;
  space.state_dim = 4;
  space.use_pca = false;  // state_dim mismatch handled by encode? use raw
  space.selected_knobs = {0, 1};
  RecommenderOptions options;
  options.warm_start_updates = 5;
  Recommender recommender(&catalog, &rules, space, options, 2);

  std::vector<controller::Sample> pool(3);
  for (size_t i = 0; i < 3; ++i) {
    pool[i].knobs.assign(catalog.size(), 0.5);
    pool[i].knobs[0] = 0.1 * static_cast<double>(i + 1);
    pool[i].metrics.assign(4, static_cast<double>(i));
    pool[i].fitness = static_cast<double>(i) * 0.1;
  }
  recommender.WarmStart(pool, pool[2].knobs);
  EXPECT_DOUBLE_EQ(recommender.best_fitness(), 0.2);
  EXPECT_EQ(recommender.best_full_config(), pool[2].knobs);
}

}  // namespace
}  // namespace hunter::core
