#include "hunter/rules.h"

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"

namespace hunter::core {
namespace {

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() : catalog_(cdb::MySqlCatalog()) {}

  std::vector<double> Half() const {
    return std::vector<double>(catalog_.size(), 0.5);
  }

  double Raw(const std::vector<double>& normalized, const char* name) const {
    const size_t i = static_cast<size_t>(catalog_.IndexOf(name));
    return catalog_.Denormalize(i, normalized[i]);
  }

  cdb::KnobCatalog catalog_;
};

TEST_F(RulesTest, EmptyRulesAreIdentity) {
  Rules rules;
  EXPECT_EQ(rules.Apply(catalog_, Half()), Half());
  EXPECT_EQ(rules.TunableKnobs(catalog_).size(), catalog_.size());
}

TEST_F(RulesTest, FixKnobPinsValue) {
  Rules rules;
  // The paper's example: innodb_adaptive_hash_index = OFF.
  rules.FixKnob("innodb_adaptive_hash_index", 0);
  const auto applied = rules.Apply(catalog_, Half());
  EXPECT_DOUBLE_EQ(Raw(applied, "innodb_adaptive_hash_index"), 0.0);
}

TEST_F(RulesTest, FixedKnobNotTunable) {
  Rules rules;
  rules.FixKnob("innodb_buffer_pool_size", 4096);
  const size_t bp =
      static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"));
  EXPECT_FALSE(rules.IsTunable(catalog_, bp));
  EXPECT_EQ(rules.TunableKnobs(catalog_).size(), catalog_.size() - 1);
}

TEST_F(RulesTest, RangeRestrictionClamps) {
  Rules rules;
  rules.RestrictRange("innodb_buffer_pool_size", 1024, 8192);
  auto low = Half();
  low[static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"))] = 0.0;
  auto high = Half();
  high[static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"))] = 1.0;
  EXPECT_GE(Raw(rules.Apply(catalog_, low), "innodb_buffer_pool_size"),
            1023.0);
  EXPECT_LE(Raw(rules.Apply(catalog_, high), "innodb_buffer_pool_size"),
            8193.0);
}

TEST_F(RulesTest, ConditionalFiresOnlyAboveThreshold) {
  Rules rules;
  // The paper's example: thread pooling if connections > 100 (we map it to
  // capping thread_concurrency when max_connections is large).
  rules.AddConditional("max_connections", 1000, "innodb_thread_concurrency",
                       64);
  auto low_conn = Half();
  const size_t conn =
      static_cast<size_t>(catalog_.IndexOf("max_connections"));
  low_conn[conn] = catalog_.Normalize(conn, 150);
  const auto low_applied = rules.Apply(catalog_, low_conn);
  EXPECT_NE(Raw(low_applied, "innodb_thread_concurrency"), 64.0);

  auto high_conn = Half();
  high_conn[conn] = catalog_.Normalize(conn, 5000);
  const auto high_applied = rules.Apply(catalog_, high_conn);
  EXPECT_DOUBLE_EQ(Raw(high_applied, "innodb_thread_concurrency"), 64.0);
}

TEST_F(RulesTest, AlphaDefaultsToHalf) {
  Rules rules;
  EXPECT_DOUBLE_EQ(rules.alpha(), 0.5);
  rules.set_alpha(0.9);
  EXPECT_DOUBLE_EQ(rules.alpha(), 0.9);
}

TEST_F(RulesTest, UnknownKnobNamesIgnored) {
  Rules rules;
  rules.FixKnob("not_a_knob", 1);
  rules.RestrictRange("also_missing", 0, 1);
  rules.AddConditional("missing", 1, "gone", 2);
  EXPECT_EQ(rules.Apply(catalog_, Half()), Half());
}

TEST_F(RulesTest, FixedBeatsRange) {
  Rules rules;
  rules.RestrictRange("innodb_io_capacity", 100, 200);
  rules.FixKnob("innodb_io_capacity", 5000);
  const auto applied = rules.Apply(catalog_, Half());
  EXPECT_DOUBLE_EQ(Raw(applied, "innodb_io_capacity"), 5000.0);
}

TEST_F(RulesTest, CountsConstraints) {
  Rules rules;
  EXPECT_EQ(rules.num_constraints(), 0u);
  rules.FixKnob("sync_binlog", 0);
  rules.RestrictRange("innodb_io_capacity", 100, 200);
  rules.AddConditional("max_connections", 100, "thread_cache_size", 100);
  EXPECT_EQ(rules.num_constraints(), 3u);
}

}  // namespace
}  // namespace hunter::core
