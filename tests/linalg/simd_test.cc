// Bit-identity tests for the runtime-dispatched vector kernel layer
// (linalg/simd/). Every AVX2 lane is compared against its scalar fallback
// at tolerance zero — not "close", the same 64 bits — across ragged sizes
// that cover every vector-width remainder (8-wide strips, 4-wide strips,
// the 6-row GEMM tile, and scalar tails). On hosts without AVX2 the lanes
// are scalar-forwarding stubs and the comparisons are trivially exact, so
// the suite passes everywhere; it only *proves* something on AVX2 hardware
// and in the HUNTER_FORCE_SCALAR=1 duplicate run (ctest label
// force_scalar), which pins the dispatchers to the fallback.

#include "linalg/simd/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "linalg/matrix.h"

namespace hunter::linalg::simd {
namespace {

using hunter::common::Rng;

// Exact bit-pattern comparison: EXPECT_EQ on doubles would call -0.0 equal
// to +0.0 and NaN unequal to itself, but the kernel contract is the same
// bits, NaNs and signed zeros included.
uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

void ExpectBitsEqual(const std::vector<double>& a,
                     const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Bits(a[i]), Bits(b[i])) << "index " << i;
  }
}

// Sizes covering every remainder of the 8- and 4-wide strips plus long
// runs: 0 and 1 (degenerate), 2..9 (every tail length), and larger sizes
// that exercise multiple full vectors before the tail.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 64};

std::vector<double> RandomVec(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Uniform(-2.0, 2.0);
  // Sprinkle exact and signed zeros so the tests cover the tie cases the
  // kernels promise to preserve.
  if (n > 2) v[n / 2] = 0.0;
  if (n > 3) v[n / 3] = -0.0;
  return v;
}

TEST(SimdElementwiseTest, AddSubScaleAxpyBitIdentical) {
  Rng rng(0x51D001);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVec(n, &rng);
    const std::vector<double> y = RandomVec(n, &rng);
    std::vector<double> a(n), b(n);

    AddIntoScalar(x.data(), y.data(), a.data(), n);
    AddIntoAvx2(x.data(), y.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    SubIntoScalar(x.data(), y.data(), a.data(), n);
    SubIntoAvx2(x.data(), y.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    ScaleIntoScalar(x.data(), 0.37, a.data(), n);
    ScaleIntoAvx2(x.data(), 0.37, b.data(), n);
    ExpectBitsEqual(a, b);

    a = y;
    b = y;
    AxpyInPlaceScalar(-1.75, x.data(), a.data(), n);
    AxpyInPlaceAvx2(-1.75, x.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    a = y;
    b = y;
    SoftUpdateInPlaceScalar(0.005, x.data(), a.data(), n);
    SoftUpdateInPlaceAvx2(0.005, x.data(), b.data(), n);
    ExpectBitsEqual(a, b);
  }
}

TEST(SimdElementwiseTest, ExactAliasingInPlace) {
  // The Matrix in-place ops pass out == x; the kernels must tolerate it.
  Rng rng(0x51D002);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVec(n, &rng);
    std::vector<double> a = x, b = x;
    AddIntoScalar(a.data(), a.data(), a.data(), n);
    AddIntoAvx2(b.data(), b.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    a = x;
    b = x;
    ScaleIntoScalar(a.data(), 3.25, a.data(), n);
    ScaleIntoAvx2(b.data(), 3.25, b.data(), n);
    ExpectBitsEqual(a, b);
  }
}

TEST(SimdElementwiseTest, UnalignedOffsetsBitIdentical) {
  // All loads/stores are unaligned by contract; walk every offset of a
  // 64-byte line to prove it.
  Rng rng(0x51D003);
  const std::vector<double> x = RandomVec(64, &rng);
  const std::vector<double> y = RandomVec(64, &rng);
  for (size_t off = 0; off < 8; ++off) {
    const size_t n = 33;
    std::vector<double> a(64), b(64);
    AddIntoScalar(x.data() + off, y.data() + off, a.data() + off, n);
    AddIntoAvx2(x.data() + off, y.data() + off, b.data() + off, n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(a[off + i]), Bits(b[off + i])) << off << "+" << i;
    }
  }
}

TEST(SimdActivationTest, ReluAndGradsBitIdentical) {
  Rng rng(0x51D004);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVec(n, &rng);
    const std::vector<double> g = RandomVec(n, &rng);
    std::vector<double> a(n), b(n);

    ReluIntoScalar(x.data(), a.data(), n);
    ReluIntoAvx2(x.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    ReluGradMulIntoScalar(g.data(), x.data(), a.data(), n);
    ReluGradMulIntoAvx2(g.data(), x.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    TanhGradMulIntoScalar(g.data(), x.data(), a.data(), n);
    TanhGradMulIntoAvx2(g.data(), x.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    ClampUnitFromTanhIntoScalar(x.data(), a.data(), n);
    ClampUnitFromTanhIntoAvx2(x.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    ScaleClampIntoScalar(x.data(), 0.5, 0.75, a.data(), n);
    ScaleClampIntoAvx2(x.data(), 0.5, 0.75, b.data(), n);
    ExpectBitsEqual(a, b);
  }
}

TEST(SimdActivationTest, SpecialValuesBitIdentical) {
  // The predicated kernels document exact NaN / signed-zero / infinity
  // behavior (vmaxpd operand order, clamp's compare+blend test order) —
  // hold them to it bit for bit.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double den = std::numeric_limits<double>::denorm_min();
  const std::vector<double> x = {nan, -nan, inf,  -inf, 0.0, -0.0,
                                 den, -den, 1e21, -3.0, 0.5, -0.25, 2.0};
  const std::vector<double> g = {1.0, -2.0, nan, 0.5,  -0.0, inf, 3.0,
                                 0.0, -1.5, den, -inf, 4.0,  -4.0};
  const size_t n = x.size();
  std::vector<double> a(n), b(n);

  ReluIntoScalar(x.data(), a.data(), n);
  ReluIntoAvx2(x.data(), b.data(), n);
  ExpectBitsEqual(a, b);

  ReluGradMulIntoScalar(g.data(), x.data(), a.data(), n);
  ReluGradMulIntoAvx2(g.data(), x.data(), b.data(), n);
  ExpectBitsEqual(a, b);

  ClampUnitFromTanhIntoScalar(x.data(), a.data(), n);
  ClampUnitFromTanhIntoAvx2(x.data(), b.data(), n);
  ExpectBitsEqual(a, b);

  ScaleClampIntoScalar(x.data(), 0.5, 1.0, a.data(), n);
  ScaleClampIntoAvx2(x.data(), 0.5, 1.0, b.data(), n);
  ExpectBitsEqual(a, b);

  SquaredDistIntoScalar(1.5, x.data(), g.data(), a.data(), n);
  SquaredDistIntoAvx2(1.5, x.data(), g.data(), b.data(), n);
  ExpectBitsEqual(a, b);
}

TEST(SimdStatsTest, AccumStandardizeSquaredDistBitIdentical) {
  Rng rng(0x51D005);
  for (size_t n : kSizes) {
    const std::vector<double> x = RandomVec(n, &rng);
    const std::vector<double> means = RandomVec(n, &rng);
    std::vector<double> stds = RandomVec(n, &rng);
    for (double& s : stds) s = std::abs(s);
    if (n > 1) stds[n / 2] = 0.0;  // exercise the guarded divide
    std::vector<double> a(n), b(n);

    a = means;
    b = means;
    AccumSquaredCenteredScalar(x.data(), means.data(), a.data(), n);
    AccumSquaredCenteredAvx2(x.data(), means.data(), b.data(), n);
    ExpectBitsEqual(a, b);

    for (const bool unit : {false, true}) {
      StandardizeIntoScalar(x.data(), means.data(), stds.data(), unit,
                            a.data(), n);
      StandardizeIntoAvx2(x.data(), means.data(), stds.data(), unit, b.data(),
                          n);
      ExpectBitsEqual(a, b);
    }

    SquaredDistIntoScalar(2.25, x.data(), means.data(), a.data(), n);
    SquaredDistIntoAvx2(2.25, x.data(), means.data(), b.data(), n);
    ExpectBitsEqual(a, b);
  }
}

TEST(SimdAdamTest, AdamUpdateBitIdentical) {
  Rng rng(0x51D006);
  for (size_t n : kSizes) {
    const std::vector<double> grads = RandomVec(n, &rng);
    const std::vector<double> p0 = RandomVec(n, &rng);
    std::vector<double> m0 = RandomVec(n, &rng);
    std::vector<double> v0 = RandomVec(n, &rng);
    for (double& v : v0) v = std::abs(v);  // second moment is nonnegative

    std::vector<double> pa = p0, ma = m0, va = v0;
    std::vector<double> pb = p0, mb = m0, vb = v0;
    const double scale = 1.0 / 32.0, lr = 1e-3, b1 = 0.9, b2 = 0.999;
    const double bias1 = 1.0 - 0.9 * 0.9, bias2 = 1.0 - 0.999 * 0.999;
    AdamUpdateInPlaceScalar(pa.data(), grads.data(), ma.data(), va.data(), n,
                            scale, lr, b1, b2, bias1, bias2, 1e-8);
    AdamUpdateInPlaceAvx2(pb.data(), grads.data(), mb.data(), vb.data(), n,
                          scale, lr, b1, b2, bias1, bias2, 1e-8);
    ExpectBitsEqual(pa, pb);
    ExpectBitsEqual(ma, mb);
    ExpectBitsEqual(va, vb);
  }
}

// GEMM shapes covering the 6-row tile boundary, the 8- and 4-column strip
// boundaries, and the scalar column tail — plus degenerate edges.
struct GemmShape {
  size_t m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},  {2, 3, 4},   {5, 7, 9},    {6, 8, 8},    {7, 9, 17},
    {12, 16, 24}, {13, 5, 11}, {3, 64, 33}, {17, 31, 20}, {6, 1, 8},
    {1, 16, 5},  {31, 2, 3},  {19, 24, 40},
};

TEST(SimdGemmTest, GemmIntoBitIdentical) {
  Rng rng(0x51D007);
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<double> a = RandomVec(s.m * s.k, &rng);
    const std::vector<double> b = RandomVec(s.k * s.n, &rng);
    const std::vector<double> seed = RandomVec(s.m * s.n, &rng);
    for (const bool accumulate : {false, true}) {
      std::vector<double> out_s = seed, out_v = seed;
      GemmIntoScalar(a.data(), s.m, s.k, b.data(), s.n, accumulate,
                     out_s.data());
      GemmIntoAvx2(a.data(), s.m, s.k, b.data(), s.n, accumulate,
                   out_v.data());
      ExpectBitsEqual(out_s, out_v);
    }
  }
}

TEST(SimdGemmTest, GemmBiasIntoBitIdentical) {
  Rng rng(0x51D008);
  for (const GemmShape& s : kGemmShapes) {
    const std::vector<double> a = RandomVec(s.m * s.k, &rng);
    const std::vector<double> b = RandomVec(s.k * s.n, &rng);
    const std::vector<double> bias = RandomVec(s.n, &rng);
    std::vector<double> out_s(s.m * s.n), out_v(s.m * s.n);
    GemmBiasIntoScalar(a.data(), s.m, s.k, b.data(), s.n, bias.data(),
                       out_s.data());
    GemmBiasIntoAvx2(a.data(), s.m, s.k, b.data(), s.n, bias.data(),
                     out_v.data());
    ExpectBitsEqual(out_s, out_v);
  }
}

TEST(SimdGemmTest, GemmTransposedAIntoBitIdentical) {
  Rng rng(0x51D009);
  for (const GemmShape& s : kGemmShapes) {
    // a is stored k x m (transposed operand).
    const std::vector<double> a = RandomVec(s.k * s.m, &rng);
    const std::vector<double> b = RandomVec(s.k * s.n, &rng);
    const std::vector<double> seed = RandomVec(s.m * s.n, &rng);
    for (const bool accumulate : {false, true}) {
      std::vector<double> out_s = seed, out_v = seed;
      GemmTransposedAIntoScalar(a.data(), s.k, s.m, b.data(), s.n, accumulate,
                                out_s.data());
      GemmTransposedAIntoAvx2(a.data(), s.k, s.m, b.data(), s.n, accumulate,
                              out_v.data());
      ExpectBitsEqual(out_s, out_v);
    }
  }
}

TEST(SimdCholeskyTest, Downdate4BitIdentical) {
  Rng rng(0x51D00A);
  for (size_t stride : {4UL, 9UL, 17UL, 32UL}) {
    const std::vector<double> lower = RandomVec(stride * stride, &rng);
    const std::vector<double> row = RandomVec(stride, &rng);
    for (size_t j0 = 0; j0 + 4 <= stride; ++j0) {
      for (size_t k_end = 0; k_end <= j0; ++k_end) {
        std::vector<double> sums_s = RandomVec(4, &rng);
        std::vector<double> sums_v = sums_s;
        CholeskyDowndate4Scalar(lower.data(), stride, j0, k_end, row.data(),
                                sums_s.data());
        CholeskyDowndate4Avx2(lower.data(), stride, j0, k_end, row.data(),
                              sums_v.data());
        ExpectBitsEqual(sums_s, sums_v);
      }
    }
  }
}

// The dispatched entry points honor the testing override: a forced-scalar
// pass and a hardware-tier pass through Matrix::MultiplyInto must agree to
// the bit (and the override must clamp/restore cleanly).
class SimdDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override { common::ClearSimdTierForTesting(); }
};

TEST_F(SimdDispatchTest, MatrixMultiplyTierToggleBitIdentical) {
  Rng rng(0x51D00B);
  Matrix a(13, 29), b(29, 21);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) a.At(r, c) = rng.Uniform(-1.0, 1.0);
  }
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) b.At(r, c) = rng.Uniform(-1.0, 1.0);
  }
  Matrix scalar_out;
  common::SetSimdTierForTesting(common::SimdTier::kScalar);
  EXPECT_STREQ(ActiveTierName(), "scalar");
  a.MultiplyInto(b, &scalar_out);
  common::ClearSimdTierForTesting();
  Matrix simd_out;
  a.MultiplyInto(b, &simd_out);
  for (size_t r = 0; r < scalar_out.rows(); ++r) {
    for (size_t c = 0; c < scalar_out.cols(); ++c) {
      EXPECT_EQ(Bits(scalar_out.At(r, c)), Bits(simd_out.At(r, c)));
    }
  }
}

TEST_F(SimdDispatchTest, TierNamesAndIndices) {
  EXPECT_STREQ(common::SimdTierName(common::SimdTier::kScalar), "scalar");
  EXPECT_STREQ(common::SimdTierName(common::SimdTier::kAvx2Fma), "avx2+fma");
  common::SetSimdTierForTesting(common::SimdTier::kScalar);
  EXPECT_EQ(ActiveTierIndex(), 0);
  common::ClearSimdTierForTesting();
  // Whatever the host dispatches, name and index must agree.
  EXPECT_EQ(ActiveTierIndex() == 1, std::string(ActiveTierName()) == "avx2+fma");
}

}  // namespace
}  // namespace hunter::linalg::simd
