#include "linalg/matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hunter::linalg {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  m.At(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 4.5);
}

TEST(MatrixTest, FromNestedVectors) {
  Matrix m({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, IdentityMultiplicationIsNeutral) {
  Matrix m({{1, 2}, {3, 4}});
  Matrix result = m.Multiply(Matrix::Identity(2));
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(result.At(r, c), m.At(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix b({{7, 8}, {9, 10}, {11, 12}});
  Matrix p = a.Multiply(b);
  EXPECT_DOUBLE_EQ(p.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  Matrix tt = t.Transpose();
  EXPECT_EQ(tt.Row(0), a.Row(0));
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a({{1, 2}, {3, 4}});
  const std::vector<double> v = a.MultiplyVector({1, 1});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{4, 3}, {2, 1}});
  EXPECT_DOUBLE_EQ(a.Add(b).At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.Subtract(b).At(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.Scale(2.0).At(1, 0), 6.0);
}

TEST(MatrixTest, MultiplyIntoMatchesMultiply) {
  Matrix a({{1, 2, 3}, {4, 5, 6}});
  Matrix b({{7, 8}, {9, 10}, {11, 12}});
  Matrix out(1, 1);  // wrong shape on purpose — MultiplyInto reshapes
  a.MultiplyInto(b, &out);
  const Matrix expected = a.Multiply(b);
  ASSERT_EQ(out.rows(), expected.rows());
  ASSERT_EQ(out.cols(), expected.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_DOUBLE_EQ(out.At(r, c), expected.At(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyPropagatesNanThroughZero) {
  // The old sparse-skip branch silently turned 0 * NaN into 0; the dense
  // kernel must propagate it.
  Matrix a({{0.0, 1.0}});
  Matrix b({{std::nan(""), 0.0}, {1.0, 1.0}});
  const Matrix p = a.Multiply(b);
  EXPECT_TRUE(std::isnan(p.At(0, 0)));
}

TEST(MatrixTest, TransposedMultiplyInto) {
  Matrix a({{1, 2}, {3, 4}, {5, 6}});  // 3x2
  Matrix b({{1, 0, 2}, {0, 1, 3}, {1, 1, 4}});  // 3x3
  Matrix out;
  a.TransposedMultiplyInto(b, &out);  // (2x3) = a^T * b
  const Matrix expected = a.Transpose().Multiply(b);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 3u);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(out.At(r, c), expected.At(r, c), 1e-12);
    }
  }
  // Accumulate mode adds on top of the existing contents.
  Matrix acc = out;
  a.TransposedMultiplyInto(b, &acc, /*accumulate=*/true);
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(acc.At(r, c), 2.0 * expected.At(r, c), 1e-12);
    }
  }
}

TEST(MatrixTest, InPlaceOps) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{4, 3}, {2, 1}});
  a.AddInPlace(b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.At(1, 1), 5.0);
  a.ScaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 10.0);
  a.Axpy(-1.0, a);  // a += -1 * a == zero
  EXPECT_DOUBLE_EQ(a.At(1, 0), 0.0);
}

TEST(MatrixTest, ReshapeAndFill) {
  Matrix m(2, 3);
  m.Fill(7.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 7.0);
  m.Reshape(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  m.Fill(1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.0);
}

TEST(StatsHelpersTest, ColumnMeansAndStdDevs) {
  Matrix data({{1, 10}, {3, 10}, {5, 10}});
  const auto means = ColumnMeans(data);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  const auto stds = ColumnStdDevs(data);
  // Sample (N-1) standard deviation, consistent with common::Variance:
  // {1,3,5} has sample variance 8/2 = 4.
  EXPECT_NEAR(stds[0], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stds[1], 0.0);
}

TEST(StatsHelpersTest, StdDevsWithFewerThanTwoRowsAreZero) {
  Matrix one_row({{7.0, -2.0}});
  const auto stds = ColumnStdDevs(one_row);
  EXPECT_DOUBLE_EQ(stds[0], 0.0);
  EXPECT_DOUBLE_EQ(stds[1], 0.0);
}

TEST(StatsHelpersTest, StandardizeCentersColumns) {
  Matrix data({{1, 5}, {3, 5}});
  Matrix z = Standardize(data, true);
  EXPECT_DOUBLE_EQ(z.At(0, 0) + z.At(1, 0), 0.0);
  // Zero-variance column stays centered at 0, not divided.
  EXPECT_DOUBLE_EQ(z.At(0, 1), 0.0);
}

TEST(StatsHelpersTest, CovarianceOfIndependentColumns) {
  Matrix data({{1, 4}, {2, 5}, {3, 6}});
  Matrix cov = Covariance(data);
  // Both columns have sample variance 1 and are perfectly correlated.
  EXPECT_NEAR(cov.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov.At(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(cov.At(0, 1), 1.0, 1e-12);
}

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix d({{3, 0}, {0, 1}});
  EigenResult eig = SymmetricEigen(d);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m({{2, 1}, {1, 2}});
  EigenResult eig = SymmetricEigen(m);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for eigenvalue 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eig.eigenvectors.At(0, 0);
  const double v1 = eig.eigenvectors.At(1, 0);
  EXPECT_NEAR(std::abs(v0), std::numbers::sqrt2 / 2.0, 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(EigenTest, ReconstructsMatrix) {
  Matrix m({{4, 1, 0}, {1, 3, 1}, {0, 1, 2}});
  EigenResult eig = SymmetricEigen(m);
  // Reconstruct A = V diag(L) V^T.
  Matrix diag(3, 3);
  for (size_t i = 0; i < 3; ++i) diag.At(i, i) = eig.eigenvalues[i];
  Matrix rec = eig.eigenvectors.Multiply(diag).Multiply(
      eig.eigenvectors.Transpose());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(rec.At(r, c), m.At(r, c), 1e-8);
    }
  }
}

TEST(EigenTest, EigenvectorsAreOrthonormal) {
  Matrix m({{5, 2, 1}, {2, 4, 2}, {1, 2, 3}});
  EigenResult eig = SymmetricEigen(m);
  Matrix vtv = eig.eigenvectors.Transpose().Multiply(eig.eigenvectors);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(vtv.At(r, c), r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(CholeskyTest, FactorsSpdMatrix) {
  Matrix a({{4, 2}, {2, 3}});
  Matrix lower;
  ASSERT_TRUE(Cholesky(a, &lower));
  EXPECT_NEAR(lower.At(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(lower.At(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(lower.At(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(lower.At(0, 1), 0.0);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a({{1, 2}, {2, 1}});  // eigenvalues 3 and -1
  Matrix lower;
  EXPECT_FALSE(Cholesky(a, &lower));
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Matrix a({{6, 2, 1}, {2, 5, 2}, {1, 2, 4}});
  const std::vector<double> x_true = {1.0, -2.0, 3.0};
  const std::vector<double> b = a.MultiplyVector(x_true);
  Matrix lower;
  ASSERT_TRUE(Cholesky(a, &lower));
  const std::vector<double> x = CholeskySolve(lower, b);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

// ---------------------------------------------------------------------------
// Householder + QL production eigensolver vs. the retained Jacobi oracle,
// and the rank-1 Cholesky row-append the incremental GP is built on.

Matrix RandomSymmetric(size_t n, common::Rng* rng) {
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c <= r; ++c) {
      const double v = rng->Uniform(-1.0, 1.0);
      m.At(r, c) = v;
      m.At(c, r) = v;
    }
  }
  return m;
}

Matrix RandomSpd(size_t n, common::Rng* rng) {
  // B Bᵀ + n·I is comfortably positive definite.
  const Matrix b = RandomSymmetric(n, rng);
  Matrix spd = b.Multiply(b.Transpose());
  for (size_t i = 0; i < n; ++i) spd.At(i, i) += static_cast<double>(n);
  return spd;
}

// Eigenvalues must match the oracle; eigenvectors are sign-ambiguous, so
// check them through the reconstruction A = V diag(λ) Vᵀ instead.
void ExpectMatchesJacobiOracle(const Matrix& m) {
  const size_t n = m.rows();
  const EigenResult ql = SymmetricEigen(m);
  const EigenResult jacobi = SymmetricEigenJacobi(m);
  ASSERT_EQ(ql.eigenvalues.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ql.eigenvalues[i], jacobi.eigenvalues[i], 1e-8)
        << "eigenvalue " << i << " of " << n;
  }
  Matrix diag(n, n);
  for (size_t i = 0; i < n; ++i) diag.At(i, i) = ql.eigenvalues[i];
  const Matrix rec =
      ql.eigenvectors.Multiply(diag).Multiply(ql.eigenvectors.Transpose());
  const Matrix vtv = ql.eigenvectors.Transpose().Multiply(ql.eigenvectors);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      EXPECT_NEAR(rec.At(r, c), m.At(r, c), 1e-8);
      EXPECT_NEAR(vtv.At(r, c), r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, QlMatchesJacobiOnRandomSymmetricMatrices) {
  common::Rng rng(7);
  for (const size_t n : {3u, 5u, 8u, 13u, 21u}) {
    ExpectMatchesJacobiOracle(RandomSymmetric(n, &rng));
  }
}

TEST(EigenTest, QlHandlesTrivialSizes) {
  ExpectMatchesJacobiOracle(Matrix(std::vector<std::vector<double>>{{4.0}}));
  ExpectMatchesJacobiOracle(Matrix({{2, 1}, {1, 2}}));
  ExpectMatchesJacobiOracle(Matrix({{3, 0}, {0, 3}}));
}

TEST(EigenTest, QlHandlesRepeatedEigenvalues) {
  // diag(2, 2, 1) rotated into a dense basis: a genuinely degenerate pair.
  common::Rng rng(11);
  const Matrix q = SymmetricEigen(RandomSymmetric(3, &rng)).eigenvectors;
  Matrix d(3, 3);
  d.At(0, 0) = 2.0;
  d.At(1, 1) = 2.0;
  d.At(2, 2) = 1.0;
  const Matrix degenerate = q.Multiply(d).Multiply(q.Transpose());
  ExpectMatchesJacobiOracle(degenerate);
  // And the fully degenerate case.
  Matrix scaled_identity(4, 4);
  for (size_t i = 0; i < 4; ++i) scaled_identity.At(i, i) = 2.5;
  ExpectMatchesJacobiOracle(scaled_identity);
}

TEST(CholeskyTest, AppendRowIsBitIdenticalToRefactorization) {
  common::Rng rng(13);
  for (const size_t n : {1u, 2u, 5u, 12u}) {
    const Matrix full = RandomSpd(n + 1, &rng);
    Matrix leading(n, n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) leading.At(r, c) = full.At(r, c);
    }
    Matrix grown;
    ASSERT_TRUE(Cholesky(leading, &grown));
    ASSERT_TRUE(CholeskyAppendRow(full.Row(n), &grown));

    Matrix refactored;
    ASSERT_TRUE(Cholesky(full, &refactored));
    ASSERT_EQ(grown.rows(), n + 1);
    for (size_t r = 0; r <= n; ++r) {
      for (size_t c = 0; c <= n; ++c) {
        // Exact equality: the append runs the same recurrence on the same
        // operands in the same order as the full factorization's last row.
        EXPECT_EQ(grown.At(r, c), refactored.At(r, c))
            << "(" << r << "," << c << ") at n=" << n;
      }
    }
  }
}

TEST(CholeskyTest, AppendRowRejectsNonSpdAndLeavesFactorUntouched) {
  Matrix a({{4, 2}, {2, 3}});
  Matrix lower;
  ASSERT_TRUE(Cholesky(a, &lower));
  const Matrix before = lower;
  // Appending a duplicate of row 0 makes the grown matrix singular.
  EXPECT_FALSE(CholeskyAppendRow({4.0, 2.0, 4.0}, &lower));
  ASSERT_EQ(lower.rows(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(lower.At(r, c), before.At(r, c));
    }
  }
}

}  // namespace
}  // namespace hunter::linalg
