#include "controller/controller.h"

#include <atomic>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "controller/shared_pool.h"
#include "workload/workloads.h"

namespace hunter::controller {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : catalog_(cdb::MySqlCatalog()) {}

  std::unique_ptr<Controller> Make(int clones) {
    auto instance = std::make_unique<cdb::CdbInstance>(
        &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
        42);
    ControllerOptions options;
    options.num_clones = clones;
    options.seed = 42;
    options.concurrent_actors = false;
    return std::make_unique<Controller>(std::move(instance),
                                        workload::Tpcc(), options);
  }

  std::vector<double> DefaultNormalized() {
    return catalog_.NormalizeConfiguration(catalog_.DefaultConfiguration());
  }

  cdb::KnobCatalog catalog_;
};

TEST_F(ControllerTest, DefaultPerformanceIsPositiveAndCached) {
  auto controller = Make(1);
  const auto& first = controller->DefaultPerformance();
  EXPECT_GT(first.throughput_tps, 0.0);
  const double clock_after_first = controller->clock().seconds();
  controller->DefaultPerformance();  // cached, no extra time
  EXPECT_DOUBLE_EQ(controller->clock().seconds(), clock_after_first);
}

TEST_F(ControllerTest, DefaultPerformanceChargesDeployCost) {
  // Regression: resetting the clone to the default configuration is a real
  // deploy and must be charged, not just the measurement runs.
  auto controller = Make(1);
  controller->DefaultPerformance();
  // The clone already runs the default config, so the reset takes the
  // dynamic-deploy path; two measurement runs follow, each paying execution
  // plus metric collection (the collection term used to be dropped).
  EXPECT_DOUBLE_EQ(controller->clock().seconds(),
                   cdb::CdbInstance::kDynamicDeploySeconds +
                       2.0 * Actor::kExecutionSeconds +
                       2.0 * Actor::kCollectionSeconds);
}

TEST_F(ControllerTest, PoolSizedToClonesBoundedByHardware) {
  // Regression: the pool was silently capped at 8 threads, serializing the
  // paper's 20-clone Fig. 12 configuration.
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  ControllerOptions options;
  options.num_clones = 20;
  options.concurrent_actors = true;
  Controller controller(std::move(instance), workload::Tpcc(), options);
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t expected =
      hw == 0 ? 20u : std::min<size_t>(20u, static_cast<size_t>(hw));
  EXPECT_EQ(controller.pool_threads(), expected);
}

TEST_F(ControllerTest, MaxPoolThreadsOptionOverridesSizing) {
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  ControllerOptions options;
  options.num_clones = 6;
  options.concurrent_actors = true;
  options.max_pool_threads = 3;
  Controller controller(std::move(instance), workload::Tpcc(), options);
  EXPECT_EQ(controller.pool_threads(), 3u);
}

TEST_F(ControllerTest, EvaluateBatchReturnsOneSamplePerConfig) {
  auto controller = Make(2);
  const auto samples = controller->EvaluateBatch(
      {DefaultNormalized(), DefaultNormalized(), DefaultNormalized()});
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& sample : samples) {
    EXPECT_FALSE(sample.boot_failed);
    EXPECT_EQ(sample.metrics.size(), cdb::kNumMetrics);
    EXPECT_EQ(sample.knobs.size(), catalog_.size());
  }
}

TEST_F(ControllerTest, DefaultConfigHasNearZeroFitness) {
  auto controller = Make(1);
  const auto samples = controller->EvaluateBatch({DefaultNormalized()});
  EXPECT_NEAR(samples[0].fitness, 0.0, 0.25);
}

TEST_F(ControllerTest, ParallelCloneChargesOneRoundOfTime) {
  auto c1 = Make(1);
  auto c4 = Make(4);
  c1->DefaultPerformance();
  c4->DefaultPerformance();
  const double t1_start = c1->clock().seconds();
  const double t4_start = c4->clock().seconds();
  std::vector<std::vector<double>> batch(4, DefaultNormalized());
  c1->EvaluateBatch(batch);
  c4->EvaluateBatch(batch);
  const double t1 = c1->clock().seconds() - t1_start;
  const double t4 = c4->clock().seconds() - t4_start;
  // 4 configs on 1 clone = 4 rounds; on 4 clones = 1 round.
  EXPECT_NEAR(t1 / t4, 4.0, 0.5);
}

TEST_F(ControllerTest, BootFailureChargesDeployOnly) {
  auto controller = Make(1);
  controller->DefaultPerformance();
  std::vector<double> bad = DefaultNormalized();
  bad[static_cast<size_t>(catalog_.IndexOf("innodb_buffer_pool_size"))] = 1.0;
  bad[static_cast<size_t>(catalog_.IndexOf("max_connections"))] = 1.0;
  const double before = controller->clock().seconds();
  const auto samples = controller->EvaluateBatch({bad});
  EXPECT_TRUE(samples[0].boot_failed);
  EXPECT_DOUBLE_EQ(samples[0].throughput_tps, -1000.0);
  // No workload execution happened: just the failed deployment attempt.
  EXPECT_LT(controller->clock().seconds() - before, 30.0);
}

TEST_F(ControllerTest, ChargeModelTimeAdvancesClock) {
  auto controller = Make(1);
  const double before = controller->clock().seconds();
  controller->ChargeModelTime(0.071);
  EXPECT_DOUBLE_EQ(controller->clock().seconds(), before + 0.071);
}

TEST_F(ControllerTest, DeployToUserUpdatesUserInstance) {
  auto controller = Make(1);
  std::vector<double> tuned = DefaultNormalized();
  tuned[static_cast<size_t>(catalog_.IndexOf("innodb_io_capacity"))] = 0.8;
  controller->DeployToUser(tuned);
  const auto& config = controller->user_instance().active_configuration();
  const size_t io_cap =
      static_cast<size_t>(catalog_.IndexOf("innodb_io_capacity"));
  EXPECT_GT(config[io_cap], 200.0);  // moved off the default
}

TEST_F(ControllerTest, WorkloadDriftRemeasuresBaseline) {
  auto controller = Make(1);
  const double t_before = controller->DefaultPerformance().throughput_tps;
  controller->SetWorkload(workload::SysbenchWriteOnly());
  const double t_after = controller->DefaultPerformance().throughput_tps;
  EXPECT_EQ(controller->workload().name, "sysbench_wo");
  // Baselines differ across workloads (almost surely).
  EXPECT_NE(t_before, t_after);
}

TEST_F(ControllerTest, TracksStressTestCount) {
  auto controller = Make(2);
  controller->EvaluateBatch({DefaultNormalized(), DefaultNormalized()});
  EXPECT_EQ(controller->total_stress_tests(), 2u);
}

TEST_F(ControllerTest, ConcurrentActorsMatchSerialSemantics) {
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  ControllerOptions options;
  options.num_clones = 4;
  options.seed = 42;
  options.concurrent_actors = true;
  Controller controller(std::move(instance), workload::Tpcc(), options);
  const auto samples = controller.EvaluateBatch(
      std::vector<std::vector<double>>(8, DefaultNormalized()));
  ASSERT_EQ(samples.size(), 8u);
  for (const auto& sample : samples) EXPECT_GT(sample.throughput_tps, 0.0);
}

TEST(SharedPoolTest, AddAndSnapshot) {
  SharedPool pool;
  Sample sample;
  sample.fitness = 0.5;
  pool.Add(sample);
  pool.AddBatch({sample, sample});
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.Snapshot().size(), 3u);
}

TEST(SharedPoolTest, BestSkipsBootFailures) {
  SharedPool pool;
  Sample failed;
  failed.fitness = 10.0;  // better fitness but failed
  failed.boot_failed = true;
  Sample ok;
  ok.fitness = 0.3;
  pool.Add(failed);
  pool.Add(ok);
  Sample best;
  ASSERT_TRUE(pool.Best(&best));
  EXPECT_DOUBLE_EQ(best.fitness, 0.3);
}

TEST(SharedPoolTest, BestOfEmptyPoolIsFalse) {
  SharedPool pool;
  Sample best;
  EXPECT_FALSE(pool.Best(&best));
  Sample failed;
  failed.boot_failed = true;
  pool.Add(failed);
  EXPECT_FALSE(pool.Best(&best));
}

TEST(SharedPoolTest, ClearEmptiesPool) {
  SharedPool pool;
  pool.Add(Sample{});
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
}

TEST(SharedPoolTest, ConcurrentAddBatchBestSnapshotStress) {
  // Hammer the pool from parallel writers and readers; run under
  // HUNTER_SANITIZE=thread via `ctest -L concurrency` to catch races.
  SharedPool pool;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::atomic<int> best_calls{0};
  // Raw threads are the point here: the test hammers SharedPool from
  // outside common::ThreadPool to expose races under TSan.
  // hunterlint: allow(no-naked-thread) stress test needs raw threads
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &best_calls, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        Sample sample;
        sample.fitness = 0.001 * (t * kOpsPerThread + i);
        if (i % 3 == 0) {
          pool.AddBatch({sample, sample});
        } else {
          pool.Add(sample);
        }
        if (i % 7 == 0) {
          Sample best;
          if (pool.Best(&best)) ++best_calls;
        }
        if (i % 31 == 0) (void)pool.Snapshot().size();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Each thread adds 2 samples on i%3==0 (67 of 200) and 1 otherwise.
  constexpr int kPerThread = 67 * 2 + 133;
  EXPECT_EQ(pool.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_GT(best_calls.load(), 0);
  Sample best;
  ASSERT_TRUE(pool.Best(&best));
  EXPECT_DOUBLE_EQ(best.fitness, 0.001 * (kThreads * kOpsPerThread - 1));
}

}  // namespace
}  // namespace hunter::controller
