// Deterministic fault-injection integration tests for the clone fleet:
// retry-with-backoff for transient deploy failures, crash recovery,
// straggler timeouts with requeue, permanent clone death with replacement,
// and honest sim-clock accounting for all of it.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "controller/shared_pool.h"
#include "obs/journal.h"
#include "workload/workloads.h"

namespace hunter::controller {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() : catalog_(cdb::MySqlCatalog()) {}

  std::unique_ptr<Controller> Make(const ControllerOptions& options) {
    auto instance = std::make_unique<cdb::CdbInstance>(
        &catalog_, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
        42);
    return std::make_unique<Controller>(std::move(instance),
                                        workload::Tpcc(), options);
  }

  ControllerOptions BaseOptions(int clones) {
    ControllerOptions options;
    options.num_clones = clones;
    options.seed = 42;
    options.concurrent_actors = false;
    return options;
  }

  std::vector<std::vector<double>> Batch(size_t n) {
    return std::vector<std::vector<double>>(
        n, catalog_.NormalizeConfiguration(catalog_.DefaultConfiguration()));
  }

  cdb::KnobCatalog catalog_;
};

TEST_F(FaultToleranceTest, TransientDeployFailuresAreRetriedAndCharged) {
  ControllerOptions faulty = BaseOptions(4);
  faulty.faults.seed = 9;
  faulty.faults.transient_deploy_failure_rate = 0.3;
  faulty.max_retries = 6;
  auto faulty_controller = Make(faulty);
  auto clean_controller = Make(BaseOptions(4));

  const auto batch = Batch(12);
  const auto samples = faulty_controller->EvaluateBatch(batch);
  const auto clean_samples = clean_controller->EvaluateBatch(batch);

  ASSERT_EQ(samples.size(), 12u);
  const FaultStats& stats = faulty_controller->fault_stats();
  EXPECT_GT(stats.transient_deploy_failures, 0u);
  EXPECT_GT(stats.retries, 0u);
  size_t failed = 0;
  for (const Sample& sample : samples) {
    if (sample.evaluation_failed) {
      ++failed;
      continue;
    }
    EXPECT_FALSE(sample.boot_failed);
    EXPECT_GT(sample.throughput_tps, 0.0);
    EXPECT_GE(sample.attempts, 1);
  }
  EXPECT_EQ(failed, stats.failed_samples);
  // Retries and backoff cost simulated time relative to the clean fleet.
  EXPECT_GT(faulty_controller->clock().seconds(),
            clean_controller->clock().seconds());
  // Attempts dispatched = 12 evaluations + every re-dispatch.
  EXPECT_EQ(faulty_controller->total_stress_tests(), 12u + stats.retries);
  (void)clean_samples;
}

TEST_F(FaultToleranceTest, PermanentDeathReplacesCloneAndBatchCompletes) {
  ControllerOptions faulty = BaseOptions(3);
  faulty.faults.seed = 3;
  faulty.faults.permanent_deaths = {{1, 0}};  // clone 1 dies on first use
  auto faulty_controller = Make(faulty);
  auto clean_controller = Make(BaseOptions(3));

  const auto batch = Batch(6);
  const auto samples = faulty_controller->EvaluateBatch(batch);
  clean_controller->EvaluateBatch(batch);

  const FaultStats& stats = faulty_controller->fault_stats();
  EXPECT_EQ(stats.permanent_deaths, 1u);
  EXPECT_EQ(stats.reclones, 1u);
  EXPECT_EQ(stats.failed_samples, 0u);
  EXPECT_EQ(faulty_controller->num_clones(), 3);  // fleet size restored
  for (const Sample& sample : samples) {
    EXPECT_FALSE(sample.evaluation_failed);
    EXPECT_GT(sample.throughput_tps, 0.0);
  }
  // The replacement clone (fresh id) must not re-trigger the death schedule,
  // and the reclone cost must show up on the clock.
  EXPECT_GT(faulty_controller->clock().seconds(),
            clean_controller->clock().seconds());
}

TEST_F(FaultToleranceTest, ExhaustedRetriesClampLikeBootFailure) {
  ControllerOptions faulty = BaseOptions(2);
  faulty.faults.seed = 1;
  faulty.faults.transient_deploy_failure_rate = 1.0;  // nothing ever deploys
  faulty.max_retries = 2;
  auto controller = Make(faulty);

  const auto samples = controller->EvaluateBatch(Batch(2));
  ASSERT_EQ(samples.size(), 2u);
  for (const Sample& sample : samples) {
    EXPECT_TRUE(sample.evaluation_failed);
    EXPECT_TRUE(sample.boot_failed);  // existing clamp path for consumers
    EXPECT_DOUBLE_EQ(sample.fitness, cdb::kBootFailureFitness);
    EXPECT_DOUBLE_EQ(sample.throughput_tps, -1000.0);
    EXPECT_EQ(sample.attempts, 3);  // initial dispatch + 2 retries
  }
  EXPECT_EQ(controller->fault_stats().failed_samples, 2u);

  // The clamped samples are skipped by SharedPool::Best like boot failures.
  SharedPool pool;
  pool.AddBatch(samples);
  Sample best;
  EXPECT_FALSE(pool.Best(&best));
}

TEST_F(FaultToleranceTest, CrashesRecoverAndRetry) {
  ControllerOptions faulty = BaseOptions(2);
  faulty.faults.seed = 17;
  faulty.faults.crash_rate = 0.25;
  faulty.max_retries = 6;
  auto controller = Make(faulty);

  const auto samples = controller->EvaluateBatch(Batch(8));
  const FaultStats& stats = controller->fault_stats();
  EXPECT_GT(stats.crashes, 0u);
  for (const Sample& sample : samples) {
    if (!sample.evaluation_failed) {
      EXPECT_GT(sample.throughput_tps, 0.0);
    }
  }
}

TEST_F(FaultToleranceTest, StragglerTimeoutRequeuesThenAcceptsLastAttempt) {
  ControllerOptions faulty = BaseOptions(1);
  faulty.faults.seed = 4;
  faulty.faults.straggler_rate = 1.0;  // every run straggles
  faulty.faults.straggler_slowdown = 10.0;
  faulty.straggler_timeout_seconds = 300.0;  // < 10 * 142.7
  faulty.max_retries = 2;
  auto controller = Make(faulty);

  const double before = controller->clock().seconds();
  const auto samples = controller->EvaluateBatch(Batch(1));
  const FaultStats& stats = controller->fault_stats();
  // Two attempts are cancelled at the timeout; the final one (retry budget
  // spent) is accepted at full straggler cost so the config still resolves.
  EXPECT_EQ(stats.straggler_timeouts, 2u);
  EXPECT_FALSE(samples[0].evaluation_failed);
  EXPECT_GT(samples[0].throughput_tps, 0.0);
  EXPECT_EQ(samples[0].attempts, 3);
  // Clock saw both timeouts plus the accepted slow run.
  EXPECT_GT(controller->clock().seconds() - before,
            2 * 300.0 + 10.0 * Actor::kExecutionSeconds);
}

TEST_F(FaultToleranceTest, ConcurrentRunMatchesSerialRunExactly) {
  // The fault schedule is a pure function of (seed, clone, op), so the same
  // batch must produce identical samples, clock, and stats with and without
  // real threads.
  ControllerOptions serial = BaseOptions(4);
  serial.faults.seed = 21;
  serial.faults.transient_deploy_failure_rate = 0.2;
  serial.faults.crash_rate = 0.1;
  serial.faults.straggler_rate = 0.1;
  serial.faults.permanent_deaths = {{2, 1}};
  serial.straggler_timeout_seconds = 400.0;
  ControllerOptions threaded = serial;
  threaded.concurrent_actors = true;

  auto serial_controller = Make(serial);
  auto threaded_controller = Make(threaded);
  const auto batch = Batch(16);
  const auto serial_samples = serial_controller->EvaluateBatch(batch);
  const auto threaded_samples = threaded_controller->EvaluateBatch(batch);

  EXPECT_DOUBLE_EQ(serial_controller->clock().seconds(),
                   threaded_controller->clock().seconds());
  const FaultStats& a = serial_controller->fault_stats();
  const FaultStats& b = threaded_controller->fault_stats();
  EXPECT_EQ(a.transient_deploy_failures, b.transient_deploy_failures);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.straggler_timeouts, b.straggler_timeouts);
  EXPECT_EQ(a.permanent_deaths, b.permanent_deaths);
  EXPECT_EQ(a.retries, b.retries);
  ASSERT_EQ(serial_samples.size(), threaded_samples.size());
  for (size_t i = 0; i < serial_samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial_samples[i].fitness, threaded_samples[i].fitness);
    EXPECT_EQ(serial_samples[i].attempts, threaded_samples[i].attempts);
    EXPECT_EQ(serial_samples[i].evaluation_failed,
              threaded_samples[i].evaluation_failed);
  }
}

TEST_F(FaultToleranceTest, ChargedSpansPartitionClockUnderMixedFaults) {
  // The journal's charged spans must account for every simulated second,
  // even along the messy paths: retries, backoff, crash recovery, straggler
  // timeouts with requeue, and clone death with replacement. Folding the
  // charged durations in record order replays the exact IEEE addition
  // sequence the clock saw, so the comparison is bit-exact — any double- or
  // missed charge breaks equality outright.
  ControllerOptions faulty = BaseOptions(3);
  faulty.faults.seed = 21;
  faulty.faults.transient_deploy_failure_rate = 0.2;
  faulty.faults.crash_rate = 0.1;
  faulty.faults.straggler_rate = 0.1;
  faulty.faults.permanent_deaths = {{2, 1}};
  faulty.straggler_timeout_seconds = 400.0;
  auto controller = Make(faulty);

  controller->DefaultPerformance();
  controller->EvaluateBatch(Batch(12));

  double folded = 0.0;
  size_t charged = 0;
  for (const obs::Record& r : controller->journal().records()) {
    if (r.type == obs::Record::Type::kSpan && r.span.charged) {
      folded += r.span.duration_seconds;
      ++charged;
    }
  }
  EXPECT_GT(charged, 0u);
  EXPECT_GT(controller->fault_stats().retries, 0u);  // the faults did fire
  EXPECT_DOUBLE_EQ(folded, controller->clock().seconds());
  EXPECT_DOUBLE_EQ(controller->journal().tracer().charged_seconds(),
                   controller->clock().seconds());
}

TEST_F(FaultToleranceTest, PermanentDeathChargesRestartDeploy) {
  // Regression: a clone that died mid-run charged only the partial
  // execution, silently dropping the deployment it had already performed.
  // The journal must show the aborted deploy at full restart cost.
  ControllerOptions faulty = BaseOptions(2);
  faulty.faults.seed = 3;
  faulty.faults.permanent_deaths = {{1, 0}};  // only fault source
  auto controller = Make(faulty);
  controller->EvaluateBatch(Batch(4));
  ASSERT_EQ(controller->fault_stats().permanent_deaths, 1u);

  size_t aborted_deploys = 0;
  for (const obs::Record& r : controller->journal().records()) {
    if (r.type != obs::Record::Type::kSpan) continue;
    if (r.span.name == "clone1_deploy_aborted") {
      ++aborted_deploys;
      EXPECT_EQ(r.span.stage, "deploy");
      EXPECT_DOUBLE_EQ(r.span.duration_seconds,
                       cdb::CdbInstance::kRestartDeploySeconds);
    }
  }
  EXPECT_EQ(aborted_deploys, 1u);
}

TEST_F(FaultToleranceTest, SameSeedReproducesIdenticalRun) {
  ControllerOptions options = BaseOptions(5);
  options.faults.seed = 33;
  options.faults.transient_deploy_failure_rate = 0.15;
  options.faults.crash_rate = 0.05;
  auto first = Make(options);
  auto second = Make(options);
  const auto batch = Batch(20);
  const auto a = first->EvaluateBatch(batch);
  const auto b = second->EvaluateBatch(batch);
  EXPECT_DOUBLE_EQ(first->clock().seconds(), second->clock().seconds());
  EXPECT_EQ(first->fault_stats().retries, second->fault_stats().retries);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].fitness, b[i].fitness);
  }
}

}  // namespace
}  // namespace hunter::controller
