// Quickstart: tune a simulated MySQL cloud instance running TPC-C with
// HUNTER, then deploy the best verified configuration on the user instance.
//
//   $ ./quickstart [budget_hours=12]
//
// Walks the full paper workflow: clone the user's instance, run the GA
// Sample Factory, compress the search space (PCA + RF), warm-start the DDPG
// Recommender, explore with FES, and deploy the winner.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

int main(int argc, char** argv) {
  using namespace hunter;
  const double budget_hours = argc > 1 ? std::atof(argv[1]) : 12.0;

  // The user's cloud database: MySQL-style, 8 cores / 32 GB (type F).
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto user_instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
      /*seed=*/42);

  // The Controller clones the instance and manages stress tests; tuning
  // time is tracked on a simulated clock using the paper's per-step costs.
  controller::ControllerOptions controller_options;
  controller_options.num_clones = 4;  // the user's parallelization budget
  controller::Controller controller(std::move(user_instance),
                                    workload::Tpcc(), controller_options);

  const cdb::PerformanceSummary defaults = controller.DefaultPerformance();
  std::printf("default configuration: %.0f txn/min, p95 %.1f ms\n",
              defaults.throughput_tps * 60.0, defaults.latency_p95_ms);

  // HUNTER with default options (GA=140 samples, PCA@90%, top-20 knobs,
  // FES) and no personalized restrictions.
  core::HunterTuner hunter(&catalog, core::Rules(), core::HunterOptions{},
                           /*seed=*/7);
  tuners::HarnessOptions harness;
  harness.budget_hours = budget_hours;
  const tuners::TuningResult result =
      tuners::RunTuning(&hunter, &controller, harness);

  std::printf(
      "after %.1f simulated hours (%zu stress tests on %d clones):\n",
      controller.clock().hours(), result.steps, controller.num_clones());
  std::printf("  best: %.0f txn/min (%.2fx default), p95 %.1f ms\n",
              result.best_throughput * 60.0,
              result.best_throughput / defaults.throughput_tps,
              result.best_latency);
  std::printf("  recommendation time: %.1f h\n", result.recommendation_hours);

  // Deploy the verified winner on the *user's* instance (the instance never
  // ran an experiment — the paper's availability guarantee).
  controller.DeployToUser(result.best_sample.knobs);
  std::printf("deployed the tuned configuration. Key knob values:\n");
  const cdb::Configuration best =
      catalog.DenormalizeConfiguration(result.best_sample.knobs);
  for (const char* name :
       {"innodb_buffer_pool_size", "innodb_flush_log_at_trx_commit",
        "sync_binlog", "innodb_io_capacity", "innodb_thread_concurrency",
        "max_connections"}) {
    const int index = catalog.IndexOf(name);
    if (index >= 0) {
      std::printf("  %-34s = %.0f %s\n", name,
                  best[static_cast<size_t>(index)],
                  catalog.knob(static_cast<size_t>(index)).unit.c_str());
    }
  }
  return 0;
}
