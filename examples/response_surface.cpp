// Response-surface probe: measures the simulated cloud DBMS at its default
// and a hand-tuned configuration for every evaluation workload. Useful to
// sanity-check the engine calibration against the paper's absolute scales.
#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "cdb/simulated_engine.h"
#include "workload/workloads.h"

using namespace hunter;

static void Probe(const cdb::KnobCatalog& catalog, cdb::EngineTuning tuning,
                  cdb::InstanceType inst, const cdb::WorkloadProfile& wl,
                  const char* tag) {
  common::Rng rng(7);
  cdb::SimulatedEngine engine(&catalog, inst, tuning);
  auto defaults = catalog.DefaultConfiguration();
  auto run = [&](const cdb::Configuration& c, const char* name) {
    common::Rng r(11);
    double t = 0, l = 0;
    for (int i = 0; i < 3; ++i) {
      auto res = engine.Run(c, wl, true, &r);
      t += res.throughput_tps; l += res.latency_p95_ms;
    }
    printf("  %-28s T=%9.1f tps (%9.0f txn/min)  p95=%8.1f ms\n", name, t/3,
           t/3*60, l/3);
  };
  printf("%s [%s on %s, %d cores %.0fGB]:\n", tag, wl.name.c_str(),
         catalog.dbms_name().c_str(), inst.cpu_cores, inst.ram_gb);
  run(defaults, "defaults");
  // Hand-tuned config.
  auto tuned = defaults;
  auto set = [&](const char* n, double v) {
    int i = catalog.IndexOf(n);
    if (i >= 0) tuned[(size_t)i] = v;
  };
  if (catalog.dbms_name() == "mysql") {
    set("innodb_buffer_pool_size", inst.ram_gb * 1024 * 0.7);
    set("innodb_flush_log_at_trx_commit", 2);
    set("sync_binlog", 1000);
    set("innodb_log_file_size", 2048);
    set("innodb_log_buffer_size", 256);
    set("innodb_io_capacity", 10000);
    set("innodb_io_capacity_max", 20000);
    set("innodb_thread_concurrency", 40);
    set("max_connections", 2000);
    set("innodb_buffer_pool_instances", 8);
    set("innodb_read_io_threads", 16);
    set("innodb_write_io_threads", 16);
    set("thread_cache_size", 200);
    set("innodb_flush_method", 2);
    set("innodb_lru_scan_depth", 2048);
    set("table_open_cache", 4000);
  } else {
    set("shared_buffers", inst.ram_gb * 1024 * 0.6);
    set("synchronous_commit", 0);
    set("max_wal_size", 8192);
    set("wal_buffers", 256);
    set("bgwriter_lru_maxpages", 8000);
    set("max_parallel_workers", 40);
    set("max_connections", 2000);
    set("effective_io_concurrency", 16);
  }
  run(tuned, "hand-tuned");
}

int main() {
  auto my = cdb::MySqlCatalog();
  auto pg = cdb::PostgresCatalog();
  Probe(my, cdb::MySqlEngineTuning(), cdb::MySqlEvaluationInstance(), workload::Tpcc(), "TPC-C");
  Probe(my, cdb::MySqlEngineTuning(), cdb::MySqlEvaluationInstance(), workload::SysbenchReadWrite(), "SB-RW");
  Probe(my, cdb::MySqlEngineTuning(), cdb::MySqlEvaluationInstance(), workload::SysbenchWriteOnly(), "SB-WO");
  Probe(my, cdb::MySqlEngineTuning(), cdb::MySqlEvaluationInstance(), workload::SysbenchReadOnly(), "SB-RO");
  Probe(pg, cdb::PostgresEngineTuning(), cdb::PostgresEvaluationInstance(), workload::Tpcc(), "TPC-C");
  Probe(my, cdb::MySqlEngineTuning(), cdb::ProductionEvaluationInstance(), workload::Production(true), "PROD");
  return 0;
}
