// Personalized requirements: tuning under user Rules (§2.1/§3.1).
//
// A bank-style user requires full durability (flush-at-commit pinned ON,
// binlog synced every commit), caps the buffer pool at 8 GB because the
// instance is shared, asks for thread pooling once connections exceed 100,
// and cares about latency more than throughput (alpha = 0.2). HUNTER tunes
// *within* that feasible region — exactly the scenario where a pre-trained
// model recommends infeasible or suboptimal configurations.

#include <cstdio>
#include <memory>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

namespace {

hunter::tuners::TuningResult TuneWith(const hunter::cdb::KnobCatalog& catalog,
                                      hunter::core::Rules rules,
                                      double alpha) {
  using namespace hunter;
  rules.set_alpha(alpha);
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  controller::ControllerOptions controller_options;
  controller_options.num_clones = 4;
  controller_options.alpha = alpha;
  controller::Controller controller(std::move(instance),
                                    workload::SysbenchReadWrite(),
                                    controller_options);
  core::HunterTuner hunter(&catalog, std::move(rules), core::HunterOptions{},
                           7);
  tuners::HarnessOptions harness;
  harness.budget_hours = 10.0;
  return tuners::RunTuning(&hunter, &controller, harness);
}

}  // namespace

int main() {
  using namespace hunter;
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();

  // Unrestricted tuning, throughput and latency weighted equally.
  const tuners::TuningResult free_run = TuneWith(catalog, core::Rules(), 0.5);

  // The personalized rule set.
  core::Rules rules;
  rules.FixKnob("innodb_flush_log_at_trx_commit", 1);  // full durability
  rules.FixKnob("sync_binlog", 1);
  rules.RestrictRange("innodb_buffer_pool_size", 128, 8192);  // shared box
  rules.AddConditional("max_connections", 100, "innodb_thread_concurrency",
                       64);  // pool threads when connections > 100
  const tuners::TuningResult ruled = TuneWith(catalog, rules, /*alpha=*/0.2);

  std::printf("unrestricted  : best %.0f txn/s, p95 %.1f ms\n",
              free_run.best_throughput, free_run.best_latency);
  std::printf("with rules    : best %.0f txn/s, p95 %.1f ms\n",
              ruled.best_throughput, ruled.best_latency);

  const cdb::Configuration best =
      catalog.DenormalizeConfiguration(ruled.best_sample.knobs);
  auto raw = [&](const char* name) {
    return best[static_cast<size_t>(catalog.IndexOf(name))];
  };
  std::printf("\nrule compliance in the recommended configuration:\n");
  std::printf("  innodb_flush_log_at_trx_commit = %.0f (pinned 1)\n",
              raw("innodb_flush_log_at_trx_commit"));
  std::printf("  sync_binlog                    = %.0f (pinned 1)\n",
              raw("sync_binlog"));
  std::printf("  innodb_buffer_pool_size        = %.0f MB (cap 8192)\n",
              raw("innodb_buffer_pool_size"));
  std::printf("  max_connections                = %.0f\n",
              raw("max_connections"));
  std::printf("  innodb_thread_concurrency      = %.0f%s\n",
              raw("innodb_thread_concurrency"),
              raw("max_connections") > 100 ? " (forced by conditional rule)"
                                           : "");
  std::printf(
      "\nthe durability rules block the commit-path shortcut, so the ruled "
      "optimum is lower — the paper's argument for online tuning under "
      "personalized requirements.\n");
  return 0;
}
