// Workload drift and replay (§2.1, §5): build a replayable workload from a
// captured production trace using the transactions-dependency graph, tune
// on it, then handle a drift (the 9 pm capture) — the learning-based tuner
// recovers quickly because its model and pool survive the drift.

#include <cstdio>
#include <memory>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"
#include "workload/dependency_graph.h"
#include "workload/workload_generator.h"
#include "workload/workloads.h"

int main() {
  using namespace hunter;

  // 1. The Workload Generator captures a window of transactions from the
  //    user's instance and builds the dependency-graph replay schedule.
  common::Rng rng(11);
  workload::CaptureWindow window;
  window.num_txns = 4000;
  window.reads_per_txn = 5.0;
  window.writes_per_txn = 5.0;
  const workload::GeneratedWorkload generated = workload::WorkloadGenerator::
      Build(workload::Production(true), window, &rng);
  std::printf("captured %zu transactions from the 9 am window\n",
              window.num_txns);
  std::printf(
      "dependency-graph replay: effective parallelism %.1f (arrival-order "
      "replay: %.0f), critical path %zu waves\n",
      generated.dag_parallelism, generated.arrival_order_parallelism,
      generated.critical_path);

  // 2. Tune on the replayed workload.
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::ProductionEvaluationInstance(), cdb::MySqlEngineTuning(),
      42);
  controller::ControllerOptions options;
  options.num_clones = 4;
  controller::Controller controller(std::move(instance), generated.profile,
                                    options);
  core::HunterTuner hunter(&catalog, core::Rules(), core::HunterOptions{}, 7);
  tuners::HarnessOptions harness;
  harness.budget_hours = 10.0;
  const tuners::TuningResult before =
      tuners::RunTuning(&hunter, &controller, harness);
  std::printf("\nbefore drift: best %.0f txn/s after %.1f h\n",
              before.best_throughput, before.recommendation_hours);

  // 3. Drift: the evening workload replaces the morning one. The tuner's
  //    model and Shared Pool survive; only the Eq-1 baseline re-measures.
  controller.SetWorkload(workload::Production(false));
  std::printf("\n-- workload drift: 9 am capture -> 9 pm capture --\n");
  tuners::HarnessOptions harness_after;
  harness_after.budget_hours = controller.clock().hours() + 6.0;
  const tuners::TuningResult after =
      tuners::RunTuning(&hunter, &controller, harness_after);
  std::printf(
      "after drift: recovered to %.0f txn/s within %.1f h of the drift\n",
      after.best_throughput,
      after.recommendation_hours - before.curve.back().hours);
  std::printf(
      "\nthe warm model makes re-tuning after a drift much cheaper than the "
      "original cold start (§5: learning-based methods bounce back "
      "quickly).\n");
  return 0;
}
