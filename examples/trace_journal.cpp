// Emits a run journal (DESIGN.md §10) from a small Controller + HUNTER
// tuning run, faults included, for tracecat and the determinism gates:
//
//   $ ./trace_journal out.jsonl [seed=42]
//   $ tracecat breakdown out.jsonl
//
// The run is deliberately tiny (2 clones, ~1 simulated hour) so it finishes
// in a few hundred milliseconds of real time; the journal still exercises
// every span stage: deploy, execution, collection, backoff, recovery and
// model_update, plus retry/straggler/crash events from the fault injector.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

int main(int argc, char** argv) {
  using namespace hunter;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <journal.jsonl> [seed]\n", argv[0]);
    return 2;
  }
  const uint64_t seed =
      argc > 2 ? static_cast<uint64_t>(std::strtoull(argv[2], nullptr, 10))
               : 42u;

  cdb::KnobCatalog catalog = cdb::MySqlCatalog();
  auto user_instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(),
      seed);

  controller::ControllerOptions controller_options;
  controller_options.num_clones = 2;
  controller_options.seed = seed;
  // Serial actors keep the example single-threaded; the journal is
  // identical either way (outcomes are written per-lane, then reduced on
  // the coordination thread).
  controller_options.concurrent_actors = false;
  controller_options.faults.seed = seed;
  controller_options.faults.transient_deploy_failure_rate = 0.08;
  controller_options.faults.crash_rate = 0.04;
  controller_options.faults.straggler_rate = 0.10;
  controller_options.straggler_timeout_seconds = 400.0;
  controller::Controller controller(std::move(user_instance),
                                    workload::Tpcc(), controller_options);

  core::HunterOptions hunter_options;
  hunter_options.ga.target_samples = 16;  // a short Sample Factory phase
  core::HunterTuner hunter(&catalog, core::Rules(), hunter_options,
                           /*seed=*/seed + 1);
  tuners::HarnessOptions harness;
  harness.budget_hours = 1.5;
  const tuners::TuningResult result =
      tuners::RunTuning(&hunter, &controller, harness);
  controller.DeployToUser(result.best_sample.knobs);

  std::ofstream out(argv[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", argv[1]);
    return 1;
  }
  controller.journal().Write(out);
  std::printf("journal: %s (%zu records, %.2f simulated hours, seed %llu)\n",
              argv[1], controller.journal().records().size(),
              controller.clock().hours(),
              static_cast<unsigned long long>(seed));
  return 0;
}
