// Prints the full knob catalogs (name, type, role, range, default, dynamic,
// unit, description) as markdown — a generated reference for the README /
// operators.

#include <cstdio>

#include "cdb/knob_catalog.h"

namespace {

const char* TypeName(hunter::cdb::KnobType type) {
  switch (type) {
    case hunter::cdb::KnobType::kInteger: return "int";
    case hunter::cdb::KnobType::kDouble: return "double";
    case hunter::cdb::KnobType::kEnum: return "enum";
    case hunter::cdb::KnobType::kBool: return "bool";
  }
  return "?";
}

void PrintCatalog(const hunter::cdb::KnobCatalog& catalog) {
  std::printf("\n## %s (%zu knobs)\n\n", catalog.dbms_name().c_str(),
              catalog.size());
  std::printf("| knob | type | range | default | dynamic | unit | description |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  for (size_t i = 0; i < catalog.size(); ++i) {
    const hunter::cdb::KnobDef& def = catalog.knob(i);
    std::printf("| `%s` | %s | [%.0f, %.0f] | %.0f | %s | %s | %s |\n",
                def.name.c_str(), TypeName(def.type), def.min_value,
                def.max_value, def.default_value,
                def.dynamic ? "yes" : "restart", def.unit.c_str(),
                def.description.c_str());
  }
}

}  // namespace

int main() {
  PrintCatalog(hunter::cdb::MySqlCatalog());
  PrintCatalog(hunter::cdb::PostgresCatalog());
  return 0;
}
