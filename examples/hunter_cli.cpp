// hunter_cli — a small command-line front end to the tuning service, the
// kind of driver a DBA would script against:
//
//   hunter_cli [--dbms mysql|postgresql] [--workload tpcc|sysbench_ro|
//              sysbench_rw|sysbench_wo|production] [--clones N]
//              [--budget-hours H] [--alpha A] [--fix knob=value]...
//              [--range knob=min:max]... [--save-model path]
//              [--load-model path] [--seed S]
//
// Examples:
//   hunter_cli --workload tpcc --clones 4 --budget-hours 12
//   hunter_cli --workload sysbench_rw --alpha 0.2
//       --fix innodb_flush_log_at_trx_commit=1
//       --range innodb_buffer_pool_size=128:8192 --save-model model.txt
//   hunter_cli --workload sysbench_rw --load-model model.txt  # fine-tune

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "hunter/model_io.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

namespace {

struct CliOptions {
  std::string dbms = "mysql";
  std::string workload = "tpcc";
  int clones = 1;
  double budget_hours = 12.0;
  double alpha = 0.5;
  uint64_t seed = 42;
  std::string save_model;
  std::string load_model;
  hunter::core::Rules rules;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dbms mysql|postgresql] [--workload NAME]\n"
               "          [--clones N] [--budget-hours H] [--alpha A]\n"
               "          [--fix knob=value] [--range knob=min:max]\n"
               "          [--save-model PATH] [--load-model PATH] "
               "[--seed S]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dbms") {
      const char* v = next();
      if (v == nullptr) return false;
      options->dbms = v;
    } else if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      options->workload = v;
    } else if (arg == "--clones") {
      const char* v = next();
      if (v == nullptr) return false;
      options->clones = std::atoi(v);
    } else if (arg == "--budget-hours") {
      const char* v = next();
      if (v == nullptr) return false;
      options->budget_hours = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      options->alpha = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--save-model") {
      const char* v = next();
      if (v == nullptr) return false;
      options->save_model = v;
    } else if (arg == "--load-model") {
      const char* v = next();
      if (v == nullptr) return false;
      options->load_model = v;
    } else if (arg == "--fix") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return false;
      options->rules.FixKnob(std::string(v, eq), std::atof(eq + 1));
    } else if (arg == "--range") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      const char* colon = eq != nullptr ? std::strchr(eq, ':') : nullptr;
      if (eq == nullptr || colon == nullptr) return false;
      options->rules.RestrictRange(std::string(v, eq), std::atof(eq + 1),
                                   std::atof(colon + 1));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

hunter::cdb::WorkloadProfile PickWorkload(const std::string& name) {
  using namespace hunter::workload;
  if (name == "sysbench_ro") return SysbenchReadOnly();
  if (name == "sysbench_rw") return SysbenchReadWrite();
  if (name == "sysbench_wo") return SysbenchWriteOnly();
  if (name == "production") return Production(true);
  return Tpcc();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hunter;
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage(argv[0]);
    return 1;
  }

  const bool is_mysql = cli.dbms != "postgresql";
  cdb::KnobCatalog catalog =
      is_mysql ? cdb::MySqlCatalog() : cdb::PostgresCatalog();
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog,
      is_mysql ? cdb::MySqlEvaluationInstance()
               : cdb::PostgresEvaluationInstance(),
      is_mysql ? cdb::MySqlEngineTuning() : cdb::PostgresEngineTuning(),
      cli.seed);

  controller::ControllerOptions controller_options;
  controller_options.num_clones = cli.clones;
  controller_options.alpha = cli.alpha;
  controller::Controller controller(std::move(instance),
                                    PickWorkload(cli.workload),
                                    controller_options);

  cli.rules.set_alpha(cli.alpha);
  core::HunterTuner hunter(&catalog, cli.rules, core::HunterOptions{},
                           cli.seed + 1);
  if (!cli.load_model.empty()) {
    core::HunterModel model;
    if (!core::LoadModelFromFile(cli.load_model, &model)) {
      std::fprintf(stderr, "failed to load model from %s\n",
                   cli.load_model.c_str());
      return 1;
    }
    hunter.ImportModel(model);
    std::printf("loaded model (signature %s); fine-tuning\n",
                model.signature.c_str());
  }

  const cdb::PerformanceSummary defaults = controller.DefaultPerformance();
  std::printf("tuning %s / %s on %d clone(s), %.1f h budget, alpha %.2f, "
              "%zu rule(s)\n",
              cli.dbms.c_str(), controller.workload().name.c_str(),
              controller.num_clones(), cli.budget_hours, cli.alpha,
              hunter.rules().num_constraints());
  std::printf("defaults: %.1f tps, p95 %.1f ms\n", defaults.throughput_tps,
              defaults.latency_p95_ms);

  tuners::HarnessOptions harness;
  harness.budget_hours = cli.budget_hours;
  const tuners::TuningResult result =
      tuners::RunTuning(&hunter, &controller, harness);

  std::printf("best: %.1f tps (%.2fx), p95 %.1f ms; recommendation at "
              "%.1f h after %zu stress tests\n",
              result.best_throughput,
              result.best_throughput / defaults.throughput_tps,
              result.best_latency, result.recommendation_hours, result.steps);
  controller.DeployToUser(result.best_sample.knobs);
  std::printf("deployed best verified configuration on the user instance\n");

  if (!cli.save_model.empty()) {
    const auto model = hunter.ExportModel();
    if (model.has_value() &&
        core::SaveModelToFile(*model, cli.save_model)) {
      std::printf("saved model to %s (signature %s)\n",
                  cli.save_model.c_str(), model->signature.c_str());
    } else {
      std::fprintf(stderr, "failed to save model to %s\n",
                   cli.save_model.c_str());
    }
  }
  return 0;
}
