// Clone-and-parallelize: the same HUNTER tuning run with 1 vs 10 cloned
// CDB instances (§2.2). With k clones the Controller stress-tests k
// configurations per round and charges only the slowest one to the clock,
// which is what turns a ~10-hour recommendation into a ~1-hour one.

#include <cstdio>
#include <memory>

#include "cdb/cdb_instance.h"
#include "cdb/knob_catalog.h"
#include "controller/controller.h"
#include "hunter/hunter.h"
#include "tuners/tuner.h"
#include "workload/workloads.h"

namespace {

struct Run {
  int clones;
  double best_throughput;
  double recommendation_hours;
  size_t steps;
};

Run TuneWithClones(const hunter::cdb::KnobCatalog& catalog, int clones,
                   double target_tps) {
  using namespace hunter;
  auto instance = std::make_unique<cdb::CdbInstance>(
      &catalog, cdb::MySqlEvaluationInstance(), cdb::MySqlEngineTuning(), 42);
  controller::ControllerOptions options;
  options.num_clones = clones;
  controller::Controller controller(std::move(instance), workload::Tpcc(),
                                    options);
  core::HunterTuner hunter(&catalog, core::Rules(), core::HunterOptions{}, 7);
  tuners::HarnessOptions harness;
  harness.budget_hours = 30.0;
  harness.target_throughput = target_tps;  // HUNTER-* termination rule
  const tuners::TuningResult result =
      tuners::RunTuning(&hunter, &controller, harness);
  return {clones, result.best_throughput, result.recommendation_hours,
          result.steps};
}

}  // namespace

int main() {
  using namespace hunter;
  cdb::KnobCatalog catalog = cdb::MySqlCatalog();

  std::printf("tuning MySQL/TPC-C with HUNTER...\n\n");
  const Run serial = TuneWithClones(catalog, 1, 0.0);
  // The parallel run terminates once it exceeds 98% of the serial best.
  const Run parallel = TuneWithClones(catalog, 10,
                                      0.98 * serial.best_throughput);

  std::printf("%8s %16s %20s %8s\n", "clones", "best (txn/min)",
              "rec. time (hours)", "steps");
  for (const Run& run : {serial, parallel}) {
    std::printf("%8d %16.0f %20.1f %8zu\n", run.clones,
                run.best_throughput * 60.0, run.recommendation_hours,
                run.steps);
  }
  std::printf(
      "\nspeedup from 10 clones: %.1fx less recommendation time at ~equal "
      "throughput (the paper reports up to 22.8x with 20 clones).\n",
      serial.recommendation_hours /
          std::max(0.01, parallel.recommendation_hours));
  return 0;
}
