#include "obs/metrics.h"

#include <limits>

namespace hunter::obs {

double Gauge::value() const {
  return set_ ? value_ : std::numeric_limits<double>::quiet_NaN();
}

void Histogram::Observe(double value) {
  stat_.Add(value);
  values_.push_back(value);
}

double Histogram::Quantile(double q) const {
  if (values_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return common::Percentile(values_, q);
}

const MetricsRegistry::Entry* MetricsRegistry::Find(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &order_[it->second];
}

Counter* MetricsRegistry::RegisterCounter(const std::string& name) {
  if (const Entry* e = Find(name)) {
    return e->kind == MetricKind::kCounter ? &counters_[e->index] : nullptr;
  }
  by_name_[name] = order_.size();
  order_.push_back({name, MetricKind::kCounter, counters_.size()});
  counters_.emplace_back();
  return &counters_.back();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name) {
  if (const Entry* e = Find(name)) {
    return e->kind == MetricKind::kGauge ? &gauges_[e->index] : nullptr;
  }
  by_name_[name] = order_.size();
  order_.push_back({name, MetricKind::kGauge, gauges_.size()});
  gauges_.emplace_back();
  return &gauges_.back();
}

Histogram* MetricsRegistry::RegisterHistogram(const std::string& name) {
  if (const Entry* e = Find(name)) {
    return e->kind == MetricKind::kHistogram ? &histograms_[e->index] : nullptr;
  }
  by_name_[name] = order_.size();
  order_.push_back({name, MetricKind::kHistogram, histograms_.size()});
  histograms_.emplace_back();
  return &histograms_.back();
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(order_.size());
  for (const Entry& e : order_) names.push_back(e.name);
  return names;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(order_.size());
  for (const Entry& e : order_) {
    MetricSnapshot s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = counters_[e.index].value();
        break;
      case MetricKind::kGauge:
        s.value = gauges_[e.index].value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        s.count = h.count();
        s.mean = h.count() == 0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : h.stat().mean();
        s.min = h.stat().min();
        s.max = h.stat().max();
        s.p50 = h.Quantile(50.0);
        s.p95 = h.Quantile(95.0);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace hunter::obs
