#include "obs/journal.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

#include "common/text.h"

namespace hunter::obs {
namespace {

// Emits a double as a bare JSON number, or as a quoted token for the
// non-finite values JSON cannot represent ("NaN", "Infinity", "-Infinity").
void WriteNumber(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    out << common::FormatDouble17(value);
  } else {
    out << '"' << common::FormatDouble17(value) << '"';
  }
}

void WriteString(std::ostream& out, const std::string& s) {
  out << '"' << common::JsonEscape(s) << '"';
}

void WriteAttrs(std::ostream& out, const std::vector<Attr>& attrs) {
  out << '{';
  bool first = true;
  for (const Attr& a : attrs) {
    if (!first) out << ',';
    first = false;
    WriteString(out, a.key);
    out << ':';
    WriteString(out, a.value);
  }
  out << '}';
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

void WriteMetric(std::ostream& out, const MetricSnapshot& m) {
  out << "{\"name\":";
  WriteString(out, m.name);
  out << ",\"kind\":\"" << KindName(m.kind) << '"';
  if (m.kind == MetricKind::kHistogram) {
    out << ",\"count\":" << m.count;
    out << ",\"mean\":";
    WriteNumber(out, m.mean);
    out << ",\"min\":";
    WriteNumber(out, m.min);
    out << ",\"max\":";
    WriteNumber(out, m.max);
    out << ",\"p50\":";
    WriteNumber(out, m.p50);
    out << ",\"p95\":";
    WriteNumber(out, m.p95);
  } else {
    out << ",\"value\":";
    WriteNumber(out, m.value);
  }
  out << '}';
}

void WriteMetaLine(std::ostream& out, const std::string& schema,
                   const std::vector<Attr>& meta) {
  out << "{\"type\":\"meta\",\"schema\":";
  WriteString(out, schema);
  out << ",\"attrs\":";
  WriteAttrs(out, meta);
  out << "}\n";
}

void WriteRecordLine(std::ostream& out, const Record& record, size_t seq) {
  switch (record.type) {
    case Record::Type::kSpan: {
      const SpanRecord& s = record.span;
      out << "{\"type\":\"span\",\"seq\":" << seq << ",\"stage\":";
      WriteString(out, s.stage);
      out << ",\"name\":";
      WriteString(out, s.name);
      out << ",\"t\":";
      WriteNumber(out, s.start_seconds);
      out << ",\"dur\":";
      WriteNumber(out, s.duration_seconds);
      out << ",\"charged\":" << (s.charged ? "true" : "false");
      out << ",\"attrs\":";
      WriteAttrs(out, s.attrs);
      break;
    }
    case Record::Type::kEvent: {
      const EventRecord& e = record.event;
      out << "{\"type\":\"event\",\"seq\":" << seq << ",\"name\":";
      WriteString(out, e.name);
      out << ",\"t\":";
      WriteNumber(out, e.at_seconds);
      out << ",\"attrs\":";
      WriteAttrs(out, e.attrs);
      break;
    }
    case Record::Type::kMetrics: {
      out << "{\"type\":\"metrics\",\"seq\":" << seq << ",\"label\":";
      WriteString(out, record.metrics_label);
      out << ",\"t\":";
      WriteNumber(out, record.metrics_at_seconds);
      out << ",\"metrics\":[";
      bool first = true;
      for (const MetricSnapshot& m : record.metrics) {
        if (!first) out << ',';
        first = false;
        WriteMetric(out, m);
      }
      out << ']';
      break;
    }
  }
  out << "}\n";
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the journal schema. Keys keep their
// textual order so re-emission can be byte-stable; numbers go through
// std::from_chars, which is locale-independent by construction.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  JsonReader(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out, error)) return false;
    SkipSpace();
    if (p_ != end_) {
      *error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (p_ != end_ &&
           std::isspace(static_cast<unsigned char>(*p_)) != 0) {
      ++p_;
    }
  }

  bool Literal(const char* text) {
    const char* q = p_;
    for (const char* t = text; *t != '\0'; ++t, ++q) {
      if (q == end_ || *q != *t) return false;
    }
    p_ = q;
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    SkipSpace();
    if (p_ == end_) {
      *error = "unexpected end of input";
      return false;
    }
    switch (*p_) {
      case '{':
        return ParseObject(out, error);
      case '[':
        return ParseArray(out, error);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str, error);
      case 't':
        if (!Literal("true")) break;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!Literal("false")) break;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!Literal("null")) break;
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        return ParseNumber(out, error);
    }
    *error = "unrecognized JSON token";
    return false;
  }

  bool ParseNumber(JsonValue* out, std::string* error) {
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(p_, end_, value);
    if (ec != std::errc()) {
      *error = "malformed number";
      return false;
    }
    p_ = ptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    ++p_;  // consume opening quote
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) break;
      char esc = *p_++;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (end_ - p_ < 4) {
            *error = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(p_, p_ + 4, code, 16);
          if (ec != std::errc() || ptr != p_ + 4 || code > 0x7f) {
            // The journal writer only emits \u00xx for ASCII control
            // characters; anything else is not ours.
            *error = "unsupported \\u escape";
            return false;
          }
          p_ += 4;
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          *error = "unknown escape character";
          return false;
      }
    }
    if (p_ == end_) {
      *error = "unterminated string";
      return false;
    }
    ++p_;  // closing quote
    return true;
  }

  bool ParseArray(JsonValue* out, std::string* error) {
    ++p_;  // consume '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element, error)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (p_ == end_) {
        *error = "unterminated array";
        return false;
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      *error = "expected ',' or ']' in array";
      return false;
    }
  }

  bool ParseObject(JsonValue* out, std::string* error) {
    ++p_;  // consume '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (p_ == end_ || *p_ != '"') {
        *error = "expected object key";
        return false;
      }
      std::string key;
      if (!ParseString(&key, error)) return false;
      SkipSpace();
      if (p_ == end_ || *p_ != ':') {
        *error = "expected ':' after object key";
        return false;
      }
      ++p_;
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (p_ == end_) {
        *error = "unterminated object";
        return false;
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      *error = "expected ',' or '}' in object";
      return false;
    }
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// Schema extraction helpers.

bool GetString(const JsonValue& obj, const std::string& key, std::string* out,
               std::string* error) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    *error = "missing or non-string field \"" + key + "\"";
    return false;
  }
  *out = v->str;
  return true;
}

// Doubles may arrive as bare numbers or as the quoted non-finite tokens the
// writer emits.
bool GetDouble(const JsonValue& obj, const std::string& key, double* out,
               std::string* error) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr) {
    *error = "missing field \"" + key + "\"";
    return false;
  }
  if (v->kind == JsonValue::Kind::kNumber) {
    *out = v->number;
    return true;
  }
  if (v->kind == JsonValue::Kind::kString) {
    if (v->str == "NaN") {
      *out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    if (v->str == "Infinity") {
      *out = std::numeric_limits<double>::infinity();
      return true;
    }
    if (v->str == "-Infinity") {
      *out = -std::numeric_limits<double>::infinity();
      return true;
    }
  }
  *error = "field \"" + key + "\" is not a number";
  return false;
}

bool GetAttrs(const JsonValue& obj, const std::string& key,
              std::vector<Attr>* out, std::string* error) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    *error = "missing or non-object field \"" + key + "\"";
    return false;
  }
  out->clear();
  for (const auto& [k, value] : v->object) {
    if (value.kind != JsonValue::Kind::kString) {
      *error = "attr \"" + k + "\" is not a string";
      return false;
    }
    out->push_back({k, value.str});
  }
  return true;
}

bool ParseMetric(const JsonValue& obj, MetricSnapshot* out,
                 std::string* error) {
  if (!GetString(obj, "name", &out->name, error)) return false;
  std::string kind;
  if (!GetString(obj, "kind", &kind, error)) return false;
  if (kind == "counter") {
    out->kind = MetricKind::kCounter;
  } else if (kind == "gauge") {
    out->kind = MetricKind::kGauge;
  } else if (kind == "histogram") {
    out->kind = MetricKind::kHistogram;
  } else {
    *error = "unknown metric kind \"" + kind + "\"";
    return false;
  }
  if (out->kind == MetricKind::kHistogram) {
    double count = 0.0;
    if (!GetDouble(obj, "count", &count, error) ||
        !GetDouble(obj, "mean", &out->mean, error) ||
        !GetDouble(obj, "min", &out->min, error) ||
        !GetDouble(obj, "max", &out->max, error) ||
        !GetDouble(obj, "p50", &out->p50, error) ||
        !GetDouble(obj, "p95", &out->p95, error)) {
      return false;
    }
    out->count = static_cast<size_t>(count);
    return true;
  }
  return GetDouble(obj, "value", &out->value, error);
}

bool ParseRecord(const JsonValue& obj, const std::string& type, Record* out,
                 std::string* error) {
  if (type == "span") {
    out->type = Record::Type::kSpan;
    SpanRecord& s = out->span;
    const JsonValue* charged = obj.Get("charged");
    if (charged == nullptr || charged->kind != JsonValue::Kind::kBool) {
      *error = "missing or non-bool field \"charged\"";
      return false;
    }
    s.charged = charged->boolean;
    return GetString(obj, "stage", &s.stage, error) &&
           GetString(obj, "name", &s.name, error) &&
           GetDouble(obj, "t", &s.start_seconds, error) &&
           GetDouble(obj, "dur", &s.duration_seconds, error) &&
           GetAttrs(obj, "attrs", &s.attrs, error);
  }
  if (type == "event") {
    out->type = Record::Type::kEvent;
    EventRecord& e = out->event;
    return GetString(obj, "name", &e.name, error) &&
           GetDouble(obj, "t", &e.at_seconds, error) &&
           GetAttrs(obj, "attrs", &e.attrs, error);
  }
  if (type == "metrics") {
    out->type = Record::Type::kMetrics;
    if (!GetString(obj, "label", &out->metrics_label, error) ||
        !GetDouble(obj, "t", &out->metrics_at_seconds, error)) {
      return false;
    }
    const JsonValue* metrics = obj.Get("metrics");
    if (metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
      *error = "missing or non-array field \"metrics\"";
      return false;
    }
    for (const JsonValue& m : metrics->array) {
      if (m.kind != JsonValue::Kind::kObject) {
        *error = "metric entry is not an object";
        return false;
      }
      MetricSnapshot snapshot;
      if (!ParseMetric(m, &snapshot, error)) return false;
      out->metrics.push_back(std::move(snapshot));
    }
    return true;
  }
  *error = "unknown record type \"" + type + "\"";
  return false;
}

}  // namespace

Journal::Journal(common::SimClock* clock, MetricsRegistry* registry,
                 std::vector<Attr> meta)
    : clock_(clock),
      registry_(registry),
      meta_(std::move(meta)),
      tracer_(clock, this) {}

void Journal::SnapshotMetrics(const std::string& label) {
  Record record;
  record.type = Record::Type::kMetrics;
  record.metrics_label = label;
  record.metrics_at_seconds = clock_->seconds();
  if (registry_ != nullptr) record.metrics = registry_->Snapshot();
  records_.push_back(std::move(record));
}

void Journal::AppendSpan(SpanRecord span) {
  Record record;
  record.type = Record::Type::kSpan;
  record.span = std::move(span);
  records_.push_back(std::move(record));
}

void Journal::AppendEvent(EventRecord event) {
  Record record;
  record.type = Record::Type::kEvent;
  record.event = std::move(event);
  records_.push_back(std::move(record));
}

void Journal::Write(std::ostream& out) const {
  common::ScopedClassicLocale pin(out);
  WriteMetaLine(out, kJournalSchema, meta_);
  for (size_t i = 0; i < records_.size(); ++i) {
    WriteRecordLine(out, records_[i], i);
  }
}

bool ParseJournal(std::istream& in, ParsedJournal* out, std::string* error) {
  out->schema.clear();
  out->meta.clear();
  out->records.clear();
  std::string line;
  size_t line_no = 0;
  bool saw_meta = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue value;
    std::string detail;
    JsonReader reader(line.data(), line.data() + line.size());
    if (!reader.Parse(&value, &detail) ||
        value.kind != JsonValue::Kind::kObject) {
      if (detail.empty()) detail = "expected a JSON object";
      *error = "line " + std::to_string(line_no) + ": " + detail;
      return false;
    }
    std::string type;
    if (!GetString(value, "type", &type, &detail)) {
      *error = "line " + std::to_string(line_no) + ": " + detail;
      return false;
    }
    if (type == "meta") {
      if (saw_meta) {
        *error = "line " + std::to_string(line_no) + ": duplicate meta record";
        return false;
      }
      saw_meta = true;
      if (!GetString(value, "schema", &out->schema, &detail) ||
          !GetAttrs(value, "attrs", &out->meta, &detail)) {
        *error = "line " + std::to_string(line_no) + ": " + detail;
        return false;
      }
      continue;
    }
    Record record;
    if (!ParseRecord(value, type, &record, &detail)) {
      *error = "line " + std::to_string(line_no) + ": " + detail;
      return false;
    }
    out->records.push_back(std::move(record));
  }
  if (!saw_meta) {
    *error = "journal has no meta record";
    return false;
  }
  return true;
}

void WriteParsed(const ParsedJournal& journal, std::ostream& out) {
  common::ScopedClassicLocale pin(out);
  WriteMetaLine(out, journal.schema, journal.meta);
  for (size_t i = 0; i < journal.records.size(); ++i) {
    WriteRecordLine(out, journal.records[i], i);
  }
}

}  // namespace hunter::obs
