// Run journal: ordered JSONL emission of spans, events and metric snapshots.
//
// Schema (`hunter.journal.v1`) — one JSON object per line, first line is the
// meta record, every subsequent record carries its append sequence number:
//
//   {"type":"meta","schema":"hunter.journal.v1","attrs":{...}}
//   {"type":"span","seq":0,"stage":"deploy","name":"clone0","t":0,"dur":3,
//    "charged":true,"attrs":{...}}
//   {"type":"event","seq":1,"name":"retry","t":3,"attrs":{...}}
//   {"type":"metrics","seq":2,"label":"batch0","t":145.7,"metrics":[...]}
//
// Determinism contract (DESIGN.md §10):
//  * all doubles are rendered with common::FormatDouble17 (classic locale,
//    round-trip precision; non-finite values as "NaN"/"Infinity"/"-Infinity"
//    strings), so journals are byte-identical regardless of host locale;
//  * records are emitted in append order — no hash-map iteration anywhere;
//  * Write -> ParseJournal -> WriteParsed reproduces the input byte-for-byte;
//  * folding `dur` over charged spans in record order equals the simulated
//    clock total bit-exactly (see obs/trace.h).

#ifndef HUNTER_OBS_JOURNAL_H_
#define HUNTER_OBS_JOURNAL_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hunter::obs {

inline constexpr char kJournalSchema[] = "hunter.journal.v1";

// One journal line (other than meta). Exactly one of the three payloads is
// meaningful, selected by `type`.
struct Record {
  enum class Type { kSpan, kEvent, kMetrics };
  Type type = Type::kSpan;
  SpanRecord span;
  EventRecord event;
  std::string metrics_label;
  double metrics_at_seconds = 0.0;
  std::vector<MetricSnapshot> metrics;
};

class Journal {
 public:
  // `clock` must outlive the journal. `registry` may be null if no metric
  // snapshots are taken. `meta` is emitted on the first line (e.g. seed,
  // workload) — keep values pre-rendered via common::FormatDouble17.
  Journal(common::SimClock* clock, MetricsRegistry* registry,
          std::vector<Attr> meta = {});

  // The owned tracer points back at this journal, so the journal is pinned
  // in place once constructed.
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  Tracer& tracer() { return tracer_; }
  MetricsRegistry* registry() const { return registry_; }

  // Appends a snapshot of every registered metric, stamped with the current
  // simulated time. No-op (recorded as an empty snapshot) without a registry.
  void SnapshotMetrics(const std::string& label);

  // Record sinks used by the Tracer; also available to tests building
  // journals by hand.
  void AppendSpan(SpanRecord span);
  void AppendEvent(EventRecord event);

  const std::vector<Record>& records() const { return records_; }
  const std::vector<Attr>& meta() const { return meta_; }

  // Serializes the journal as JSONL. Byte-stable: classic locale, fixed key
  // order, append-order records.
  void Write(std::ostream& out) const;

 private:
  common::SimClock* clock_;
  MetricsRegistry* registry_;
  std::vector<Attr> meta_;
  std::vector<Record> records_;
  Tracer tracer_;
};

// A journal read back from disk; shares the Record representation with the
// writer so re-emission is byte-identical.
struct ParsedJournal {
  std::string schema;
  std::vector<Attr> meta;
  std::vector<Record> records;
};

// Parses JSONL produced by Journal::Write (or tracecat-compatible input).
// Locale-independent (std::from_chars). Returns false and fills `error`
// (with a line number) on malformed input.
bool ParseJournal(std::istream& in, ParsedJournal* out, std::string* error);

// Re-serializes a parsed journal with the writer's exact formatting.
void WriteParsed(const ParsedJournal& journal, std::ostream& out);

}  // namespace hunter::obs

#endif  // HUNTER_OBS_JOURNAL_H_
