#include "obs/trace.h"

#include <utility>

#include "obs/journal.h"

namespace hunter::obs {

void Tracer::Charge(const std::string& stage, const std::string& name,
                    double seconds, std::vector<Attr> attrs) {
  if (seconds < 0.0) seconds = 0.0;
  SpanRecord span;
  span.stage = stage;
  span.name = name;
  span.start_seconds = clock_->seconds();
  span.duration_seconds = seconds;
  span.charged = true;
  span.attrs = std::move(attrs);
  clock_->Advance(seconds);
  charged_seconds_ += seconds;
  if (journal_ != nullptr) journal_->AppendSpan(std::move(span));
}

void Tracer::Span(const std::string& stage, const std::string& name,
                  double start_seconds, double duration_seconds,
                  std::vector<Attr> attrs) {
  if (journal_ == nullptr) return;
  SpanRecord span;
  span.stage = stage;
  span.name = name;
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds < 0.0 ? 0.0 : duration_seconds;
  span.charged = false;
  span.attrs = std::move(attrs);
  journal_->AppendSpan(std::move(span));
}

void Tracer::Event(const std::string& name, std::vector<Attr> attrs) {
  if (journal_ == nullptr) return;
  EventRecord event;
  event.name = name;
  event.at_seconds = clock_->seconds();
  event.attrs = std::move(attrs);
  journal_->AppendEvent(std::move(event));
}

}  // namespace hunter::obs
