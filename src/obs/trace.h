// Deterministic tracer: spans and events keyed to the simulated clock.
//
// The tracer never reads wall-clock time — every timestamp is
// common::SimClock seconds, so traces are byte-stable across runs with the
// same seed and lint-clean under the no-wall-clock rule.
//
// Two span flavours:
//  * Charged spans (Charge()) both advance the simulated clock and record
//    the span. The journal's charged spans therefore *partition* the run:
//    folding their durations in record order reproduces clock.seconds()
//    bit-exactly, because it is the identical sequence of IEEE additions
//    starting from zero. tracecat and the accounting regression tests rely
//    on this to catch double- or missed charges.
//  * Detail spans (Span()) record timing that is already covered by some
//    charged span — e.g. the non-critical lanes of a parallel stress round —
//    and never touch the clock.

#ifndef HUNTER_OBS_TRACE_H_
#define HUNTER_OBS_TRACE_H_

#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace hunter::obs {

class Journal;

// One key/value annotation. Values are pre-rendered strings; use
// common::FormatDouble17 for numeric attributes so they stay byte-stable.
struct Attr {
  std::string key;
  std::string value;
};

struct SpanRecord {
  std::string stage;  // Table-1 vocabulary: deploy, execution, collection, ...
  std::string name;   // fine-grained label, e.g. "clone0_retry1"
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool charged = false;  // true iff this span advanced the simulated clock
  std::vector<Attr> attrs;
};

struct EventRecord {
  std::string name;
  double at_seconds = 0.0;
  std::vector<Attr> attrs;
};

class Tracer {
 public:
  Tracer(common::SimClock* clock, Journal* journal)
      : clock_(clock), journal_(journal) {}

  // Advances the simulated clock by `seconds` (negative values clamp to 0,
  // matching SimClock::Advance) and records a charged span covering exactly
  // the advanced interval.
  void Charge(const std::string& stage, const std::string& name,
              double seconds, std::vector<Attr> attrs = {});

  // Records an uncharged detail span at an explicit position on the
  // simulated timeline; the clock is not touched.
  void Span(const std::string& stage, const std::string& name,
            double start_seconds, double duration_seconds,
            std::vector<Attr> attrs = {});

  // Records a point event at the current simulated time.
  void Event(const std::string& name, std::vector<Attr> attrs = {});

  // Sum of all durations passed to Charge(), folded in call order — by
  // construction equal to the clock advance attributable to this tracer.
  double charged_seconds() const { return charged_seconds_; }

  common::SimClock* clock() const { return clock_; }

 private:
  common::SimClock* clock_;
  Journal* journal_;
  double charged_seconds_ = 0.0;
};

}  // namespace hunter::obs

#endif  // HUNTER_OBS_TRACE_H_
