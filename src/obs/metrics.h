// Metrics registry for the observability layer (DESIGN.md §10).
//
// Counters, gauges and histograms are registered by name (engine, controller
// and tuner each register their own families) and snapshotted into the run
// journal. Registration order is the schema: two runs that register the same
// instruments in the same order produce journals with identical metric
// blocks, which is what the determinism property tests pin.
//
// Deliberately simple: single-threaded (all updates happen on the
// Controller's coordination thread, never from Actor worker threads), no
// labels, doubles everywhere.

#ifndef HUNTER_OBS_METRICS_H_
#define HUNTER_OBS_METRICS_H_

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace hunter::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Monotone accumulator (events absorbed, retries, train steps, ...).
class Counter {
 public:
  void Increment(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Last-write-wins observation (pool size, current phase, hit ratio, ...).
// Unset gauges snapshot as NaN, never as a fake 0.0 observation.
class Gauge {
 public:
  void Set(double value) {
    value_ = value;
    set_ = true;
  }
  bool has_value() const { return set_; }
  double value() const;

 private:
  double value_ = 0.0;
  bool set_ = false;
};

// Streaming distribution built on common::RunningStat plus a retained value
// list so snapshots can report percentiles via common::Percentile.
class Histogram {
 public:
  void Observe(double value);
  size_t count() const { return stat_.count(); }
  const common::RunningStat& stat() const { return stat_; }
  double Quantile(double q) const;  // q in [0, 100]; NaN when empty

 private:
  common::RunningStat stat_;
  std::vector<double> values_;
};

// One serialized metric in a journal snapshot. For counters and gauges only
// `value` is meaningful; histograms carry the distribution summary (all
// NaN when the histogram is empty — the count disambiguates).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

class MetricsRegistry {
 public:
  // Get-or-create by name. Re-registering an existing name of the same kind
  // returns the existing instrument (so components re-built mid-run, e.g. a
  // re-optimized Recommender, keep accumulating into the same series);
  // re-registering under a different kind returns nullptr.
  Counter* RegisterCounter(const std::string& name);
  Gauge* RegisterGauge(const std::string& name);
  Histogram* RegisterHistogram(const std::string& name);

  size_t size() const { return order_.size(); }
  // Instrument names in registration order — the journal's metric schema.
  std::vector<std::string> Names() const;
  // Snapshot of every instrument, in registration order.
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    size_t index;  // into the kind's deque
  };

  const Entry* Find(const std::string& name) const;

  std::vector<Entry> order_;
  std::map<std::string, size_t> by_name_;  // name -> index into order_
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace hunter::obs

#endif  // HUNTER_OBS_METRICS_H_
