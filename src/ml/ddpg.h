// Deep Deterministic Policy Gradient (Lillicrap et al. 2015), the DRL
// algorithm at the core of both CDBTune and HUNTER's Recommender (§3.3).
//
// The agent maps a (possibly PCA-compressed) metric vector `state` to a
// normalized knob configuration `action` in [0,1]^k. The critic learns
// Q(s, a); the actor follows the deterministic policy gradient by ascending
// dQ/da through the critic. Target networks with soft updates stabilize the
// bootstrap target.

#ifndef HUNTER_ML_DDPG_H_
#define HUNTER_ML_DDPG_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/mlp.h"
#include "ml/replay_buffer.h"

namespace hunter::ml {

struct DdpgOptions {
  size_t state_dim = 0;
  size_t action_dim = 0;
  std::vector<size_t> actor_hidden = {64, 64};
  std::vector<size_t> critic_hidden = {64, 64};
  double actor_lr = 1e-3;
  double critic_lr = 2e-3;
  double gamma = 0.9;   // discount
  double tau = 0.01;    // soft target-update rate
  size_t batch_size = 16;
  size_t replay_capacity = 100000;
  // Gradient L2-norm clip (0 disables clipping).
  double grad_clip = 5.0;
  // When true (default), TrainStep runs the three batched GEMM passes
  // (critic target, critic update, actor update) over preallocated arenas.
  // When false it runs the original per-sample reference path. Both paths
  // consume the same RNG stream and produce bit-identical parameters; the
  // flag exists for baseline timing and equivalence tests.
  bool batched_training = true;
};

class Ddpg {
 public:
  Ddpg(const DdpgOptions& options, common::Rng* rng);

  // Deterministic policy: action in [0,1]^action_dim (tanh mapped affinely).
  std::vector<double> Act(const std::vector<double>& state) const;

  void AddTransition(Transition transition);

  // Performs one minibatch update of critic and actor plus soft target
  // updates. Returns the critic's mean squared TD error (0 if the buffer is
  // empty). Deterministic given the RNG state.
  double TrainStep();

  // Target-critic estimate of Q(s, a) — used by tests and diagnostics.
  double EvaluateQ(const std::vector<double>& state,
                   const std::vector<double>& action) const;

  size_t buffer_size() const { return buffer_.size(); }
  const ReplayBuffer& buffer() const { return buffer_; }
  const DdpgOptions& options() const { return options_; }

  // Serializes actor+critic parameters for the model-reuse schemes (§4).
  std::vector<double> SaveParameters() const;
  void LoadParameters(const std::vector<double>& params);

 private:
  // The two TrainStep bodies; both consume `batch_indices_`.
  double TrainStepScalar();
  double TrainStepBatched();

  DdpgOptions options_;
  common::Rng rng_;
  Mlp actor_;
  Mlp critic_;
  Mlp target_actor_;
  Mlp target_critic_;
  ReplayBuffer buffer_;

  // Sampled minibatch indices and batched-training arenas, reused across
  // steps so the steady-state train loop allocates nothing.
  std::vector<size_t> batch_indices_;
  std::vector<double> b_target_;       // TD targets, one per row
  linalg::Matrix b_states_;            // batch x S
  linalg::Matrix b_next_states_;       // batch x S
  linalg::Matrix b_sa_;                // batch x (S+A), state ‖ action
  linalg::Matrix b_next_sa_;           // batch x (S+A)
  linalg::Matrix b_tanh_;              // batch x A (actor tanh output)
  linalg::Matrix b_q_;                 // batch x 1
  linalg::Matrix b_next_q_;            // batch x 1
  linalg::Matrix b_grad_q_;            // batch x 1
  linalg::Matrix b_grad_sa_;           // batch x (S+A), dQ/d(s‖a)
  linalg::Matrix b_grad_action_;       // batch x A
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_DDPG_H_
