// Deep Deterministic Policy Gradient (Lillicrap et al. 2015), the DRL
// algorithm at the core of both CDBTune and HUNTER's Recommender (§3.3).
//
// The agent maps a (possibly PCA-compressed) metric vector `state` to a
// normalized knob configuration `action` in [0,1]^k. The critic learns
// Q(s, a); the actor follows the deterministic policy gradient by ascending
// dQ/da through the critic. Target networks with soft updates stabilize the
// bootstrap target.

#ifndef HUNTER_ML_DDPG_H_
#define HUNTER_ML_DDPG_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "ml/mlp.h"
#include "ml/replay_buffer.h"

namespace hunter::ml {

struct DdpgOptions {
  size_t state_dim = 0;
  size_t action_dim = 0;
  std::vector<size_t> actor_hidden = {64, 64};
  std::vector<size_t> critic_hidden = {64, 64};
  double actor_lr = 1e-3;
  double critic_lr = 2e-3;
  double gamma = 0.9;   // discount
  double tau = 0.01;    // soft target-update rate
  size_t batch_size = 16;
  size_t replay_capacity = 100000;
  // Gradient L2-norm clip (0 disables clipping).
  double grad_clip = 5.0;
};

class Ddpg {
 public:
  Ddpg(const DdpgOptions& options, common::Rng* rng);

  // Deterministic policy: action in [0,1]^action_dim (tanh mapped affinely).
  std::vector<double> Act(const std::vector<double>& state) const;

  void AddTransition(Transition transition);

  // Performs one minibatch update of critic and actor plus soft target
  // updates. Returns the critic's mean squared TD error (0 if the buffer is
  // empty). Deterministic given the RNG state.
  double TrainStep();

  // Target-critic estimate of Q(s, a) — used by tests and diagnostics.
  double EvaluateQ(const std::vector<double>& state,
                   const std::vector<double>& action) const;

  size_t buffer_size() const { return buffer_.size(); }
  const ReplayBuffer& buffer() const { return buffer_; }
  const DdpgOptions& options() const { return options_; }

  // Serializes actor+critic parameters for the model-reuse schemes (§4).
  std::vector<double> SaveParameters() const;
  void LoadParameters(const std::vector<double>& params);

 private:
  DdpgOptions options_;
  common::Rng rng_;
  Mlp actor_;
  Mlp critic_;
  Mlp target_actor_;
  Mlp target_critic_;
  ReplayBuffer buffer_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_DDPG_H_
