#include "ml/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/simd/simd.h"

namespace hunter::ml {

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Activation hidden,
         Activation output, common::Rng* rng) {
  assert(layer_sizes.size() >= 2);
  layers_.resize(layer_sizes.size() - 1);
  for (size_t i = 0; i < layers_.size(); ++i) {
    Layer& layer = layers_[i];
    layer.in = layer_sizes[i];
    layer.out = layer_sizes[i + 1];
    layer.activation = (i + 1 == layers_.size()) ? output : hidden;
    layer.weights.resize(layer.in * layer.out);
    layer.bias.assign(layer.out, 0.0);
    // He/Xavier-style initialization scaled by fan-in.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.weights) w = rng->Gaussian(0.0, scale);
    layer.grad_weights.assign(layer.weights.size(), 0.0);
    layer.grad_bias.assign(layer.out, 0.0);
    layer.m_weights.assign(layer.weights.size(), 0.0);
    layer.v_weights.assign(layer.weights.size(), 0.0);
    layer.m_bias.assign(layer.out, 0.0);
    layer.v_bias.assign(layer.out, 0.0);
  }
}

double Mlp::Activate(double x, Activation act) {
  switch (act) {
    case Activation::kReLU:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kLinear:
      return x;
  }
  return x;
}

double Mlp::ActivateGrad(double pre, double post, Activation act) {
  switch (act) {
    case Activation::kReLU:
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
    case Activation::kLinear:
      return 1.0;
  }
  return 1.0;
}

std::vector<double> Mlp::Forward(const std::vector<double>& input) {
  assert(!layers_.empty());
  std::vector<double> activation = input;
  for (Layer& layer : layers_) {
    assert(activation.size() == layer.in);
    layer.input_cache = activation;
    layer.pre_activation.assign(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) sum += w[i] * activation[i];
      layer.pre_activation[o] = sum;
    }
    layer.output_cache.resize(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      layer.output_cache[o] = Activate(layer.pre_activation[o], layer.activation);
    }
    activation = layer.output_cache;
  }
  return activation;
}

std::vector<double> Mlp::Predict(const std::vector<double>& input) const {
  assert(!layers_.empty());
  std::vector<double> activation = input;
  std::vector<double> next;
  for (const Layer& layer : layers_) {
    assert(activation.size() == layer.in);
    next.assign(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) sum += w[i] * activation[i];
      next[o] = Activate(sum, layer.activation);
    }
    activation.swap(next);
  }
  return activation;
}

void Mlp::ForwardBatch(const linalg::Matrix& input, linalg::Matrix* output) {
  assert(!layers_.empty());
  const size_t batch = input.rows();
  batch_input0_ = &input;
  const linalg::Matrix* cur = &input;
  for (Layer& layer : layers_) {
    assert(cur->cols() == layer.in);
    // One O(in*out) transpose gather, amortized over the batch and over
    // every ForwardBatch call until the weights next move.
    if (!layer.weights_t_valid) {
      layer.weights_t.Reshape(layer.in, layer.out);
      for (size_t o = 0; o < layer.out; ++o) {
        const double* w = &layer.weights[o * layer.in];
        for (size_t i = 0; i < layer.in; ++i) layer.weights_t.At(i, o) = w[i];
      }
      layer.weights_t_valid = true;
    }
    // pre = bias + x * W^T in one kernel: each accumulator starts from the
    // bias and the inputs add on in ascending index order — the same
    // addition order as the per-sample loop, so the results are
    // bit-identical.
    layer.batch_pre.Reshape(batch, layer.out);
    linalg::GemmBiasInto(cur->Data(), batch, layer.in, layer.weights_t.Data(),
                         layer.out, layer.bias.data(),
                         layer.batch_pre.Data());
    layer.batch_out.Reshape(batch, layer.out);
    const double* pre = layer.batch_pre.Data();
    double* out = layer.batch_out.Data();
    const size_t count = batch * layer.out;
    switch (layer.activation) {
      case Activation::kReLU:
        // max(x, 0) with the x-operand first is IEEE-identical to the
        // scalar `x > 0 ? x : 0` for every input including -0.0 and NaN.
        linalg::simd::ReluInto(pre, out, count);
        break;
      case Activation::kLinear:
        std::copy(pre, pre + count, out);
        break;
      case Activation::kTanh:
        // libm tanh has no vector form with identical rounding; stay scalar.
        for (size_t idx = 0; idx < count; ++idx) {
          out[idx] = std::tanh(pre[idx]);
        }
        break;
    }
    cur = &layer.batch_out;
  }
  *output = *cur;
}

void Mlp::BackwardBatch(const linalg::Matrix& grad_output,
                        linalg::Matrix* grad_input,
                        bool accumulate_param_grads) {
  assert(!layers_.empty());
  const size_t batch = grad_output.rows();
  const linalg::Matrix* grad = &grad_output;
  linalg::Matrix* next = &scratch_grad_a_;
  linalg::Matrix* spare = &scratch_grad_b_;
  for (size_t li = layers_.size(); li > 0; --li) {
    Layer& layer = layers_[li - 1];
    assert(grad->cols() == layer.out && grad->rows() == batch);
    assert(layer.batch_pre.rows() == batch);
    // delta = grad ⊙ activation'(pre, post).
    scratch_delta_.Reshape(batch, layer.out);
    {
      const double* g = grad->Data();
      const double* pre = layer.batch_pre.Data();
      const double* post = layer.batch_out.Data();
      double* delta = scratch_delta_.Data();
      const size_t count = batch * layer.out;
      switch (layer.activation) {
        case Activation::kReLU:
          linalg::simd::ReluGradMulInto(g, pre, delta, count);
          break;
        case Activation::kTanh:
          linalg::simd::TanhGradMulInto(g, post, delta, count);
          break;
        case Activation::kLinear:
          std::copy(g, g + count, delta);
          break;
      }
    }
    const double* delta = scratch_delta_.Data();
    assert(batch_input0_ != nullptr && batch_input0_->rows() == batch);
    const linalg::Matrix& layer_input =
        (li == 1) ? *batch_input0_ : layers_[li - 2].batch_out;
    if (accumulate_param_grads) {
      // grad_weights += delta^T * layer_input: the contraction runs over the
      // batch rows ascending, matching per-sample accumulation order.
      linalg::GemmTransposedAInto(delta, batch, layer.out, layer_input.Data(),
                                  layer.in, /*accumulate=*/true,
                                  layer.grad_weights.data());
      for (size_t r = 0; r < batch; ++r) {
        linalg::simd::AddInto(layer.grad_bias.data(), delta + r * layer.out,
                              layer.grad_bias.data(), layer.out);
      }
    }
    // Gradient w.r.t. the layer input = delta * weights (batch x in). The
    // first (input) layer only computes it when the caller wants it.
    const bool first_layer = (li == 1);
    linalg::Matrix* dst = first_layer ? grad_input : next;
    if (dst != nullptr) {
      dst->Reshape(batch, layer.in);
      linalg::GemmInto(delta, batch, layer.out, layer.weights.data(),
                       layer.in, /*accumulate=*/false, dst->Data());
    }
    if (!first_layer) {
      grad = next;
      std::swap(next, spare);
    }
  }
}

std::vector<double> Mlp::Backward(const std::vector<double>& grad_output) {
  assert(!layers_.empty());
  std::vector<double> grad = grad_output;
  for (size_t li = layers_.size(); li > 0; --li) {
    Layer& layer = layers_[li - 1];
    assert(grad.size() == layer.out);
    // Gradient through activation.
    std::vector<double> delta(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      delta[o] = grad[o] * ActivateGrad(layer.pre_activation[o],
                                        layer.output_cache[o],
                                        layer.activation);
    }
    // Parameter gradients.
    for (size_t o = 0; o < layer.out; ++o) {
      double* gw = &layer.grad_weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) {
        gw[i] += delta[o] * layer.input_cache[i];
      }
      layer.grad_bias[o] += delta[o];
    }
    // Gradient w.r.t. the layer input.
    std::vector<double> grad_input(layer.in, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) grad_input[i] += w[i] * delta[o];
    }
    grad.swap(grad_input);
  }
  return grad;
}

void Mlp::AdamStep(double learning_rate, size_t batch_size) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEpsilon = 1e-8;
  ++adam_step_;
  const double scale = batch_size > 0 ? 1.0 / static_cast<double>(batch_size) : 1.0;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_step_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_step_));
  // The whole update is elementwise (vsqrtpd rounds identically to
  // std::sqrt), so it runs through the dispatched kernel.
  for (Layer& layer : layers_) {
    linalg::simd::AdamUpdateInPlace(layer.weights.data(),
                                    layer.grad_weights.data(),
                                    layer.m_weights.data(),
                                    layer.v_weights.data(),
                                    layer.weights.size(), scale, learning_rate,
                                    kBeta1, kBeta2, bias1, bias2, kEpsilon);
    linalg::simd::AdamUpdateInPlace(layer.bias.data(), layer.grad_bias.data(),
                                    layer.m_bias.data(), layer.v_bias.data(),
                                    layer.out, scale, learning_rate, kBeta1,
                                    kBeta2, bias1, bias2, kEpsilon);
    layer.weights_t_valid = false;
  }
  ZeroGradients();
}

void Mlp::ZeroGradients() {
  for (Layer& layer : layers_) {
    std::fill(layer.grad_weights.begin(), layer.grad_weights.end(), 0.0);
    std::fill(layer.grad_bias.begin(), layer.grad_bias.end(), 0.0);
  }
}

void Mlp::SoftUpdateFrom(const Mlp& other, double tau) {
  assert(layers_.size() == other.layers_.size());
  for (size_t li = 0; li < layers_.size(); ++li) {
    Layer& dst = layers_[li];
    const Layer& src = other.layers_[li];
    assert(dst.weights.size() == src.weights.size());
    linalg::simd::SoftUpdateInPlace(tau, src.weights.data(),
                                    dst.weights.data(), dst.weights.size());
    linalg::simd::SoftUpdateInPlace(tau, src.bias.data(), dst.bias.data(),
                                    dst.out);
    if (dst.weights_t_valid && src.weights_t_valid) {
      // The transpose cache is a position permutation of the weights, and
      // the elementwise soft update commutes with any permutation: updating
      // the cached transposes directly gives bit-identical contents to
      // invalidating and re-gathering, while trading a scattered O(in*out)
      // transpose at the next forward for one streaming pass here. In the
      // DDPG training loop (soft update every step) this keeps the target
      // networks' caches permanently warm.
      linalg::simd::SoftUpdateInPlace(tau, src.weights_t.Data(),
                                      dst.weights_t.Data(),
                                      dst.weights.size());
    } else {
      dst.weights_t_valid = false;
    }
  }
}

void Mlp::CopyFrom(const Mlp& other) { SoftUpdateFrom(other, 1.0); }

std::vector<double> Mlp::SaveParameters() const {
  std::vector<double> params;
  for (const Layer& layer : layers_) {
    params.insert(params.end(), layer.weights.begin(), layer.weights.end());
    params.insert(params.end(), layer.bias.begin(), layer.bias.end());
  }
  return params;
}

void Mlp::LoadParameters(const std::vector<double>& params) {
  size_t offset = 0;
  for (Layer& layer : layers_) {
    assert(offset + layer.weights.size() + layer.bias.size() <= params.size());
    std::copy(params.begin() + static_cast<long>(offset),
              params.begin() + static_cast<long>(offset + layer.weights.size()),
              layer.weights.begin());
    offset += layer.weights.size();
    std::copy(params.begin() + static_cast<long>(offset),
              params.begin() + static_cast<long>(offset + layer.bias.size()),
              layer.bias.begin());
    offset += layer.bias.size();
    layer.weights_t_valid = false;
  }
  assert(offset == params.size());
}

size_t Mlp::input_dim() const {
  return layers_.empty() ? 0 : layers_.front().in;
}

size_t Mlp::output_dim() const {
  return layers_.empty() ? 0 : layers_.back().out;
}

}  // namespace hunter::ml
