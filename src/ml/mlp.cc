#include "ml/mlp.h"

#include <cassert>
#include <cmath>

namespace hunter::ml {

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Activation hidden,
         Activation output, common::Rng* rng) {
  assert(layer_sizes.size() >= 2);
  layers_.resize(layer_sizes.size() - 1);
  for (size_t i = 0; i < layers_.size(); ++i) {
    Layer& layer = layers_[i];
    layer.in = layer_sizes[i];
    layer.out = layer_sizes[i + 1];
    layer.activation = (i + 1 == layers_.size()) ? output : hidden;
    layer.weights.resize(layer.in * layer.out);
    layer.bias.assign(layer.out, 0.0);
    // He/Xavier-style initialization scaled by fan-in.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (double& w : layer.weights) w = rng->Gaussian(0.0, scale);
    layer.grad_weights.assign(layer.weights.size(), 0.0);
    layer.grad_bias.assign(layer.out, 0.0);
    layer.m_weights.assign(layer.weights.size(), 0.0);
    layer.v_weights.assign(layer.weights.size(), 0.0);
    layer.m_bias.assign(layer.out, 0.0);
    layer.v_bias.assign(layer.out, 0.0);
  }
}

double Mlp::Activate(double x, Activation act) {
  switch (act) {
    case Activation::kReLU:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kLinear:
      return x;
  }
  return x;
}

double Mlp::ActivateGrad(double pre, double post, Activation act) {
  switch (act) {
    case Activation::kReLU:
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
    case Activation::kLinear:
      return 1.0;
  }
  return 1.0;
}

std::vector<double> Mlp::Forward(const std::vector<double>& input) {
  assert(!layers_.empty());
  std::vector<double> activation = input;
  for (Layer& layer : layers_) {
    assert(activation.size() == layer.in);
    layer.input_cache = activation;
    layer.pre_activation.assign(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) sum += w[i] * activation[i];
      layer.pre_activation[o] = sum;
    }
    layer.output_cache.resize(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      layer.output_cache[o] = Activate(layer.pre_activation[o], layer.activation);
    }
    activation = layer.output_cache;
  }
  return activation;
}

std::vector<double> Mlp::Predict(const std::vector<double>& input) const {
  assert(!layers_.empty());
  std::vector<double> activation = input;
  std::vector<double> next;
  for (const Layer& layer : layers_) {
    assert(activation.size() == layer.in);
    next.assign(layer.out, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      double sum = layer.bias[o];
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) sum += w[i] * activation[i];
      next[o] = Activate(sum, layer.activation);
    }
    activation.swap(next);
  }
  return activation;
}

std::vector<double> Mlp::Backward(const std::vector<double>& grad_output) {
  assert(!layers_.empty());
  std::vector<double> grad = grad_output;
  for (size_t li = layers_.size(); li > 0; --li) {
    Layer& layer = layers_[li - 1];
    assert(grad.size() == layer.out);
    // Gradient through activation.
    std::vector<double> delta(layer.out);
    for (size_t o = 0; o < layer.out; ++o) {
      delta[o] = grad[o] * ActivateGrad(layer.pre_activation[o],
                                        layer.output_cache[o],
                                        layer.activation);
    }
    // Parameter gradients.
    for (size_t o = 0; o < layer.out; ++o) {
      double* gw = &layer.grad_weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) {
        gw[i] += delta[o] * layer.input_cache[i];
      }
      layer.grad_bias[o] += delta[o];
    }
    // Gradient w.r.t. the layer input.
    std::vector<double> grad_input(layer.in, 0.0);
    for (size_t o = 0; o < layer.out; ++o) {
      const double* w = &layer.weights[o * layer.in];
      for (size_t i = 0; i < layer.in; ++i) grad_input[i] += w[i] * delta[o];
    }
    grad.swap(grad_input);
  }
  return grad;
}

void Mlp::AdamStep(double learning_rate, size_t batch_size) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEpsilon = 1e-8;
  ++adam_step_;
  const double scale = batch_size > 0 ? 1.0 / static_cast<double>(batch_size) : 1.0;
  const double bias1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_step_));
  const double bias2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_step_));
  for (Layer& layer : layers_) {
    for (size_t i = 0; i < layer.weights.size(); ++i) {
      const double g = layer.grad_weights[i] * scale;
      layer.m_weights[i] = kBeta1 * layer.m_weights[i] + (1.0 - kBeta1) * g;
      layer.v_weights[i] = kBeta2 * layer.v_weights[i] + (1.0 - kBeta2) * g * g;
      const double mhat = layer.m_weights[i] / bias1;
      const double vhat = layer.v_weights[i] / bias2;
      layer.weights[i] -= learning_rate * mhat / (std::sqrt(vhat) + kEpsilon);
    }
    for (size_t o = 0; o < layer.out; ++o) {
      const double g = layer.grad_bias[o] * scale;
      layer.m_bias[o] = kBeta1 * layer.m_bias[o] + (1.0 - kBeta1) * g;
      layer.v_bias[o] = kBeta2 * layer.v_bias[o] + (1.0 - kBeta2) * g * g;
      const double mhat = layer.m_bias[o] / bias1;
      const double vhat = layer.v_bias[o] / bias2;
      layer.bias[o] -= learning_rate * mhat / (std::sqrt(vhat) + kEpsilon);
    }
  }
  ZeroGradients();
}

void Mlp::ZeroGradients() {
  for (Layer& layer : layers_) {
    std::fill(layer.grad_weights.begin(), layer.grad_weights.end(), 0.0);
    std::fill(layer.grad_bias.begin(), layer.grad_bias.end(), 0.0);
  }
}

void Mlp::SoftUpdateFrom(const Mlp& other, double tau) {
  assert(layers_.size() == other.layers_.size());
  for (size_t li = 0; li < layers_.size(); ++li) {
    Layer& dst = layers_[li];
    const Layer& src = other.layers_[li];
    assert(dst.weights.size() == src.weights.size());
    for (size_t i = 0; i < dst.weights.size(); ++i) {
      dst.weights[i] = tau * src.weights[i] + (1.0 - tau) * dst.weights[i];
    }
    for (size_t o = 0; o < dst.out; ++o) {
      dst.bias[o] = tau * src.bias[o] + (1.0 - tau) * dst.bias[o];
    }
  }
}

void Mlp::CopyFrom(const Mlp& other) { SoftUpdateFrom(other, 1.0); }

std::vector<double> Mlp::SaveParameters() const {
  std::vector<double> params;
  for (const Layer& layer : layers_) {
    params.insert(params.end(), layer.weights.begin(), layer.weights.end());
    params.insert(params.end(), layer.bias.begin(), layer.bias.end());
  }
  return params;
}

void Mlp::LoadParameters(const std::vector<double>& params) {
  size_t offset = 0;
  for (Layer& layer : layers_) {
    assert(offset + layer.weights.size() + layer.bias.size() <= params.size());
    std::copy(params.begin() + static_cast<long>(offset),
              params.begin() + static_cast<long>(offset + layer.weights.size()),
              layer.weights.begin());
    offset += layer.weights.size();
    std::copy(params.begin() + static_cast<long>(offset),
              params.begin() + static_cast<long>(offset + layer.bias.size()),
              layer.bias.begin());
    offset += layer.bias.size();
  }
  assert(offset == params.size());
}

size_t Mlp::input_dim() const {
  return layers_.empty() ? 0 : layers_.front().in;
}

size_t Mlp::output_dim() const {
  return layers_.empty() ? 0 : layers_.back().out;
}

}  // namespace hunter::ml
