#include "ml/pca.h"

#include <cassert>
#include <cmath>

#include "linalg/simd/simd.h"

namespace hunter::ml {

void Pca::Fit(const linalg::Matrix& data, bool standardize) {
  assert(data.rows() >= 2);
  standardize_ = standardize;
  means_ = linalg::ColumnMeans(data);
  stds_ = linalg::ColumnStdDevs(data);

  const linalg::Matrix centered = linalg::Standardize(data, standardize);
  const linalg::Matrix cov = linalg::Covariance(centered);
  linalg::EigenResult eigen = linalg::SymmetricEigen(cov);

  double total = 0.0;
  for (double ev : eigen.eigenvalues) total += std::max(ev, 0.0);
  explained_ratio_.assign(eigen.eigenvalues.size(), 0.0);
  if (total > 0.0) {
    for (size_t i = 0; i < eigen.eigenvalues.size(); ++i) {
      explained_ratio_[i] = std::max(eigen.eigenvalues[i], 0.0) / total;
    }
  }
  components_ = std::move(eigen.eigenvectors);
  fitted_ = true;
}

std::vector<double> Pca::CumulativeVarianceRatio() const {
  std::vector<double> cdf(explained_ratio_.size());
  double running = 0.0;
  for (size_t i = 0; i < explained_ratio_.size(); ++i) {
    running += explained_ratio_[i];
    cdf[i] = running;
  }
  return cdf;
}

size_t Pca::ComponentsForVariance(double threshold) const {
  double running = 0.0;
  for (size_t i = 0; i < explained_ratio_.size(); ++i) {
    running += explained_ratio_[i];
    if (running >= threshold) return i + 1;
  }
  return explained_ratio_.size();
}

// hunterlint: hot
std::vector<double> Pca::Transform(const std::vector<double>& row,
                                   size_t k) const {
  assert(fitted_);
  assert(row.size() == means_.size());
  k = std::min(k, components_.cols());
  std::vector<double> centered(row.size());
  linalg::simd::StandardizeInto(row.data(), means_.data(), stds_.data(),
                                standardize_, centered.data(), row.size());
  std::vector<double> projected(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    double sum = 0.0;
    for (size_t i = 0; i < centered.size(); ++i) {
      sum += components_.At(i, c) * centered[i];
    }
    projected[c] = sum;
  }
  return projected;
}

// hunterlint: hot
linalg::Matrix Pca::TransformMatrix(const linalg::Matrix& data,
                                    size_t k) const {
  assert(fitted_);
  k = std::min(k, components_.cols());
  const size_t dim = means_.size();
  assert(data.cols() == dim);
  // One GEMM over the centered batch instead of a per-row Transform loop;
  // the contraction order matches Transform's dot products, so the results
  // are bit-identical (see linalg/matrix.h).
  linalg::Matrix centered(data.rows(), dim);
  for (size_t r = 0; r < data.rows(); ++r) {
    linalg::simd::StandardizeInto(data.Data() + r * dim, means_.data(),
                                  stds_.data(), standardize_,
                                  centered.Data() + r * dim, dim);
  }
  linalg::Matrix top_components(dim, k);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t c = 0; c < k; ++c) {
      top_components.At(i, c) = components_.At(i, c);
    }
  }
  linalg::Matrix result;
  centered.MultiplyInto(top_components, &result);
  return result;
}

std::vector<double> Pca::SaveState() const {
  std::vector<double> state;
  const size_t dim = means_.size();
  state.push_back(static_cast<double>(dim));
  state.push_back(standardize_ ? 1.0 : 0.0);
  state.insert(state.end(), means_.begin(), means_.end());
  state.insert(state.end(), stds_.begin(), stds_.end());
  state.insert(state.end(), explained_ratio_.begin(), explained_ratio_.end());
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) state.push_back(components_.At(r, c));
  }
  return state;
}

bool Pca::LoadState(const std::vector<double>& state) {
  if (state.size() < 2) return false;
  const size_t dim = static_cast<size_t>(state[0]);
  if (state.size() != 2 + 3 * dim + dim * dim) return false;
  standardize_ = state[1] != 0.0;
  size_t offset = 2;
  means_.assign(state.begin() + static_cast<long>(offset),
                state.begin() + static_cast<long>(offset + dim));
  offset += dim;
  stds_.assign(state.begin() + static_cast<long>(offset),
               state.begin() + static_cast<long>(offset + dim));
  offset += dim;
  explained_ratio_.assign(state.begin() + static_cast<long>(offset),
                          state.begin() + static_cast<long>(offset + dim));
  offset += dim;
  components_ = linalg::Matrix(dim, dim);
  for (size_t r = 0; r < dim; ++r) {
    for (size_t c = 0; c < dim; ++c) components_.At(r, c) = state[offset++];
  }
  fitted_ = dim > 0;
  return true;
}

}  // namespace hunter::ml
