#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hunter::ml {

void RandomForest::Fit(const linalg::Matrix& x, const std::vector<double>& y,
                       const RandomForestOptions& options, common::Rng* rng) {
  trees_.assign(options.num_trees, CartTree());
  importance_.assign(x.cols(), 0.0);

  CartOptions tree_options = options.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = static_cast<size_t>(
        std::ceil(options.feature_fraction * static_cast<double>(x.cols())));
    tree_options.max_features = std::max<size_t>(1, tree_options.max_features);
  }

  const size_t n = x.rows();
  std::vector<size_t> bootstrap(n);
  linalg::Matrix sample_x(n, x.cols());
  std::vector<double> sample_y(n);
  for (auto& tree : trees_) {
    for (size_t i = 0; i < n; ++i) {
      bootstrap[i] = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < x.cols(); ++c) {
        sample_x.At(i, c) = x.At(bootstrap[i], c);
      }
      sample_y[i] = y[bootstrap[i]];
    }
    tree.Fit(sample_x, sample_y, tree_options, rng);
    const std::vector<double>& tree_importance = tree.feature_importance();
    for (size_t c = 0; c < importance_.size(); ++c) {
      importance_[c] += tree_importance[c];
    }
  }

  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

double RandomForest::Predict(const std::vector<double>& row) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<size_t> RandomForest::RankFeatures() const {
  std::vector<size_t> order(importance_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importance_[a] > importance_[b];
  });
  return order;
}

}  // namespace hunter::ml
