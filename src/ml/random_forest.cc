#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <numeric>

namespace hunter::ml {

void RandomForest::Fit(const linalg::Matrix& x, const std::vector<double>& y,
                       const RandomForestOptions& options, common::Rng* rng,
                       common::ThreadPool* pool) {
  trees_.assign(options.num_trees, CartTree());
  importance_.assign(x.cols(), 0.0);

  CartOptions tree_options = options.tree;
  if (tree_options.max_features == 0) {
    tree_options.max_features = static_cast<size_t>(
        std::ceil(options.feature_fraction * static_cast<double>(x.cols())));
    tree_options.max_features = std::max<size_t>(1, tree_options.max_features);
  }

  // Fork one RNG per tree up front, in tree order. Each tree's fit then
  // depends only on its own RNG and the shared (read-only) data, so the
  // forest is bit-identical whether the trees run serially or on the pool.
  const size_t n = x.rows();
  std::vector<common::Rng> tree_rngs;
  tree_rngs.reserve(trees_.size());
  for (size_t t = 0; t < trees_.size(); ++t) tree_rngs.push_back(rng->Fork());

  // Sort every feature once for the whole forest; each tree then derives
  // its bootstrap view's sorted lists from this shared read-only index.
  FeaturePresort presort;
  presort.Build(x);

  const auto fit_tree = [&](size_t t) {
    common::Rng tree_rng = tree_rngs[t];
    std::vector<size_t> bootstrap(n);
    for (size_t i = 0; i < n; ++i) {
      bootstrap[i] = static_cast<size_t>(
          tree_rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    trees_[t].FitIndices(x, y, bootstrap, tree_options, &tree_rng, &presort);
  };

  if (pool != nullptr && pool->num_threads() > 1 && trees_.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(trees_.size());
    for (size_t t = 0; t < trees_.size(); ++t) {
      futures.push_back(pool->Submit([&fit_tree, t] { fit_tree(t); }));
    }
    for (auto& future : futures) future.get();
  } else {
    for (size_t t = 0; t < trees_.size(); ++t) fit_tree(t);
  }

  // Reduce importances in fixed tree order (independent of scheduling).
  for (const auto& tree : trees_) {
    const std::vector<double>& tree_importance = tree.feature_importance();
    for (size_t c = 0; c < importance_.size(); ++c) {
      importance_[c] += tree_importance[c];
    }
  }

  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (double& v : importance_) v /= total;
  }
}

double RandomForest::Predict(const std::vector<double>& row) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<size_t> RandomForest::RankFeatures() const {
  std::vector<size_t> order(importance_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return importance_[a] > importance_[b];
  });
  return order;
}

}  // namespace hunter::ml
