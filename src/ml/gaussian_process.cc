#include "ml/gaussian_process.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hunter::ml {

namespace {

// Standard normal PDF and CDF (via erfc) for Expected Improvement.
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

}  // namespace

double GaussianProcess::Kernel(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  const double ls = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * sq / ls);
}

bool GaussianProcess::Fit(const linalg::Matrix& x,
                          const std::vector<double>& y) {
  assert(x.rows() == y.size());
  train_x_ = x;
  train_y_ = y;
  const size_t n = x.rows();
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  if (n > 0) y_mean_ /= static_cast<double>(n);

  linalg::Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> xi = x.Row(i);
    for (size_t j = i; j < n; ++j) {
      const double value = Kernel(xi, x.Row(j));
      k.At(i, j) = value;
      k.At(j, i) = value;
    }
    k.At(i, i) += options_.noise_variance;
  }
  if (!linalg::Cholesky(k, &chol_)) {
    fitted_ = false;
    return false;
  }
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
  alpha_ = linalg::CholeskySolve(chol_, centered);
  fitted_ = true;
  return true;
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const std::vector<double>& x) const {
  Prediction prediction;
  if (!fitted_) {
    prediction.variance = options_.signal_variance;
    return prediction;
  }
  const size_t n = train_x_.rows();
  std::vector<double> k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = Kernel(x, train_x_.Row(i));

  double mean = y_mean_;
  for (size_t i = 0; i < n; ++i) mean += k_star[i] * alpha_[i];
  prediction.mean = mean;

  // variance = k(x,x) - k_star^T (K + noise)^{-1} k_star.
  const std::vector<double> v = linalg::CholeskySolve(chol_, k_star);
  double reduction = 0.0;
  for (size_t i = 0; i < n; ++i) reduction += k_star[i] * v[i];
  prediction.variance = std::max(0.0, Kernel(x, x) - reduction);
  return prediction;
}

double GaussianProcess::ExpectedImprovement(const std::vector<double>& x,
                                            double best_so_far) const {
  const Prediction p = Predict(x);
  const double sigma = std::sqrt(p.variance);
  if (sigma < 1e-12) return std::max(0.0, p.mean - best_so_far);
  const double z = (p.mean - best_so_far) / sigma;
  return (p.mean - best_so_far) * NormalCdf(z) + sigma * NormalPdf(z);
}

}  // namespace hunter::ml
