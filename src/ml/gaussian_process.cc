#include "ml/gaussian_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "linalg/simd/simd.h"

namespace hunter::ml {

namespace {

// Standard normal PDF and CDF (via erfc) for Expected Improvement.
double NormalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }

double ExpectedImprovementFrom(double mean, double variance,
                               double best_so_far) {
  const double sigma = std::sqrt(variance);
  if (sigma < 1e-12) return std::max(0.0, mean - best_so_far);
  const double z = (mean - best_so_far) / sigma;
  return (mean - best_so_far) * NormalCdf(z) + sigma * NormalPdf(z);
}

// Ascending dot product — the contraction order every GEMM kernel in linalg
// commits to, so scalar values computed here are bit-identical to the
// corresponding Gram / cross-kernel matrix elements.
double DotAscending(const double* a, const double* b, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

double GaussianProcess::Kernel(linalg::RowSpan a, linalg::RowSpan b) const {
  double sq = 0.0;
  for (size_t i = 0; i < a.size; ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  const double ls = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * sq / ls);
}

double GaussianProcess::KernelFromParts(double norm_a, double norm_b,
                                        double dot) const {
  // The expansion can go infinitesimally negative for near-identical points;
  // clamp like the direct formula's guaranteed-nonnegative sum of squares.
  const double sq = std::max(0.0, norm_a + norm_b - 2.0 * dot);
  const double ls = options_.length_scale * options_.length_scale;
  return options_.signal_variance * std::exp(-0.5 * sq / ls);
}

bool GaussianProcess::ExtendsTrainingSet(const linalg::Matrix& x,
                                         const std::vector<double>& y) const {
  const size_t old_n = train_x_.rows();
  if (!fitted_ || old_n == 0) return false;
  if (x.rows() <= old_n || x.cols() != train_x_.cols()) return false;
  // Bit-exact prefix comparison: the tuners rebuild their sample window
  // from the same stored vectors each Observe, so while the window is still
  // filling the prefix matches exactly; once it slides, it does not.
  if (!std::equal(train_x_.data().begin(), train_x_.data().end(),
                  x.data().begin())) {
    return false;
  }
  return std::equal(train_y_.begin(), train_y_.end(), y.begin());
}

bool GaussianProcess::Fit(const linalg::Matrix& x,
                          const std::vector<double>& y) {
  assert(x.rows() == y.size());
  if (ExtendsTrainingSet(x, y)) {
    if (FitIncremental(x, y)) return true;
    // A non-SPD append (ill-conditioned new row) falls back to the full
    // factorization, which applies its own SPD check.
  }
  return FitFull(x, y);
}

bool GaussianProcess::FitFull(const linalg::Matrix& x,
                              const std::vector<double>& y) {
  const size_t n = x.rows();
  train_x_ = x;
  train_xt_ = x.Transpose();
  train_y_ = y;

  // Gram matrix G = X Xᵀ in one GEMM, then K(i,j) from the squared-distance
  // expansion. The row norms are read off G's diagonal so the expansion
  // yields exactly zero distance on the diagonal (nᵢ + nᵢ − 2nᵢ) and so the
  // incremental path below can reproduce these exact values.
  linalg::Matrix gram(n, n);
  if (n > 0) {
    linalg::GemmTransposedAInto(train_xt_.Data(), x.cols(), n,
                                train_xt_.Data(), n, /*accumulate=*/false,
                                gram.Data());
  }
  row_norms_.resize(n);
  for (size_t i = 0; i < n; ++i) row_norms_[i] = gram.At(i, i);

  linalg::Matrix k(n, n);
  // Squared distances for row i's upper triangle in one vector kernel (the
  // max(0, nᵢ + nⱼ − 2g) expansion, exactly as KernelFromParts computes
  // it), then the scalar exp — libm has no bit-reproducible vector form.
  const double ls = options_.length_scale * options_.length_scale;
  std::vector<double> sq(n);
  for (size_t i = 0; i < n; ++i) {
    const double* gram_row = gram.Data() + i * n;
    linalg::simd::SquaredDistInto(row_norms_[i], row_norms_.data() + i,
                                  gram_row + i, sq.data() + i, n - i);
    for (size_t j = i; j < n; ++j) {
      const double value = options_.signal_variance * std::exp(-0.5 * sq[j] / ls);
      k.At(i, j) = value;
      k.At(j, i) = value;
    }
    k.At(i, i) += options_.noise_variance;
  }
  if (!linalg::Cholesky(k, &chol_)) {
    fitted_ = false;
    return false;
  }
  ++full_refits_;
  RecomputeAlpha(y);
  fitted_ = true;
  return true;
}

bool GaussianProcess::FitIncremental(const linalg::Matrix& x,
                                     const std::vector<double>& y) {
  const size_t old_n = train_x_.rows();
  const size_t n = x.rows();
  const size_t d = x.cols();

  // Stage the appends on copies so a non-SPD row leaves the fitted state
  // untouched for the full-refit fallback.
  linalg::Matrix chol = chol_;
  std::vector<double> norms = row_norms_;
  std::vector<double> k_new;
  std::vector<double> dots;
  const double ls = options_.length_scale * options_.length_scale;
  for (size_t r = old_n; r < n; ++r) {
    const linalg::RowSpan xr = x.RowView(r);
    // Ascending self-dot == what the Gram GEMM's diagonal would hold.
    const double norm_r = DotAscending(xr.data, xr.data, d);
    k_new.assign(r + 1, 0.0);
    dots.resize(r);
    for (size_t j = 0; j < r; ++j) {
      dots[j] = DotAscending(x.RowView(j).data, xr.data, d);
    }
    // The expansion is nⱼ + n_r − 2d in KernelFromParts operand order; the
    // vector kernel computes n_r + nⱼ − 2d, identical bits because IEEE
    // addition is commutative (only association changes rounding).
    linalg::simd::SquaredDistInto(norm_r, norms.data(), dots.data(),
                                  k_new.data(), r);
    for (size_t j = 0; j < r; ++j) {
      k_new[j] = options_.signal_variance * std::exp(-0.5 * k_new[j] / ls);
    }
    // Diagonal: zero distance exactly, as in the full path.
    k_new[r] = KernelFromParts(norm_r, norm_r, norm_r) +
               options_.noise_variance;
    if (!linalg::CholeskyAppendRow(k_new, &chol)) return false;
    norms.push_back(norm_r);
  }

  chol_ = std::move(chol);
  row_norms_ = std::move(norms);
  train_x_ = x;
  train_xt_ = x.Transpose();
  train_y_ = y;
  ++incremental_updates_;
  RecomputeAlpha(y);
  fitted_ = true;
  return true;
}

void GaussianProcess::RecomputeAlpha(const std::vector<double>& y) {
  const size_t n = y.size();
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  if (n > 0) y_mean_ /= static_cast<double>(n);
  std::vector<double> centered(n);
  for (size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
  alpha_ = linalg::CholeskySolve(chol_, centered);
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const std::vector<double>& x) const {
  Prediction prediction;
  if (!fitted_) {
    prediction.variance = options_.signal_variance;
    return prediction;
  }
  const size_t n = train_x_.rows();
  const linalg::RowSpan q{x.data(), x.size()};
  std::vector<double> k_star(n);
  for (size_t i = 0; i < n; ++i) k_star[i] = Kernel(q, train_x_.RowView(i));

  double mean = y_mean_;
  for (size_t i = 0; i < n; ++i) mean += k_star[i] * alpha_[i];
  prediction.mean = mean;

  // variance = k(x,x) - k_star^T (K + noise)^{-1} k_star.
  const std::vector<double> v = linalg::CholeskySolve(chol_, k_star);
  double reduction = 0.0;
  for (size_t i = 0; i < n; ++i) reduction += k_star[i] * v[i];
  prediction.variance = std::max(0.0, Kernel(q, q) - reduction);
  return prediction;
}

double GaussianProcess::ExpectedImprovement(const std::vector<double>& x,
                                            double best_so_far) const {
  const Prediction p = Predict(x);
  return ExpectedImprovementFrom(p.mean, p.variance, best_so_far);
}

// hunterlint: hot
void GaussianProcess::PredictBatch(const linalg::Matrix& x,
                                   std::vector<Prediction>* out) const {
  const size_t m = x.rows();
  out->assign(m, Prediction{});
  if (!fitted_) {
    for (auto& p : *out) p.variance = options_.signal_variance;
    return;
  }
  const size_t n = train_x_.rows();
  const size_t d = train_x_.cols();
  assert(x.cols() == d);

  // Cross-kernel in one GEMM: C = Xq Xᵀ (m x n), then per-query k* rows via
  // the same expansion the training kernel uses.
  cross_.Reshape(m, n);
  if (m > 0 && n > 0) {
    linalg::GemmInto(x.Data(), m, d, train_xt_.Data(), n,
                     /*accumulate=*/false, cross_.Data());
  }
  query_norms_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const linalg::RowSpan q = x.RowView(i);
    query_norms_[i] = DotAscending(q.data, q.data, d);
  }

  k_star_.resize(n);
  forward_.resize(n);
  const double ls = options_.length_scale * options_.length_scale;
  for (size_t i = 0; i < m; ++i) {
    // Vectorized squared-distance expansion into k_star_, finished in place
    // by the scalar exp (libm, not reproducibly vectorizable) fused with
    // the ascending mean accumulation.
    linalg::simd::SquaredDistInto(query_norms_[i], row_norms_.data(),
                                  cross_.Data() + i * n, k_star_.data(), n);
    double mean = y_mean_;
    for (size_t j = 0; j < n; ++j) {
      k_star_[j] = options_.signal_variance * std::exp(-0.5 * k_star_[j] / ls);
      mean += k_star_[j] * alpha_[j];
    }
    // Forward substitution only: with w = L^{-1} k*, the quadratic form
    // k*ᵀ (L Lᵀ)^{-1} k* is exactly wᵀw — the back substitution the scalar
    // path performs just re-derives it through Lᵀ.
    double reduction = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double sum = k_star_[j];
      for (size_t k = 0; k < j; ++k) sum -= chol_.At(j, k) * forward_[k];
      forward_[j] = sum / chol_.At(j, j);
      reduction += forward_[j] * forward_[j];
    }
    // k(x,x) via the expansion is exactly signal_variance (zero distance).
    (*out)[i].mean = mean;
    (*out)[i].variance = std::max(0.0, options_.signal_variance - reduction);
  }
}

// hunterlint: hot
void GaussianProcess::ExpectedImprovementBatch(const linalg::Matrix& x,
                                               double best_so_far,
                                               std::vector<double>* out) const {
  PredictBatch(x, &batch_predictions_);
  out->resize(batch_predictions_.size());
  for (size_t i = 0; i < batch_predictions_.size(); ++i) {
    (*out)[i] = ExpectedImprovementFrom(batch_predictions_[i].mean,
                                        batch_predictions_[i].variance,
                                        best_so_far);
  }
}

}  // namespace hunter::ml
