// Experience replay buffer for DDPG (§3.3). HUNTER warm-starts the
// Recommender by seeding this buffer with every sample the GA placed in the
// Shared Pool, which is the paper's key hybrid-architecture idea.

#ifndef HUNTER_ML_REPLAY_BUFFER_H_
#define HUNTER_ML_REPLAY_BUFFER_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/rng.h"

namespace hunter::ml {

struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
  bool terminal = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity = 100000) : capacity_(capacity) {}

  void Add(Transition transition);

  // Uniformly samples `batch_size` indices into the buffer (with
  // replacement). Clears and fills `*out`; leaves it empty when the buffer
  // is. Draws the same RNG stream as SampleBatch, and copies nothing — the
  // train loop reads the sampled transitions through at().
  void SampleIndices(size_t batch_size, common::Rng* rng,
                     std::vector<size_t>* out) const;

  // Uniformly samples `batch_size` transitions (with replacement when the
  // buffer holds fewer entries than requested). Copies each transition;
  // prefer SampleIndices + at() on hot paths.
  std::vector<Transition> SampleBatch(size_t batch_size, common::Rng* rng) const;

  const Transition& at(size_t index) const { return buffer_[index]; }

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }
  void Clear() { buffer_.clear(); }

  const std::deque<Transition>& transitions() const { return buffer_; }

 private:
  size_t capacity_;
  std::deque<Transition> buffer_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_REPLAY_BUFFER_H_
