#include "ml/cart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace hunter::ml {

namespace {

struct SplitStats {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t count = 0;

  void Add(double y) {
    sum += y;
    sum_sq += y * y;
    ++count;
  }
  void Remove(double y) {
    sum -= y;
    sum_sq -= y * y;
    --count;
  }
  // Sum of squared deviations from the mean (count * variance).
  double SumSquaredError() const {
    if (count == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(count);
  }
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

}  // namespace

void CartTree::Fit(const linalg::Matrix& x, const std::vector<double>& y,
                   const CartOptions& options, common::Rng* rng) {
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  std::vector<size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), 0);
  if (!indices.empty()) {
    BuildNode(x, y, indices, 0, indices.size(), 0, options, rng);
  }
}

int CartTree::BuildNode(const linalg::Matrix& x, const std::vector<double>& y,
                        std::vector<size_t>& indices, size_t begin, size_t end,
                        int depth, const CartOptions& options,
                        common::Rng* rng) {
  const size_t count = end - begin;
  SplitStats node_stats;
  for (size_t i = begin; i < end; ++i) node_stats.Add(y[indices[i]]);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = node_stats.Mean();

  const double node_sse = node_stats.SumSquaredError();
  if (depth >= options.max_depth || count < 2 * options.min_samples_leaf ||
      node_sse < 1e-12) {
    return node_id;
  }

  // Choose candidate features (without replacement).
  std::vector<size_t> features(x.cols());
  std::iota(features.begin(), features.end(), 0);
  size_t feature_budget = options.max_features == 0
                              ? x.cols()
                              : std::min(options.max_features, x.cols());
  if (feature_budget < x.cols()) rng->Shuffle(&features);
  features.resize(feature_budget);

  double best_gain = 1e-12;
  size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> column(count);  // (x value, y)
  for (size_t feature : features) {
    for (size_t i = 0; i < count; ++i) {
      const size_t row = indices[begin + i];
      column[i] = {x.At(row, feature), y[row]};
    }
    std::sort(column.begin(), column.end());

    SplitStats left;
    SplitStats right = node_stats;
    for (size_t i = 0; i + 1 < count; ++i) {
      left.Add(column[i].second);
      right.Remove(column[i].second);
      if (column[i].first == column[i + 1].first) continue;  // no valid cut
      if (left.count < options.min_samples_leaf ||
          right.count < options.min_samples_leaf) {
        continue;
      }
      const double gain =
          node_sse - left.SumSquaredError() - right.SumSquaredError();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;

  // Partition indices around the chosen threshold.
  const auto middle = std::stable_partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t row) {
        return x.At(row, best_feature) <= best_threshold;
      });
  const size_t split =
      static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_id;  // degenerate partition

  importance_[best_feature] += best_gain;

  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left_id =
      BuildNode(x, y, indices, begin, split, depth + 1, options, rng);
  nodes_[node_id].left = left_id;
  const int right_id =
      BuildNode(x, y, indices, split, end, depth + 1, options, rng);
  nodes_[node_id].right = right_id;
  return node_id;
}

double CartTree::Predict(const std::vector<double>& row) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace hunter::ml
