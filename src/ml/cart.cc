#include "ml/cart.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace hunter::ml {

namespace {

struct SplitStats {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t count = 0;

  void Add(double y) {
    sum += y;
    sum_sq += y * y;
    ++count;
  }
  void Remove(double y) {
    sum -= y;
    sum_sq -= y * y;
    --count;
  }
  // Sum of squared deviations from the mean (count * variance).
  double SumSquaredError() const {
    if (count == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(count);
  }
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

}  // namespace

// The whole training view, gathered once per fit. `values` and `sorted` are
// feature-major (d stripes of m entries); the [begin, end) segment of every
// feature's `sorted` stripe always holds exactly the positions belonging to
// the current node, in ascending feature-value order. Positions (0..m-1)
// index into the gathered view, so a bootstrap row that appears twice is
// simply two positions with identical values.
struct CartTree::Scratch {
  size_t m = 0;                    // rows in the view
  size_t d = 0;                    // features
  std::vector<double> values;      // d x m, values[f*m + pos]
  std::vector<double> labels;      // m
  std::vector<uint32_t> sorted;    // d x m position lists
  // Positions in insertion order, stable-partitioned at every split — the
  // same order the original (seed) implementation kept its index array in.
  // Node statistics accumulate over this list so gains are bit-identical to
  // the seed's, which matters when two features induce the same partition
  // and the winner is decided by ~1e-16 summation-order noise.
  std::vector<uint32_t> order;
  std::vector<uint8_t> go_left;    // m, split routing flags
  std::vector<uint32_t> tmp;       // right-side positions during partition
  std::vector<size_t> features;    // per-node candidate features
  // Counting-pass buckets used to derive sorted stripes from a shared
  // FeaturePresort: positions grouped by source row, ascending within a row.
  std::vector<uint32_t> row_offset;  // n + 1 prefix offsets
  std::vector<uint32_t> pos_by_row;  // m positions
};

void FeaturePresort::Build(const linalg::Matrix& x) {
  num_rows = x.rows();
  num_features = x.cols();
  assert(num_rows < UINT32_MAX);
  sorted_rows.resize(num_features * num_rows);
  for (size_t f = 0; f < num_features; ++f) {
    uint32_t* seg = sorted_rows.data() + f * num_rows;
    std::iota(seg, seg + num_rows, 0u);
    std::sort(seg, seg + num_rows, [&x, f](uint32_t a, uint32_t b) {
      const double va = x.At(a, f);
      const double vb = x.At(b, f);
      if (va != vb) return va < vb;
      return a < b;
    });
  }
}

void CartTree::Fit(const linalg::Matrix& x, const std::vector<double>& y,
                   const CartOptions& options, common::Rng* rng) {
  std::vector<size_t> identity(x.rows());
  std::iota(identity.begin(), identity.end(), 0);
  FitIndices(x, y, identity, options, rng);
}

void CartTree::FitIndices(const linalg::Matrix& x,
                          const std::vector<double>& y,
                          const std::vector<size_t>& row_indices,
                          const CartOptions& options, common::Rng* rng,
                          const FeaturePresort* presort) {
  nodes_.clear();
  importance_.assign(x.cols(), 0.0);
  if (row_indices.empty()) return;
  assert(row_indices.size() < UINT32_MAX);

  // One scratch arena per thread, reused across trees: a forest fit keeps
  // the gather/sort buffers warm instead of reallocating them per tree.
  static thread_local Scratch scratch;
  Scratch& s = scratch;
  s.m = row_indices.size();
  s.d = x.cols();
  s.values.resize(s.d * s.m);
  s.labels.resize(s.m);
  s.features.clear();
  for (size_t i = 0; i < s.m; ++i) {
    const size_t row = row_indices[i];
    s.labels[i] = y[row];
    for (size_t f = 0; f < s.d; ++f) s.values[f * s.m + i] = x.At(row, f);
  }
  s.sorted.resize(s.d * s.m);
  if (presort != nullptr && presort->num_rows == x.rows() &&
      presort->num_features == s.d) {
    // Derive each feature's sorted position list from the shared row order:
    // bucket positions by source row (ascending position within a bucket),
    // then emit buckets in the presorted row order. O(n + m) per feature.
    const size_t n = presort->num_rows;
    s.row_offset.assign(n + 1, 0);
    for (size_t i = 0; i < s.m; ++i) ++s.row_offset[row_indices[i] + 1];
    for (size_t r = 0; r < n; ++r) s.row_offset[r + 1] += s.row_offset[r];
    s.pos_by_row.resize(s.m);
    {
      std::vector<uint32_t> cursor(s.row_offset.begin(),
                                   s.row_offset.end() - 1);
      for (size_t i = 0; i < s.m; ++i) {
        s.pos_by_row[cursor[row_indices[i]]++] = static_cast<uint32_t>(i);
      }
    }
    for (size_t f = 0; f < s.d; ++f) {
      uint32_t* seg = s.sorted.data() + f * s.m;
      const uint32_t* rows = presort->sorted_rows.data() + f * n;
      size_t out = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t row = rows[i];
        for (uint32_t q = s.row_offset[row]; q < s.row_offset[row + 1]; ++q) {
          seg[out++] = s.pos_by_row[q];
        }
      }
    }
  } else {
    // One sort per feature for the whole tree; ties break by position, which
    // keeps duplicated bootstrap rows in a deterministic order.
    for (size_t f = 0; f < s.d; ++f) {
      uint32_t* seg = s.sorted.data() + f * s.m;
      std::iota(seg, seg + s.m, 0u);
      const double* vals = s.values.data() + f * s.m;
      std::sort(seg, seg + s.m, [vals](uint32_t a, uint32_t b) {
        if (vals[a] != vals[b]) return vals[a] < vals[b];
        return a < b;
      });
    }
  }
  s.order.resize(s.m);
  std::iota(s.order.begin(), s.order.end(), 0);
  s.go_left.resize(s.m);
  s.tmp.resize(s.m);

  BuildNode(s, 0, s.m, 0, options, rng);
}

int CartTree::BuildNode(Scratch& s, size_t begin, size_t end, int depth,
                        const CartOptions& options, common::Rng* rng) {
  const size_t count = end - begin;
  SplitStats node_stats;
  for (size_t i = begin; i < end; ++i) {
    node_stats.Add(s.labels[s.order[i]]);
  }

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = node_stats.Mean();

  const double node_sse = node_stats.SumSquaredError();
  if (depth >= options.max_depth || count < 2 * options.min_samples_leaf ||
      node_sse < 1e-12) {
    return node_id;
  }

  // Choose candidate features (without replacement). The list is rebuilt to
  // full width every node so Shuffle consumes the same RNG draws as the
  // original per-node implementation.
  s.features.resize(s.d);
  std::iota(s.features.begin(), s.features.end(), 0);
  const size_t feature_budget =
      options.max_features == 0 ? s.d : std::min(options.max_features, s.d);
  if (feature_budget < s.d) rng->Shuffle(&s.features);
  s.features.resize(feature_budget);

  double best_gain = 1e-12;
  size_t best_feature = 0;
  double best_threshold = 0.0;

  for (const size_t feature : s.features) {
    const double* vals = s.values.data() + feature * s.m;
    const uint32_t* seg = s.sorted.data() + feature * s.m;
    SplitStats left;
    SplitStats right = node_stats;
    for (size_t i = begin; i + 1 < end; ++i) {
      const uint32_t pos = seg[i];
      left.Add(s.labels[pos]);
      right.Remove(s.labels[pos]);
      if (vals[pos] == vals[seg[i + 1]]) continue;  // no valid cut
      if (left.count < options.min_samples_leaf ||
          right.count < options.min_samples_leaf) {
        continue;
      }
      const double gain =
          node_sse - left.SumSquaredError() - right.SumSquaredError();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = 0.5 * (vals[pos] + vals[seg[i + 1]]);
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;

  // Route each position and bail on a degenerate partition (possible when
  // the midpoint threshold rounds onto one of the two cut values).
  const double* best_vals = s.values.data() + best_feature * s.m;
  size_t left_count = 0;
  for (size_t i = begin; i < end; ++i) {
    const uint32_t pos = s.order[i];
    const bool go_left = best_vals[pos] <= best_threshold;
    s.go_left[pos] = go_left ? 1 : 0;
    left_count += go_left ? 1 : 0;
  }
  if (left_count == 0 || left_count == count) return node_id;

  importance_[best_feature] += best_gain;

  // Stable in-place partition of the insertion-order list and of every
  // feature's segment: left positions compact forward in order, right
  // positions park in tmp and are copied back behind them. Each child
  // segment therefore stays sorted (and `order` stays in seed order).
  // Every element is written to both destinations and only the matching
  // cursor advances: the side an element lands on is close to a coin flip,
  // and a data-dependent branch here mispredicts on roughly half of the
  // (count x num_features) elements partitioned per split. A left write
  // targets seg[write] with write <= i, so no unread element is clobbered.
  const auto partition_segment = [&](uint32_t* seg) {
    size_t write = begin;
    size_t parked = 0;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t pos = seg[i];
      const uint8_t flag = s.go_left[pos];
      seg[write] = pos;
      s.tmp[parked] = pos;
      write += flag;
      parked += static_cast<size_t>(1 - flag);
    }
    std::copy(s.tmp.begin(), s.tmp.begin() + static_cast<long>(parked),
              seg + write);
  };
  partition_segment(s.order.data());
  for (size_t f = 0; f < s.d; ++f) {
    partition_segment(s.sorted.data() + f * s.m);
  }
  const size_t split = begin + left_count;

  nodes_[node_id].is_leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left_id = BuildNode(s, begin, split, depth + 1, options, rng);
  nodes_[node_id].left = left_id;
  const int right_id = BuildNode(s, split, end, depth + 1, options, rng);
  nodes_[node_id].right = right_id;
  return node_id;
}

double CartTree::Predict(const std::vector<double>& row) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = row[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace hunter::ml
