#include "ml/replay_buffer.h"

namespace hunter::ml {

void ReplayBuffer::Add(Transition transition) {
  if (buffer_.size() >= capacity_) buffer_.pop_front();
  buffer_.push_back(std::move(transition));
}

std::vector<Transition> ReplayBuffer::SampleBatch(size_t batch_size,
                                                  common::Rng* rng) const {
  std::vector<Transition> batch;
  if (buffer_.empty()) return batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    const size_t index = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(buffer_.size()) - 1));
    batch.push_back(buffer_[index]);
  }
  return batch;
}

}  // namespace hunter::ml
