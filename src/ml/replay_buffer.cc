#include "ml/replay_buffer.h"

namespace hunter::ml {

void ReplayBuffer::Add(Transition transition) {
  if (buffer_.size() >= capacity_) buffer_.pop_front();
  buffer_.push_back(std::move(transition));
}

void ReplayBuffer::SampleIndices(size_t batch_size, common::Rng* rng,
                                 std::vector<size_t>* out) const {
  out->clear();
  if (buffer_.empty()) return;
  out->reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    out->push_back(static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(buffer_.size()) - 1)));
  }
}

std::vector<Transition> ReplayBuffer::SampleBatch(size_t batch_size,
                                                  common::Rng* rng) const {
  std::vector<size_t> indices;
  SampleIndices(batch_size, rng, &indices);
  std::vector<Transition> batch;
  batch.reserve(indices.size());
  for (const size_t index : indices) batch.push_back(buffer_[index]);
  return batch;
}

}  // namespace hunter::ml
