// A small fully-connected network with Adam, sufficient for DDPG's actor and
// critic (the paper's Recommender trains two MLPs; CDBTune uses the same).
// Supports forward, backward (returning the gradient w.r.t. the input, which
// DDPG's actor update needs to pull dQ/da out of the critic), soft target
// updates, and parameter (de)serialization for the model-reuse schemes (§4).

#ifndef HUNTER_ML_MLP_H_
#define HUNTER_ML_MLP_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hunter::ml {

enum class Activation { kReLU, kTanh, kLinear };

class Mlp {
 public:
  Mlp() = default;

  // `layer_sizes` = {input, hidden..., output}; `hidden` activation applies
  // to all but the last layer, `output` to the last.
  Mlp(const std::vector<size_t>& layer_sizes, Activation hidden,
      Activation output, common::Rng* rng);

  // Forward pass on a single example; caches activations for Backward.
  std::vector<double> Forward(const std::vector<double>& input);

  // Forward pass without touching the backprop caches (safe for target nets
  // and concurrent evaluation after training).
  std::vector<double> Predict(const std::vector<double>& input) const;

  // Backpropagates `grad_output` (dLoss/dOutput) through the cached forward
  // pass, accumulating parameter gradients; returns dLoss/dInput.
  std::vector<double> Backward(const std::vector<double>& grad_output);

  // Applies one Adam update using the accumulated gradients (scaled by
  // 1/batch_size) and clears them.
  void AdamStep(double learning_rate, size_t batch_size);

  void ZeroGradients();

  // this = tau * other + (1 - tau) * this (per parameter). Shapes must match.
  void SoftUpdateFrom(const Mlp& other, double tau);

  // Hard copy of the other network's parameters (shapes must match).
  void CopyFrom(const Mlp& other);

  // Flattened parameter vector (weights then biases per layer), used by the
  // model-reuse schemes to save/restore a Recommender.
  std::vector<double> SaveParameters() const;
  void LoadParameters(const std::vector<double>& params);

  size_t input_dim() const;
  size_t output_dim() const;
  bool initialized() const { return !layers_.empty(); }

 private:
  struct Layer {
    size_t in = 0;
    size_t out = 0;
    Activation activation = Activation::kLinear;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> bias;
    // Accumulated gradients and Adam moments.
    std::vector<double> grad_weights;
    std::vector<double> grad_bias;
    std::vector<double> m_weights, v_weights, m_bias, v_bias;
    // Forward caches (single example).
    std::vector<double> input_cache;
    std::vector<double> pre_activation;
    std::vector<double> output_cache;
  };

  static double Activate(double x, Activation act);
  static double ActivateGrad(double pre, double post, Activation act);

  std::vector<Layer> layers_;
  size_t adam_step_ = 0;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_MLP_H_
