// A small fully-connected network with Adam, sufficient for DDPG's actor and
// critic (the paper's Recommender trains two MLPs; CDBTune uses the same).
// Supports forward, backward (returning the gradient w.r.t. the input, which
// DDPG's actor update needs to pull dQ/da out of the critic), soft target
// updates, and parameter (de)serialization for the model-reuse schemes (§4).
//
// Two training paths exist: the per-sample Forward/Backward pair (the
// original reference implementation, still used for equivalence checks) and
// the minibatch ForwardBatch/BackwardBatch pair, which runs each pass as one
// GEMM over a (batch x dim) matrix with per-layer scratch arenas reused
// across steps. The batched path is bit-identical to calling the per-sample
// path row by row: biases are seeded into the pre-activation arena before an
// accumulate-mode GEMM whose contraction index ascends exactly like the
// per-sample dot-product loops (see linalg/matrix.h).

#ifndef HUNTER_ML_MLP_H_
#define HUNTER_ML_MLP_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {

enum class Activation { kReLU, kTanh, kLinear };

class Mlp {
 public:
  Mlp() = default;

  // `layer_sizes` = {input, hidden..., output}; `hidden` activation applies
  // to all but the last layer, `output` to the last.
  Mlp(const std::vector<size_t>& layer_sizes, Activation hidden,
      Activation output, common::Rng* rng);

  // Forward pass on a single example; caches activations for Backward.
  std::vector<double> Forward(const std::vector<double>& input);

  // Forward pass without touching the backprop caches (safe for target nets
  // and concurrent evaluation after training).
  std::vector<double> Predict(const std::vector<double>& input) const;

  // Backpropagates `grad_output` (dLoss/dOutput) through the cached forward
  // pass, accumulating parameter gradients; returns dLoss/dInput.
  std::vector<double> Backward(const std::vector<double>& grad_output);

  // Minibatch forward: `input` is (batch x in), `*output` becomes
  // (batch x out). Caches per-layer batch activations for BackwardBatch.
  // Row r of the output is bit-identical to Forward(row r of input).
  // `input` is borrowed, not copied: it must stay alive and unmodified
  // until the matching BackwardBatch (which reads it for the first layer's
  // parameter-gradient GEMM), and must not alias `*output`.
  void ForwardBatch(const linalg::Matrix& input, linalg::Matrix* output);

  // Minibatch backward through the cached ForwardBatch pass. `grad_output`
  // is (batch x out); parameter gradients accumulate summed over the batch
  // in row order (bit-identical to per-sample Backward calls in the same
  // order). If `grad_input` is non-null it becomes dLoss/dInput
  // (batch x in). Pass accumulate_param_grads=false when only the input
  // gradient is wanted (e.g. DDPG's actor update backpropagating through a
  // frozen critic) — the parameter-gradient GEMMs are skipped entirely.
  void BackwardBatch(const linalg::Matrix& grad_output,
                     linalg::Matrix* grad_input,
                     bool accumulate_param_grads = true);

  // Applies one Adam update using the accumulated gradients (scaled by
  // 1/batch_size) and clears them.
  void AdamStep(double learning_rate, size_t batch_size);

  void ZeroGradients();

  // this = tau * other + (1 - tau) * this (per parameter). Shapes must match.
  void SoftUpdateFrom(const Mlp& other, double tau);

  // Hard copy of the other network's parameters (shapes must match).
  void CopyFrom(const Mlp& other);

  // Flattened parameter vector (weights then biases per layer), used by the
  // model-reuse schemes to save/restore a Recommender.
  std::vector<double> SaveParameters() const;
  void LoadParameters(const std::vector<double>& params);

  size_t input_dim() const;
  size_t output_dim() const;
  bool initialized() const { return !layers_.empty(); }

 private:
  struct Layer {
    size_t in = 0;
    size_t out = 0;
    Activation activation = Activation::kLinear;
    std::vector<double> weights;  // out x in, row-major
    std::vector<double> bias;
    // Accumulated gradients and Adam moments.
    std::vector<double> grad_weights;
    std::vector<double> grad_bias;
    std::vector<double> m_weights, v_weights, m_bias, v_bias;
    // Forward caches (single example).
    std::vector<double> input_cache;
    std::vector<double> pre_activation;
    std::vector<double> output_cache;
    // Minibatch arenas; allocated on first use, reused every step after.
    // A layer's input is the previous layer's batch_out (or the Mlp-level
    // batch_input0_ for the first layer), so no per-layer input copy exists.
    linalg::Matrix batch_pre;    // batch x out
    linalg::Matrix batch_out;    // batch x out
    linalg::Matrix weights_t;    // in x out (transpose for the forward GEMM)
    // weights_t is rebuilt lazily: parameter mutations flip this flag and
    // the next ForwardBatch re-gathers the transpose once.
    bool weights_t_valid = false;
  };

  static double Activate(double x, Activation act);
  static double ActivateGrad(double pre, double post, Activation act);

  std::vector<Layer> layers_;
  size_t adam_step_ = 0;
  // The last ForwardBatch input, borrowed for the first layer's
  // parameter-gradient GEMM in BackwardBatch (see the ForwardBatch lifetime
  // contract) — borrowing skips a (batch x in) copy per forward pass.
  const linalg::Matrix* batch_input0_ = nullptr;
  // BackwardBatch scratch (delta and the ping-pong upstream-gradient pair).
  linalg::Matrix scratch_delta_;
  linalg::Matrix scratch_grad_a_;
  linalg::Matrix scratch_grad_b_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_MLP_H_
