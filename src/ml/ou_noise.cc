#include "ml/ou_noise.h"

namespace hunter::ml {

const std::vector<double>& OuNoise::Sample(common::Rng* rng) {
  for (double& x : state_) {
    x += theta_ * (mu_ - x) + sigma_ * rng->Gaussian();
  }
  return state_;
}

void OuNoise::Reset() {
  for (double& x : state_) x = mu_;
}

}  // namespace hunter::ml
