// Ornstein-Uhlenbeck exploration noise, the standard DDPG exploration process
// (Lillicrap et al. 2015) used by the CDBTune baseline and by HUNTER's
// Recommender when FES selects the "current action" branch.

#ifndef HUNTER_ML_OU_NOISE_H_
#define HUNTER_ML_OU_NOISE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hunter::ml {

class OuNoise {
 public:
  OuNoise(size_t dim, double theta = 0.15, double sigma = 0.2, double mu = 0.0)
      : theta_(theta), sigma_(sigma), mu_(mu), state_(dim, mu) {}

  // Advances the process one step and returns the current noise vector.
  const std::vector<double>& Sample(common::Rng* rng);

  void Reset();

  // Scales the diffusion term (used to decay exploration over time).
  void set_sigma(double sigma) { sigma_ = sigma; }
  double sigma() const { return sigma_; }

 private:
  double theta_;
  double sigma_;
  double mu_;
  std::vector<double> state_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_OU_NOISE_H_
