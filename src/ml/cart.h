// Classification-and-regression tree (CART) used as the base learner of the
// Random Forest knob-sifting step (§3.2.2). The paper builds 200 CARTs whose
// impurity reductions are averaged into per-knob importance scores; here the
// trees are regression trees on the performance/fitness label, and impurity
// is variance (the continuous analogue of Gini used by scikit-learn's
// regressor, which the paper's implementation relies on).

#ifndef HUNTER_ML_CART_H_
#define HUNTER_ML_CART_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {

struct CartOptions {
  int max_depth = 8;
  size_t min_samples_leaf = 2;
  // Number of candidate features per split; 0 means "use all features".
  size_t max_features = 0;
};

// Shared per-dataset sort index: for every feature, the rows of `x` in
// ascending feature-value order (ties by row index). A forest builds this
// once and every tree derives its bootstrap view's sorted position lists
// from it with a linear counting pass, replacing the per-tree
// O(d * m log m) comparison sorts. Read-only after Build, so the pool
// workers can share one instance without synchronization.
struct FeaturePresort {
  size_t num_rows = 0;
  size_t num_features = 0;
  // 32-bit row ids: the index stripes are the hottest data the splitter
  // streams, and halving them doubles the rows per cache line.
  std::vector<uint32_t> sorted_rows;  // num_features stripes of num_rows

  void Build(const linalg::Matrix& x);
};

class CartTree {
 public:
  // Fits on data rows `x` with labels `y`; `rng` drives feature subsampling.
  void Fit(const linalg::Matrix& x, const std::vector<double>& y,
           const CartOptions& options, common::Rng* rng);

  // Fits on a view of `x` given by `row_indices` (duplicates allowed — this
  // is how the forest expresses bootstrap samples without materializing a
  // copied design matrix). Fit(x, y, ...) is FitIndices with the identity
  // index set. When `presort` is provided (built for this same `x`), the
  // per-feature sorted position lists are derived from it in O(n + m) per
  // feature instead of sorted per tree; with or without it the fit is
  // deterministic, and the two modes agree whenever no two distinct rows
  // share a feature value (equal-value runs are never cut, so ties only
  // permute summation order within a run).
  void FitIndices(const linalg::Matrix& x, const std::vector<double>& y,
                  const std::vector<size_t>& row_indices,
                  const CartOptions& options, common::Rng* rng,
                  const FeaturePresort* presort = nullptr);

  double Predict(const std::vector<double>& row) const;

  // Total impurity (variance) reduction attributed to each feature,
  // weighted by the number of samples reaching the split.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;     // leaf prediction
    size_t feature = 0;     // split feature
    double threshold = 0.0; // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
  };

  // Per-fit working set: a feature-major gather of the training view plus
  // one pre-sorted position list per feature. The sort happens once at the
  // root; every split then scans candidate cuts in O(count) and partitions
  // all feature lists stably, so no per-node sorting or allocation remains.
  struct Scratch;

  int BuildNode(Scratch& s, size_t begin, size_t end, int depth,
                const CartOptions& options, common::Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_CART_H_
