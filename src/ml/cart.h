// Classification-and-regression tree (CART) used as the base learner of the
// Random Forest knob-sifting step (§3.2.2). The paper builds 200 CARTs whose
// impurity reductions are averaged into per-knob importance scores; here the
// trees are regression trees on the performance/fitness label, and impurity
// is variance (the continuous analogue of Gini used by scikit-learn's
// regressor, which the paper's implementation relies on).

#ifndef HUNTER_ML_CART_H_
#define HUNTER_ML_CART_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hunter::ml {

struct CartOptions {
  int max_depth = 8;
  size_t min_samples_leaf = 2;
  // Number of candidate features per split; 0 means "use all features".
  size_t max_features = 0;
};

class CartTree {
 public:
  // Fits on data rows `x` with labels `y`; `rng` drives feature subsampling.
  void Fit(const linalg::Matrix& x, const std::vector<double>& y,
           const CartOptions& options, common::Rng* rng);

  double Predict(const std::vector<double>& row) const;

  // Total impurity (variance) reduction attributed to each feature,
  // weighted by the number of samples reaching the split.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    double value = 0.0;     // leaf prediction
    size_t feature = 0;     // split feature
    double threshold = 0.0; // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
  };

  int BuildNode(const linalg::Matrix& x, const std::vector<double>& y,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const CartOptions& options, common::Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_CART_H_
