// Gaussian-process regression with a squared-exponential kernel plus the
// Expected-Improvement acquisition, implementing the surrogate model used by
// the OtterTune / iTuned line of work (§1 "Current Landscape") and by the
// ResTune-style meta-learning baseline.

#ifndef HUNTER_ML_GAUSSIAN_PROCESS_H_
#define HUNTER_ML_GAUSSIAN_PROCESS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace hunter::ml {

struct GpOptions {
  double length_scale = 0.9;   // shared SE length scale in normalized space
  double signal_variance = 1.0;
  double noise_variance = 5e-3;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {}) : options_(options) {}

  // Fits on inputs `x` (rows = observations in [0,1]^d) and targets `y`.
  // Returns false if the kernel matrix is numerically singular.
  bool Fit(const linalg::Matrix& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }
  size_t num_observations() const { return train_x_.rows(); }

  // Posterior mean and variance at a query point.
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction Predict(const std::vector<double>& x) const;

  // Expected improvement over `best_so_far` (maximization convention).
  double ExpectedImprovement(const std::vector<double>& x,
                             double best_so_far) const;

  const GpOptions& options() const { return options_; }

 private:
  double Kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  GpOptions options_;
  bool fitted_ = false;
  linalg::Matrix train_x_;
  std::vector<double> train_y_;
  double y_mean_ = 0.0;
  linalg::Matrix chol_;            // Cholesky factor of K + noise I
  std::vector<double> alpha_;      // (K + noise I)^-1 (y - mean)
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_GAUSSIAN_PROCESS_H_
