// Gaussian-process regression with a squared-exponential kernel plus the
// Expected-Improvement acquisition, implementing the surrogate model used by
// the OtterTune / iTuned line of work (§1 "Current Landscape") and by the
// ResTune-style meta-learning baseline.
//
// The GP sits inside the BO tuners' inner loop (one refit per Observe, one
// acquisition evaluation per candidate per Propose), so the hot paths follow
// the same playbook as the batched MLP/DDPG work (DESIGN.md §8, §11):
//
//  * The kernel matrix is built from the squared-distance expansion
//    ‖a − b‖² = ‖a‖² + ‖b‖² − 2 aᵀb with the Gram matrix computed by one
//    GemmTransposedAInto call, instead of an allocating per-row double loop.
//  * Fit detects when the new training set extends the previous one (the
//    steady state while the tuner's sample window is still filling) and
//    grows the Cholesky factor by rank-1 row-appends — O(n²) per new
//    observation instead of an O(n³) refactorization. The append path is
//    bit-identical to a full refit (see linalg::CholeskyAppendRow); a full
//    refit happens only when the window slides or the append goes non-SPD.
//  * PredictBatch / ExpectedImprovementBatch score a whole candidate matrix
//    in one GEMM-backed pass over reused scratch arenas, with the posterior
//    variance taken from the forward substitution alone
//    (σ² = k(x,x) − ‖L⁻¹k*‖², the identity the two-pass solve computes the
//    long way). Batch results match the per-candidate path to 1e-9
//    (asserted in bench_micro_hotpaths before any timing is trusted).

#ifndef HUNTER_ML_GAUSSIAN_PROCESS_H_
#define HUNTER_ML_GAUSSIAN_PROCESS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace hunter::ml {

struct GpOptions {
  double length_scale = 0.9;   // shared SE length scale in normalized space
  double signal_variance = 1.0;
  double noise_variance = 5e-3;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpOptions options = {}) : options_(options) {}

  // Fits on inputs `x` (rows = observations in [0,1]^d) and targets `y`.
  // Returns false if the kernel matrix is numerically singular.
  // When `x`/`y` bit-exactly extend the previously fitted training set
  // (same leading rows, new rows appended), the factor is grown
  // incrementally; the result is identical either way.
  bool Fit(const linalg::Matrix& x, const std::vector<double>& y);

  bool fitted() const { return fitted_; }
  size_t num_observations() const { return train_x_.rows(); }

  // Posterior mean and variance at a query point.
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction Predict(const std::vector<double>& x) const;

  // Expected improvement over `best_so_far` (maximization convention).
  double ExpectedImprovement(const std::vector<double>& x,
                             double best_so_far) const;

  // Batch versions: one row of `x` per query point, scored in a single
  // GEMM-backed pass over reused scratch (not thread-safe, like the rest of
  // the class). `out` is resized to x.rows().
  void PredictBatch(const linalg::Matrix& x,
                    std::vector<Prediction>* out) const;
  void ExpectedImprovementBatch(const linalg::Matrix& x, double best_so_far,
                                std::vector<double>* out) const;

  // Observability: how many Fit calls refactorized from scratch vs grew the
  // existing factor (exported as tuner.gp_* counters in run journals).
  uint64_t full_refits() const { return full_refits_; }
  uint64_t incremental_updates() const { return incremental_updates_; }

  const GpOptions& options() const { return options_; }

 private:
  double Kernel(linalg::RowSpan a, linalg::RowSpan b) const;
  // SE kernel from the expansion parts: sq = norm_a + norm_b - 2 dot.
  double KernelFromParts(double norm_a, double norm_b, double dot) const;
  // True if (x, y) bit-exactly extend the fitted training set.
  bool ExtendsTrainingSet(const linalg::Matrix& x,
                          const std::vector<double>& y) const;
  bool FitFull(const linalg::Matrix& x, const std::vector<double>& y);
  bool FitIncremental(const linalg::Matrix& x, const std::vector<double>& y);
  void RecomputeAlpha(const std::vector<double>& y);

  GpOptions options_;
  bool fitted_ = false;
  linalg::Matrix train_x_;         // n x d
  linalg::Matrix train_xt_;        // d x n, for the batch cross-kernel GEMM
  std::vector<double> train_y_;
  std::vector<double> row_norms_;  // ‖x_i‖², bit-matching the Gram diagonal
  double y_mean_ = 0.0;
  linalg::Matrix chol_;            // Cholesky factor of K + noise I
  std::vector<double> alpha_;      // (K + noise I)^-1 (y - mean)
  uint64_t full_refits_ = 0;
  uint64_t incremental_updates_ = 0;

  // Scratch arenas for the batch paths (allocation-free in steady state).
  mutable linalg::Matrix cross_;           // m x n cross-kernel
  mutable std::vector<double> query_norms_;
  mutable std::vector<double> k_star_;     // per-query kernel row
  mutable std::vector<double> forward_;    // L^{-1} k* per query
  mutable std::vector<Prediction> batch_predictions_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_GAUSSIAN_PROCESS_H_
