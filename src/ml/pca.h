// Principal Component Analysis used by HUNTER's Search Space Optimizer
// (§3.2.1) to compress the 63-dimensional metric vector into the smallest
// number of components whose cumulative explained variance exceeds a target
// (the paper uses 90%; 13 components on TPC-C).

#ifndef HUNTER_ML_PCA_H_
#define HUNTER_ML_PCA_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace hunter::ml {

class Pca {
 public:
  // Fits on `data` (one observation per row). When `standardize` is true the
  // columns are scaled to unit variance before the eigendecomposition, which
  // is appropriate for metrics with wildly different units.
  void Fit(const linalg::Matrix& data, bool standardize = true);

  bool fitted() const { return fitted_; }

  // Explained-variance ratio per component, descending.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_ratio_;
  }

  // Cumulative explained-variance ratio (CDF in the paper's Figure 7(a)).
  std::vector<double> CumulativeVarianceRatio() const;

  // Smallest number of components whose cumulative ratio >= `threshold`.
  size_t ComponentsForVariance(double threshold) const;

  // Projects one observation onto the first `k` components.
  std::vector<double> Transform(const std::vector<double>& row, size_t k) const;

  // Projects a whole matrix onto the first `k` components.
  linalg::Matrix TransformMatrix(const linalg::Matrix& data, size_t k) const;

  size_t input_dim() const { return means_.size(); }

  // Flat serialization of the fitted transform (for model persistence):
  // [dim, standardize, means..., stds..., ratios..., components(row-major)].
  std::vector<double> SaveState() const;
  // Restores a fitted transform; returns false on a malformed buffer.
  bool LoadState(const std::vector<double>& state);

 private:
  bool fitted_ = false;
  bool standardize_ = true;
  std::vector<double> means_;
  std::vector<double> stds_;
  std::vector<double> explained_ratio_;
  linalg::Matrix components_;  // input_dim x input_dim, columns = components
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_PCA_H_
