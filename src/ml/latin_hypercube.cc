#include "ml/latin_hypercube.h"

#include <numeric>

namespace hunter::ml {

std::vector<std::vector<double>> LatinHypercube(size_t num_samples, size_t dim,
                                                common::Rng* rng) {
  std::vector<std::vector<double>> samples(num_samples,
                                           std::vector<double>(dim, 0.0));
  if (num_samples == 0) return samples;
  std::vector<size_t> strata(num_samples);
  for (size_t d = 0; d < dim; ++d) {
    std::iota(strata.begin(), strata.end(), 0);
    rng->Shuffle(&strata);
    for (size_t s = 0; s < num_samples; ++s) {
      const double cell = (static_cast<double>(strata[s]) + rng->Uniform()) /
                          static_cast<double>(num_samples);
      samples[s][d] = cell;
    }
  }
  return samples;
}

}  // namespace hunter::ml
