#include "ml/ddpg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/simd/simd.h"

namespace hunter::ml {

namespace {

std::vector<size_t> BuildSizes(size_t in, const std::vector<size_t>& hidden,
                               size_t out) {
  std::vector<size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

std::vector<double> Concat(const std::vector<double>& a,
                           const std::vector<double>& b) {
  std::vector<double> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

// Maps tanh output in [-1,1] to the normalized knob space [0,1].
std::vector<double> TanhToUnit(const std::vector<double>& tanh_out) {
  std::vector<double> unit(tanh_out.size());
  linalg::simd::ClampUnitFromTanhInto(tanh_out.data(), unit.data(),
                                      unit.size());
  return unit;
}

}  // namespace

Ddpg::Ddpg(const DdpgOptions& options, common::Rng* rng)
    : options_(options),
      rng_(rng->Fork()),
      buffer_(options.replay_capacity) {
  assert(options.state_dim > 0 && options.action_dim > 0);
  common::Rng init_rng = rng_.Fork();
  actor_ = Mlp(BuildSizes(options.state_dim, options.actor_hidden,
                          options.action_dim),
               Activation::kReLU, Activation::kTanh, &init_rng);
  critic_ = Mlp(BuildSizes(options.state_dim + options.action_dim,
                           options.critic_hidden, 1),
                Activation::kReLU, Activation::kLinear, &init_rng);
  target_actor_ = actor_;
  target_critic_ = critic_;
}

std::vector<double> Ddpg::Act(const std::vector<double>& state) const {
  assert(state.size() == options_.state_dim);
  return TanhToUnit(actor_.Predict(state));
}

void Ddpg::AddTransition(Transition transition) {
  assert(transition.state.size() == options_.state_dim);
  assert(transition.action.size() == options_.action_dim);
  buffer_.Add(std::move(transition));
}

double Ddpg::TrainStep() {
  if (buffer_.empty()) return 0.0;
  buffer_.SampleIndices(options_.batch_size, &rng_, &batch_indices_);
  return options_.batched_training ? TrainStepBatched() : TrainStepScalar();
}

// The original per-sample reference path. Kept (behind
// DdpgOptions::batched_training = false) for baseline timing and for the
// equivalence tests that pin the batched path to it bit for bit.
double Ddpg::TrainStepScalar() {
  // ---- Critic update: minimize (Q(s,a) - y)^2 with
  //      y = r + gamma * Q'(s', mu'(s')).
  double total_loss = 0.0;
  critic_.ZeroGradients();
  for (const size_t index : batch_indices_) {
    const Transition& t = buffer_.at(index);
    double target = t.reward;
    if (!t.terminal) {
      const std::vector<double> next_action =
          TanhToUnit(target_actor_.Predict(t.next_state));
      const std::vector<double> next_q =
          target_critic_.Predict(Concat(t.next_state, next_action));
      target += options_.gamma * next_q[0];
    }
    const std::vector<double> q = critic_.Forward(Concat(t.state, t.action));
    const double error = q[0] - target;
    total_loss += error * error;
    critic_.Backward({2.0 * error});
  }
  critic_.AdamStep(options_.critic_lr, batch_indices_.size());

  // ---- Actor update: ascend dQ/da through the critic.
  actor_.ZeroGradients();
  for (const size_t index : batch_indices_) {
    const Transition& t = buffer_.at(index);
    const std::vector<double> tanh_action = actor_.Forward(t.state);
    const std::vector<double> unit_action = TanhToUnit(tanh_action);
    critic_.Forward(Concat(t.state, unit_action));
    // Minimize -Q => grad_output = -1. Backward also accumulates critic
    // parameter gradients, which we discard below.
    const std::vector<double> grad_input = critic_.Backward({-1.0});
    std::vector<double> grad_action(options_.action_dim);
    for (size_t i = 0; i < options_.action_dim; ++i) {
      // Chain through the [-1,1] -> [0,1] affine map (factor 0.5).
      grad_action[i] = 0.5 * grad_input[options_.state_dim + i];
      if (options_.grad_clip > 0.0) {
        grad_action[i] = std::clamp(grad_action[i], -options_.grad_clip,
                                    options_.grad_clip);
      }
    }
    actor_.Backward(grad_action);
  }
  critic_.ZeroGradients();  // discard gradients from the actor pass
  actor_.AdamStep(options_.actor_lr, batch_indices_.size());

  // ---- Soft target updates.
  target_actor_.SoftUpdateFrom(actor_, options_.tau);
  target_critic_.SoftUpdateFrom(critic_, options_.tau);

  return total_loss / static_cast<double>(batch_indices_.size());
}

// Batched path: the same three passes as TrainStepScalar, each run as one
// minibatch GEMM over preallocated arenas. Every floating-point sum below
// is evaluated in the same order as the scalar path (see mlp.h), so the two
// paths produce bit-identical parameters from the same RNG stream.
double Ddpg::TrainStepBatched() {
  const size_t batch = batch_indices_.size();
  const size_t s_dim = options_.state_dim;
  const size_t a_dim = options_.action_dim;

  // Gather the minibatch into the state / state‖action arenas.
  b_states_.Reshape(batch, s_dim);
  b_next_states_.Reshape(batch, s_dim);
  b_sa_.Reshape(batch, s_dim + a_dim);
  b_target_.resize(batch);
  for (size_t r = 0; r < batch; ++r) {
    const Transition& t = buffer_.at(batch_indices_[r]);
    std::copy(t.state.begin(), t.state.end(), b_states_.Data() + r * s_dim);
    std::copy(t.next_state.begin(), t.next_state.end(),
              b_next_states_.Data() + r * s_dim);
    double* sa_row = b_sa_.Data() + r * (s_dim + a_dim);
    std::copy(t.state.begin(), t.state.end(), sa_row);
    std::copy(t.action.begin(), t.action.end(), sa_row + s_dim);
  }

  // ---- TD targets: y = r + gamma * Q'(s', mu'(s')). Terminal rows still
  // flow through the target nets (their next_q is simply unused), which
  // keeps the pass rectangular.
  target_actor_.ForwardBatch(b_next_states_, &b_tanh_);
  b_next_sa_.Reshape(batch, s_dim + a_dim);
  for (size_t r = 0; r < batch; ++r) {
    double* row = b_next_sa_.Data() + r * (s_dim + a_dim);
    std::copy(b_next_states_.Data() + r * s_dim,
              b_next_states_.Data() + (r + 1) * s_dim, row);
    linalg::simd::ClampUnitFromTanhInto(b_tanh_.Data() + r * a_dim,
                                        row + s_dim, a_dim);
  }
  target_critic_.ForwardBatch(b_next_sa_, &b_next_q_);
  for (size_t r = 0; r < batch; ++r) {
    const Transition& t = buffer_.at(batch_indices_[r]);
    b_target_[r] = t.reward +
                   (t.terminal ? 0.0 : options_.gamma * b_next_q_.At(r, 0));
  }

  // ---- Critic update.
  double total_loss = 0.0;
  critic_.ZeroGradients();
  critic_.ForwardBatch(b_sa_, &b_q_);
  b_grad_q_.Reshape(batch, 1);
  for (size_t r = 0; r < batch; ++r) {
    const double error = b_q_.At(r, 0) - b_target_[r];
    total_loss += error * error;
    b_grad_q_.At(r, 0) = 2.0 * error;
  }
  critic_.BackwardBatch(b_grad_q_, nullptr);
  critic_.AdamStep(options_.critic_lr, batch);

  // ---- Actor update: ascend dQ/da through the critic. The state columns
  // of b_sa_ are still valid; only the action columns are overwritten with
  // the actor's current policy.
  actor_.ZeroGradients();
  actor_.ForwardBatch(b_states_, &b_tanh_);
  for (size_t r = 0; r < batch; ++r) {
    linalg::simd::ClampUnitFromTanhInto(
        b_tanh_.Data() + r * a_dim,
        b_sa_.Data() + r * (s_dim + a_dim) + s_dim, a_dim);
  }
  critic_.ForwardBatch(b_sa_, &b_q_);
  b_grad_q_.Reshape(batch, 1);
  b_grad_q_.Fill(-1.0);
  // The scalar path accumulates critic parameter gradients here and then
  // discards them; skipping their GEMMs outright changes nothing.
  critic_.BackwardBatch(b_grad_q_, &b_grad_sa_,
                        /*accumulate_param_grads=*/false);
  b_grad_action_.Reshape(batch, a_dim);
  for (size_t r = 0; r < batch; ++r) {
    // Chain through the [-1,1] -> [0,1] affine map (factor 0.5), clipping
    // like the scalar path when grad_clip is enabled.
    const double* grad_row = b_grad_sa_.Data() + r * (s_dim + a_dim) + s_dim;
    double* out_row = b_grad_action_.Data() + r * a_dim;
    if (options_.grad_clip > 0.0) {
      linalg::simd::ScaleClampInto(grad_row, 0.5, options_.grad_clip, out_row,
                                   a_dim);
    } else {
      linalg::simd::ScaleInto(grad_row, 0.5, out_row, a_dim);
    }
  }
  actor_.BackwardBatch(b_grad_action_, nullptr);
  actor_.AdamStep(options_.actor_lr, batch);

  // ---- Soft target updates.
  target_actor_.SoftUpdateFrom(actor_, options_.tau);
  target_critic_.SoftUpdateFrom(critic_, options_.tau);

  return total_loss / static_cast<double>(batch);
}

double Ddpg::EvaluateQ(const std::vector<double>& state,
                       const std::vector<double>& action) const {
  return target_critic_.Predict(Concat(state, action))[0];
}

std::vector<double> Ddpg::SaveParameters() const {
  std::vector<double> params = actor_.SaveParameters();
  const std::vector<double> critic_params = critic_.SaveParameters();
  params.insert(params.end(), critic_params.begin(), critic_params.end());
  return params;
}

void Ddpg::LoadParameters(const std::vector<double>& params) {
  const size_t actor_size = actor_.SaveParameters().size();
  assert(params.size() == actor_size + critic_.SaveParameters().size());
  actor_.LoadParameters(
      std::vector<double>(params.begin(),
                          params.begin() + static_cast<long>(actor_size)));
  critic_.LoadParameters(
      std::vector<double>(params.begin() + static_cast<long>(actor_size),
                          params.end()));
  target_actor_.CopyFrom(actor_);
  target_critic_.CopyFrom(critic_);
}

}  // namespace hunter::ml
