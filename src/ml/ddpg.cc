#include "ml/ddpg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hunter::ml {

namespace {

std::vector<size_t> BuildSizes(size_t in, const std::vector<size_t>& hidden,
                               size_t out) {
  std::vector<size_t> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

std::vector<double> Concat(const std::vector<double>& a,
                           const std::vector<double>& b) {
  std::vector<double> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  return merged;
}

// Maps tanh output in [-1,1] to the normalized knob space [0,1].
std::vector<double> TanhToUnit(const std::vector<double>& tanh_out) {
  std::vector<double> unit(tanh_out.size());
  for (size_t i = 0; i < tanh_out.size(); ++i) {
    unit[i] = std::clamp(0.5 * (tanh_out[i] + 1.0), 0.0, 1.0);
  }
  return unit;
}

}  // namespace

Ddpg::Ddpg(const DdpgOptions& options, common::Rng* rng)
    : options_(options),
      rng_(rng->Fork()),
      buffer_(options.replay_capacity) {
  assert(options.state_dim > 0 && options.action_dim > 0);
  common::Rng init_rng = rng_.Fork();
  actor_ = Mlp(BuildSizes(options.state_dim, options.actor_hidden,
                          options.action_dim),
               Activation::kReLU, Activation::kTanh, &init_rng);
  critic_ = Mlp(BuildSizes(options.state_dim + options.action_dim,
                           options.critic_hidden, 1),
                Activation::kReLU, Activation::kLinear, &init_rng);
  target_actor_ = actor_;
  target_critic_ = critic_;
}

std::vector<double> Ddpg::Act(const std::vector<double>& state) const {
  assert(state.size() == options_.state_dim);
  return TanhToUnit(actor_.Predict(state));
}

void Ddpg::AddTransition(Transition transition) {
  assert(transition.state.size() == options_.state_dim);
  assert(transition.action.size() == options_.action_dim);
  buffer_.Add(std::move(transition));
}

double Ddpg::TrainStep() {
  if (buffer_.empty()) return 0.0;
  const std::vector<Transition> batch =
      buffer_.SampleBatch(options_.batch_size, &rng_);

  // ---- Critic update: minimize (Q(s,a) - y)^2 with
  //      y = r + gamma * Q'(s', mu'(s')).
  double total_loss = 0.0;
  critic_.ZeroGradients();
  for (const Transition& t : batch) {
    double target = t.reward;
    if (!t.terminal) {
      const std::vector<double> next_action =
          TanhToUnit(target_actor_.Predict(t.next_state));
      const std::vector<double> next_q =
          target_critic_.Predict(Concat(t.next_state, next_action));
      target += options_.gamma * next_q[0];
    }
    const std::vector<double> q = critic_.Forward(Concat(t.state, t.action));
    const double error = q[0] - target;
    total_loss += error * error;
    critic_.Backward({2.0 * error});
  }
  critic_.AdamStep(options_.critic_lr, batch.size());

  // ---- Actor update: ascend dQ/da through the critic.
  actor_.ZeroGradients();
  for (const Transition& t : batch) {
    const std::vector<double> tanh_action = actor_.Forward(t.state);
    const std::vector<double> unit_action = TanhToUnit(tanh_action);
    critic_.Forward(Concat(t.state, unit_action));
    // Minimize -Q => grad_output = -1. Backward also accumulates critic
    // parameter gradients, which we discard below.
    const std::vector<double> grad_input = critic_.Backward({-1.0});
    std::vector<double> grad_action(options_.action_dim);
    for (size_t i = 0; i < options_.action_dim; ++i) {
      // Chain through the [-1,1] -> [0,1] affine map (factor 0.5).
      grad_action[i] = 0.5 * grad_input[options_.state_dim + i];
      if (options_.grad_clip > 0.0) {
        grad_action[i] = std::clamp(grad_action[i], -options_.grad_clip,
                                    options_.grad_clip);
      }
    }
    actor_.Backward(grad_action);
  }
  critic_.ZeroGradients();  // discard gradients from the actor pass
  actor_.AdamStep(options_.actor_lr, batch.size());

  // ---- Soft target updates.
  target_actor_.SoftUpdateFrom(actor_, options_.tau);
  target_critic_.SoftUpdateFrom(critic_, options_.tau);

  return total_loss / static_cast<double>(batch.size());
}

double Ddpg::EvaluateQ(const std::vector<double>& state,
                       const std::vector<double>& action) const {
  return target_critic_.Predict(Concat(state, action))[0];
}

std::vector<double> Ddpg::SaveParameters() const {
  std::vector<double> params = actor_.SaveParameters();
  const std::vector<double> critic_params = critic_.SaveParameters();
  params.insert(params.end(), critic_params.begin(), critic_params.end());
  return params;
}

void Ddpg::LoadParameters(const std::vector<double>& params) {
  const size_t actor_size = actor_.SaveParameters().size();
  assert(params.size() == actor_size + critic_.SaveParameters().size());
  actor_.LoadParameters(
      std::vector<double>(params.begin(),
                          params.begin() + static_cast<long>(actor_size)));
  critic_.LoadParameters(
      std::vector<double>(params.begin() + static_cast<long>(actor_size),
                          params.end()));
  target_actor_.CopyFrom(actor_);
  target_critic_.CopyFrom(critic_);
}

}  // namespace hunter::ml
