// Latin Hypercube Sampling in the unit hypercube, the space-filling sampler
// used by BestConfig and OtterTune for their initial designs (§3.1).

#ifndef HUNTER_ML_LATIN_HYPERCUBE_H_
#define HUNTER_ML_LATIN_HYPERCUBE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hunter::ml {

// Returns `num_samples` points in [0,1]^dim such that each dimension's
// samples occupy distinct equal-width strata (one per sample).
std::vector<std::vector<double>> LatinHypercube(size_t num_samples, size_t dim,
                                                common::Rng* rng);

}  // namespace hunter::ml

#endif  // HUNTER_ML_LATIN_HYPERCUBE_H_
