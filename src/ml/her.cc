#include "ml/her.h"

#include <cmath>

namespace hunter::ml {

std::vector<Transition> HerAugment(const std::vector<Transition>& transitions,
                                   const HerOptions& options,
                                   common::Rng* rng) {
  std::vector<Transition> augmented = transitions;
  if (transitions.empty()) return augmented;
  augmented.reserve(transitions.size() *
                    (1 + options.relabels_per_transition));
  for (const Transition& t : transitions) {
    for (size_t k = 0; k < options.relabels_per_transition; ++k) {
      const size_t goal_index = static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(transitions.size()) - 1));
      const double goal_reward = transitions[goal_index].reward;
      Transition relabeled = t;
      // Sparse hindsight reward: 1 if this transition achieved (or exceeded)
      // the hindsight goal within tolerance, else a shaped penalty
      // proportional to the shortfall.
      const double shortfall = goal_reward - t.reward;
      relabeled.reward = shortfall <= options.goal_tolerance
                             ? 1.0
                             : -std::min(1.0, shortfall);
      augmented.push_back(std::move(relabeled));
    }
  }
  return augmented;
}

}  // namespace hunter::ml
