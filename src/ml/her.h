// Hindsight-Experience-Replay-style sample augmentation (Andrychowicz et al.
// 2017). The paper evaluates HER as an *alternative* DRL warm-up to GA+
// (Table 6) and finds it inferior; this module implements the relabeling
// scheme so that ablation can be reproduced.
//
// In the knob-tuning setting there is no explicit goal vector, so we follow
// the common adaptation: each transition is duplicated with its reward
// recomputed relative to an "achieved goal" — the performance of another
// (randomly chosen) transition from the same pool — which densifies the
// reward signal around configurations the agent has actually reached.

#ifndef HUNTER_ML_HER_H_
#define HUNTER_ML_HER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "ml/replay_buffer.h"

namespace hunter::ml {

struct HerOptions {
  // Number of relabeled copies per original transition.
  size_t relabels_per_transition = 2;
  // Tolerance within which an achieved performance counts as "reaching" the
  // hindsight goal (in reward units).
  double goal_tolerance = 0.05;
};

// Returns the augmented set: originals followed by relabeled copies.
std::vector<Transition> HerAugment(const std::vector<Transition>& transitions,
                                   const HerOptions& options,
                                   common::Rng* rng);

}  // namespace hunter::ml

#endif  // HUNTER_ML_HER_H_
