// Random Forest regressor for knob importance ranking (§3.2.2).
//
// The paper's configuration: 200 CARTs, each trained on a bootstrap sample
// with a random feature subset; per-knob importance is the average impurity
// reduction across trees, and the top-k knobs by importance are kept for
// tuning (k = 20 in the paper).

#ifndef HUNTER_ML_RANDOM_FOREST_H_
#define HUNTER_ML_RANDOM_FOREST_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "ml/cart.h"

namespace hunter::ml {

struct RandomForestOptions {
  size_t num_trees = 200;
  CartOptions tree;
  // Fraction of features each tree sees; the effective `max_features` is
  // ceil(fraction * num_features) unless tree.max_features is set explicitly.
  double feature_fraction = 0.5;
};

class RandomForest {
 public:
  // Fits the forest. Every tree draws from an RNG forked from `rng` up
  // front, in tree order, so the result depends only on the incoming RNG
  // state — with a `pool` the trees fit in parallel and the forest is still
  // bit-identical to the serial fit, regardless of scheduling (the same
  // determinism discipline as controller::FaultInjector). Passing nullptr
  // (or a single-threaded pool) fits serially.
  void Fit(const linalg::Matrix& x, const std::vector<double>& y,
           const RandomForestOptions& options, common::Rng* rng,
           common::ThreadPool* pool = nullptr);

  double Predict(const std::vector<double>& row) const;

  // Mean impurity reduction per feature, normalized to sum to 1.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  // Feature indices sorted by descending importance.
  std::vector<size_t> RankFeatures() const;

  size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<CartTree> trees_;
  std::vector<double> importance_;
};

}  // namespace hunter::ml

#endif  // HUNTER_ML_RANDOM_FOREST_H_
