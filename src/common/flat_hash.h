// Open-addressing hash map with 64-bit keys, built for the engine hot paths.
//
// The simulated engine's per-evaluation loops (buffer-pool page lookup, the
// lock table, the dependency graph's row indices) were bottlenecked on
// `std::unordered_map` node allocation and pointer chasing. FlatHashMap64
// stores keys and values in flat arrays with linear probing over a
// power-of-two table, so a lookup is a hash, a mask, and a short contiguous
// scan — no nodes, no per-insert allocation once the table is sized.
//
// Properties the hot paths rely on:
//   - `Reset(expected)` clears contents but keeps the slabs whenever they are
//     already big enough, so a pool/lock-table reused across evaluations
//     performs zero allocations in steady state.
//   - Deletion uses backward-shift (Robin-Hood style compaction of the probe
//     chain) instead of tombstones, so long-lived tables never degrade.
//   - Iteration order is never exposed: the map supports only point lookups,
//     keeping it trivially safe under the determinism rules (there is no
//     order to accidentally emit).

#ifndef HUNTER_COMMON_FLAT_HASH_H_
#define HUNTER_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hunter::common {

template <typename V>
class FlatHashMap64 {
 public:
  FlatHashMap64() = default;
  explicit FlatHashMap64(size_t expected_keys) { Reset(expected_keys); }

  // Clears all entries and ensures `expected_keys` fit without growth.
  // Returns true when the existing slab was large enough to be reused (no
  // reallocation happened). Clearing is O(1): occupancy is an epoch stamp
  // per slot, so emptying the table is one epoch bump rather than a walk
  // over every slot (a pool sized for a large configuration would otherwise
  // keep paying a full-slab sweep on every later, smaller Reset).
  bool Reset(size_t expected_keys) {
    const size_t wanted = TableSizeFor(expected_keys);
    size_ = 0;
    if (slots_.size() >= wanted && !slots_.empty()) {
      if (++epoch_ == 0) {
        // uint32 epoch wrapped: re-zero the stamps once and restart.
        for (Slot& slot : slots_) slot.epoch = 0;
        epoch_ = 1;
      }
      return true;
    }
    slots_.assign(wanted, Slot{});
    mask_ = wanted - 1;
    epoch_ = 1;
    return false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns a pointer to the value for `key`, or nullptr if absent.
  V* Find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    size_t i = Bucket(key);
    while (Used(i)) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatHashMap64*>(this)->Find(key);
  }

  // operator[]-style access: returns the value for `key`, default-inserting
  // it if absent (grows the table as needed).
  V& At(uint64_t key) {
    if (slots_.empty()) Reset(8);
    size_t i = Bucket(key);
    while (Used(i)) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 2 > slots_.size()) {
      Grow();
      i = Bucket(key);
      while (Used(i)) i = (i + 1) & mask_;
    }
    slots_[i].epoch = epoch_;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  // Removes `key` if present; returns whether it was. Uses backward-shift
  // deletion so probe chains stay compact without tombstones.
  bool Erase(uint64_t key) {
    if (slots_.empty()) return false;
    size_t i = Bucket(key);
    while (Used(i) && slots_[i].key != key) i = (i + 1) & mask_;
    if (!Used(i)) return false;
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!Used(j)) break;
      const size_t ideal = Bucket(slots_[j].key);
      // Entry at j may move into the hole iff the hole lies on its probe
      // path, i.e. distance(ideal -> j) >= distance(hole -> j).
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        slots_[hole].epoch = epoch_;
        hole = j;
      }
    }
    slots_[hole].epoch = epoch_ - 1;
    --size_;
    return true;
  }

 private:
  // A slot is occupied iff its epoch stamp equals the table's current
  // epoch. Stale stamps are always strictly older: the stamp counter only
  // moves forward, and the wrap back to zero re-zeroes every slot. The
  // uint32 stamp occupies the same padding bytes the former bool did, so
  // the slot footprint is unchanged.
  struct Slot {
    uint64_t key = 0;
    V value{};
    uint32_t epoch = 0;
  };

  bool Used(size_t i) const { return slots_[i].epoch == epoch_; }

  // splitmix64 finalizer: full-avalanche mix so sequential keys (page ids,
  // row ids) spread over the table.
  static uint64_t Mix(uint64_t x) {
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  static size_t TableSizeFor(size_t expected_keys) {
    // Keep load factor <= 0.5: a table reserved for N keys never grows.
    size_t wanted = 8;
    while (wanted < expected_keys * 2) wanted <<= 1;
    return wanted;
  }

  size_t Bucket(uint64_t key) const {
    return static_cast<size_t>(Mix(key)) & mask_;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    const uint32_t old_epoch = epoch_;
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    epoch_ = 1;
    for (Slot& slot : old) {
      if (slot.epoch != old_epoch) continue;
      size_t i = Bucket(slot.key);
      while (Used(i)) i = (i + 1) & mask_;
      slots_[i].epoch = epoch_;
      slots_[i].key = slot.key;
      slots_[i].value = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  uint32_t epoch_ = 1;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_FLAT_HASH_H_
