// Locale-independent text formatting shared by every emitter that feeds a
// byte-stable artifact (run journals, model files, bench JSON, tables).
//
// The C and C++ locale machinery silently rewrites numeric output ("1.5"
// becomes "1,5" under many European locales), which breaks the byte-identical
// journal contract (DESIGN.md §10). Everything that serializes numbers must
// go through these helpers, which pin std::locale::classic().

#ifndef HUNTER_COMMON_TEXT_H_
#define HUNTER_COMMON_TEXT_H_

#include <ios>
#include <locale>
#include <string>

namespace hunter::common {

// RAII: imbues `stream` with std::locale::classic() and restores the previous
// locale on destruction, so parsers/serializers can pin "C" numerics on a
// caller-provided stream without leaking the change.
class ScopedClassicLocale {
 public:
  explicit ScopedClassicLocale(std::ios_base& stream)
      : stream_(stream), previous_(stream.imbue(std::locale::classic())) {}
  ~ScopedClassicLocale() { stream_.imbue(previous_); }
  ScopedClassicLocale(const ScopedClassicLocale&) = delete;
  ScopedClassicLocale& operator=(const ScopedClassicLocale&) = delete;

 private:
  std::ios_base& stream_;
  std::locale previous_;
};

// Shortest-precision-17 decimal rendering of `value` that round-trips to the
// same double, always with '.' as the decimal separator. Non-finite values
// render as "NaN", "Infinity", "-Infinity".
std::string FormatDouble17(double value);

// Fixed-point rendering with `digits` fractional digits, classic locale.
std::string FormatDoubleFixed(double value, int digits);

// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
// control characters; everything else passes through byte-for-byte).
std::string JsonEscape(const std::string& s);

}  // namespace hunter::common

#endif  // HUNTER_COMMON_TEXT_H_
