// Intrusive array-backed LRU list with an open-addressing key index.
//
// Replaces the `std::list<uint64_t>` + `std::unordered_map` pair the buffer
// pool was built on: slots live in a fixed slab sized to the capacity, the
// recency list is threaded through prev/next uint32 index arrays (no node
// allocation, no pointer chasing across the heap), and key -> slot lookup
// goes through FlatHashMap64. A full Access (lookup + splice to front) is a
// handful of contiguous array reads.
//
// Capacities of at most kScanSlots skip the hash index altogether: the key
// slab fits in one or two cache lines' worth of vector compares, so lookup
// is a branchless linear scan over keys + live bytes. This is the common
// case for the engine's default buffer pools (tens of pages), where a miss
// previously paid three probe sequences (find, erase victim with backward
// shift, re-probe to insert) per eviction. Which mode is active is not
// observable: Find/Insert/Evict semantics are identical in both.
//
// `Reset(capacity)` reinitializes the structure for a new run, reusing the
// slabs whenever they are already big enough — the engine keeps one pool
// alive across evaluations, so steady-state resets allocate nothing.
//
// Slots are identified by uint32 indices; `kNil` is the null link. The
// caller owns any per-slot payload (e.g. the pool's dirty bits) in parallel
// arrays indexed by slot.

#ifndef HUNTER_COMMON_FLAT_LRU_H_
#define HUNTER_COMMON_FLAT_LRU_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cpu.h"
#include "common/flat_hash.h"

namespace hunter::common {

// The scan-mode lookup kernels (scalar + runtime-dispatched AVX2 lanes)
// live in common/cpu.h as simd::ScanFind / simd::ScanFindDense, next to the
// one cached CPUID query every dispatch site in the tree shares.

class FlatLru {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  // Largest capacity served by the linear-scan index (1 KiB of keys).
  static constexpr uint32_t kScanSlots = 128;

  explicit FlatLru(uint64_t capacity = 1) { Reset(capacity); }

  // Empties the list and re-sizes the slab for `capacity` slots. Returns
  // true when the existing slabs were reused without reallocation.
  bool Reset(uint64_t capacity) {
    const uint32_t cap = static_cast<uint32_t>(
        std::min<uint64_t>(std::max<uint64_t>(1, capacity), kNil - 1));
    capacity_ = cap;
    scan_ = cap <= kScanSlots;
    bool reused = true;
    if (!scan_) reused = index_.Reset(cap);
    if (keys_.size() < cap) {
      keys_.resize(cap);
      prev_.resize(cap);
      next_.resize(cap);
      live_.resize(cap);
      reused = false;
    }
    if (scan_) std::fill(live_.begin(), live_.begin() + cap, uint8_t{0});
    dense_ = true;
    // Free list threaded through next_.
    for (uint32_t i = 0; i < cap; ++i) next_[i] = i + 1;
    next_[cap - 1] = kNil;
    free_head_ = 0;
    head_ = kNil;
    tail_ = kNil;
    size_ = 0;
    return reused;
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return size_; }

  // Slot holding `key`, or kNil if absent.
  uint32_t Find(uint64_t key) const {
    if (scan_) {
      // Live keys are unique, so the scan's unique match (or kNil) is the
      // same answer the hash index would give. While the slab is dense —
      // slots are handed out in order and only ever replaced in place —
      // every slot below the fill line is live and holds a distinct key,
      // so the scan needs neither the live bytes nor the empty tail.
      if (dense_) {
        return simd::ScanFindDense(keys_.data(),
                                   static_cast<uint32_t>(size_), key);
      }
      return simd::ScanFind(keys_.data(), live_.data(), capacity_, key);
    }
    const uint32_t* slot = index_.Find(key);
    return slot == nullptr ? kNil : *slot;
  }

  uint64_t key(uint32_t slot) const { return keys_[slot]; }
  uint32_t front() const { return head_; }
  uint32_t back() const { return tail_; }
  // Next-warmer slot (toward the front/MRU end); kNil past the front.
  uint32_t Warmer(uint32_t slot) const { return prev_[slot]; }
  // Next-colder slot (toward the back/LRU end); kNil past the back.
  uint32_t Colder(uint32_t slot) const { return next_[slot]; }

  // Splices an existing slot to the front (most-recently-used position).
  void MoveToFront(uint32_t slot) {
    if (head_ == slot) return;
    // Unlink.
    const uint32_t p = prev_[slot];
    const uint32_t n = next_[slot];
    next_[p] = n;  // p != kNil because slot != head_
    if (n != kNil) {
      prev_[n] = p;
    } else {
      tail_ = p;
    }
    // Relink at the front.
    prev_[slot] = kNil;
    next_[slot] = head_;
    prev_[head_] = slot;  // head_ != kNil because the list is non-empty
    head_ = slot;
  }

  // Inserts an absent key at the front; returns its slot. The caller must
  // guarantee the key is absent and the list is not full.
  uint32_t InsertFront(uint64_t key_value) {
    const uint32_t slot = PopFree();
    keys_[slot] = key_value;
    prev_[slot] = kNil;
    next_[slot] = head_;
    if (head_ != kNil) {
      prev_[head_] = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
    live_[slot] = 1;
    if (!scan_) index_.At(key_value) = slot;
    ++size_;
    return slot;
  }

  // Inserts an absent key at the back (coldest position); returns its slot.
  uint32_t InsertBack(uint64_t key_value) {
    const uint32_t slot = PopFree();
    keys_[slot] = key_value;
    next_[slot] = kNil;
    prev_[slot] = tail_;
    if (tail_ != kNil) {
      next_[tail_] = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    live_[slot] = 1;
    if (!scan_) index_.At(key_value) = slot;
    ++size_;
    return slot;
  }

  // Removes the back (least-recently-used) entry. The list must be
  // non-empty. Returns the freed slot (its key is still readable until the
  // next insert).
  uint32_t EvictBack() {
    const uint32_t slot = tail_;
    tail_ = prev_[slot];
    if (tail_ != kNil) {
      next_[tail_] = kNil;
    } else {
      head_ = kNil;
    }
    live_[slot] = 0;
    if (!scan_) index_.Erase(keys_[slot]);
    PushFree(slot);
    --size_;
    // A freed slot below the fill line breaks the dense invariant until the
    // next Reset.
    dense_ = false;
    return slot;
  }

  // Evicts the back entry and installs `key_value` at the front in its
  // slot, in one step — equivalent to EvictBack() followed by
  // InsertFront(key_value), minus the free-list round trip and the second
  // linking pass. The list must be non-empty and `key_value` absent.
  // Returns the reused slot (the victim's key is gone from the slab, which
  // is what keeps the dense-scan invariant intact).
  uint32_t ReplaceBack(uint64_t key_value) {
    const uint32_t slot = tail_;
    if (!scan_) {
      index_.Erase(keys_[slot]);
      index_.At(key_value) = slot;
    }
    keys_[slot] = key_value;
    if (head_ != slot) {
      // Unlink from the back, relink at the front.
      tail_ = prev_[slot];
      next_[tail_] = kNil;
      prev_[slot] = kNil;
      next_[slot] = head_;
      prev_[head_] = slot;
      head_ = slot;
    }
    return slot;
  }

 private:
  uint32_t PopFree() {
    const uint32_t slot = free_head_;
    free_head_ = next_[slot];
    return slot;
  }
  void PushFree(uint32_t slot) {
    next_[slot] = free_head_;
    free_head_ = slot;
  }

  FlatHashMap64<uint32_t> index_;  // key -> slot; reserved so it never grows
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> prev_;  // toward the front (warmer)
  std::vector<uint32_t> next_;  // toward the back (colder); free list links
  std::vector<uint8_t> live_;   // per-slot occupancy, the scan-mode index
  bool scan_ = true;
  // True while slots [0, size_) are exactly the live slots (no EvictBack
  // since the last Reset); enables the key-only dense scan.
  bool dense_ = true;
  uint32_t capacity_ = 0;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t free_head_ = kNil;
  uint64_t size_ = 0;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_FLAT_LRU_H_
