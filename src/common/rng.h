// Seeded pseudo-random number generation utilities.
//
// All stochastic components in this repository (the simulated engine's noise,
// GA mutation, DDPG exploration, forest bootstrapping, ...) draw from an
// explicitly seeded Rng so that unit tests and experiment harnesses are
// reproducible. The generator is xoshiro256**, seeded through SplitMix64.

#ifndef HUNTER_COMMON_RNG_H_
#define HUNTER_COMMON_RNG_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hunter::common {

// A small, fast, seedable PRNG (xoshiro256**) with the distribution helpers
// this project needs. Copyable so components can fork deterministic
// sub-streams via `Fork()`.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Advances the generator and returns 64 uniformly distributed bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

  // Zipfian-distributed integer in [0, n) with skew `theta` in [0, 1).
  // theta = 0 degenerates to uniform. Uses the Gray/Jim-Gray style
  // approximation used by YCSB-like workload generators.
  uint64_t Zipf(uint64_t n, double theta);

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // If all weights are zero, samples uniformly.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Returns an independent generator deterministically derived from this
  // one's stream (useful for giving each clone / tree / thread its own RNG).
  Rng Fork();

  // Exact fingerprint of the draw-relevant generator state: the four
  // xoshiro256** words plus the Box-Muller cache (flag + cached value, the
  // latter bit-cast so NaN-free doubles compare exactly). Two generators
  // with equal fingerprints produce identical draw sequences. The Zipf
  // constants are deliberately excluded — they are a pure function of the
  // last (n, theta) arguments, not of the stream position, so they cannot
  // change what is drawn next. Used as the seed-stream component of the
  // simulated engine's steady-state memo key.
  std::array<uint64_t, 6> StateFingerprint() const {
    return {state_[0], state_[1], state_[2], state_[3],
            has_cached_gaussian_ ? 1ull : 0ull,
            std::bit_cast<uint64_t>(cached_gaussian_)};
  }

 private:
  void SeedState(uint64_t seed);

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;

  // Cached Zipf constants (recomputed when (n, theta) changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_RNG_H_
