// Seeded pseudo-random number generation utilities.
//
// All stochastic components in this repository (the simulated engine's noise,
// GA mutation, DDPG exploration, forest bootstrapping, ...) draw from an
// explicitly seeded Rng so that unit tests and experiment harnesses are
// reproducible. The generator is xoshiro256**, seeded through SplitMix64.

#ifndef HUNTER_COMMON_RNG_H_
#define HUNTER_COMMON_RNG_H_

#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hunter::common {

// Cached per-(n, theta) constants of the Gray-style Zipf approximation,
// including every per-draw transcendental that does not depend on the
// uniform variate (`pow_half_theta` = pow(0.5, theta), formerly recomputed
// on every draw). `Compute` evaluates the exact same expressions the
// original per-draw code used, and `Rank` maps a uniform u in [0, 1) to a
// rank with the identical floating-point expression order — so for any
// fixed (n, theta) the u -> rank mapping is bit-identical to the original.
struct ZipfParams {
  uint64_t n = 0;
  double theta = -1.0;
  double zetan = 0.0;
  double alpha = 0.0;
  double eta = 0.0;
  double pow_half_theta = 0.0;

  // Requires n > 1 and theta > 0 (callers handle the degenerate cases).
  static ZipfParams Compute(uint64_t n, double theta);

  uint64_t Rank(double u) const {
    const double uz = u * zetan;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + pow_half_theta) return 1;
    const double rank =
        static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha);
    uint64_t result = static_cast<uint64_t>(rank);
    return result >= n ? n - 1 : result;
  }
};

// A small, fast, seedable PRNG (xoshiro256**) with the distribution helpers
// this project needs. Copyable so components can fork deterministic
// sub-streams via `Fork()`.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Advances the generator and returns 64 uniformly distributed bits.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Gaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p);

  // Zipfian-distributed integer in [0, n) with skew `theta` in [0, 1).
  // theta = 0 degenerates to uniform. Uses the Gray/Jim-Gray style
  // approximation used by YCSB-like workload generators.
  uint64_t Zipf(uint64_t n, double theta);

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // If all weights are zero, samples uniformly.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Returns an independent generator deterministically derived from this
  // one's stream (useful for giving each clone / tree / thread its own RNG).
  Rng Fork();

  // Exact fingerprint of the draw-relevant generator state: the four
  // xoshiro256** words plus the Box-Muller cache (flag + cached value, the
  // latter bit-cast so NaN-free doubles compare exactly). Two generators
  // with equal fingerprints produce identical draw sequences. The Zipf
  // constants are deliberately excluded — they are a pure function of the
  // last (n, theta) arguments, not of the stream position, so they cannot
  // change what is drawn next. Used as the seed-stream component of the
  // simulated engine's steady-state memo key.
  std::array<uint64_t, 6> StateFingerprint() const {
    return {state_[0], state_[1], state_[2], state_[3],
            has_cached_gaussian_ ? 1ull : 0ull,
            std::bit_cast<uint64_t>(cached_gaussian_)};
  }

 private:
  void SeedState(uint64_t seed);

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;

  // Cached Zipf constants (recomputed when (n, theta) changes).
  ZipfParams zipf_;
};

// A Zipf sampler with its constants bound up front, for batch draws where
// the caller knows (n, theta) ahead of time — e.g. the simulated engine's
// access-stream generation and lock-table replay. `Sample` consumes exactly
// one generator advance and produces the same value `Rng::Zipf(n, theta)`
// would have at the same stream position (the degenerate modulo path
// included), so switching a call site to a ZipfTable never changes a draw
// sequence. `Rebind` recomputes the constants only when (n, theta) actually
// changed, which lets two alternating distributions (page draws vs row
// draws) each keep a warm table instead of thrashing one shared cache; a
// small memo of previously computed parameter sets additionally makes
// re-binding between a handful of recurring distributions (e.g. a tuner
// alternating two workloads through one engine) free after the first
// evaluation of each. Memoization is unobservable: a hit returns the exact
// ZipfParams that `Compute` produced for that (n, theta) the first time.
class ZipfTable {
 public:
  ZipfTable() = default;
  ZipfTable(uint64_t n, double theta) { Rebind(n, theta); }

  void Rebind(uint64_t n, double theta) {
    if (bound_ && n == n_ && theta == theta_) return;
    bound_ = true;
    n_ = n;
    theta_ = theta;
    degenerate_ = n <= 1 || theta <= 0.0;
    if (degenerate_) return;
    for (const ZipfParams& m : memo_) {
      if (m.n == n && m.theta == theta) {
        params_ = m;
        return;
      }
    }
    params_ = ZipfParams::Compute(n, theta);
    if (memo_.size() < kMemoEntries) {
      memo_.push_back(params_);
    } else {
      // Round-robin replacement: the memo exists for a few recurring
      // bindings, so any victim policy beyond "not the newest" is moot.
      memo_[memo_next_] = params_;
      memo_next_ = (memo_next_ + 1) % kMemoEntries;
    }
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  uint64_t Sample(Rng* rng) const {
    if (degenerate_) return n_ == 0 ? 0 : rng->NextU64() % n_;
    return params_.Rank(rng->Uniform());
  }

  // Draws `count` consecutive samples into `out` (resized by the caller).
  void Fill(Rng* rng, uint64_t* out, size_t count) const {
    for (size_t i = 0; i < count; ++i) out[i] = Sample(rng);
  }

 private:
  static constexpr size_t kMemoEntries = 8;

  uint64_t n_ = 0;
  double theta_ = -1.0;
  bool bound_ = false;
  bool degenerate_ = true;
  ZipfParams params_;
  std::vector<ZipfParams> memo_;
  size_t memo_next_ = 0;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_RNG_H_
