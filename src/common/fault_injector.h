// Deterministic fault injection for the clone fleet (§2.1 acknowledges
// clones can fail to boot; a real cloud also crashes, straggles, and fails
// deployments transiently). Decisions are pure hash functions of
// (seed, clone_id, per-clone operation serial), so a fault schedule is
// reproducible regardless of thread interleaving — the Controller's retry,
// straggler, and replacement policies can be tested and benchmarked against
// an identical schedule in serial and concurrent runs.

#ifndef HUNTER_COMMON_FAULT_INJECTOR_H_
#define HUNTER_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

namespace hunter::common {

// A scheduled unrecoverable clone loss: clone `clone_id` dies during its
// `at_op`-th operation (and stays dead for any later op, should the caller
// keep using it). The Controller responds by re-cloning from the user
// instance under a fresh clone id, so the replacement draws a new stream.
struct CloneDeathSchedule {
  int clone_id = -1;
  uint64_t at_op = 0;
};

struct FaultInjectorOptions {
  uint64_t seed = 0;
  // Probability a knob deployment fails transiently (retryable; the clone
  // survives but the attempt costs a failed restart).
  double transient_deploy_failure_rate = 0.0;
  // Probability the clone crashes mid-stress-test (sample lost, instance
  // needs a recovery restart; retryable).
  double crash_rate = 0.0;
  // Probability a stress test straggles, multiplying its execution time.
  double straggler_rate = 0.0;
  double straggler_slowdown = 6.0;
  std::vector<CloneDeathSchedule> permanent_deaths;

  bool enabled() const {
    return transient_deploy_failure_rate > 0.0 || crash_rate > 0.0 ||
           straggler_rate > 0.0 || !permanent_deaths.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultInjectorOptions options)
      : options_(std::move(options)) {}

  bool enabled() const { return options_.enabled(); }
  const FaultInjectorOptions& options() const { return options_; }

  // All predicates are const and stateless: safe to consult from any thread.
  bool TransientDeployFailure(int clone_id, uint64_t op) const;
  bool CrashesDuringRun(int clone_id, uint64_t op) const;
  // How far into the workload execution the crash happens, in (0.1, 0.9).
  double CrashFraction(int clone_id, uint64_t op) const;
  // 1.0 normally; options().straggler_slowdown when the run straggles.
  double ExecutionSlowdown(int clone_id, uint64_t op) const;
  bool DiesPermanently(int clone_id, uint64_t op) const;

 private:
  // Uniform draw in [0, 1) from the hash of (seed, clone, op, salt).
  double Draw(int clone_id, uint64_t op, uint64_t salt) const;

  FaultInjectorOptions options_;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_FAULT_INJECTOR_H_
