#include "common/thread_pool.h"

namespace hunter::common {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // already shut down (and workers joined)
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace hunter::common
