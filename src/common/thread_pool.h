// Fixed-size thread pool used by the Controller to stress-test cloned CDB
// instances concurrently (the paper's parallelization scheme, §2.2) and by
// the Random Forest trainer.

#ifndef HUNTER_COMMON_THREAD_POOL_H_
#define HUNTER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hunter::common {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding work and joins all workers; idempotent. After
  // shutdown, Submit throws instead of enqueueing tasks nobody will run.
  void Shutdown();

  // Enqueues a task; the returned future yields the task's result. Throws
  // std::runtime_error if the pool has been shut down — without this, a
  // post-shutdown submission would sit in the queue forever and the caller's
  // future.get() would hang.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::Submit called after shutdown");
      }
      queue_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  // workers_ is written only in the constructor and joined after stopping_
  // flips, so it needs no guard; the queue and stop flag are shared with
  // every worker and must only be touched under mutex_ (lint-enforced).
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;  // hunterlint: guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;  // hunterlint: guarded_by(mutex_)
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_THREAD_POOL_H_
