// Markdown-style table printing used by the benchmark harnesses so that each
// bench binary emits rows directly comparable to the paper's tables/figures.

#ifndef HUNTER_COMMON_TABLE_PRINTER_H_
#define HUNTER_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace hunter::common {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  // Renders a GitHub-flavored markdown table with aligned columns.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits = 2);

}  // namespace hunter::common

#endif  // HUNTER_COMMON_TABLE_PRINTER_H_
