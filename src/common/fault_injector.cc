#include "common/fault_injector.h"

namespace hunter::common {

namespace {

// SplitMix64 finalizer: the same mixer rng.h uses for seeding.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::Draw(int clone_id, uint64_t op, uint64_t salt) const {
  uint64_t h = Mix(options_.seed ^ (salt * 0xD6E8FEB86659FD93ull));
  h = Mix(h ^ (static_cast<uint64_t>(static_cast<int64_t>(clone_id)) *
               0xA3B195354A39B70Dull));
  h = Mix(h ^ op);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::TransientDeployFailure(int clone_id, uint64_t op) const {
  if (options_.transient_deploy_failure_rate <= 0.0) return false;
  return Draw(clone_id, op, 1) < options_.transient_deploy_failure_rate;
}

bool FaultInjector::CrashesDuringRun(int clone_id, uint64_t op) const {
  if (options_.crash_rate <= 0.0) return false;
  return Draw(clone_id, op, 2) < options_.crash_rate;
}

double FaultInjector::CrashFraction(int clone_id, uint64_t op) const {
  return 0.1 + 0.8 * Draw(clone_id, op, 3);
}

double FaultInjector::ExecutionSlowdown(int clone_id, uint64_t op) const {
  if (options_.straggler_rate <= 0.0) return 1.0;
  return Draw(clone_id, op, 4) < options_.straggler_rate
             ? options_.straggler_slowdown
             : 1.0;
}

bool FaultInjector::DiesPermanently(int clone_id, uint64_t op) const {
  for (const CloneDeathSchedule& death : options_.permanent_deaths) {
    if (death.clone_id == clone_id && op >= death.at_op) return true;
  }
  return false;
}

}  // namespace hunter::common
