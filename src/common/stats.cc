#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hunter::common {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 100.0) return values.back();
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double mean_a = Mean(a);
  const double mean_b = Mean(b);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace hunter::common
