// Simulated wall-clock used to account tuning time.
//
// The paper reports results as "performance achieved after H hours of
// tuning". In this reproduction the DBMS is simulated, so a real wall-clock
// is meaningless; instead every tuning step charges the per-step costs from
// the paper's Table 1 (workload execution, metric collection, model update,
// knob deployment, recommendation) to a SimClock. Parallel stress-testing on
// k cloned instances charges the *maximum* of the k per-clone costs, which is
// what produces the paper's near-linear recommendation-time reductions.

#ifndef HUNTER_COMMON_SIM_CLOCK_H_
#define HUNTER_COMMON_SIM_CLOCK_H_

namespace hunter::common {

class SimClock {
 public:
  // Current simulated time in seconds since the start of the tuning session.
  double seconds() const { return seconds_; }
  double hours() const { return seconds_ / 3600.0; }

  // Advances the clock. Negative durations are ignored.
  void Advance(double seconds) {
    if (seconds > 0.0) seconds_ += seconds;
  }

  void Reset() { seconds_ = 0.0; }

 private:
  double seconds_ = 0.0;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_SIM_CLOCK_H_
