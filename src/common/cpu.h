// Single source of truth for CPU feature detection and SIMD dispatch tier.
//
// Every runtime-dispatched kernel in the tree — the dense floating-point
// layer in src/linalg/simd/ and the integer key-scan kernels below (used by
// flat_lru.h) — asks this header which tier to run at. The hardware is
// queried exactly once (one cached CPUID probe via __builtin_cpu_supports);
// everything else layered on top is policy:
//
//   * HUNTER_FORCE_SCALAR=1 in the environment pins the process to the
//     scalar tier (read once, at the first ActiveSimdTier() call). This is
//     how the forced-scalar ctest label runs the entire suite through the
//     fallback kernels on an AVX2 host.
//   * SetSimdTierForTesting / ClearSimdTierForTesting let tests and the
//     bench harness flip tiers in-process to time and compare both paths in
//     one run. Requests for a tier the hardware lacks clamp to scalar.
//
// Raw vector intrinsics are only permitted here and under src/linalg/simd/
// (enforced by the hunterlint rule no-raw-intrinsics-outside-simd).

#ifndef HUNTER_COMMON_CPU_H_
#define HUNTER_COMMON_CPU_H_

#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace hunter::common {

// The ladder of instruction-set tiers the dispatched kernels are written
// for. kAvx2Fma requires both AVX2 and FMA (they ship together on every
// mainstream core, but the dispatcher checks both — the floating-point
// kernels use FMA-era shuffles even though they never emit a fused
// multiply-add; see src/linalg/simd/simd.h for why contraction is banned).
enum class SimdTier : int {
  kScalar = 0,
  kAvx2Fma = 1,
};

// The tier kernels should dispatch at right now: the hardware tier, capped
// by HUNTER_FORCE_SCALAR and any in-process testing override. Cheap enough
// to call per dispatch (one relaxed atomic load on the override path).
SimdTier ActiveSimdTier();

// What the silicon supports, ignoring overrides. Cached after one probe.
SimdTier HardwareSimdTier();

// Stable lowercase name for reports and metrics: "scalar" / "avx2+fma".
const char* SimdTierName(SimdTier tier);

// Pins ActiveSimdTier() to `tier` (clamped to HardwareSimdTier()) until
// cleared. For tests and the bench harness only — production code never
// calls this. Thread-safe; takes effect on the next dispatch.
void SetSimdTierForTesting(SimdTier tier);
void ClearSimdTierForTesting();

namespace simd {

// ---------------------------------------------------------------------------
// Integer key-scan kernels (flat_lru.h's scan-mode index). These are exact
// lookups over uint64 slabs — no floating point, so the scalar and AVX2
// lanes are trivially answer-identical and the only contract is "same slot
// or kNil".
// ---------------------------------------------------------------------------

// Scalar scan-mode lookup: the unique live slot holding `key`, or not-found.
// Free slots keep their stale key until reuse, so the live byte is part of
// the match condition (a stale duplicate of `key` must not count).
inline uint32_t ScanFindScalar(const uint64_t* keys, const uint8_t* live,
                               uint32_t cap, uint64_t key) {
  uint32_t found = 0xFFFFFFFFu;
  for (uint32_t j = 0; j < cap; ++j) {
    found = (keys[j] == key && live[j] != 0) ? j : found;
  }
  return found;
}

// Dense variant: every slot in [0, count) is live (no free slots below the
// fill line, no stale keys), so the match condition is the key compare
// alone. This is the steady state of an LRU that replaces its victim in
// place (ReplaceBack) instead of evicting then re-inserting.
inline uint32_t ScanFindDenseScalar(const uint64_t* keys, uint32_t count,
                                    uint64_t key) {
  uint32_t found = 0xFFFFFFFFu;
  for (uint32_t j = 0; j < count; ++j) {
    found = keys[j] == key ? j : found;
  }
  return found;
}

#if defined(__x86_64__)
// AVX2 lane: four 64-bit key compares per step, accumulated branch-free
// into a per-chunk match bitmask (a data-dependent branch every four slots
// mispredicts constantly on random access streams). Live bytes are checked
// only on the rare raw key matches. Compiled with AVX2 enabled regardless
// of the build's baseline flags; only called when the CPU reports support.
__attribute__((target("avx2"))) inline uint32_t ScanFindAvx2(
    const uint64_t* keys, const uint8_t* live, uint32_t cap, uint64_t key) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(key));
  uint32_t base = 0;
  while (base < cap) {
    const uint32_t chunk = cap - base < 64 ? cap - base : 64;
    uint64_t matches = 0;
    uint32_t j = 0;
    for (; j + 4 <= chunk; j += 4) {
      const __m256i lane = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + base + j));
      const int mask = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, needle)));
      matches |= static_cast<uint64_t>(static_cast<uint32_t>(mask)) << j;
    }
    for (; j < chunk; ++j) {
      if (keys[base + j] == key) matches |= uint64_t{1} << j;
    }
    while (matches != 0) {
      const uint32_t b =
          static_cast<uint32_t>(__builtin_ctzll(matches));
      if (live[base + b] != 0) return base + b;
      matches &= matches - 1;
    }
    base += chunk;
  }
  return 0xFFFFFFFFu;
}

// Dense AVX2 lane: key compares only, no live bytes (see
// ScanFindDenseScalar for the invariant that makes this sufficient).
// Misses dominate an LRU smaller than its working set, so the hot pass is
// a pure in-vector OR-reduction ("is the key anywhere?") with no
// per-chunk vector->scalar crossings; the position is recovered by a
// second positional scan only when a match exists (at most one can).
__attribute__((target("avx2"))) inline uint32_t ScanFindDenseAvx2(
    const uint64_t* keys, uint32_t count, uint64_t key) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(key));
  __m256i any = _mm256_setzero_si256();
  uint32_t j = 0;
  for (; j + 8 <= count; j += 8) {
    const __m256i eq_lo = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j)),
        needle);
    const __m256i eq_hi = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j + 4)),
        needle);
    any = _mm256_or_si256(any, _mm256_or_si256(eq_lo, eq_hi));
  }
  for (; j < count; ++j) {
    if (keys[j] == key) return j;
  }
  if (_mm256_testz_si256(any, any) != 0) return 0xFFFFFFFFu;
  for (j = 0; j + 4 <= count; j += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + j)),
        needle);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (mask != 0) {
      return j + static_cast<uint32_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  return 0xFFFFFFFFu;
}

// Dispatchers. The tier is snapshotted at the first call: the buffer pool's
// Access path runs this on every page touch, and a per-call atomic load is
// measurable there. HUNTER_FORCE_SCALAR (read before any dispatch) is
// always honored; an in-process SetSimdTierForTesting only affects these if
// set before the first scan, which the scan tests do.
inline uint32_t ScanFind(const uint64_t* keys, const uint8_t* live,
                         uint32_t cap, uint64_t key) {
  static const bool kAvx2 = ActiveSimdTier() == SimdTier::kAvx2Fma;
  return kAvx2 ? ScanFindAvx2(keys, live, cap, key)
               : ScanFindScalar(keys, live, cap, key);
}

inline uint32_t ScanFindDense(const uint64_t* keys, uint32_t count,
                              uint64_t key) {
  static const bool kAvx2 = ActiveSimdTier() == SimdTier::kAvx2Fma;
  return kAvx2 ? ScanFindDenseAvx2(keys, count, key)
               : ScanFindDenseScalar(keys, count, key);
}
#else
inline uint32_t ScanFind(const uint64_t* keys, const uint8_t* live,
                         uint32_t cap, uint64_t key) {
  return ScanFindScalar(keys, live, cap, key);
}

inline uint32_t ScanFindDense(const uint64_t* keys, uint32_t count,
                              uint64_t key) {
  return ScanFindDenseScalar(keys, count, key);
}
#endif

}  // namespace simd

}  // namespace hunter::common

#endif  // HUNTER_COMMON_CPU_H_
