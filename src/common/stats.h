// Small statistics helpers shared by the simulated engine, the search-space
// optimizer and the benchmark harnesses.

#ifndef HUNTER_COMMON_STATS_H_
#define HUNTER_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace hunter::common {

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

// Sample variance (n-1 denominator, matching RunningStat::variance());
// 0 for fewer than two values.
double Variance(const std::vector<double>& values);

// Sample standard deviation.
double StdDev(const std::vector<double>& values);

// The q-th percentile (q in [0, 100]) using linear interpolation between
// order statistics. Copies and sorts internally; 0 for empty input.
double Percentile(std::vector<double> values, double q);

// Pearson correlation of two equally sized vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Extrema of the observed values. Before any Add() there is no
  // observation to report, so the empty case is explicit: NaN, never a
  // fabricated 0.0 that could masquerade as a real sample in metric
  // snapshots. Callers that need a sentinel-free API should guard on
  // count() first.
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hunter::common

#endif  // HUNTER_COMMON_STATS_H_
