#include "common/table_printer.h"

#include <algorithm>

#include "common/text.h"

namespace hunter::common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  // snprintf("%.*f") obeys the process locale (decimal comma and all); the
  // classic-locale stream helper keeps table output byte-stable everywhere.
  return FormatDoubleFixed(value, digits);
}

}  // namespace hunter::common
