#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace hunter::common {

namespace {

inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) { SeedState(seed); }

void Rng::SeedState(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

ZipfParams ZipfParams::Compute(uint64_t n, double theta) {
  ZipfParams params;
  params.n = n;
  params.theta = theta;
  // Exact zeta for small n; integral-tail approximation for large n
  // (row populations reach tens of millions — an exact sum per (n, theta)
  // change would dominate the whole simulation).
  constexpr uint64_t kExactTerms = 16384;
  double zetan = 0.0;
  const uint64_t exact = std::min(n, kExactTerms);
  for (uint64_t i = 1; i <= exact; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact && theta != 1.0) {
    const double a = static_cast<double>(exact);
    const double b = static_cast<double>(n);
    zetan += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
  }
  params.zetan = zetan;
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta);
  params.alpha = 1.0 / (1.0 - theta);
  params.eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
               (1.0 - zeta2 / zetan);
  // Formerly re-evaluated on every draw inside the rank-1 check; the value
  // depends only on theta, so it is a cached constant like the others.
  params.pow_half_theta = std::pow(0.5, theta);
  return params;
}

// hunterlint: hot
uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1 || theta <= 0.0) return n == 0 ? 0 : NextU64() % n;
  if (n != zipf_.n || theta != zipf_.theta) {
    zipf_ = ZipfParams::Compute(n, theta);
  }
  return zipf_.Rank(Uniform());
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    return weights.empty() ? 0 : static_cast<size_t>(NextU64() % weights.size());
  }
  double pick = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace hunter::common
