#include "common/text.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hunter::common {

std::string FormatDouble17(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0.0 ? "Infinity" : "-Infinity";
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(17);
  os << value;
  return os.str();
}

std::string FormatDoubleFixed(double value, int digits) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.setf(std::ios::fixed, std::ios::floatfield);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hunter::common
