#include "common/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hunter::common {

namespace {

// -1 = no override; otherwise the int value of the pinned SimdTier.
std::atomic<int> g_tier_override{-1};

SimdTier DetectHardwareTier() {
#if defined(__x86_64__)
  // One CPUID probe, shared by every dispatch site in the tree (the old
  // flat_lru.h scan dispatcher ran its own __builtin_cpu_supports call).
  // AVX2 and FMA are queried together: the dense kernels assume both bits
  // travel as a pair, and refusing the odd hypothetical AVX2-without-FMA
  // part costs nothing but a scalar fallback.
  if (__builtin_cpu_supports("avx2") != 0 &&
      __builtin_cpu_supports("fma") != 0) {
    return SimdTier::kAvx2Fma;
  }
#endif
  return SimdTier::kScalar;
}

bool ForceScalarFromEnv() {
  const char* value = std::getenv("HUNTER_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

SimdTier HardwareSimdTier() {
  static const SimdTier tier = DetectHardwareTier();
  return tier;
}

SimdTier ActiveSimdTier() {
  const int pinned = g_tier_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<SimdTier>(pinned);
  // The environment is consulted once; a process is either forced-scalar
  // for its whole life (the force_scalar ctest label) or not at all.
  static const bool force_scalar = ForceScalarFromEnv();
  if (force_scalar) return SimdTier::kScalar;
  return HardwareSimdTier();
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2Fma:
      return "avx2+fma";
    case SimdTier::kScalar:
      break;
  }
  return "scalar";
}

void SetSimdTierForTesting(SimdTier tier) {
  if (static_cast<int>(tier) > static_cast<int>(HardwareSimdTier())) {
    tier = HardwareSimdTier();
  }
  g_tier_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearSimdTierForTesting() {
  g_tier_override.store(-1, std::memory_order_relaxed);
}

}  // namespace hunter::common
