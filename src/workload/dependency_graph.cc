#include "workload/dependency_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace hunter::workload {

std::vector<TracedTransaction> GenerateTrace(size_t num_txns,
                                             uint64_t row_space,
                                             double zipf_theta,
                                             double reads_per_txn,
                                             double writes_per_txn,
                                             common::Rng* rng) {
  std::vector<TracedTransaction> trace(num_txns);
  for (size_t i = 0; i < num_txns; ++i) {
    trace[i].id = i;
    const int reads = static_cast<int>(std::max(
        0.0, std::round(reads_per_txn + rng->Gaussian(0.0, 1.0))));
    const int writes = static_cast<int>(std::max(
        0.0, std::round(writes_per_txn + rng->Gaussian(0.0, 0.7))));
    trace[i].read_set.reserve(static_cast<size_t>(reads));
    for (int r = 0; r < reads; ++r) {
      trace[i].read_set.push_back(rng->Zipf(row_space, zipf_theta));
    }
    trace[i].write_set.reserve(static_cast<size_t>(writes));
    for (int w = 0; w < writes; ++w) {
      trace[i].write_set.push_back(rng->Zipf(row_space, zipf_theta));
    }
  }
  return trace;
}

TxnDependencyGraph::TxnDependencyGraph(
    const std::vector<TracedTransaction>& trace) {
  const size_t n = trace.size();
  children_.assign(n, {});
  parents_count_.assign(n, 0);

  // last_writer[row] = most recent transaction that wrote `row`;
  // readers_since[row] = transactions that read it after that write.
  std::unordered_map<uint64_t, uint32_t> last_writer;
  std::unordered_map<uint64_t, std::vector<uint32_t>> readers_since;

  auto add_edge = [&](uint32_t from, uint32_t to,
                      std::unordered_set<uint32_t>* seen) {
    if (from == to) return;
    if (!seen->insert(from).second) return;  // dedupe parents of `to`
    children_[from].push_back(to);
    ++parents_count_[to];
    ++num_edges_;
  };

  for (uint32_t i = 0; i < n; ++i) {
    std::unordered_set<uint32_t> parents;
    // WR / WW conflicts: depend on the last writer of every touched row.
    for (uint64_t row : trace[i].read_set) {
      auto writer = last_writer.find(row);
      if (writer != last_writer.end()) add_edge(writer->second, i, &parents);
    }
    for (uint64_t row : trace[i].write_set) {
      auto writer = last_writer.find(row);
      if (writer != last_writer.end()) add_edge(writer->second, i, &parents);
      // RW anti-dependencies: readers since the last write must precede us.
      auto readers = readers_since.find(row);
      if (readers != readers_since.end()) {
        for (uint32_t reader : readers->second) add_edge(reader, i, &parents);
      }
    }
    // Register this transaction's accesses.
    for (uint64_t row : trace[i].write_set) {
      last_writer[row] = i;
      readers_since[row].clear();
    }
    for (uint64_t row : trace[i].read_set) {
      readers_since[row].push_back(i);
    }
  }
}

std::vector<std::vector<uint32_t>> TxnDependencyGraph::WaveSchedule() const {
  const size_t n = parents_count_.size();
  std::vector<size_t> depth(n, 0);
  std::vector<size_t> remaining = parents_count_;
  std::vector<uint32_t> frontier;
  for (uint32_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) frontier.push_back(i);
  }
  // Kahn's algorithm computing longest-path depth per node.
  std::vector<std::vector<uint32_t>> waves;
  std::vector<uint32_t> queue = frontier;
  size_t processed = 0;
  while (!queue.empty()) {
    std::vector<uint32_t> next;
    for (uint32_t node : queue) {
      if (depth[node] >= waves.size()) waves.resize(depth[node] + 1);
      waves[depth[node]].push_back(node);
      ++processed;
      for (uint32_t child : children_[node]) {
        depth[child] = std::max(depth[child], depth[node] + 1);
        if (--remaining[child] == 0) next.push_back(child);
      }
    }
    queue.swap(next);
  }
  (void)processed;  // construction guarantees acyclicity (edges go forward)
  return waves;
}

double TxnDependencyGraph::EffectiveParallelism() const {
  const auto waves = WaveSchedule();
  if (waves.empty()) return 0.0;
  return static_cast<double>(num_transactions()) /
         static_cast<double>(waves.size());
}

size_t TxnDependencyGraph::CriticalPathLength() const {
  return WaveSchedule().size();
}

}  // namespace hunter::workload
