#include "workload/dependency_graph.h"

#include <algorithm>
#include <cmath>

#include "common/flat_hash.h"

namespace hunter::workload {

std::vector<TracedTransaction> GenerateTrace(size_t num_txns,
                                             uint64_t row_space,
                                             double zipf_theta,
                                             double reads_per_txn,
                                             double writes_per_txn,
                                             common::Rng* rng) {
  std::vector<TracedTransaction> trace(num_txns);
  // One bound sampler for the whole trace: the constants are computed once
  // instead of being revalidated on every row draw. The draw sequence is
  // identical to the rng->Zipf(row_space, zipf_theta) calls it replaces.
  const common::ZipfTable rows(row_space, zipf_theta);
  for (size_t i = 0; i < num_txns; ++i) {
    trace[i].id = i;
    const int reads = static_cast<int>(std::max(
        0.0, std::round(reads_per_txn + rng->Gaussian(0.0, 1.0))));
    const int writes = static_cast<int>(std::max(
        0.0, std::round(writes_per_txn + rng->Gaussian(0.0, 0.7))));
    trace[i].read_set.resize(static_cast<size_t>(reads));
    rows.Fill(rng, trace[i].read_set.data(), trace[i].read_set.size());
    trace[i].write_set.resize(static_cast<size_t>(writes));
    rows.Fill(rng, trace[i].write_set.data(), trace[i].write_set.size());
  }
  return trace;
}

TxnDependencyGraph::TxnDependencyGraph(
    const std::vector<TracedTransaction>& trace) {
  const size_t n = trace.size();
  children_.assign(n, {});
  parents_count_.assign(n, 0);

  // last_writer[row] = most recent transaction that wrote `row`;
  // readers_since[row] = transactions that read it after that write.
  // Flat open-addressing maps: edge emission order depends only on point
  // lookups in trace order (no map iteration), so swapping the container
  // leaves the emitted edge list byte-identical — pinned by the golden
  // test against a std::map reference in tests/workload/workload_test.cc.
  common::FlatHashMap64<uint32_t> last_writer(n);
  common::FlatHashMap64<std::vector<uint32_t>> readers_since(n);

  // Parent dedupe via a monotone stamp (value i+1 marks "already a parent
  // of transaction i") instead of a per-transaction hash set.
  std::vector<uint32_t> parent_stamp(n, 0);

  auto add_edge = [&](uint32_t from, uint32_t to) {
    if (from == to) return;
    if (parent_stamp[from] == to + 1) return;  // dedupe parents of `to`
    parent_stamp[from] = to + 1;
    children_[from].push_back(to);
    ++parents_count_[to];
    ++num_edges_;
  };

  for (uint32_t i = 0; i < n; ++i) {
    // WR / WW conflicts: depend on the last writer of every touched row.
    for (uint64_t row : trace[i].read_set) {
      const uint32_t* writer = last_writer.Find(row);
      if (writer != nullptr) add_edge(*writer, i);
    }
    for (uint64_t row : trace[i].write_set) {
      const uint32_t* writer = last_writer.Find(row);
      if (writer != nullptr) add_edge(*writer, i);
      // RW anti-dependencies: readers since the last write must precede us.
      const std::vector<uint32_t>* readers = readers_since.Find(row);
      if (readers != nullptr) {
        for (uint32_t reader : *readers) add_edge(reader, i);
      }
    }
    // Register this transaction's accesses.
    for (uint64_t row : trace[i].write_set) {
      last_writer.At(row) = i;
      readers_since.At(row).clear();
    }
    for (uint64_t row : trace[i].read_set) {
      readers_since.At(row).push_back(i);
    }
  }
}

std::vector<std::vector<uint32_t>> TxnDependencyGraph::WaveSchedule() const {
  const size_t n = parents_count_.size();
  std::vector<size_t> depth(n, 0);
  std::vector<size_t> remaining = parents_count_;
  std::vector<uint32_t> frontier;
  for (uint32_t i = 0; i < n; ++i) {
    if (remaining[i] == 0) frontier.push_back(i);
  }
  // Kahn's algorithm computing longest-path depth per node.
  std::vector<std::vector<uint32_t>> waves;
  std::vector<uint32_t> queue = frontier;
  size_t processed = 0;
  while (!queue.empty()) {
    std::vector<uint32_t> next;
    for (uint32_t node : queue) {
      if (depth[node] >= waves.size()) waves.resize(depth[node] + 1);
      waves[depth[node]].push_back(node);
      ++processed;
      for (uint32_t child : children_[node]) {
        depth[child] = std::max(depth[child], depth[node] + 1);
        if (--remaining[child] == 0) next.push_back(child);
      }
    }
    queue.swap(next);
  }
  (void)processed;  // construction guarantees acyclicity (edges go forward)
  return waves;
}

double TxnDependencyGraph::EffectiveParallelism() const {
  const auto waves = WaveSchedule();
  if (waves.empty()) return 0.0;
  return static_cast<double>(num_transactions()) /
         static_cast<double>(waves.size());
}

size_t TxnDependencyGraph::CriticalPathLength() const {
  return WaveSchedule().size();
}

}  // namespace hunter::workload
