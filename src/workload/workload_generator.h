// The Actor's Workload Generator (§2.1): when the user does not request a
// standard benchmark, it captures queries from the user's instance over a
// time window and builds a replayable workload. Here the capture is a
// synthetic trace; the generator derives the replay profile's effective
// parallelism from the transactions-dependency graph, exactly the mechanism
// the paper proposes to beat arrival-order replay.

#ifndef HUNTER_WORKLOAD_WORKLOAD_GENERATOR_H_
#define HUNTER_WORKLOAD_WORKLOAD_GENERATOR_H_

#include <cstddef>

#include "cdb/workload_profile.h"
#include "common/rng.h"
#include "workload/dependency_graph.h"

namespace hunter::workload {

struct CaptureWindow {
  size_t num_txns = 4000;     // transactions captured in the window
  uint64_t row_space = 3000000;
  double zipf_theta = 0.85;
  double reads_per_txn = 5.0;
  double writes_per_txn = 5.0;
};

struct GeneratedWorkload {
  cdb::WorkloadProfile profile;
  double dag_parallelism = 0.0;       // mean wave width
  double arrival_order_parallelism = 1.0;  // the naive replay baseline
  size_t critical_path = 0;
};

class WorkloadGenerator {
 public:
  // Captures a window from the (synthetic) user instance and builds the
  // replay profile. `base` supplies the per-op costs and data volume; the
  // DAG supplies max_replay_parallelism.
  static GeneratedWorkload Build(const cdb::WorkloadProfile& base,
                                 const CaptureWindow& window,
                                 common::Rng* rng);
};

}  // namespace hunter::workload

#endif  // HUNTER_WORKLOAD_WORKLOAD_GENERATOR_H_
