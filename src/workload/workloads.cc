#include "workload/workloads.h"

namespace hunter::workload {

using cdb::WorkloadProfile;

namespace {

WorkloadProfile SysbenchBase() {
  WorkloadProfile profile;
  profile.data_size_gb = 8.0;        // 8 tables x 8M rows (Table 2)
  profile.client_threads = 512;
  profile.scan_fraction = 0.08;      // range SELECTs in the oltp mix
  profile.zipf_theta = 0.65;
  profile.ops_per_txn = 18.0;        // 10 point reads, 4 ranges, 4 writes
  profile.hot_rows = 64000000;       // 8 x 8M rows; uniform writes conflict rarely
  profile.hot_writes_per_txn = 4.0;
  profile.lock_zipf_theta = 0.2;
  profile.cpu_ms_per_op = 0.085;     // light point accesses
  profile.redo_kb_per_txn = 3.0;
  return profile;
}

}  // namespace

WorkloadProfile SysbenchReadOnly() {
  WorkloadProfile profile = SysbenchBase();
  profile.name = "sysbench_ro";
  profile.read_fraction = 1.0;
  profile.write_rows_per_txn = 0.0;
  profile.redo_kb_per_txn = 0.05;
  return profile;
}

WorkloadProfile SysbenchWriteOnly() {
  WorkloadProfile profile = SysbenchBase();
  profile.name = "sysbench_wo";
  profile.read_fraction = 0.0;
  profile.scan_fraction = 0.0;
  profile.ops_per_txn = 10.0;
  profile.write_rows_per_txn = 8.0;
  profile.redo_kb_per_txn = 5.0;
  return profile;
}

WorkloadProfile SysbenchReadWrite() { return SysbenchReadWriteRatio(1.0); }

WorkloadProfile SysbenchReadWriteRatio(double reads_per_write) {
  WorkloadProfile profile = SysbenchBase();
  profile.name = "sysbench_rw_" + std::to_string(reads_per_write) + ":1";
  profile.read_fraction = reads_per_write / (reads_per_write + 1.0);
  profile.write_rows_per_txn =
      profile.ops_per_txn * (1.0 - profile.read_fraction) * 0.8;
  profile.redo_kb_per_txn = 1.0 + 4.0 * (1.0 - profile.read_fraction);
  return profile;
}

WorkloadProfile Tpcc() {
  WorkloadProfile profile;
  profile.name = "tpcc";
  profile.data_size_gb = 8.97;      // 50 warehouses (Table 2)
  profile.client_threads = 32;
  profile.read_fraction = 19.0 / 29.0;  // R/W 19:10
  profile.scan_fraction = 0.12;     // stock-level / order-status scans
  profile.zipf_theta = 0.75;        // warehouse/district locality
  profile.ops_per_txn = 32.0;       // NewOrder-dominated mix
  profile.write_rows_per_txn = 10.0;
  profile.cpu_ms_per_op = 0.22;     // heavier statements (joins, sums)
  profile.redo_kb_per_txn = 6.0;
  // District rows are the classic TPC-C conflict hot spot: one district
  // update per NewOrder, spread uniformly over 50x10 district rows.
  profile.hot_rows = 50 * 10;
  profile.hot_writes_per_txn = 1.2;
  profile.lock_zipf_theta = 0.0;
  return profile;
}

WorkloadProfile Production(bool morning) {
  WorkloadProfile profile;
  profile.name = morning ? "production_9am" : "production_9pm";
  profile.data_size_gb = 256.0;     // 222 tables, ~250 GB (Table 2)
  profile.client_threads = 128;     // replay concurrency bound (DAG waves)
  profile.read_fraction = morning ? 20.0 / 49.0 : 14.0 / 49.0;
  profile.scan_fraction = morning ? 0.10 : 0.05;
  profile.zipf_theta = morning ? 0.85 : 0.78;
  profile.ops_per_txn = 12.0;
  profile.write_rows_per_txn = morning ? 5.0 : 7.5;
  profile.hot_rows = 3000000;
  profile.hot_writes_per_txn = 2.0;
  profile.lock_zipf_theta = 0.5;
  profile.cpu_ms_per_op = 0.05;
  profile.redo_kb_per_txn = morning ? 4.0 : 6.0;
  profile.max_replay_parallelism = morning ? 96.0 : 80.0;
  return profile;
}

std::vector<WorkloadProfile> AllStandardWorkloads() {
  return {SysbenchReadOnly(), SysbenchReadWrite(), SysbenchWriteOnly(), Tpcc(),
          Production(true)};
}

WorkloadProfile ScaleDataSize(const WorkloadProfile& base, double factor) {
  WorkloadProfile scaled = base;
  scaled.data_size_gb *= factor;
  scaled.hot_rows = static_cast<uint64_t>(
      static_cast<double>(scaled.hot_rows) * factor);
  scaled.name = base.name + "_x" + std::to_string(factor);
  return scaled;
}

}  // namespace hunter::workload
