// The five workloads of the paper's Table 2 (Sysbench RO/RW/WO, TPC-C,
// Production) expressed as engine-facing profiles, plus the Sysbench RW
// (4:1) variant of §6.4 and the drifted 9 pm Production workload of Fig. 10.
//
// | Name      | Sysbench RO/RW/WO | TPC-C  | Production |
// | Size (GB) | 8 / 8 / 8         | 8.97   | 256        |
// | #Thread   | 512               | 32     | (replay)   |
// | R/W ratio | 1:0 / 1:1 / 0:1   | 19:10  | 20:29      |

#ifndef HUNTER_WORKLOAD_WORKLOADS_H_
#define HUNTER_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "cdb/workload_profile.h"

namespace hunter::workload {

cdb::WorkloadProfile SysbenchReadOnly();
cdb::WorkloadProfile SysbenchWriteOnly();
cdb::WorkloadProfile SysbenchReadWrite();          // 1:1
cdb::WorkloadProfile SysbenchReadWriteRatio(double reads_per_write);
cdb::WorkloadProfile Tpcc();
// The real-world education workload, replayed from a captured window.
// `morning` selects the 9:00 am capture; false selects the drifted 9:00 pm
// capture (more write-heavy, different skew) used in Fig. 10(b).
cdb::WorkloadProfile Production(bool morning);

// All benchmark workloads keyed by the names used in the paper's figures.
std::vector<cdb::WorkloadProfile> AllStandardWorkloads();

// Scales a workload's data volume by `factor` (the §5 warm-up discussion
// scales Sysbench by 10x).
cdb::WorkloadProfile ScaleDataSize(const cdb::WorkloadProfile& base,
                                   double factor);

}  // namespace hunter::workload

#endif  // HUNTER_WORKLOAD_WORKLOADS_H_
