#include "workload/workload_generator.h"

#include <algorithm>

namespace hunter::workload {

GeneratedWorkload WorkloadGenerator::Build(const cdb::WorkloadProfile& base,
                                           const CaptureWindow& window,
                                           common::Rng* rng) {
  GeneratedWorkload generated;
  const std::vector<TracedTransaction> trace =
      GenerateTrace(window.num_txns, window.row_space, window.zipf_theta,
                    window.reads_per_txn, window.writes_per_txn, rng);
  const TxnDependencyGraph graph(trace);

  generated.profile = base;
  generated.profile.name = base.name + "_replay";
  generated.dag_parallelism = graph.EffectiveParallelism();
  generated.critical_path = graph.CriticalPathLength();
  generated.profile.max_replay_parallelism =
      std::max(1.0, generated.dag_parallelism);
  generated.profile.zipf_theta = window.zipf_theta;
  const double total_ops = window.reads_per_txn + window.writes_per_txn;
  if (total_ops > 0.0) {
    generated.profile.read_fraction = window.reads_per_txn / total_ops;
    generated.profile.ops_per_txn = total_ops;
    generated.profile.write_rows_per_txn = window.writes_per_txn;
  }
  generated.profile.hot_rows = window.row_space;
  return generated;
}

}  // namespace hunter::workload
