// Transactions-dependency-graph replay (§2.1, Figure 3).
//
// Replaying a captured production workload strictly in arrival order yields
// low concurrency. HUNTER instead builds a DAG whose edges are conflicts
// between transactions (ordered by original commit sequence) and replays a
// transaction as soon as all its parents finished. This module implements
// trace capture (synthetic), conflict detection over read/write sets, DAG
// construction, topological wave scheduling, and the resulting effective
// parallelism — which feeds the engine profile's max_replay_parallelism.

#ifndef HUNTER_WORKLOAD_DEPENDENCY_GRAPH_H_
#define HUNTER_WORKLOAD_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace hunter::workload {

struct TracedTransaction {
  uint64_t id = 0;
  std::vector<uint64_t> read_set;   // row ids read
  std::vector<uint64_t> write_set;  // row ids written
};

// Generates a synthetic captured trace (the Workload Generator's "collect
// queries from the user's instance in a time window" step) with Zipfian row
// choice over `row_space`.
std::vector<TracedTransaction> GenerateTrace(size_t num_txns,
                                             uint64_t row_space,
                                             double zipf_theta,
                                             double reads_per_txn,
                                             double writes_per_txn,
                                             common::Rng* rng);

class TxnDependencyGraph {
 public:
  // Builds the conflict DAG. Two transactions conflict when one writes a row
  // the other reads or writes; the edge points from the earlier transaction
  // to the later one, so the graph is acyclic by construction.
  explicit TxnDependencyGraph(const std::vector<TracedTransaction>& trace);

  size_t num_transactions() const { return parents_count_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Children of transaction `i` (transactions that must wait for it).
  const std::vector<uint32_t>& children(size_t i) const { return children_[i]; }
  size_t parent_count(size_t i) const { return parents_count_[i]; }

  // Topological wave schedule: wave k holds every transaction whose longest
  // parent chain has length k. All transactions within a wave can run
  // concurrently (Fig. 3: wave 0 = {A1, A2}, wave 1 = {B1, B2, B3}, ...).
  std::vector<std::vector<uint32_t>> WaveSchedule() const;

  // Mean wave width — the effective replay parallelism the DAG permits.
  double EffectiveParallelism() const;

  // Length of the longest dependency chain (the replay's critical path).
  size_t CriticalPathLength() const;

 private:
  std::vector<std::vector<uint32_t>> children_;
  std::vector<size_t> parents_count_;
  size_t num_edges_ = 0;
};

}  // namespace hunter::workload

#endif  // HUNTER_WORKLOAD_DEPENDENCY_GRAPH_H_
