// Uniform random search and Latin-Hypercube search — the naive samplers the
// paper contrasts GA against in Figure 5 (Random Sampling is also CDBTune's
// cold-start sampler).

#ifndef HUNTER_TUNERS_RANDOM_TUNER_H_
#define HUNTER_TUNERS_RANDOM_TUNER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/latin_hypercube.h"
#include "tuners/tuner.h"

namespace hunter::tuners {

class RandomTuner : public Tuner {
 public:
  RandomTuner(size_t dim, uint64_t seed) : dim_(dim), rng_(seed) {}

  std::string name() const override { return "Random"; }

  std::vector<std::vector<double>> Propose(size_t count) override {
    std::vector<std::vector<double>> proposals(count,
                                               std::vector<double>(dim_));
    for (auto& proposal : proposals) {
      for (double& v : proposal) v = rng_.Uniform();
    }
    return proposals;
  }

  void Observe(const std::vector<controller::Sample>&) override {}

 private:
  size_t dim_;
  common::Rng rng_;
};

class LhsTuner : public Tuner {
 public:
  LhsTuner(size_t dim, size_t block, uint64_t seed)
      : dim_(dim), block_(block), rng_(seed) {}

  std::string name() const override { return "LHS"; }

  std::vector<std::vector<double>> Propose(size_t count) override {
    std::vector<std::vector<double>> proposals;
    while (proposals.size() < count) {
      if (pending_.empty()) {
        pending_ = ml::LatinHypercube(block_, dim_, &rng_);
      }
      proposals.push_back(pending_.back());
      pending_.pop_back();
    }
    return proposals;
  }

  void Observe(const std::vector<controller::Sample>&) override {}

 private:
  size_t dim_;
  size_t block_;
  common::Rng rng_;
  std::vector<std::vector<double>> pending_;
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_RANDOM_TUNER_H_
