#include "tuners/tuner.h"

namespace hunter::tuners {

TuningResult RunTuning(Tuner* tuner, controller::Controller* controller,
                       const HarnessOptions& options) {
  TuningResult result;
  result.tuner_name = tuner->name();
  result.best_sample.fitness = -std::numeric_limits<double>::infinity();
  tuner->BindObservability(&controller->journal());
  controller->DefaultPerformance();  // charge baseline measurement up front

  const size_t batch = static_cast<size_t>(controller->num_clones());
  while (controller->clock().hours() < options.budget_hours) {
    const std::vector<std::vector<double>> proposals = tuner->Propose(batch);
    if (proposals.empty()) break;
    const std::vector<controller::Sample> samples =
        controller->EvaluateBatch(proposals);
    controller->ChargeModelTime(tuner->ModelStepSeconds());
    tuner->Observe(samples);
    result.steps += samples.size();

    for (const controller::Sample& sample : samples) {
      if (sample.evaluation_failed) ++result.failed_samples;
      if (sample.boot_failed) continue;
      if (sample.fitness > result.best_sample.fitness) {
        result.best_sample = sample;
      }
      result.best_throughput =
          std::max(result.best_throughput, sample.throughput_tps);
      result.best_latency =
          std::min(result.best_latency, sample.latency_p95_ms);
    }
    CurvePoint point;
    point.hours = controller->clock().hours();
    point.best_throughput = result.best_throughput;
    point.best_latency = result.best_latency;
    point.best_fitness = result.best_sample.fitness;
    result.curve.push_back(point);

    if (options.target_throughput > 0.0 &&
        result.best_throughput >= options.target_throughput) {
      break;
    }
  }

  // Recommendation time: first moment the curve reaches the tolerance band
  // around the final best throughput.
  result.recommendation_hours =
      result.curve.empty() ? 0.0 : result.curve.back().hours;
  for (const CurvePoint& point : result.curve) {
    if (point.best_throughput >=
        options.recommendation_tolerance * result.best_throughput) {
      result.recommendation_hours = point.hours;
      break;
    }
  }
  return result;
}

}  // namespace hunter::tuners
