// ResTune (Zhang et al., SIGMOD'21), approximated at its core: Bayesian
// optimization whose surrogate blends a target GP with base GPs learned on
// historical workloads, weighted by how well each base model ranks the
// target's observations (an RGPE-style meta-learner). Under the paper's
// §6.1 protocol every tuner starts with no prior knowledge, so the ensemble
// starts empty and ResTune behaves like constrained BO; historical models
// can be registered to exercise the meta path (used by tests and the
// model-reuse experiments).

#ifndef HUNTER_TUNERS_RESTUNE_H_
#define HUNTER_TUNERS_RESTUNE_H_

#include <memory>
#include <string>
#include <vector>

#include "tuners/ottertune.h"

namespace hunter::tuners {

class ResTuneTuner : public OtterTuneTuner {
 public:
  ResTuneTuner(size_t dim, const OtterTuneOptions& options, uint64_t seed)
      : OtterTuneTuner(dim, options, seed) {}

  std::string name() const override { return "ResTune"; }

  // Registers a surrogate trained on a historical workload, with the
  // feature vector of that workload for similarity weighting.
  void AddHistoricalModel(std::shared_ptr<ml::GaussianProcess> model,
                          std::vector<double> workload_features);

  // Sets the current workload's features (for similarity weighting).
  void SetWorkloadFeatures(std::vector<double> features) {
    target_features_ = std::move(features);
  }

 protected:
  double Acquisition(const std::vector<double>& candidate) const override;
  void AcquisitionBatch(const linalg::Matrix& candidates,
                        std::vector<double>* scores) const override;

 private:
  struct BaseModel {
    std::shared_ptr<ml::GaussianProcess> gp;
    std::vector<double> features;
  };
  double WorkloadSimilarity(const BaseModel& base) const;

  std::vector<BaseModel> base_models_;
  std::vector<double> target_features_;

  // Batch-scoring scratch, reused across Propose calls.
  mutable std::vector<double> base_scores_;
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_RESTUNE_H_
