#include "tuners/bestconfig.h"

#include <algorithm>
#include <limits>

#include "ml/latin_hypercube.h"

namespace hunter::tuners {

BestConfigTuner::BestConfigTuner(size_t dim, const BestConfigOptions& options,
                                 uint64_t seed)
    : dim_(dim),
      options_(options),
      rng_(seed),
      lower_(dim, 0.0),
      upper_(dim, 1.0),
      round_best_fitness_(-std::numeric_limits<double>::infinity()),
      global_best_fitness_(-std::numeric_limits<double>::infinity()) {
  StartRound();
}

void BestConfigTuner::StartRound() {
  // Divide-and-diverge: Latin Hypercube over the current bounds.
  pending_ = ml::LatinHypercube(options_.round_size, dim_, &rng_);
  for (auto& sample : pending_) {
    for (size_t d = 0; d < dim_; ++d) {
      sample[d] = lower_[d] + sample[d] * (upper_[d] - lower_[d]);
    }
  }
  round_best_fitness_ = -std::numeric_limits<double>::infinity();
  observed_in_round_ = 0;
}

std::vector<std::vector<double>> BestConfigTuner::Propose(size_t count) {
  std::vector<std::vector<double>> proposals;
  while (proposals.size() < count) {
    if (pending_.empty()) StartRound();
    proposals.push_back(pending_.back());
    pending_.pop_back();
  }
  return proposals;
}

void BestConfigTuner::Observe(
    const std::vector<controller::Sample>& samples) {
  for (const controller::Sample& sample : samples) {
    ++observed_in_round_;
    if (sample.boot_failed) continue;
    if (sample.fitness > round_best_fitness_) {
      round_best_fitness_ = sample.fitness;
      round_best_knobs_ = sample.knobs;
    }
  }
  if (observed_in_round_ < options_.round_size || round_best_knobs_.empty()) {
    return;
  }

  // Round complete: recursive bound-and-search.
  if (round_best_fitness_ > global_best_fitness_) {
    global_best_fitness_ = round_best_fitness_;
    have_best_ = true;
    // Shrink bounds around the new best point.
    double width = 0.0;
    for (size_t d = 0; d < dim_; ++d) {
      const double half =
          0.5 * (upper_[d] - lower_[d]) * options_.shrink_factor;
      lower_[d] = std::clamp(round_best_knobs_[d] - half, 0.0, 1.0);
      upper_[d] = std::clamp(round_best_knobs_[d] + half, 0.0, 1.0);
      width = std::max(width, upper_[d] - lower_[d]);
    }
    if (width < options_.min_width) {
      lower_.assign(dim_, 0.0);
      upper_.assign(dim_, 1.0);
    }
  } else {
    // No improvement: diverge — restart from the full space but keep the
    // incumbent best (the harness tracks best-so-far).
    lower_.assign(dim_, 0.0);
    upper_.assign(dim_, 1.0);
  }
  StartRound();
}

}  // namespace hunter::tuners
