// BestConfig (Zhu et al., SoCC'17): divide-and-diverge sampling plus
// recursive bound-and-search. Each round Latin-Hypercube-samples the current
// bounded subspace; the next round re-centers and shrinks the bounds around
// the best sample found so far, restarting from the full space when a round
// brings no improvement.

#ifndef HUNTER_TUNERS_BESTCONFIG_H_
#define HUNTER_TUNERS_BESTCONFIG_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "tuners/tuner.h"

namespace hunter::tuners {

struct BestConfigOptions {
  size_t round_size = 150;    // samples per divide-and-diverge round
  double shrink_factor = 0.85; // bound shrink per recursive round
  double min_width = 0.02;    // narrowest bound before restarting
};

class BestConfigTuner : public Tuner {
 public:
  BestConfigTuner(size_t dim, const BestConfigOptions& options, uint64_t seed);

  std::string name() const override { return "BestConfig"; }
  std::vector<std::vector<double>> Propose(size_t count) override;
  void Observe(const std::vector<controller::Sample>& samples) override;

 private:
  void StartRound();

  size_t dim_;
  BestConfigOptions options_;
  common::Rng rng_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::vector<double>> pending_;
  std::vector<double> round_best_knobs_;
  double round_best_fitness_;
  double global_best_fitness_;
  bool have_best_ = false;
  size_t observed_in_round_ = 0;
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_BESTCONFIG_H_
