// OtterTune-style Bayesian optimization (Van Aken et al., SIGMOD'17):
// a Gaussian-process surrogate over (normalized knobs -> Equation-1 fitness)
// with Expected-Improvement acquisition maximized over random + local
// candidate sets. The real system also maps workloads against a repository
// of past tunings; per the paper's §6.1 protocol every method starts with no
// prior knowledge, so the mapping step is vacuous here and omitted.

#ifndef HUNTER_TUNERS_OTTERTUNE_H_
#define HUNTER_TUNERS_OTTERTUNE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "ml/gaussian_process.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "tuners/tuner.h"

namespace hunter::tuners {

struct OtterTuneOptions {
  size_t initial_samples = 30;   // LHS bootstrap before the GP takes over
  size_t candidates = 200;       // random EI candidates per proposal
  size_t local_candidates = 0;   // optional perturbations of the incumbent
  double local_sigma = 0.15;
  size_t max_train_samples = 120;  // GP training-set cap (keep refits fast)
  ml::GpOptions gp;
};

class OtterTuneTuner : public Tuner {
 public:
  OtterTuneTuner(size_t dim, const OtterTuneOptions& options, uint64_t seed);

  std::string name() const override { return "OtterTune"; }
  std::vector<std::vector<double>> Propose(size_t count) override;
  void Observe(const std::vector<controller::Sample>& samples) override;
  void BindObservability(obs::Journal* journal) override;

 protected:
  // ResTune subclasses this and biases the acquisition.
  virtual double Acquisition(const std::vector<double>& candidate) const;

  // Scores one candidate per row of `candidates` into `scores` (resized).
  // Propose uses this — the whole EI candidate set is scored in one
  // GEMM-backed pass instead of per-candidate kernel loops. The base
  // implementation matches Acquisition row-for-row; ResTune overrides both
  // consistently.
  virtual void AcquisitionBatch(const linalg::Matrix& candidates,
                                std::vector<double>* scores) const;

  size_t dim_;
  OtterTuneOptions options_;
  common::Rng rng_;
  ml::GaussianProcess gp_;
  std::vector<std::vector<double>> observed_knobs_;
  std::vector<double> observed_fitness_;
  std::vector<double> best_knobs_;
  double best_fitness_;
  std::vector<std::vector<double>> pending_initial_;

 private:
  void RefitGp();

  // Candidate-scoring scratch, reused across Propose calls.
  linalg::Matrix candidate_matrix_;
  std::vector<double> candidate_scores_;

  // GP refit observability (null when unbound).
  obs::Counter* gp_full_refit_counter_ = nullptr;
  obs::Counter* gp_incremental_counter_ = nullptr;
  uint64_t last_full_refits_ = 0;
  uint64_t last_incremental_updates_ = 0;
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_OTTERTUNE_H_
