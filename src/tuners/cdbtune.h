// CDBTune (Zhang et al., SIGMOD'19): end-to-end DDPG over the full
// (63-metric state, 65-knob action) space with OU exploration noise and no
// warm start — the paper's Figure 1 cold-start baseline and the "DDPG-only"
// row of the ablation tables.
//
// QTune (Li et al., VLDB'19) is implemented as a variant whose state vector
// is augmented with query/workload features (the DS-DDPG idea of feeding
// the agent workload awareness).

#ifndef HUNTER_TUNERS_CDBTUNE_H_
#define HUNTER_TUNERS_CDBTUNE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/ddpg.h"
#include "ml/ou_noise.h"
#include "tuners/tuner.h"

namespace hunter::tuners {

struct CdbTuneOptions {
  ml::DdpgOptions ddpg;           // state_dim/action_dim filled by the tuner
  double noise_sigma_start = 0.5;
  double noise_sigma_end = 0.10;
  double noise_decay_steps = 1500; // steps to anneal exploration
  int train_steps_per_sample = 2;
  size_t random_warmup = 400;     // cold-start exploration before the policy acts
};

class CdbTuneTuner : public Tuner {
 public:
  // `workload_features` is empty for CDBTune; QTune passes features.
  CdbTuneTuner(size_t num_metrics, size_t num_knobs,
               std::vector<double> workload_features,
               const CdbTuneOptions& options, uint64_t seed,
               std::string display_name = "CDBTune");

  std::string name() const override { return display_name_; }
  std::vector<std::vector<double>> Propose(size_t count) override;
  void Observe(const std::vector<controller::Sample>& samples) override;

  ml::Ddpg& agent() { return *agent_; }

 private:
  std::vector<double> EncodeState(const std::vector<double>& metrics) const;
  void UpdateNormalization(const std::vector<double>& metrics);
  double CurrentSigma() const;

  std::string display_name_;
  size_t num_metrics_;
  std::vector<double> workload_features_;
  CdbTuneOptions options_;
  common::Rng rng_;
  std::unique_ptr<ml::Ddpg> agent_;
  ml::OuNoise noise_;
  // Running metric normalization (Welford).
  std::vector<double> metric_mean_;
  std::vector<double> metric_m2_;
  size_t metric_count_ = 0;
  std::vector<double> state_;              // current encoded state
  std::vector<std::vector<double>> last_actions_;
  size_t steps_ = 0;
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_CDBTUNE_H_
