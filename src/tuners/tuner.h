// Common interface for all tuning strategies (HUNTER and the baselines it
// is compared against in §6) plus the harness that drives a tuner against a
// Controller under a wall-clock (simulated) time budget, recording the
// best-so-far performance curve the paper's figures plot.

#ifndef HUNTER_TUNERS_TUNER_H_
#define HUNTER_TUNERS_TUNER_H_

#include <limits>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "controller/sample.h"

namespace hunter::tuners {

class Tuner {
 public:
  virtual ~Tuner() = default;

  virtual std::string name() const = 0;

  // Proposes `count` normalized configurations to stress-test next.
  virtual std::vector<std::vector<double>> Propose(size_t count) = 0;

  // Feeds back the measured samples for the proposed configurations.
  virtual void Observe(const std::vector<controller::Sample>& samples) = 0;

  // Simulated tuner-side cost per step (model update + recommendation).
  // Defaults follow the paper's Table 1 (71 ms + 2.57 ms).
  virtual double ModelStepSeconds() const { return 0.071 + 0.00257; }

  // Hands the tuner the run journal so it can register its metric series
  // and emit events (GA generations, search-space refreshes, train steps).
  // Called once by RunTuning before the first Propose; `journal` outlives
  // the tuning run. Default: the tuner is unobserved.
  virtual void BindObservability(obs::Journal* journal) { (void)journal; }
};

// One point on a tuning curve: the best performance seen by time `hours`.
struct CurvePoint {
  double hours = 0.0;
  double best_throughput = 0.0;
  double best_latency = std::numeric_limits<double>::infinity();
  double best_fitness = -std::numeric_limits<double>::infinity();
};

struct TuningResult {
  std::string tuner_name;
  std::vector<CurvePoint> curve;           // best-so-far over time
  controller::Sample best_sample;
  double best_throughput = 0.0;
  double best_latency = std::numeric_limits<double>::infinity();
  // Earliest time at which the tuner reached within `recommendation
  // tolerance` of its final best throughput ("recommendation time", §6).
  double recommendation_hours = 0.0;
  size_t steps = 0;                        // configurations evaluated
  // Configurations the clone fleet gave up on after exhausting retries
  // (clamped like boot failures; excluded from the curve and best-so-far).
  size_t failed_samples = 0;
};

struct HarnessOptions {
  double budget_hours = 70.0;
  // Stop early once best throughput exceeds this (used by Fig. 12's
  // "terminate at 98% of HUNTER's best" rule); <= 0 disables.
  double target_throughput = 0.0;
  // Tolerance used to compute recommendation time from the curve.
  double recommendation_tolerance = 0.95;
};

// Runs `tuner` against `controller` until the simulated budget elapses,
// proposing `controller->num_clones()` configurations per round.
TuningResult RunTuning(Tuner* tuner, controller::Controller* controller,
                       const HarnessOptions& options);

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_TUNER_H_
