#include "tuners/ottertune.h"

#include <algorithm>
#include <limits>

#include "ml/latin_hypercube.h"

namespace hunter::tuners {

OtterTuneTuner::OtterTuneTuner(size_t dim, const OtterTuneOptions& options,
                               uint64_t seed)
    : dim_(dim),
      options_(options),
      rng_(seed),
      gp_(options.gp),
      best_fitness_(-std::numeric_limits<double>::infinity()) {
  pending_initial_ = ml::LatinHypercube(options.initial_samples, dim_, &rng_);
}

std::vector<std::vector<double>> OtterTuneTuner::Propose(size_t count) {
  std::vector<std::vector<double>> proposals;
  while (proposals.size() < count && !pending_initial_.empty()) {
    proposals.push_back(pending_initial_.back());
    pending_initial_.pop_back();
  }
  while (proposals.size() < count) {
    if (!gp_.fitted()) {
      // GP not trained yet (all initial samples still in flight): random.
      std::vector<double> random(dim_);
      for (double& v : random) v = rng_.Uniform();
      proposals.push_back(std::move(random));
      continue;
    }
    // Maximize the acquisition over random + local candidates.
    std::vector<double> best_candidate(dim_, 0.5);
    double best_score = -std::numeric_limits<double>::infinity();
    auto consider = [&](std::vector<double> candidate) {
      const double score = Acquisition(candidate);
      if (score > best_score) {
        best_score = score;
        best_candidate = std::move(candidate);
      }
    };
    for (size_t c = 0; c < options_.candidates; ++c) {
      std::vector<double> candidate(dim_);
      for (double& v : candidate) v = rng_.Uniform();
      consider(std::move(candidate));
    }
    if (!best_knobs_.empty()) {
      for (size_t c = 0; c < options_.local_candidates; ++c) {
        std::vector<double> candidate = best_knobs_;
        for (double& v : candidate) {
          v = std::clamp(v + rng_.Gaussian(0.0, options_.local_sigma), 0.0,
                         1.0);
        }
        consider(std::move(candidate));
      }
    }
    proposals.push_back(best_candidate);
  }
  return proposals;
}

double OtterTuneTuner::Acquisition(const std::vector<double>& candidate) const {
  return gp_.ExpectedImprovement(candidate, best_fitness_);
}

void OtterTuneTuner::Observe(const std::vector<controller::Sample>& samples) {
  for (const controller::Sample& sample : samples) {
    observed_knobs_.push_back(sample.knobs);
    observed_fitness_.push_back(sample.fitness);
    if (!sample.boot_failed && sample.fitness > best_fitness_) {
      best_fitness_ = sample.fitness;
      best_knobs_ = sample.knobs;
    }
  }
  RefitGp();
}

void OtterTuneTuner::RefitGp() {
  if (observed_knobs_.empty()) return;
  // Train on the most recent window (plus always the incumbent best).
  const size_t n = std::min(options_.max_train_samples,
                            observed_knobs_.size());
  const size_t start = observed_knobs_.size() - n;
  linalg::Matrix x(n, dim_);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim_; ++d) {
      x.At(i, d) = observed_knobs_[start + i][d];
    }
    y[i] = observed_fitness_[start + i];
  }
  gp_.Fit(x, y);
}

}  // namespace hunter::tuners
