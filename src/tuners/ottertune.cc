#include "tuners/ottertune.h"

#include <algorithm>
#include <limits>

#include "ml/latin_hypercube.h"

namespace hunter::tuners {

OtterTuneTuner::OtterTuneTuner(size_t dim, const OtterTuneOptions& options,
                               uint64_t seed)
    : dim_(dim),
      options_(options),
      rng_(seed),
      gp_(options.gp),
      best_fitness_(-std::numeric_limits<double>::infinity()) {
  pending_initial_ = ml::LatinHypercube(options.initial_samples, dim_, &rng_);
}

std::vector<std::vector<double>> OtterTuneTuner::Propose(size_t count) {
  std::vector<std::vector<double>> proposals;
  while (proposals.size() < count && !pending_initial_.empty()) {
    proposals.push_back(pending_initial_.back());
    pending_initial_.pop_back();
  }
  while (proposals.size() < count) {
    if (!gp_.fitted()) {
      // GP not trained yet (all initial samples still in flight): random.
      std::vector<double> random(dim_);
      for (double& v : random) v = rng_.Uniform();
      proposals.push_back(std::move(random));
      continue;
    }
    // Maximize the acquisition over random + local candidates: draw the
    // whole candidate set first (the exact RNG order of the former
    // per-candidate loop), score it in one batch pass, then keep the first
    // maximum (strictly-greater comparison, as before).
    const size_t local = best_knobs_.empty() ? 0 : options_.local_candidates;
    const size_t total = options_.candidates + local;
    candidate_matrix_.Reshape(total, dim_);
    for (size_t c = 0; c < options_.candidates; ++c) {
      for (size_t d = 0; d < dim_; ++d) {
        candidate_matrix_.At(c, d) = rng_.Uniform();
      }
    }
    for (size_t c = 0; c < local; ++c) {
      for (size_t d = 0; d < dim_; ++d) {
        candidate_matrix_.At(options_.candidates + c, d) = std::clamp(
            best_knobs_[d] + rng_.Gaussian(0.0, options_.local_sigma), 0.0,
            1.0);
      }
    }
    AcquisitionBatch(candidate_matrix_, &candidate_scores_);
    std::vector<double> best_candidate(dim_, 0.5);
    double best_score = -std::numeric_limits<double>::infinity();
    size_t best_index = total;
    for (size_t c = 0; c < total; ++c) {
      if (candidate_scores_[c] > best_score) {
        best_score = candidate_scores_[c];
        best_index = c;
      }
    }
    if (best_index < total) {
      const linalg::RowSpan row = candidate_matrix_.RowView(best_index);
      best_candidate.assign(row.begin(), row.end());
    }
    proposals.push_back(std::move(best_candidate));
  }
  return proposals;
}

double OtterTuneTuner::Acquisition(const std::vector<double>& candidate) const {
  return gp_.ExpectedImprovement(candidate, best_fitness_);
}

void OtterTuneTuner::AcquisitionBatch(const linalg::Matrix& candidates,
                                      std::vector<double>* scores) const {
  gp_.ExpectedImprovementBatch(candidates, best_fitness_, scores);
}

void OtterTuneTuner::BindObservability(obs::Journal* journal) {
  gp_full_refit_counter_ =
      journal->registry()->RegisterCounter("tuner.gp_full_refits");
  gp_incremental_counter_ =
      journal->registry()->RegisterCounter("tuner.gp_incremental_refits");
}

void OtterTuneTuner::Observe(const std::vector<controller::Sample>& samples) {
  for (const controller::Sample& sample : samples) {
    observed_knobs_.push_back(sample.knobs);
    observed_fitness_.push_back(sample.fitness);
    if (!sample.boot_failed && sample.fitness > best_fitness_) {
      best_fitness_ = sample.fitness;
      best_knobs_ = sample.knobs;
    }
  }
  RefitGp();
}

void OtterTuneTuner::RefitGp() {
  if (observed_knobs_.empty()) return;
  // Train on the most recent window (plus always the incumbent best).
  const size_t n = std::min(options_.max_train_samples,
                            observed_knobs_.size());
  const size_t start = observed_knobs_.size() - n;
  linalg::Matrix x(n, dim_);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim_; ++d) {
      x.At(i, d) = observed_knobs_[start + i][d];
    }
    y[i] = observed_fitness_[start + i];
  }
  gp_.Fit(x, y);
  // Export the refit-kind counters as journal deltas. Observe runs on the
  // harness (coordination) thread, respecting the registry's threading
  // contract.
  if (gp_full_refit_counter_ != nullptr) {
    gp_full_refit_counter_->Increment(
        static_cast<double>(gp_.full_refits() - last_full_refits_));
    gp_incremental_counter_->Increment(static_cast<double>(
        gp_.incremental_updates() - last_incremental_updates_));
  }
  last_full_refits_ = gp_.full_refits();
  last_incremental_updates_ = gp_.incremental_updates();
}

}  // namespace hunter::tuners
