#include "tuners/restune.h"

#include <cmath>

namespace hunter::tuners {

void ResTuneTuner::AddHistoricalModel(
    std::shared_ptr<ml::GaussianProcess> model,
    std::vector<double> workload_features) {
  base_models_.push_back({std::move(model), std::move(workload_features)});
}

double ResTuneTuner::WorkloadSimilarity(const BaseModel& base) const {
  // RBF over workload-feature distance.
  double sq = 0.0;
  const size_t n = std::min(base.features.size(), target_features_.size());
  for (size_t i = 0; i < n; ++i) {
    const double d = base.features[i] - target_features_[i];
    sq += d * d;
  }
  return std::exp(-sq / 0.5);
}

double ResTuneTuner::Acquisition(const std::vector<double>& candidate) const {
  // Target EI as in OtterTune.
  double score = gp_.ExpectedImprovement(candidate, best_fitness_);
  if (base_models_.empty()) return score;

  // Blend in historical models, weighted by workload similarity. Historical
  // weight shrinks as target evidence grows.
  const double evidence = static_cast<double>(observed_fitness_.size());
  const double meta_weight = 1.0 / (1.0 + 0.1 * evidence);
  double meta_score = 0.0;
  double weight_sum = 0.0;
  for (const BaseModel& base : base_models_) {
    const double similarity = WorkloadSimilarity(base);
    meta_score +=
        similarity * base.gp->ExpectedImprovement(candidate, best_fitness_);
    weight_sum += similarity;
  }
  if (weight_sum > 1e-9) {
    score = (1.0 - meta_weight) * score +
            meta_weight * (meta_score / weight_sum);
  }
  return score;
}

void ResTuneTuner::AcquisitionBatch(const linalg::Matrix& candidates,
                                    std::vector<double>* scores) const {
  // Target EI for the whole candidate set in one batched pass.
  gp_.ExpectedImprovementBatch(candidates, best_fitness_, scores);
  if (base_models_.empty()) return;

  // One batched EI pass per base model, accumulated per candidate in base
  // order — the same per-candidate addition sequence as the scalar path.
  const double evidence = static_cast<double>(observed_fitness_.size());
  const double meta_weight = 1.0 / (1.0 + 0.1 * evidence);
  std::vector<double> meta_scores(candidates.rows(), 0.0);
  double weight_sum = 0.0;
  for (const BaseModel& base : base_models_) {
    const double similarity = WorkloadSimilarity(base);
    base.gp->ExpectedImprovementBatch(candidates, best_fitness_,
                                      &base_scores_);
    for (size_t c = 0; c < meta_scores.size(); ++c) {
      meta_scores[c] += similarity * base_scores_[c];
    }
    weight_sum += similarity;
  }
  if (weight_sum > 1e-9) {
    for (size_t c = 0; c < meta_scores.size(); ++c) {
      (*scores)[c] = (1.0 - meta_weight) * (*scores)[c] +
                     meta_weight * (meta_scores[c] / weight_sum);
    }
  }
}

}  // namespace hunter::tuners
