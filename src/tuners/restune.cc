#include "tuners/restune.h"

#include <cmath>

namespace hunter::tuners {

void ResTuneTuner::AddHistoricalModel(
    std::shared_ptr<ml::GaussianProcess> model,
    std::vector<double> workload_features) {
  base_models_.push_back({std::move(model), std::move(workload_features)});
}

double ResTuneTuner::Acquisition(const std::vector<double>& candidate) const {
  // Target EI as in OtterTune.
  double score = gp_.ExpectedImprovement(candidate, best_fitness_);
  if (base_models_.empty()) return score;

  // Blend in historical models, weighted by workload similarity (RBF over
  // feature distance). Historical weight shrinks as target evidence grows.
  const double evidence = static_cast<double>(observed_fitness_.size());
  const double meta_weight = 1.0 / (1.0 + 0.1 * evidence);
  double meta_score = 0.0;
  double weight_sum = 0.0;
  for (const BaseModel& base : base_models_) {
    double sq = 0.0;
    const size_t n = std::min(base.features.size(), target_features_.size());
    for (size_t i = 0; i < n; ++i) {
      const double d = base.features[i] - target_features_[i];
      sq += d * d;
    }
    const double similarity = std::exp(-sq / 0.5);
    meta_score +=
        similarity * base.gp->ExpectedImprovement(candidate, best_fitness_);
    weight_sum += similarity;
  }
  if (weight_sum > 1e-9) {
    score = (1.0 - meta_weight) * score +
            meta_weight * (meta_score / weight_sum);
  }
  return score;
}

}  // namespace hunter::tuners
