#include "tuners/cdbtune.h"

#include <algorithm>
#include <cmath>

namespace hunter::tuners {

CdbTuneTuner::CdbTuneTuner(size_t num_metrics, size_t num_knobs,
                           std::vector<double> workload_features,
                           const CdbTuneOptions& options, uint64_t seed,
                           std::string display_name)
    : display_name_(std::move(display_name)),
      num_metrics_(num_metrics),
      workload_features_(std::move(workload_features)),
      options_(options),
      rng_(seed),
      noise_(num_knobs, 0.15, options.noise_sigma_start),
      metric_mean_(num_metrics, 0.0),
      metric_m2_(num_metrics, 0.0) {
  options_.ddpg.state_dim = num_metrics + workload_features_.size();
  options_.ddpg.action_dim = num_knobs;
  agent_ = std::make_unique<ml::Ddpg>(options_.ddpg, &rng_);
  state_.assign(options_.ddpg.state_dim, 0.0);
  // Workload features are static; bake them into the initial state tail.
  std::copy(workload_features_.begin(), workload_features_.end(),
            state_.begin() + static_cast<long>(num_metrics_));
}

void CdbTuneTuner::UpdateNormalization(const std::vector<double>& metrics) {
  ++metric_count_;
  for (size_t i = 0; i < num_metrics_; ++i) {
    const double delta = metrics[i] - metric_mean_[i];
    metric_mean_[i] += delta / static_cast<double>(metric_count_);
    metric_m2_[i] += delta * (metrics[i] - metric_mean_[i]);
  }
}

std::vector<double> CdbTuneTuner::EncodeState(
    const std::vector<double>& metrics) const {
  std::vector<double> state(num_metrics_ + workload_features_.size(), 0.0);
  for (size_t i = 0; i < num_metrics_; ++i) {
    double stddev = 1.0;
    if (metric_count_ > 1) {
      stddev = std::sqrt(metric_m2_[i] /
                         static_cast<double>(metric_count_ - 1));
    }
    const double z =
        stddev > 1e-9 ? (metrics[i] - metric_mean_[i]) / stddev : 0.0;
    state[i] = std::clamp(z, -5.0, 5.0);
  }
  std::copy(workload_features_.begin(), workload_features_.end(),
            state.begin() + static_cast<long>(num_metrics_));
  return state;
}

double CdbTuneTuner::CurrentSigma() const {
  const double t = std::min(
      1.0, static_cast<double>(steps_) / options_.noise_decay_steps);
  return options_.noise_sigma_start +
         t * (options_.noise_sigma_end - options_.noise_sigma_start);
}

std::vector<std::vector<double>> CdbTuneTuner::Propose(size_t count) {
  last_actions_.clear();
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> action(options_.ddpg.action_dim);
    if (steps_ + i < options_.random_warmup) {
      for (double& v : action) v = rng_.Uniform();
    } else {
      action = agent_->Act(state_);
      noise_.set_sigma(CurrentSigma());
      const std::vector<double>& n = noise_.Sample(&rng_);
      for (size_t d = 0; d < action.size(); ++d) {
        action[d] = std::clamp(action[d] + n[d], 0.0, 1.0);
      }
    }
    last_actions_.push_back(std::move(action));
  }
  return last_actions_;
}

void CdbTuneTuner::Observe(const std::vector<controller::Sample>& samples) {
  for (size_t i = 0; i < samples.size(); ++i) {
    const controller::Sample& sample = samples[i];
    std::vector<double> next_state = state_;
    if (!sample.boot_failed) {
      UpdateNormalization(sample.metrics);
      next_state = EncodeState(sample.metrics);
    }
    ml::Transition transition;
    transition.state = state_;
    transition.action =
        i < last_actions_.size() ? last_actions_[i] : sample.knobs;
    transition.reward = sample.fitness;
    transition.next_state = next_state;
    // Each stress test is treated as a one-step episode: bootstrapping a
    // long-horizon return across independent configuration trials would
    // couple unrelated decisions.
    transition.terminal = true;
    agent_->AddTransition(std::move(transition));
    state_ = next_state;
    ++steps_;
  }
  // Bounded per round, not per sample (see Recommender::Observe).
  const int updates = std::min<int>(
      options_.train_steps_per_sample * static_cast<int>(samples.size()),
      2 * options_.train_steps_per_sample);
  for (int k = 0; k < updates; ++k) agent_->TrainStep();
}

}  // namespace hunter::tuners
