// QTune (Li et al., VLDB'19), approximated as DS-DDPG: the DDPG agent's
// state is augmented with a query/workload feature vector so the policy is
// workload-aware. Reuses the CdbTune DDPG plumbing with the feature tail.

#ifndef HUNTER_TUNERS_QTUNE_H_
#define HUNTER_TUNERS_QTUNE_H_

#include "cdb/workload_profile.h"
#include "tuners/cdbtune.h"

namespace hunter::tuners {

// Featurizes a workload the way QTune's query2vector summarizes query mixes
// (operation counts, read/write shape, data volume).
std::vector<double> WorkloadFeatures(const cdb::WorkloadProfile& profile);

class QTuneTuner : public CdbTuneTuner {
 public:
  QTuneTuner(size_t num_metrics, size_t num_knobs,
             const cdb::WorkloadProfile& profile,
             const CdbTuneOptions& options, uint64_t seed)
      : CdbTuneTuner(num_metrics, num_knobs, WorkloadFeatures(profile),
                     options, seed, "QTune") {}
};

}  // namespace hunter::tuners

#endif  // HUNTER_TUNERS_QTUNE_H_
