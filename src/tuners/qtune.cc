#include "tuners/qtune.h"

#include <cmath>

namespace hunter::tuners {

std::vector<double> WorkloadFeatures(const cdb::WorkloadProfile& profile) {
  return {
      profile.read_fraction,
      profile.scan_fraction,
      std::log1p(profile.ops_per_txn) / 5.0,
      std::log1p(profile.data_size_gb) / 8.0,
      std::log1p(static_cast<double>(profile.client_threads)) / 8.0,
      profile.zipf_theta,
      std::log1p(profile.write_rows_per_txn) / 4.0,
  };
}

}  // namespace hunter::tuners
