#include "linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hunter::linalg {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(const std::vector<std::vector<double>>& rows) {
  rows_ = rows.size();
  cols_ = rows.empty() ? 0 : rows[0].size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = At(r, c);
  return col;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix result(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        result.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return result;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> result(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += At(r, c) * v[c];
    result[r] = sum;
  }
  return result;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    result.data_[i] = data_[i] + other.data_[i];
  }
  return result;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    result.data_[i] = data_[i] - other.data_[i];
  }
  return result;
}

Matrix Matrix::Scale(double factor) const {
  Matrix result(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) result.data_[i] = data_[i] * factor;
  return result;
}

std::vector<double> ColumnMeans(const Matrix& data) {
  std::vector<double> means(data.cols(), 0.0);
  if (data.rows() == 0) return means;
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t c = 0; c < data.cols(); ++c) means[c] += data.At(r, c);
  }
  for (double& m : means) m /= static_cast<double>(data.rows());
  return means;
}

std::vector<double> ColumnStdDevs(const Matrix& data) {
  std::vector<double> stds(data.cols(), 0.0);
  if (data.rows() < 2) return stds;
  const std::vector<double> means = ColumnMeans(data);
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t c = 0; c < data.cols(); ++c) {
      const double d = data.At(r, c) - means[c];
      stds[c] += d * d;
    }
  }
  for (double& s : stds) s = std::sqrt(s / static_cast<double>(data.rows()));
  return stds;
}

Matrix Standardize(const Matrix& data, bool unit_variance) {
  const std::vector<double> means = ColumnMeans(data);
  const std::vector<double> stds = ColumnStdDevs(data);
  Matrix result(data.rows(), data.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    for (size_t c = 0; c < data.cols(); ++c) {
      double value = data.At(r, c) - means[c];
      if (unit_variance && stds[c] > 1e-12) value /= stds[c];
      result.At(r, c) = value;
    }
  }
  return result;
}

Matrix Covariance(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix cov(d, d);
  if (n < 2) return cov;
  const std::vector<double> means = ColumnMeans(data);
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < d; ++i) {
      const double di = data.At(r, i) - means[i];
      if (di == 0.0) continue;
      for (size_t j = i; j < d; ++j) {
        cov.At(i, j) += di * (data.At(r, j) - means[j]);
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov.At(i, j) /= denom;
      cov.At(j, i) = cov.At(i, j);
    }
  }
  return cov;
}

EigenResult SymmetricEigen(const Matrix& symmetric, int max_sweeps) {
  assert(symmetric.rows() == symmetric.cols());
  const size_t n = symmetric.rows();
  Matrix a = symmetric;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off_diagonal += std::abs(a.At(p, q));
    }
    if (off_diagonal < 1e-12) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t lhs, size_t rhs) { return diag[lhs] > diag[rhs]; });

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (size_t out = 0; out < n; ++out) {
    const size_t src = order[out];
    result.eigenvalues[out] = diag[src];
    for (size_t k = 0; k < n; ++k) {
      result.eigenvectors.At(k, out) = v.At(k, src);
    }
  }
  return result;
}

bool Cholesky(const Matrix& a, Matrix* lower) {
  assert(a.rows() == a.cols());
  const size_t n = a.rows();
  *lower = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= lower->At(i, k) * lower->At(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        lower->At(i, j) = std::sqrt(sum);
      } else {
        lower->At(i, j) = sum / lower->At(j, j);
      }
    }
  }
  return true;
}

std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b) {
  const size_t n = lower.rows();
  assert(b.size() == n);
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= lower.At(i, k) * y[k];
    y[i] = sum / lower.At(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= lower.At(k, i) * x[k];
    x[i] = sum / lower.At(i, i);
  }
  return x;
}

}  // namespace hunter::linalg
