#include "linalg/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "linalg/simd/simd.h"

namespace hunter::linalg {

// The register-tiled panel kernels moved to linalg/simd/ (gemm_scalar.cc
// holds the former in-file implementation verbatim; gemm_avx2.cc is the
// hand-written AVX2 lane). These public entry points are now thin
// runtime-dispatch shims; the contraction-order contract in matrix.h is
// unchanged and holds at every tier.

void GemmInto(const double* __restrict a, size_t m, size_t k,
              const double* __restrict b, size_t n, bool accumulate,
              double* __restrict out) {
  simd::GemmInto(a, m, k, b, n, accumulate, out);
}

void GemmBiasInto(const double* __restrict a, size_t m, size_t k,
                  const double* __restrict b, size_t n,
                  const double* __restrict bias, double* __restrict out) {
  simd::GemmBiasInto(a, m, k, b, n, bias, out);
}

void GemmTransposedAInto(const double* __restrict a, size_t k, size_t m,
                         const double* __restrict b, size_t n, bool accumulate,
                         double* __restrict out) {
  // Contraction over the shared leading row index r of the k x m operand,
  // ascending — the same order in which the per-sample backward pass
  // accumulates parameter gradients.
  simd::GemmTransposedAInto(a, k, m, b, n, accumulate, out);
}

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(const std::vector<std::vector<double>>& rows) {
  rows_ = rows.size();
  cols_ = rows.empty() ? 0 : rows[0].size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

void Matrix::Reshape(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::vector<double> Matrix::Row(size_t r) const {
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = At(r, c);
  return col;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix result(rows_, other.cols_);
  GemmInto(Data(), rows_, cols_, other.Data(), other.cols_,
           /*accumulate=*/true, result.Data());
  return result;
}

void Matrix::MultiplyInto(const Matrix& other, Matrix* out) const {
  assert(cols_ == other.rows_);
  assert(out != this && out != &other);
  out->Reshape(rows_, other.cols_);
  GemmInto(Data(), rows_, cols_, other.Data(), other.cols_,
           /*accumulate=*/false, out->Data());
}

void Matrix::TransposedMultiplyInto(const Matrix& other, Matrix* out,
                                    bool accumulate) const {
  assert(rows_ == other.rows_);
  assert(out != this && out != &other);
  if (!accumulate) out->Reshape(cols_, other.cols_);
  assert(out->rows() == cols_ && out->cols() == other.cols_);
  GemmTransposedAInto(Data(), rows_, cols_, other.Data(), other.cols_,
                      accumulate, out->Data());
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> result(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += At(r, c) * v[c];
    result[r] = sum;
  }
  return result;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  simd::AddInto(data_.data(), other.data_.data(), result.data_.data(),
                data_.size());
  return result;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix result(rows_, cols_);
  simd::SubInto(data_.data(), other.data_.data(), result.data_.data(),
                data_.size());
  return result;
}

Matrix Matrix::Scale(double factor) const {
  Matrix result(rows_, cols_);
  simd::ScaleInto(data_.data(), factor, result.data_.data(), data_.size());
  return result;
}

void Matrix::AddInPlace(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  simd::AddInto(data_.data(), other.data_.data(), data_.data(), data_.size());
}

void Matrix::ScaleInPlace(double factor) {
  simd::ScaleInto(data_.data(), factor, data_.data(), data_.size());
}

void Matrix::Axpy(double alpha, const Matrix& x) {
  assert(rows_ == x.rows_ && cols_ == x.cols_);
  simd::AxpyInPlace(alpha, x.data_.data(), data_.data(), data_.size());
}

std::vector<double> ColumnMeans(const Matrix& data) {
  std::vector<double> means(data.cols(), 0.0);
  if (data.rows() == 0) return means;
  // Row-by-row vector accumulate: column c's sum still adds the rows in
  // ascending order, exactly like the former nested scalar loop.
  for (size_t r = 0; r < data.rows(); ++r) {
    simd::AddInto(means.data(), data.Data() + r * data.cols(), means.data(),
                  data.cols());
  }
  for (double& m : means) m /= static_cast<double>(data.rows());
  return means;
}

std::vector<double> ColumnStdDevs(const Matrix& data) {
  std::vector<double> stds(data.cols(), 0.0);
  if (data.rows() < 2) return stds;
  const std::vector<double> means = ColumnMeans(data);
  for (size_t r = 0; r < data.rows(); ++r) {
    simd::AccumSquaredCentered(data.Data() + r * data.cols(), means.data(),
                               stds.data(), data.cols());
  }
  for (double& s : stds) s = std::sqrt(s / static_cast<double>(data.rows() - 1));
  return stds;
}

Matrix Standardize(const Matrix& data, bool unit_variance) {
  const std::vector<double> means = ColumnMeans(data);
  const std::vector<double> stds = ColumnStdDevs(data);
  Matrix result(data.rows(), data.cols());
  for (size_t r = 0; r < data.rows(); ++r) {
    simd::StandardizeInto(data.Data() + r * data.cols(), means.data(),
                          stds.data(), unit_variance,
                          result.Data() + r * data.cols(), data.cols());
  }
  return result;
}

Matrix Covariance(const Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix cov(d, d);
  if (n < 2) return cov;
  const std::vector<double> means = ColumnMeans(data);
  Matrix centered(n, d);
  for (size_t r = 0; r < n; ++r) {
    simd::SubInto(data.Data() + r * d, means.data(), centered.Data() + r * d,
                  d);
  }
  centered.TransposedMultiplyInto(centered, &cov);
  cov.ScaleInPlace(1.0 / static_cast<double>(n - 1));
  return cov;
}

namespace {

// Sorts (diag, vectors-as-columns) into an EigenResult with eigenvalues
// descending — shared by the QL and Jacobi paths so both report identically
// ordered eigenpairs.
EigenResult SortedEigenResult(const std::vector<double>& diag,
                              const Matrix& vectors) {
  const size_t n = diag.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t lhs, size_t rhs) { return diag[lhs] > diag[rhs]; });

  EigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (size_t out = 0; out < n; ++out) {
    const size_t src = order[out];
    result.eigenvalues[out] = diag[src];
    for (size_t k = 0; k < n; ++k) {
      result.eigenvectors.At(k, out) = vectors.At(k, src);
    }
  }
  return result;
}

}  // namespace

EigenResult SymmetricEigen(const Matrix& symmetric, int max_sweeps) {
  assert(symmetric.rows() == symmetric.cols());
  const size_t n = symmetric.rows();
  if (n == 0) return EigenResult{{}, Matrix()};

  // Stage 1 — Householder reduction to tridiagonal form (classic tred2):
  // n-2 reflections, each annihilating one row/column tail. `z` starts as a
  // working copy of the input and finishes holding the accumulated
  // orthogonal transform Q (A = Q T Q^T); `d` holds the diagonal of T and
  // `e` the subdiagonal. Unlike Jacobi — which chases every off-diagonal
  // element across O(sweeps) full passes — the reduction touches each
  // element a bounded number of times, which is where the speedup on PCA's
  // 63 x 63 covariance comes from.
  Matrix z = symmetric;
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  const int ni = static_cast<int>(n);
  auto zat = [&z](int r, int c) -> double& {
    return z.At(static_cast<size_t>(r), static_cast<size_t>(c));
  };
  auto dat = [&d](int i) -> double& { return d[static_cast<size_t>(i)]; };
  auto eat = [&e](int i) -> double& { return e[static_cast<size_t>(i)]; };

  for (int i = ni - 1; i > 0; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k < i; ++k) scale += std::abs(zat(i, k));
      if (scale == 0.0) {
        eat(i) = zat(i, l);
      } else {
        for (int k = 0; k < i; ++k) {
          zat(i, k) /= scale;
          h += zat(i, k) * zat(i, k);
        }
        double f = zat(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        eat(i) = scale * g;
        h -= f * g;
        zat(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j < i; ++j) {
          zat(j, i) = zat(i, j) / h;
          g = 0.0;
          for (int k = 0; k < j + 1; ++k) g += zat(j, k) * zat(i, k);
          for (int k = j + 1; k < i; ++k) g += zat(k, j) * zat(i, k);
          eat(j) = g / h;
          f += eat(j) * zat(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j < i; ++j) {
          f = zat(i, j);
          g = eat(j) - hh * f;
          eat(j) = g;
          for (int k = 0; k < j + 1; ++k) {
            zat(j, k) -= f * eat(k) + g * zat(i, k);
          }
        }
      }
    } else {
      eat(i) = zat(i, l);
    }
    dat(i) = h;
  }
  dat(0) = 0.0;
  eat(0) = 0.0;
  // Accumulate the product of the Householder reflections into z.
  // (size_t induction: GCC's loop optimizer otherwise warns that the
  // signed counters could overflow in an unreachable max-trip version.)
  for (size_t ai = 0; ai < n; ++ai) {
    if (d[ai] != 0.0) {
      for (size_t j = 0; j < ai; ++j) {
        double g = 0.0;
        for (size_t k = 0; k < ai; ++k) g += z.At(ai, k) * z.At(k, j);
        for (size_t k = 0; k < ai; ++k) z.At(k, j) -= g * z.At(k, ai);
      }
    }
    d[ai] = z.At(ai, ai);
    z.At(ai, ai) = 1.0;
    for (size_t j = 0; j < ai; ++j) {
      z.At(j, ai) = 0.0;
      z.At(ai, j) = 0.0;
    }
  }

  // Stage 2 — implicit-shift QL on the tridiagonal (classic tqli), with the
  // Givens rotations applied to z so its columns finish as eigenvectors of
  // the original matrix. The Wilkinson shift makes each eigenvalue converge
  // in 2-3 iterations; `max_sweeps` is a safety cap per eigenvalue (the
  // Jacobi path degrades the same way when its sweep budget runs out).
  for (int i = 1; i < ni; ++i) eat(i - 1) = eat(i);
  eat(ni - 1) = 0.0;
  for (int l = 0; l < ni; ++l) {
    int iter = 0;
    int m = l;
    do {
      for (m = l; m < ni - 1; ++m) {
        const double dd = std::abs(dat(m)) + std::abs(dat(m + 1));
        if (std::abs(eat(m)) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == max_sweeps) break;
        double g = (dat(l + 1) - dat(l)) / (2.0 * eat(l));
        double r = std::hypot(g, 1.0);
        const double denom = g + (g >= 0.0 ? std::abs(r) : -std::abs(r));
        g = dat(m) - dat(l) + eat(l) / denom;
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * eat(i);
          const double b = c * eat(i);
          r = std::hypot(f, g);
          eat(i + 1) = r;
          if (r == 0.0) {
            dat(i + 1) -= p;
            eat(m) = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = dat(i + 1) - p;
          r = (dat(i) - g) * s + 2.0 * c * b;
          p = s * r;
          dat(i + 1) = g + p;
          g = c * r - b;
          for (int k = 0; k < ni; ++k) {
            f = zat(k, i + 1);
            zat(k, i + 1) = s * zat(k, i) + c * f;
            zat(k, i) = c * zat(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        dat(l) -= p;
        eat(l) = g;
        eat(m) = 0.0;
      }
    } while (m != l);
  }

  return SortedEigenResult(d, z);
}

EigenResult SymmetricEigenJacobi(const Matrix& symmetric, int max_sweeps) {
  assert(symmetric.rows() == symmetric.cols());
  const size_t n = symmetric.rows();
  Matrix a = symmetric;
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off_diagonal = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off_diagonal += std::abs(a.At(p, q));
    }
    if (off_diagonal < 1e-12) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double app = a.At(p, p);
        const double aqq = a.At(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p);
          const double akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k);
          const double aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p);
          const double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = a.At(i, i);
  return SortedEigenResult(diag, v);
}

// hunterlint: hot
bool Cholesky(const Matrix& a, Matrix* lower) {
  assert(a.rows() == a.cols());
  const size_t n = a.rows();
  *lower = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= lower->At(i, k) * lower->At(j, k);
      if (i == j) {
        if (sum <= 0.0) return false;
        lower->At(i, j) = std::sqrt(sum);
      } else {
        lower->At(i, j) = sum / lower->At(j, j);
      }
    }
  }
  return true;
}

// hunterlint: hot
bool CholeskyAppendRow(const std::vector<double>& new_row, Matrix* lower) {
  const size_t n = lower->rows();
  assert(lower->cols() == n);
  assert(new_row.size() == n + 1);
  // The appended row satisfies L(n, j) = (A(n, j) - sum_{k<j} L(n,k) L(j,k))
  // / L(j, j) — exactly the recurrence full factorization evaluates for its
  // last row, with the same operand values in the same order, so the grown
  // factor matches a from-scratch refactorization bit for bit.
  std::vector<double> row(n + 1, 0.0);
  // Blocked left-looking evaluation: four appended-row columns at a time.
  // The vector primitive folds the k < j0 prefix common to all four lanes
  // (independent output elements, k ascending per lane); the triangular
  // remainder k in [j0, j) and the divide finish serially per lane, in lane
  // order, so row[j] is always complete before lane j+1 reads it. Term
  // order per element is untouched — the factor still matches a
  // from-scratch refactorization bit for bit.
  size_t j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    double sums[4] = {new_row[j0], new_row[j0 + 1], new_row[j0 + 2],
                      new_row[j0 + 3]};
    simd::CholeskyDowndate4(lower->Data(), n, j0, /*k_end=*/j0, row.data(),
                            sums);
    for (size_t l = 0; l < 4; ++l) {
      const size_t j = j0 + l;
      double sum = sums[l];
      for (size_t k = j0; k < j; ++k) sum -= row[k] * lower->At(j, k);
      row[j] = sum / lower->At(j, j);
    }
  }
  for (size_t j = j0; j < n; ++j) {
    double sum = new_row[j];
    for (size_t k = 0; k < j; ++k) sum -= row[k] * lower->At(j, k);
    row[j] = sum / lower->At(j, j);
  }
  double diag = new_row[n];
  for (size_t k = 0; k < n; ++k) diag -= row[k] * row[k];
  if (diag <= 0.0) return false;
  row[n] = std::sqrt(diag);

  Matrix grown(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) grown.At(i, j) = lower->At(i, j);
  }
  for (size_t j = 0; j <= n; ++j) grown.At(n, j) = row[j];
  *lower = std::move(grown);
  return true;
}

// hunterlint: hot
std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b) {
  const size_t n = lower.rows();
  assert(b.size() == n);
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= lower.At(i, k) * y[k];
    y[i] = sum / lower.At(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= lower.At(k, i) * x[k];
    x[i] = sum / lower.At(i, i);
  }
  return x;
}

}  // namespace hunter::linalg
