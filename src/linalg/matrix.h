// Minimal dense linear algebra used by PCA (covariance + eigendecomposition)
// and Gaussian-process regression (Cholesky solves). Row-major doubles; the
// matrices in this project are small (tens to a few hundreds of rows), so
// clarity is favored over blocking/vectorization tricks.

#ifndef HUNTER_LINALG_MATRIX_H_
#define HUNTER_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

namespace hunter::linalg {

class Matrix {
 public:
  Matrix() = default;
  // Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols);
  // Builds from nested vectors; all inner vectors must share one length.
  explicit Matrix(const std::vector<std::vector<double>>& rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double> Row(size_t r) const;
  std::vector<double> Col(size_t c) const;

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  // Element-wise operations (shapes must match).
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Column means of a data matrix (one observation per row).
std::vector<double> ColumnMeans(const Matrix& data);

// Column standard deviations (population); zeros stay zero.
std::vector<double> ColumnStdDevs(const Matrix& data);

// Centers (and optionally scales to unit variance) each column.
// Columns with zero variance are centered only.
Matrix Standardize(const Matrix& data, bool unit_variance);

// Sample covariance matrix (rows are observations).
Matrix Covariance(const Matrix& data);

// Symmetric eigendecomposition via cyclic Jacobi rotations.
// Returns eigenvalues in descending order with matching eigenvectors
// (each eigenvector is a column of `eigenvectors`).
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};
EigenResult SymmetricEigen(const Matrix& symmetric, int max_sweeps = 64);

// Cholesky factorization A = L * L^T of a symmetric positive-definite
// matrix. Returns false if the matrix is not (numerically) SPD.
bool Cholesky(const Matrix& a, Matrix* lower);

// Solves A x = b given the Cholesky factor L (forward + back substitution).
std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b);

}  // namespace hunter::linalg

#endif  // HUNTER_LINALG_MATRIX_H_
