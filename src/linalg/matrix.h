// Minimal dense linear algebra used by PCA (covariance + eigendecomposition),
// Gaussian-process regression (Cholesky solves) and the batched MLP/DDPG
// training paths. Row-major doubles. The matrices in this project are small
// (tens to a few hundreds of rows), but the training loops call into them
// thousands of times per tuning step, so the hot kernels are written to be
// allocation-free (callers pass preallocated outputs that are reused across
// steps) and cache-friendly (all inner loops stream contiguous rows).
//
// Numeric contract: every GEMM kernel accumulates each output element with
// the k (inner/contraction) index ascending, exactly like a textbook
// dot-product loop. The batched ML paths rely on this to stay bit-compatible
// with the per-sample reference paths they replaced.

#ifndef HUNTER_LINALG_MATRIX_H_
#define HUNTER_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

namespace hunter::linalg {

// Low-level row-major GEMM kernels shared by Matrix and the ML hot paths
// (which keep network parameters in flat arrays). `a` is (m x k), `b` is
// (k x n), `out` is (m x n). With `accumulate` the kernel adds into the
// existing contents of `out` (used to seed bias terms); otherwise `out` is
// zeroed first.
void GemmInto(const double* a, size_t m, size_t k, const double* b, size_t n,
              bool accumulate, double* out);

// out = broadcast(bias) + a * b: every output row starts from the length-n
// `bias` row and the contraction then accumulates on top, k ascending — the
// same order as seeding `out` with the bias and calling GemmInto in
// accumulate mode, but without the extra write+read pass over `out`. This
// is the layer-forward kernel: pre = bias + x * W^T.
void GemmBiasInto(const double* a, size_t m, size_t k, const double* b,
                  size_t n, const double* bias, double* out);

// out (+)= a^T * b where `a` is (k x m) and `b` is (k x n); the contraction
// runs over the leading (row) index of both, ascending, which matches the
// sample-by-sample gradient accumulation order of the per-sample paths.
void GemmTransposedAInto(const double* a, size_t k, size_t m, const double* b,
                         size_t n, bool accumulate, double* out);

// Non-allocating view of one matrix row: a (pointer, length) pair into the
// row-major storage. `Matrix::Row` copies into a fresh std::vector on every
// call, which is fine for cold paths but dominates the GP kernel double loop
// and Predict when called O(n^2) times per refit — hot loops take a RowSpan
// instead (enforced by hunterlint's no-matrix-row-copy-in-loop rule). The
// view is invalidated by anything that reallocates the matrix (Reshape to a
// larger size, assignment, destruction).
struct RowSpan {
  const double* data = nullptr;
  size_t size = 0;

  double operator[](size_t i) const { return data[i]; }
  const double* begin() const { return data; }
  const double* end() const { return data + size; }
};

class Matrix {
 public:
  Matrix() = default;
  // Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols);
  // Builds from nested vectors; all inner vectors must share one length.
  explicit Matrix(const std::vector<std::vector<double>>& rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  // Raw row-major storage, for the allocation-free kernels above.
  double* Data() { return data_.data(); }
  const double* Data() const { return data_.data(); }

  // Reshapes to rows x cols reusing the existing allocation where possible;
  // the contents are unspecified afterwards. Cheap to call every step with
  // the same shape (a no-op beyond bookkeeping), which is how the training
  // arenas stay allocation-free in steady state.
  void Reshape(size_t rows, size_t cols);
  void Fill(double value);

  std::vector<double> Row(size_t r) const;
  std::vector<double> Col(size_t c) const;

  // Non-allocating row view; see RowSpan for the lifetime caveat.
  RowSpan RowView(size_t r) const { return {data_.data() + r * cols_, cols_}; }

  Matrix Transpose() const;
  Matrix Multiply(const Matrix& other) const;
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  // out = this * other, written into a preallocated (and reusable) output.
  void MultiplyInto(const Matrix& other, Matrix* out) const;
  // out (+)= this^T * other (this and other share their row count).
  void TransposedMultiplyInto(const Matrix& other, Matrix* out,
                              bool accumulate = false) const;

  // Element-wise operations (shapes must match).
  Matrix Add(const Matrix& other) const;
  Matrix Subtract(const Matrix& other) const;
  Matrix Scale(double factor) const;

  // In-place element-wise operations — no temporaries.
  void AddInPlace(const Matrix& other);
  void ScaleInPlace(double factor);
  // this += alpha * x (shapes must match).
  void Axpy(double alpha, const Matrix& x);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Column means of a data matrix (one observation per row).
std::vector<double> ColumnMeans(const Matrix& data);

// Column standard deviations (sample, N-1 denominator — consistent with
// common::Variance / common::RunningStat); zeros stay zero.
std::vector<double> ColumnStdDevs(const Matrix& data);

// Centers (and optionally scales to unit variance) each column.
// Columns with zero variance are centered only.
Matrix Standardize(const Matrix& data, bool unit_variance);

// Sample covariance matrix (rows are observations), computed as a centered
// X^T X GEMM.
Matrix Covariance(const Matrix& data);

// Symmetric eigendecomposition. Returns eigenvalues in descending order
// with matching eigenvectors (each eigenvector is a column of
// `eigenvectors`; signs are unspecified, as for any eigensolver).
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};

// Householder tridiagonalization + implicit-shift QL — O(n^3) with a small
// constant, vs the cyclic Jacobi's O(n^3) *per sweep*. This is the
// production path (PCA refits sit on it). `max_sweeps` bounds the QL
// iterations spent per eigenvalue; convergence normally takes 2-3.
EigenResult SymmetricEigen(const Matrix& symmetric, int max_sweeps = 64);

// Cyclic Jacobi rotations — the original implementation, retained as the
// independent reference oracle for the QL path (tested against it on random
// symmetric matrices; see tests/linalg and bench_micro_hotpaths).
EigenResult SymmetricEigenJacobi(const Matrix& symmetric, int max_sweeps = 64);

// Cholesky factorization A = L * L^T of a symmetric positive-definite
// matrix. Returns false if the matrix is not (numerically) SPD.
bool Cholesky(const Matrix& a, Matrix* lower);

// Grows a Cholesky factor by one row/column: on entry `lower` is the n x n
// factor of the leading n x n block of an (n+1) x (n+1) symmetric matrix A,
// and `new_row` holds A(n, 0..n) — the appended row including the new
// diagonal element. On success `lower` becomes the (n+1) x (n+1) factor.
// The appended row is computed by exactly the recurrence full factorization
// uses for its last row, so the grown factor is bit-identical to
// refactorizing from scratch. Returns false (leaving `lower` untouched) if
// the appended diagonal is not numerically positive.
bool CholeskyAppendRow(const std::vector<double>& new_row, Matrix* lower);

// Solves A x = b given the Cholesky factor L (forward + back substitution).
std::vector<double> CholeskySolve(const Matrix& lower,
                                  const std::vector<double>& b);

}  // namespace hunter::linalg

#endif  // HUNTER_LINALG_MATRIX_H_
