// Scalar fallbacks for the elementwise kernels. Each loop body is the
// exact expression the original call site evaluated (same operand order,
// same conditionals), so routing a hot path through this layer at the
// scalar tier changes nothing — and the AVX2 lane is bit-compared against
// these, not against the call sites' history.

#include "linalg/simd/simd.h"

#include <algorithm>
#include <cmath>

namespace hunter::linalg::simd {

void AddIntoScalar(const double* x, const double* y, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
}

void SubIntoScalar(const double* x, const double* y, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void ScaleIntoScalar(const double* x, double factor, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * factor;
}

void AxpyInPlaceScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void SoftUpdateInPlaceScalar(double tau, const double* src, double* dst,
                             size_t n) {
  const double one_minus_tau = 1.0 - tau;
  for (size_t i = 0; i < n; ++i) {
    dst[i] = tau * src[i] + one_minus_tau * dst[i];
  }
}

void AdamUpdateInPlaceScalar(double* p, const double* grads, double* m,
                             double* v, size_t n, double scale, double lr,
                             double beta1, double beta2, double bias1,
                             double bias2, double eps) {
  const double one_minus_beta1 = 1.0 - beta1;
  const double one_minus_beta2 = 1.0 - beta2;
  for (size_t i = 0; i < n; ++i) {
    const double g = grads[i] * scale;
    m[i] = beta1 * m[i] + one_minus_beta1 * g;
    v[i] = beta2 * v[i] + one_minus_beta2 * g * g;
    const double mhat = m[i] / bias1;
    const double vhat = v[i] / bias2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void ReluIntoScalar(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluGradMulIntoScalar(const double* g, const double* pre, double* out,
                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = g[i] * (pre[i] > 0.0 ? 1.0 : 0.0);
  }
}

void TanhGradMulIntoScalar(const double* g, const double* post, double* out,
                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = g[i] * (1.0 - post[i] * post[i]);
  }
}

void AccumSquaredCenteredScalar(const double* x, const double* means,
                                double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double d = x[i] - means[i];
    acc[i] += d * d;
  }
}

void StandardizeIntoScalar(const double* x, const double* means,
                           const double* stds, bool unit_variance,
                           double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    double value = x[i] - means[i];
    if (unit_variance && stds[i] > 1e-12) value /= stds[i];
    out[i] = value;
  }
}

void SquaredDistIntoScalar(double norm_a, const double* norms_b,
                           const double* dots, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(0.0, norm_a + norms_b[i] - 2.0 * dots[i]);
  }
}

void ClampUnitFromTanhIntoScalar(const double* x, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double v = 0.5 * (x[i] + 1.0);
    out[i] = v < 0.0 ? 0.0 : (1.0 < v ? 1.0 : v);
  }
}

void ScaleClampIntoScalar(const double* x, double factor, double clip,
                          double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double v = x[i] * factor;
    out[i] = v < -clip ? -clip : (clip < v ? clip : v);
  }
}

void CholeskyDowndate4Scalar(const double* lower, size_t stride, size_t j0,
                             size_t k_end, const double* row, double* sums) {
  // Four independent lanes; each one's k ascends, so lane l's partial sum
  // is term-for-term the scalar recurrence for appended-row column j0 + l.
  for (size_t l = 0; l < 4; ++l) {
    const double* lrow = lower + (j0 + l) * stride;
    double sum = sums[l];
    for (size_t k = 0; k < k_end; ++k) sum -= row[k] * lrow[k];
    sums[l] = sum;
  }
}

}  // namespace hunter::linalg::simd
