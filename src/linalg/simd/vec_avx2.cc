// AVX2 lanes for the elementwise kernels, four doubles per step with a
// scalar tail running the exact fallback expression. Compiled with
// -mavx2 -mfma; the #else branch provides scalar-forwarding stubs and
// reports kHasAvx2Kernels = false.
//
// Every vector op here is an IEEE-exact lane-wise image of the scalar
// expression: vaddpd/vsubpd/vmulpd/vdivpd/vsqrtpd are correctly rounded per
// lane, multiply+add pairs stay unfused (-ffp-contract=off), vmaxpd's
// second-operand tie/NaN rule is matched to the ternaries it replaces, and
// conditionals become compare+blend in the same test order as the scalar
// code. See simd.h for the per-kernel arguments.

#include "linalg/simd/simd.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace hunter::linalg::simd {

const bool kHasAvx2Kernels = true;

void AddIntoAvx2(const double* x, const double* y, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] + y[i];
}

void SubIntoAvx2(const double* x, const double* y, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

void ScaleIntoAvx2(const double* x, double factor, double* out, size_t n) {
  const __m256d f = _mm256_set1_pd(factor);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), f));
  }
  for (; i < n; ++i) out[i] = x[i] * factor;
}

void AxpyInPlaceAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d av = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void SoftUpdateInPlaceAvx2(double tau, const double* src, double* dst,
                           size_t n) {
  const double one_minus_tau = 1.0 - tau;
  const __m256d tv = _mm256_set1_pd(tau);
  const __m256d ov = _mm256_set1_pd(one_minus_tau);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_mul_pd(tv, _mm256_loadu_pd(src + i));
    const __m256d b = _mm256_mul_pd(ov, _mm256_loadu_pd(dst + i));
    _mm256_storeu_pd(dst + i, _mm256_add_pd(a, b));
  }
  for (; i < n; ++i) dst[i] = tau * src[i] + one_minus_tau * dst[i];
}

void AdamUpdateInPlaceAvx2(double* p, const double* grads, double* m,
                           double* v, size_t n, double scale, double lr,
                           double beta1, double beta2, double bias1,
                           double bias2, double eps) {
  const double one_minus_beta1 = 1.0 - beta1;
  const double one_minus_beta2 = 1.0 - beta2;
  const __m256d scale_v = _mm256_set1_pd(scale);
  const __m256d b1_v = _mm256_set1_pd(beta1);
  const __m256d b2_v = _mm256_set1_pd(beta2);
  const __m256d omb1_v = _mm256_set1_pd(one_minus_beta1);
  const __m256d omb2_v = _mm256_set1_pd(one_minus_beta2);
  const __m256d bias1_v = _mm256_set1_pd(bias1);
  const __m256d bias2_v = _mm256_set1_pd(bias2);
  const __m256d lr_v = _mm256_set1_pd(lr);
  const __m256d eps_v = _mm256_set1_pd(eps);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d g = _mm256_mul_pd(_mm256_loadu_pd(grads + i), scale_v);
    // m = beta1 * m + (1 - beta1) * g
    const __m256d mv =
        _mm256_add_pd(_mm256_mul_pd(b1_v, _mm256_loadu_pd(m + i)),
                      _mm256_mul_pd(omb1_v, g));
    _mm256_storeu_pd(m + i, mv);
    // v = beta2 * v + ((1 - beta2) * g) * g
    const __m256d vv =
        _mm256_add_pd(_mm256_mul_pd(b2_v, _mm256_loadu_pd(v + i)),
                      _mm256_mul_pd(_mm256_mul_pd(omb2_v, g), g));
    _mm256_storeu_pd(v + i, vv);
    const __m256d mhat = _mm256_div_pd(mv, bias1_v);
    const __m256d vhat = _mm256_div_pd(vv, bias2_v);
    const __m256d denom = _mm256_add_pd(_mm256_sqrt_pd(vhat), eps_v);
    const __m256d step = _mm256_div_pd(_mm256_mul_pd(lr_v, mhat), denom);
    _mm256_storeu_pd(p + i, _mm256_sub_pd(_mm256_loadu_pd(p + i), step));
  }
  for (; i < n; ++i) {
    const double g = grads[i] * scale;
    m[i] = beta1 * m[i] + one_minus_beta1 * g;
    v[i] = beta2 * v[i] + one_minus_beta2 * g * g;
    const double mhat = m[i] / bias1;
    const double vhat = v[i] / bias2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void ReluIntoAvx2(const double* x, double* out, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vmaxpd(x, 0) returns the SECOND operand when x is NaN or on a ±0 tie
    // — exactly the `x > 0 ? x : 0` false branch.
    _mm256_storeu_pd(out + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void ReluGradMulIntoAvx2(const double* g, const double* pre, double* out,
                         size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(pre + i), zero, _CMP_GT_OQ);
    const __m256d gate = _mm256_blendv_pd(zero, one, mask);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), gate));
  }
  for (; i < n; ++i) out[i] = g[i] * (pre[i] > 0.0 ? 1.0 : 0.0);
}

void TanhGradMulIntoAvx2(const double* g, const double* post, double* out,
                         size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d pv = _mm256_loadu_pd(post + i);
    const __m256d grad = _mm256_sub_pd(one, _mm256_mul_pd(pv, pv));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), grad));
  }
  for (; i < n; ++i) out[i] = g[i] * (1.0 - post[i] * post[i]);
}

void AccumSquaredCenteredAvx2(const double* x, const double* means,
                              double* acc, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                    _mm256_loadu_pd(means + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_mul_pd(d, d)));
  }
  for (; i < n; ++i) {
    const double d = x[i] - means[i];
    acc[i] += d * d;
  }
}

void StandardizeIntoAvx2(const double* x, const double* means,
                         const double* stds, bool unit_variance, double* out,
                         size_t n) {
  const __m256d eps = _mm256_set1_pd(1e-12);
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  if (unit_variance) {
    for (; i + 4 <= n; i += 4) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                      _mm256_loadu_pd(means + i));
      // Divisor blends to 1.0 where stds <= 1e-12 (or NaN): dividing by
      // 1.0 is exact, so the guarded lanes pass through untouched just as
      // the scalar `if` skips the divide.
      const __m256d sv = _mm256_loadu_pd(stds + i);
      const __m256d mask = _mm256_cmp_pd(sv, eps, _CMP_GT_OQ);
      const __m256d divisor = _mm256_blendv_pd(one, sv, mask);
      _mm256_storeu_pd(out + i, _mm256_div_pd(d, divisor));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                              _mm256_loadu_pd(means + i)));
    }
  }
  for (; i < n; ++i) {
    double value = x[i] - means[i];
    if (unit_variance && stds[i] > 1e-12) value /= stds[i];
    out[i] = value;
  }
}

void SquaredDistIntoAvx2(double norm_a, const double* norms_b,
                         const double* dots, double* out, size_t n) {
  const __m256d na = _mm256_set1_pd(norm_a);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sum = _mm256_add_pd(na, _mm256_loadu_pd(norms_b + i));
    const __m256d sq =
        _mm256_sub_pd(sum, _mm256_mul_pd(two, _mm256_loadu_pd(dots + i)));
    // vmaxpd(sq, 0): second operand on NaN/tie, matching std::max(0.0, sq).
    _mm256_storeu_pd(out + i, _mm256_max_pd(sq, zero));
  }
  for (; i < n; ++i) {
    out[i] = std::max(0.0, norm_a + norms_b[i] - 2.0 * dots[i]);
  }
}

void ClampUnitFromTanhIntoAvx2(const double* x, double* out, size_t n) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v =
        _mm256_mul_pd(half, _mm256_add_pd(_mm256_loadu_pd(x + i), one));
    // std::clamp test order: v < lo first, then hi < v; NaN fails both
    // compares and passes through, as in the scalar expression.
    const __m256d lo_mask = _mm256_cmp_pd(v, zero, _CMP_LT_OQ);
    const __m256d hi_mask = _mm256_cmp_pd(one, v, _CMP_LT_OQ);
    __m256d r = _mm256_blendv_pd(v, one, hi_mask);
    r = _mm256_blendv_pd(r, zero, lo_mask);
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    const double v = 0.5 * (x[i] + 1.0);
    out[i] = v < 0.0 ? 0.0 : (1.0 < v ? 1.0 : v);
  }
}

void ScaleClampIntoAvx2(const double* x, double factor, double clip,
                        double* out, size_t n) {
  const __m256d f = _mm256_set1_pd(factor);
  const __m256d hi = _mm256_set1_pd(clip);
  const __m256d lo = _mm256_set1_pd(-clip);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_mul_pd(_mm256_loadu_pd(x + i), f);
    const __m256d lo_mask = _mm256_cmp_pd(v, lo, _CMP_LT_OQ);
    const __m256d hi_mask = _mm256_cmp_pd(hi, v, _CMP_LT_OQ);
    __m256d r = _mm256_blendv_pd(v, hi, hi_mask);
    r = _mm256_blendv_pd(r, lo, lo_mask);
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    const double v = x[i] * factor;
    out[i] = v < -clip ? -clip : (clip < v ? clip : v);
  }
}

void CholeskyDowndate4Avx2(const double* lower, size_t stride, size_t j0,
                           size_t k_end, const double* row, double* sums) {
  const double* l0 = lower + (j0 + 0) * stride;
  const double* l1 = lower + (j0 + 1) * stride;
  const double* l2 = lower + (j0 + 2) * stride;
  const double* l3 = lower + (j0 + 3) * stride;
  __m256d acc = _mm256_loadu_pd(sums);
  for (size_t k = 0; k < k_end; ++k) {
    // One vector holds the SAME k-term of four independent lanes; k still
    // ascends per lane, so each lane's subtraction chain is the scalar
    // recurrence verbatim.
    const __m256d rv = _mm256_set1_pd(row[k]);
    const __m256d lv = _mm256_set_pd(l3[k], l2[k], l1[k], l0[k]);
    acc = _mm256_sub_pd(acc, _mm256_mul_pd(rv, lv));
  }
  _mm256_storeu_pd(sums, acc);
}

}  // namespace hunter::linalg::simd

#else  // !(__x86_64__ && __AVX2__)

namespace hunter::linalg::simd {

const bool kHasAvx2Kernels = false;

void AddIntoAvx2(const double* x, const double* y, double* out, size_t n) {
  AddIntoScalar(x, y, out, n);
}
void SubIntoAvx2(const double* x, const double* y, double* out, size_t n) {
  SubIntoScalar(x, y, out, n);
}
void ScaleIntoAvx2(const double* x, double factor, double* out, size_t n) {
  ScaleIntoScalar(x, factor, out, n);
}
void AxpyInPlaceAvx2(double alpha, const double* x, double* y, size_t n) {
  AxpyInPlaceScalar(alpha, x, y, n);
}
void SoftUpdateInPlaceAvx2(double tau, const double* src, double* dst,
                           size_t n) {
  SoftUpdateInPlaceScalar(tau, src, dst, n);
}
void AdamUpdateInPlaceAvx2(double* p, const double* grads, double* m,
                           double* v, size_t n, double scale, double lr,
                           double beta1, double beta2, double bias1,
                           double bias2, double eps) {
  AdamUpdateInPlaceScalar(p, grads, m, v, n, scale, lr, beta1, beta2, bias1,
                          bias2, eps);
}
void ReluIntoAvx2(const double* x, double* out, size_t n) {
  ReluIntoScalar(x, out, n);
}
void ReluGradMulIntoAvx2(const double* g, const double* pre, double* out,
                         size_t n) {
  ReluGradMulIntoScalar(g, pre, out, n);
}
void TanhGradMulIntoAvx2(const double* g, const double* post, double* out,
                         size_t n) {
  TanhGradMulIntoScalar(g, post, out, n);
}
void AccumSquaredCenteredAvx2(const double* x, const double* means,
                              double* acc, size_t n) {
  AccumSquaredCenteredScalar(x, means, acc, n);
}
void StandardizeIntoAvx2(const double* x, const double* means,
                         const double* stds, bool unit_variance, double* out,
                         size_t n) {
  StandardizeIntoScalar(x, means, stds, unit_variance, out, n);
}
void SquaredDistIntoAvx2(double norm_a, const double* norms_b,
                         const double* dots, double* out, size_t n) {
  SquaredDistIntoScalar(norm_a, norms_b, dots, out, n);
}
void ClampUnitFromTanhIntoAvx2(const double* x, double* out, size_t n) {
  ClampUnitFromTanhIntoScalar(x, out, n);
}
void ScaleClampIntoAvx2(const double* x, double factor, double clip,
                        double* out, size_t n) {
  ScaleClampIntoScalar(x, factor, clip, out, n);
}
void CholeskyDowndate4Avx2(const double* lower, size_t stride, size_t j0,
                           size_t k_end, const double* row, double* sums) {
  CholeskyDowndate4Scalar(lower, stride, j0, k_end, row, sums);
}

}  // namespace hunter::linalg::simd

#endif
