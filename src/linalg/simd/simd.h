// Runtime-dispatched vector kernel layer for the dense floating-point hot
// paths: the GEMM micro-kernels, the elementwise Matrix ops, the GP
// squared-distance expansion, the Cholesky row-append downdate, PCA
// centering/standardization, and the MLP activation / gradient / Adam /
// soft-update loops.
//
// Every kernel exists twice: a `*Scalar` fallback (always compiled at the
// build's baseline ISA) and a `*Avx2` lane (compiled in dedicated TUs with
// -mavx2 -mfma so the rest of the binary still runs on non-AVX2 hosts). The
// un-suffixed wrappers dispatch per call on common::ActiveSimdTier(), which
// honors HUNTER_FORCE_SCALAR=1 and the in-process testing override.
//
// The bit-exactness contract — the reason this layer can sit under code
// whose tests EXPECT_EQ doubles — rests on two rules:
//
//  1. Vectorize across INDEPENDENT OUTPUT ELEMENTS (column lanes), never
//     across a single element's reduction. A GEMM output element is one
//     accumulator whose contraction index ascends exactly as in the scalar
//     panel; packing eight neighboring accumulators into two YMM registers
//     changes which elements are computed together, not how any one of them
//     rounds. Genuine reductions (dot products, substitution sums, the
//     Cholesky diagonal) stay scalar.
//  2. No fused contraction. Every kernel issues a separate multiply and
//     add (vmulpd + vaddpd), each rounding to double, exactly like the
//     scalar expression under the tree-wide -ffp-contract=off (see the root
//     CMakeLists.txt). An FMA's single rounding would be "more accurate"
//     and therefore different — the *_vs_scalar equivalence gates demand
//     max_abs_diff 0.0, not "close".
//
// Predicated scalar constructs map to exact vector equivalents:
// `x > 0 ? x : 0` is vmaxpd(x, 0) (maxpd returns the second operand on NaN
// and on ±0 ties, matching the false branch); conditional divides blend the
// divisor (dividing by 1.0 is the identity); std::clamp is reproduced with
// compare+blend in the same test order rather than min/max so NaN inputs
// take the scalar path's value. Transcendentals (exp, tanh) never vectorize
// — libm's polynomials are not reproducible lane-wise — so callers split
// their loops: the algebraic part runs here, the libm call stays scalar.
//
// Raw intrinsics are permitted only in this directory and common/cpu.h
// (hunterlint rule no-raw-intrinsics-outside-simd).

#ifndef HUNTER_LINALG_SIMD_SIMD_H_
#define HUNTER_LINALG_SIMD_SIMD_H_

#include <cstddef>

#include "common/cpu.h"

namespace hunter::linalg::simd {

// True when the AVX2 TUs were compiled with real AVX2 code (x86-64 build
// with -mavx2 -mfma available); false when they are scalar-forwarding
// stubs. Defined in vec_avx2.cc.
extern const bool kHasAvx2Kernels;

// Should the next kernel invocation take the AVX2 lane? One global load
// plus the cached tier query — cheap enough to evaluate per call.
inline bool DispatchAvx2() {
  return kHasAvx2Kernels &&
         common::ActiveSimdTier() == common::SimdTier::kAvx2Fma;
}

// The tier this process is actually dispatching at (stubs report scalar
// even if the CPU has AVX2), for bench reports and obs metrics.
inline const char* ActiveTierName() {
  return common::SimdTierName(DispatchAvx2() ? common::SimdTier::kAvx2Fma
                                             : common::SimdTier::kScalar);
}
inline int ActiveTierIndex() { return DispatchAvx2() ? 1 : 0; }

// ---------------------------------------------------------------------------
// GEMM micro-kernels. Same contracts as linalg::GemmInto/GemmBiasInto/
// GemmTransposedAInto (which are now thin dispatchers over these): row-major
// operands, contraction index ascending per output element.
// ---------------------------------------------------------------------------

void GemmIntoScalar(const double* a, size_t m, size_t k, const double* b,
                    size_t n, bool accumulate, double* out);
void GemmBiasIntoScalar(const double* a, size_t m, size_t k, const double* b,
                        size_t n, const double* bias, double* out);
void GemmTransposedAIntoScalar(const double* a, size_t k, size_t m,
                               const double* b, size_t n, bool accumulate,
                               double* out);

void GemmIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                  size_t n, bool accumulate, double* out);
void GemmBiasIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                      size_t n, const double* bias, double* out);
void GemmTransposedAIntoAvx2(const double* a, size_t k, size_t m,
                             const double* b, size_t n, bool accumulate,
                             double* out);

inline void GemmInto(const double* a, size_t m, size_t k, const double* b,
                     size_t n, bool accumulate, double* out) {
  if (DispatchAvx2()) {
    GemmIntoAvx2(a, m, k, b, n, accumulate, out);
  } else {
    GemmIntoScalar(a, m, k, b, n, accumulate, out);
  }
}

inline void GemmBiasInto(const double* a, size_t m, size_t k, const double* b,
                         size_t n, const double* bias, double* out) {
  if (DispatchAvx2()) {
    GemmBiasIntoAvx2(a, m, k, b, n, bias, out);
  } else {
    GemmBiasIntoScalar(a, m, k, b, n, bias, out);
  }
}

inline void GemmTransposedAInto(const double* a, size_t k, size_t m,
                                const double* b, size_t n, bool accumulate,
                                double* out) {
  if (DispatchAvx2()) {
    GemmTransposedAIntoAvx2(a, k, m, b, n, accumulate, out);
  } else {
    GemmTransposedAIntoScalar(a, k, m, b, n, accumulate, out);
  }
}

// ---------------------------------------------------------------------------
// Elementwise kernels. All of them write out[i] from position i of their
// inputs only, so exact aliasing (out == x or out == y) is permitted — the
// in-place Matrix ops rely on it. Partial overlap is not.
// ---------------------------------------------------------------------------

// out[i] = x[i] + y[i]
void AddIntoScalar(const double* x, const double* y, double* out, size_t n);
void AddIntoAvx2(const double* x, const double* y, double* out, size_t n);

// out[i] = x[i] - y[i]
void SubIntoScalar(const double* x, const double* y, double* out, size_t n);
void SubIntoAvx2(const double* x, const double* y, double* out, size_t n);

// out[i] = x[i] * factor
void ScaleIntoScalar(const double* x, double factor, double* out, size_t n);
void ScaleIntoAvx2(const double* x, double factor, double* out, size_t n);

// y[i] += alpha * x[i]
void AxpyInPlaceScalar(double alpha, const double* x, double* y, size_t n);
void AxpyInPlaceAvx2(double alpha, const double* x, double* y, size_t n);

// dst[i] = tau * src[i] + (1 - tau) * dst[i]
void SoftUpdateInPlaceScalar(double tau, const double* src, double* dst,
                             size_t n);
void SoftUpdateInPlaceAvx2(double tau, const double* src, double* dst,
                           size_t n);

// One Adam step over a parameter span, replicating the Mlp update
// expression by expression:
//   g       = grads[i] * scale
//   m[i]    = beta1 * m[i] + (1 - beta1) * g
//   v[i]    = beta2 * v[i] + (1 - beta2) * g * g
//   p[i]   -= lr * (m[i] / bias1) / (sqrt(v[i] / bias2) + eps)
// sqrt is vsqrtpd (IEEE correctly rounded, identical to std::sqrt).
void AdamUpdateInPlaceScalar(double* p, const double* grads, double* m,
                             double* v, size_t n, double scale, double lr,
                             double beta1, double beta2, double bias1,
                             double bias2, double eps);
void AdamUpdateInPlaceAvx2(double* p, const double* grads, double* m,
                           double* v, size_t n, double scale, double lr,
                           double beta1, double beta2, double bias1,
                           double bias2, double eps);

// out[i] = x[i] > 0 ? x[i] : 0   (ReLU; vmaxpd matches the ternary exactly,
// including NaN and signed-zero inputs)
void ReluIntoScalar(const double* x, double* out, size_t n);
void ReluIntoAvx2(const double* x, double* out, size_t n);

// out[i] = g[i] * (pre[i] > 0 ? 1 : 0)   (ReLU backward: the multiply is
// kept so -0.0 and NaN gradients flow exactly as in the scalar path)
void ReluGradMulIntoScalar(const double* g, const double* pre, double* out,
                           size_t n);
void ReluGradMulIntoAvx2(const double* g, const double* pre, double* out,
                         size_t n);

// out[i] = g[i] * (1 - post[i] * post[i])   (tanh backward)
void TanhGradMulIntoScalar(const double* g, const double* post, double* out,
                           size_t n);
void TanhGradMulIntoAvx2(const double* g, const double* post, double* out,
                         size_t n);

// acc[i] += d * d with d = x[i] - means[i]   (column variance pass)
void AccumSquaredCenteredScalar(const double* x, const double* means,
                                double* acc, size_t n);
void AccumSquaredCenteredAvx2(const double* x, const double* means,
                              double* acc, size_t n);

// out[i] = x[i] - means[i], divided by stds[i] when unit_variance and
// stds[i] > 1e-12 (the conditional divide becomes a blend of the divisor
// with 1.0 — dividing by 1.0 is exact).
void StandardizeIntoScalar(const double* x, const double* means,
                           const double* stds, bool unit_variance,
                           double* out, size_t n);
void StandardizeIntoAvx2(const double* x, const double* means,
                         const double* stds, bool unit_variance, double* out,
                         size_t n);

// out[i] = max(0, (norm_a + norms_b[i]) - 2 * dots[i]) — the squared-
// distance expansion ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b used by the GP
// kernels. vmaxpd(sq, 0) matches std::max(0.0, sq) exactly (NaN and -0.0
// included). The exp() that follows stays scalar at the call site.
void SquaredDistIntoScalar(double norm_a, const double* norms_b,
                           const double* dots, double* out, size_t n);
void SquaredDistIntoAvx2(double norm_a, const double* norms_b,
                         const double* dots, double* out, size_t n);

// out[i] = clamp(0.5 * (x[i] + 1.0), 0, 1) — DDPG's tanh-to-unit-range
// action squash. Reproduces std::clamp's test order with compare+blend
// (v < lo first, then hi < v) so every input, NaN included, takes the
// scalar path's value.
void ClampUnitFromTanhIntoScalar(const double* x, double* out, size_t n);
void ClampUnitFromTanhIntoAvx2(const double* x, double* out, size_t n);

// out[i] = clamp(factor * x[i], -clip, clip) — DDPG's action-gradient
// scale + clip. `clip` must be > 0 (the no-clip case is ScaleInto).
void ScaleClampIntoScalar(const double* x, double factor, double clip,
                          double* out, size_t n);
void ScaleClampIntoAvx2(const double* x, double factor, double clip,
                        double* out, size_t n);

// Four adjacent lanes of the Cholesky row-append downdate:
//   sums[l] -= row[k] * lower[(j0 + l) * stride + k]   for k in [0, k_end)
// k ascends within each lane, matching the scalar recurrence term for term;
// the lanes are four INDEPENDENT output elements of the appended row. The
// triangular remainder (k in [k_end, j0 + l)) and the divide stay with the
// caller.
void CholeskyDowndate4Scalar(const double* lower, size_t stride, size_t j0,
                             size_t k_end, const double* row, double* sums);
void CholeskyDowndate4Avx2(const double* lower, size_t stride, size_t j0,
                           size_t k_end, const double* row, double* sums);

// Dispatching wrappers for the elementwise kernels.

inline void AddInto(const double* x, const double* y, double* out, size_t n) {
  if (DispatchAvx2()) AddIntoAvx2(x, y, out, n);
  else AddIntoScalar(x, y, out, n);
}

inline void SubInto(const double* x, const double* y, double* out, size_t n) {
  if (DispatchAvx2()) SubIntoAvx2(x, y, out, n);
  else SubIntoScalar(x, y, out, n);
}

inline void ScaleInto(const double* x, double factor, double* out, size_t n) {
  if (DispatchAvx2()) ScaleIntoAvx2(x, factor, out, n);
  else ScaleIntoScalar(x, factor, out, n);
}

inline void AxpyInPlace(double alpha, const double* x, double* y, size_t n) {
  if (DispatchAvx2()) AxpyInPlaceAvx2(alpha, x, y, n);
  else AxpyInPlaceScalar(alpha, x, y, n);
}

inline void SoftUpdateInPlace(double tau, const double* src, double* dst,
                              size_t n) {
  if (DispatchAvx2()) SoftUpdateInPlaceAvx2(tau, src, dst, n);
  else SoftUpdateInPlaceScalar(tau, src, dst, n);
}

inline void AdamUpdateInPlace(double* p, const double* grads, double* m,
                              double* v, size_t n, double scale, double lr,
                              double beta1, double beta2, double bias1,
                              double bias2, double eps) {
  if (DispatchAvx2()) {
    AdamUpdateInPlaceAvx2(p, grads, m, v, n, scale, lr, beta1, beta2, bias1,
                          bias2, eps);
  } else {
    AdamUpdateInPlaceScalar(p, grads, m, v, n, scale, lr, beta1, beta2,
                            bias1, bias2, eps);
  }
}

inline void ReluInto(const double* x, double* out, size_t n) {
  if (DispatchAvx2()) ReluIntoAvx2(x, out, n);
  else ReluIntoScalar(x, out, n);
}

inline void ReluGradMulInto(const double* g, const double* pre, double* out,
                            size_t n) {
  if (DispatchAvx2()) ReluGradMulIntoAvx2(g, pre, out, n);
  else ReluGradMulIntoScalar(g, pre, out, n);
}

inline void TanhGradMulInto(const double* g, const double* post, double* out,
                            size_t n) {
  if (DispatchAvx2()) TanhGradMulIntoAvx2(g, post, out, n);
  else TanhGradMulIntoScalar(g, post, out, n);
}

inline void AccumSquaredCentered(const double* x, const double* means,
                                 double* acc, size_t n) {
  if (DispatchAvx2()) AccumSquaredCenteredAvx2(x, means, acc, n);
  else AccumSquaredCenteredScalar(x, means, acc, n);
}

inline void StandardizeInto(const double* x, const double* means,
                            const double* stds, bool unit_variance,
                            double* out, size_t n) {
  if (DispatchAvx2()) {
    StandardizeIntoAvx2(x, means, stds, unit_variance, out, n);
  } else {
    StandardizeIntoScalar(x, means, stds, unit_variance, out, n);
  }
}

inline void SquaredDistInto(double norm_a, const double* norms_b,
                            const double* dots, double* out, size_t n) {
  if (DispatchAvx2()) SquaredDistIntoAvx2(norm_a, norms_b, dots, out, n);
  else SquaredDistIntoScalar(norm_a, norms_b, dots, out, n);
}

inline void ClampUnitFromTanhInto(const double* x, double* out, size_t n) {
  if (DispatchAvx2()) ClampUnitFromTanhIntoAvx2(x, out, n);
  else ClampUnitFromTanhIntoScalar(x, out, n);
}

inline void ScaleClampInto(const double* x, double factor, double clip,
                           double* out, size_t n) {
  if (DispatchAvx2()) ScaleClampIntoAvx2(x, factor, clip, out, n);
  else ScaleClampIntoScalar(x, factor, clip, out, n);
}

inline void CholeskyDowndate4(const double* lower, size_t stride, size_t j0,
                              size_t k_end, const double* row, double* sums) {
  if (DispatchAvx2()) CholeskyDowndate4Avx2(lower, stride, j0, k_end, row, sums);
  else CholeskyDowndate4Scalar(lower, stride, j0, k_end, row, sums);
}

}  // namespace hunter::linalg::simd

#endif  // HUNTER_LINALG_SIMD_SIMD_H_
