// Scalar GEMM fallback: the register-tiled panel kernels that used to live
// in linalg/matrix.cc, moved here verbatim so the dispatch layer owns both
// lanes. Always compiled at the build's baseline ISA; this is what runs
// under HUNTER_FORCE_SCALAR=1 and on hosts without AVX2, and what the AVX2
// lane is bit-compared against.

#include "linalg/simd/simd.h"

namespace hunter::linalg::simd {

namespace {

// Both kernels register-block a 4-row x 32-column output tile: the tile is
// read once, accumulated in a fixed-size local array, and stored once,
// instead of re-streaming the output row through memory on every step of
// the contraction. The contraction index still ascends for every
// individual output element, so blocking changes no rounding — results
// stay bit-identical to the plain triple loop (see matrix.h's contract).
constexpr size_t kRowBlock = 4;
constexpr size_t kColTile = 32;

// How a panel's accumulator tile starts: from the existing contents of
// `out` (accumulate mode), from zero (plain product — no zero-fill pass
// over `out` is needed since every element is stored exactly once), or
// from a broadcast bias row (the layer-forward kernel).
enum class PanelInit { kLoad, kZero, kBias };

// One column panel [j0, j0 + jw) of the output. kJw is kColTile for full
// panels — the constant inner trip counts let the compiler emit
// straight-line vector code over the register-held accumulator — and 0 for
// the ragged right edge, which falls back to runtime-width loops.
// kTransposedA selects how the contraction reads A: row-major (C = A B,
// the contraction walks a row of A) or transposed (C = A^T B, it walks a
// column of the k x m operand). Either way the contraction index kk
// ascends, matching the per-sample dot-product / gradient-accumulation
// order.
// hunterlint: hot
template <bool kTransposedA, size_t kJw, PanelInit kInit>
void GemmPanel(const double* __restrict a, size_t m, size_t k,
               const double* __restrict b, size_t n, size_t j0, size_t jw_in,
               const double* __restrict bias, double* __restrict out) {
  const size_t jw = kJw != 0 ? kJw : jw_in;
  size_t i = 0;
  for (; i + kRowBlock <= m; i += kRowBlock) {
    double acc[kRowBlock][kColTile];
    for (size_t ib = 0; ib < kRowBlock; ++ib) {
      const double* out_row = out + (i + ib) * n + j0;
      for (size_t j = 0; j < jw; ++j) {
        acc[ib][j] = kInit == PanelInit::kLoad   ? out_row[j]
                     : kInit == PanelInit::kBias ? bias[j0 + j]
                                                 : 0.0;
      }
    }
    for (size_t kk = 0; kk < k; ++kk) {
      const double* b_row = b + kk * n + j0;
      for (size_t ib = 0; ib < kRowBlock; ++ib) {
        const double a_ik =
            kTransposedA ? a[kk * m + i + ib] : a[(i + ib) * k + kk];
        for (size_t j = 0; j < jw; ++j) acc[ib][j] += a_ik * b_row[j];
      }
    }
    for (size_t ib = 0; ib < kRowBlock; ++ib) {
      double* out_row = out + (i + ib) * n + j0;
      for (size_t j = 0; j < jw; ++j) out_row[j] = acc[ib][j];
    }
  }
  for (; i < m; ++i) {
    double acc[kColTile];
    double* out_row = out + i * n + j0;
    for (size_t j = 0; j < jw; ++j) {
      acc[j] = kInit == PanelInit::kLoad   ? out_row[j]
               : kInit == PanelInit::kBias ? bias[j0 + j]
                                           : 0.0;
    }
    for (size_t kk = 0; kk < k; ++kk) {
      const double a_ik = kTransposedA ? a[kk * m + i] : a[i * k + kk];
      const double* b_row = b + kk * n + j0;
      for (size_t j = 0; j < jw; ++j) acc[j] += a_ik * b_row[j];
    }
    for (size_t j = 0; j < jw; ++j) out_row[j] = acc[j];
  }
}

// hunterlint: hot
template <bool kTransposedA, PanelInit kInit>
void GemmDispatch(const double* __restrict a, size_t m, size_t k,
                  const double* __restrict b, size_t n,
                  const double* __restrict bias, double* __restrict out) {
  size_t j0 = 0;
  for (; j0 + kColTile <= n; j0 += kColTile) {
    GemmPanel<kTransposedA, kColTile, kInit>(a, m, k, b, n, j0, kColTile, bias,
                                             out);
  }
  // The ragged right edge decomposes into constant-width sub-panels (one
  // 16-wide panel, then 2-wide pairs, then a final single column) instead
  // of one runtime-width panel: variable trip counts force masked,
  // partially-unrolled vector code that measures several times slower than
  // the straight-line constant-width panels. Widths 8 and 4 are skipped on
  // purpose — GCC's vectorizer emits pathologically slow code for those
  // trip counts (measured slower than a full 32-wide panel) while 16, 2
  // and 1 are all near the per-column cost of the main tile. Column
  // decomposition only partitions output elements between panels — each
  // element's contraction is untouched, so results are still bit-identical.
  if (j0 + 16 <= n) {
    GemmPanel<kTransposedA, 16, kInit>(a, m, k, b, n, j0, 16, bias, out);
    j0 += 16;
  }
  for (; j0 + 2 <= n; j0 += 2) {
    GemmPanel<kTransposedA, 2, kInit>(a, m, k, b, n, j0, 2, bias, out);
  }
  if (j0 < n) {
    GemmPanel<kTransposedA, 1, kInit>(a, m, k, b, n, j0, 1, bias, out);
  }
}

}  // namespace

void GemmIntoScalar(const double* a, size_t m, size_t k, const double* b,
                    size_t n, bool accumulate, double* out) {
  if (accumulate) {
    GemmDispatch<false, PanelInit::kLoad>(a, m, k, b, n, nullptr, out);
  } else {
    GemmDispatch<false, PanelInit::kZero>(a, m, k, b, n, nullptr, out);
  }
}

void GemmBiasIntoScalar(const double* a, size_t m, size_t k, const double* b,
                        size_t n, const double* bias, double* out) {
  GemmDispatch<false, PanelInit::kBias>(a, m, k, b, n, bias, out);
}

void GemmTransposedAIntoScalar(const double* a, size_t k, size_t m,
                               const double* b, size_t n, bool accumulate,
                               double* out) {
  // Contraction over the shared leading row index r of the k x m operand,
  // ascending — the same order in which the per-sample backward pass
  // accumulates parameter gradients.
  if (accumulate) {
    GemmDispatch<true, PanelInit::kLoad>(a, m, k, b, n, nullptr, out);
  } else {
    GemmDispatch<true, PanelInit::kZero>(a, m, k, b, n, nullptr, out);
  }
}

}  // namespace hunter::linalg::simd
