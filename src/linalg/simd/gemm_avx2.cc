// AVX2 GEMM lane. This TU is compiled with -mavx2 -mfma (see the simd
// CMakeLists); when the toolchain or target can't do that, the #else branch
// builds scalar-forwarding stubs instead, so the link always succeeds and
// the dispatcher simply never takes this lane.
//
// Bit-exactness vs gemm_scalar.cc: a GEMM output element is one accumulator
// whose contraction index kk ascends. The scalar panel holds 4 x 32
// accumulators in a local array; this kernel holds 6 rows x 8 columns of
// them in twelve YMM registers. Both are just different PARTITIONS of the
// same independent accumulators — element (i, j) sees init, then
// acc += a[i][kk] * b[kk][j] for kk = 0..k-1, then one store, in both
// lanes. The multiply and add are issued separately (vmulpd + vaddpd,
// never vfmadd — enforced by -ffp-contract=off even at -O3), so each step
// rounds exactly like the scalar `acc += a_ik * b_row[j]`. Column tails
// narrower than four lanes run the scalar expression directly.

#include "linalg/simd/simd.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <vector>

namespace hunter::linalg::simd {

namespace {

enum class PanelInit { kLoad, kZero, kBias };

// A(i, kk) for either operand orientation.
template <bool kTransposedA>
inline double LoadA(const double* a, size_t m, size_t k, size_t i,
                    size_t kk) {
  return kTransposedA ? a[kk * m + i] : a[i * k + kk];
}

// Four-lane accumulator init for output columns [j, j + 4). `if constexpr`
// keeps the bias indexing out of the kLoad/kZero instantiations, where
// `bias` is null.
template <PanelInit kInit>
inline __m256d InitLane([[maybe_unused]] const double* out_ptr,
                        [[maybe_unused]] const double* bias,
                        [[maybe_unused]] size_t j) {
  if constexpr (kInit == PanelInit::kLoad) {
    return _mm256_loadu_pd(out_ptr);
  } else if constexpr (kInit == PanelInit::kBias) {
    return _mm256_loadu_pd(bias + j);
  } else {
    return _mm256_setzero_pd();
  }
}

// Scalar-column accumulator init (the ragged tails).
template <PanelInit kInit>
inline double InitScalar([[maybe_unused]] const double* out_ptr,
                         [[maybe_unused]] const double* bias,
                         [[maybe_unused]] size_t j) {
  if constexpr (kInit == PanelInit::kLoad) {
    return *out_ptr;
  } else if constexpr (kInit == PanelInit::kBias) {
    return bias[j];
  } else {
    return 0.0;
  }
}

// Rows per register block. 6 rows x 8 columns is 12 YMM accumulators plus
// two B lanes and a broadcast — 15 of the 16 architectural registers, the
// classic no-FMA sweet spot: with only 8 accumulators the loop is bound by
// vaddpd latency on each accumulator's serial chain; 12 chains keep both FP
// ports busy every cycle (measured ~1.6x the 4 x 8 variant on the 128^3
// benchmark).
constexpr size_t kRows = 6;

// hunterlint: hot
template <bool kTransposedA, PanelInit kInit>
void GemmAvx2Impl(const double* __restrict a, size_t m, size_t k,
                  const double* __restrict b, size_t n,
                  const double* __restrict bias, double* __restrict out) {
  // B-strip pack scratch, hoisted out of the loops and reused across calls.
  // Without it, each strip walk touches k cache lines spaced n*8 bytes
  // apart — at n = 128 that sweeps the whole of B per strip and every load
  // misses L1. Packing is a pure copy (same values, and each element's
  // contraction still reads them in ascending kk order), so bit-exactness
  // is untouched.
  thread_local std::vector<double> pack_buf;
  size_t j = 0;
  // ---- Packed 8-column strips.
  if (n >= 8) {
    if (pack_buf.size() < k * 8) pack_buf.resize(k * 8);
    double* __restrict pack = pack_buf.data();
    for (; j + 8 <= n; j += 8) {
      for (size_t kk = 0; kk < k; ++kk) {
        const double* b_row = b + kk * n + j;
        _mm256_storeu_pd(pack + kk * 8, _mm256_loadu_pd(b_row));
        _mm256_storeu_pd(pack + kk * 8 + 4, _mm256_loadu_pd(b_row + 4));
      }
      size_t i = 0;
      // 6 x 8 register tile.
      for (; i + kRows <= m; i += kRows) {
        __m256d acc[kRows][2];
        for (size_t r = 0; r < kRows; ++r) {
          acc[r][0] = InitLane<kInit>(out + (i + r) * n + j, bias, j);
          acc[r][1] = InitLane<kInit>(out + (i + r) * n + j + 4, bias, j + 4);
        }
        for (size_t kk = 0; kk < k; ++kk) {
          const __m256d b0 = _mm256_loadu_pd(pack + kk * 8);
          const __m256d b1 = _mm256_loadu_pd(pack + kk * 8 + 4);
          for (size_t r = 0; r < kRows; ++r) {
            const __m256d av =
                _mm256_set1_pd(LoadA<kTransposedA>(a, m, k, i + r, kk));
            acc[r][0] = _mm256_add_pd(acc[r][0], _mm256_mul_pd(av, b0));
            acc[r][1] = _mm256_add_pd(acc[r][1], _mm256_mul_pd(av, b1));
          }
        }
        for (size_t r = 0; r < kRows; ++r) {
          _mm256_storeu_pd(out + (i + r) * n + j, acc[r][0]);
          _mm256_storeu_pd(out + (i + r) * n + j + 4, acc[r][1]);
        }
      }
      // Row tail (at most five rows), one row at a time.
      for (; i < m; ++i) {
        __m256d acc0 = InitLane<kInit>(out + i * n + j, bias, j);
        __m256d acc1 = InitLane<kInit>(out + i * n + j + 4, bias, j + 4);
        for (size_t kk = 0; kk < k; ++kk) {
          const __m256d av =
              _mm256_set1_pd(LoadA<kTransposedA>(a, m, k, i, kk));
          acc0 = _mm256_add_pd(
              acc0, _mm256_mul_pd(av, _mm256_loadu_pd(pack + kk * 8)));
          acc1 = _mm256_add_pd(
              acc1, _mm256_mul_pd(av, _mm256_loadu_pd(pack + kk * 8 + 4)));
        }
        _mm256_storeu_pd(out + i * n + j, acc0);
        _mm256_storeu_pd(out + i * n + j + 4, acc1);
      }
    }
  }
  // ---- One 4-column strip on the edge (unpacked: at most one such strip).
  if (j + 4 <= n) {
    size_t i = 0;
    for (; i + kRows <= m; i += kRows) {
      __m256d acc[kRows];
      for (size_t r = 0; r < kRows; ++r) {
        acc[r] = InitLane<kInit>(out + (i + r) * n + j, bias, j);
      }
      for (size_t kk = 0; kk < k; ++kk) {
        const __m256d b0 = _mm256_loadu_pd(b + kk * n + j);
        for (size_t r = 0; r < kRows; ++r) {
          const __m256d av =
              _mm256_set1_pd(LoadA<kTransposedA>(a, m, k, i + r, kk));
          acc[r] = _mm256_add_pd(acc[r], _mm256_mul_pd(av, b0));
        }
      }
      for (size_t r = 0; r < kRows; ++r) {
        _mm256_storeu_pd(out + (i + r) * n + j, acc[r]);
      }
    }
    for (; i < m; ++i) {
      __m256d acc = InitLane<kInit>(out + i * n + j, bias, j);
      for (size_t kk = 0; kk < k; ++kk) {
        const __m256d av =
            _mm256_set1_pd(LoadA<kTransposedA>(a, m, k, i, kk));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(av, _mm256_loadu_pd(b + kk * n + j)));
      }
      _mm256_storeu_pd(out + i * n + j, acc);
    }
    j += 4;
  }
  // ---- Scalar tail columns (at most three): the exact scalar expression.
  for (; j < n; ++j) {
    for (size_t i = 0; i < m; ++i) {
      double acc = InitScalar<kInit>(out + i * n + j, bias, j);
      for (size_t kk = 0; kk < k; ++kk) {
        acc += LoadA<kTransposedA>(a, m, k, i, kk) * b[kk * n + j];
      }
      out[i * n + j] = acc;
    }
  }
}

}  // namespace

void GemmIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                  size_t n, bool accumulate, double* out) {
  if (accumulate) {
    GemmAvx2Impl<false, PanelInit::kLoad>(a, m, k, b, n, nullptr, out);
  } else {
    GemmAvx2Impl<false, PanelInit::kZero>(a, m, k, b, n, nullptr, out);
  }
}

void GemmBiasIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                      size_t n, const double* bias, double* out) {
  GemmAvx2Impl<false, PanelInit::kBias>(a, m, k, b, n, bias, out);
}

void GemmTransposedAIntoAvx2(const double* a, size_t k, size_t m,
                             const double* b, size_t n, bool accumulate,
                             double* out) {
  if (accumulate) {
    GemmAvx2Impl<true, PanelInit::kLoad>(a, m, k, b, n, nullptr, out);
  } else {
    GemmAvx2Impl<true, PanelInit::kZero>(a, m, k, b, n, nullptr, out);
  }
}

}  // namespace hunter::linalg::simd

#else  // !(__x86_64__ && __AVX2__)

namespace hunter::linalg::simd {

void GemmIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                  size_t n, bool accumulate, double* out) {
  GemmIntoScalar(a, m, k, b, n, accumulate, out);
}

void GemmBiasIntoAvx2(const double* a, size_t m, size_t k, const double* b,
                      size_t n, const double* bias, double* out) {
  GemmBiasIntoScalar(a, m, k, b, n, bias, out);
}

void GemmTransposedAIntoAvx2(const double* a, size_t k, size_t m,
                             const double* b, size_t n, bool accumulate,
                             double* out) {
  GemmTransposedAIntoScalar(a, k, m, b, n, accumulate, out);
}

}  // namespace hunter::linalg::simd

#endif
