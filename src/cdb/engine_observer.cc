#include "cdb/engine_observer.h"

#include <string>

#include "cdb/metric_catalog.h"

namespace hunter::cdb {
namespace {

size_t IndexOf(const std::string& name) {
  const std::vector<std::string>& names = MetricNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return names.size();  // out of range; Record() skips it defensively
}

}  // namespace

EngineMetrics::EngineMetrics(obs::MetricsRegistry* registry)
    : hit_ratio_(registry->RegisterHistogram("engine.buffer_pool_hit_ratio")),
      group_commit_size_(
          registry->RegisterHistogram("engine.wal_group_commit_size")),
      deadlocks_(registry->RegisterCounter("engine.deadlocks")),
      hit_ratio_index_(IndexOf("buffer_pool_hit_ratio")),
      log_writes_index_(IndexOf("log_writes")),
      trx_commits_index_(IndexOf("trx_commits")),
      deadlocks_index_(IndexOf("lock_deadlocks")) {}

void EngineMetrics::Record(const std::vector<double>& metrics) {
  if (hit_ratio_index_ < metrics.size()) {
    hit_ratio_->Observe(metrics[hit_ratio_index_]);
  }
  // Commits per physical log write approximates the WAL group-commit batch
  // size; a sample with no log writes has no batches to report.
  if (log_writes_index_ < metrics.size() &&
      trx_commits_index_ < metrics.size() &&
      metrics[log_writes_index_] > 0.0) {
    group_commit_size_->Observe(metrics[trx_commits_index_] /
                                metrics[log_writes_index_]);
  }
  if (deadlocks_index_ < metrics.size()) {
    deadlocks_->Increment(metrics[deadlocks_index_]);
  }
}

}  // namespace hunter::cdb
