#include "cdb/cdb_instance.h"

namespace hunter::cdb {

CdbInstance::CdbInstance(const KnobCatalog* catalog,
                         InstanceType instance_type, EngineTuning tuning,
                         uint64_t seed)
    : catalog_(catalog),
      engine_(catalog, instance_type, tuning),
      config_(catalog->DefaultConfiguration()),
      rng_(seed) {}

DeployOutcome CdbInstance::DeployConfiguration(const Configuration& config) {
  DeployOutcome outcome;
  if (!engine_.ValidateBoot(config, nullptr)) {
    outcome.booted = false;
    outcome.deploy_seconds = kRestartDeploySeconds;  // failed boot attempt
    return outcome;
  }
  bool static_changed = false;
  for (size_t i = 0; i < catalog_->size(); ++i) {
    if (!catalog_->knob(i).dynamic && config[i] != config_[i]) {
      static_changed = true;
      break;
    }
  }
  config_ = config;
  if (static_changed) {
    outcome.restarted = true;
    ++restarts_;
    outcome.deploy_seconds = kRestartDeploySeconds + kWarmupSeconds;
    // The warm-up function reloads the buffer pool after the restart, so
    // the instance stays warm (at the cost of kWarmupSeconds above).
  } else {
    outcome.deploy_seconds = kDynamicDeploySeconds;
  }
  return outcome;
}

PerfResult CdbInstance::StressTest(const WorkloadProfile& workload) {
  // Lookup and accounting run unconditionally so the hit/miss counters —
  // and thus the journal bytes they end up in — are identical whether the
  // cache is enabled or not; the flag only gates the short-circuit.
  const std::array<uint64_t, 6> fingerprint = rng_.StateFingerprint();
  EvalCacheEntry* hit = nullptr;
  for (EvalCacheEntry& entry : eval_cache_) {
    if (entry.warm == warm_ && entry.rng_fingerprint == fingerprint &&
        entry.config == config_ && entry.workload == workload) {
      hit = &entry;
      break;
    }
  }
  if (hit != nullptr) {
    ++eval_cache_stats_.hits;
    if (eval_cache_enabled_) {
      // Identical config, workload, warmth and RNG position: the engine is
      // a deterministic function of exactly these, so the memoized result
      // and post-run RNG state are what a real run would produce.
      rng_ = hit->rng_after;
      if (hit->pool_reset) {
        // The replay this hit short-circuits would have re-armed the pool,
        // and — because the memoized first run already sized the slabs and
        // slabs never shrink — that Reset would have been a slab reuse.
        ++pool_stats_.resets;
        ++pool_stats_.slab_reuses;
      }
      PerfResult result = hit->result;
      if (!result.boot_failed) warm_ = true;  // pool is hot after a run
      return result;
    }
  } else {
    ++eval_cache_stats_.misses;
  }

  const uint64_t resets_before = engine_.pool_resets();
  const uint64_t reuses_before = engine_.pool_slab_reuses();
  PerfResult result = engine_.Run(config_, workload, warm_, &rng_);
  pool_stats_.resets += engine_.pool_resets() - resets_before;
  pool_stats_.slab_reuses += engine_.pool_slab_reuses() - reuses_before;
  if (hit == nullptr) {
    EvalCacheEntry entry;
    entry.config = config_;
    entry.workload = workload;
    entry.warm = warm_;  // pre-run warmth: part of the key
    entry.rng_fingerprint = fingerprint;
    entry.result = result;
    entry.rng_after = rng_;
    entry.pool_reset = engine_.pool_resets() > resets_before;
    if (eval_cache_.size() < kEvalCacheCapacity) {
      eval_cache_.push_back(std::move(entry));
    } else {
      eval_cache_[eval_cache_next_] = std::move(entry);
      eval_cache_next_ = (eval_cache_next_ + 1) % kEvalCacheCapacity;
    }
  }
  if (!result.boot_failed) warm_ = true;  // pool is hot after a run
  return result;
}

std::unique_ptr<CdbInstance> CdbInstance::Clone() {
  auto clone = std::make_unique<CdbInstance>(
      catalog_, engine_.instance(),
      EngineTuning{},  // placeholder, replaced below
      rng_.NextU64());
  // Copy the exact engine behaviour and configuration. The memo cache
  // itself is not inherited (the clone's RNG stream is fresh), but the
  // enablement policy is.
  clone->engine_ = engine_;
  clone->config_ = config_;
  clone->warm_ = false;  // a fresh clone starts cold
  clone->eval_cache_enabled_ = eval_cache_enabled_;
  return clone;
}

void CdbInstance::PointInTimeRecover() { warm_ = false; }

void CdbInstance::ResizeInstance(const InstanceType& new_type) {
  engine_.set_instance(new_type);
  warm_ = false;
  ++restarts_;
  // The engine's response surface changed; memoized results are stale.
  eval_cache_.clear();
  eval_cache_next_ = 0;
}

}  // namespace hunter::cdb
