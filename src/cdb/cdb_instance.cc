#include "cdb/cdb_instance.h"

namespace hunter::cdb {

CdbInstance::CdbInstance(const KnobCatalog* catalog,
                         InstanceType instance_type, EngineTuning tuning,
                         uint64_t seed)
    : catalog_(catalog),
      engine_(catalog, instance_type, tuning),
      config_(catalog->DefaultConfiguration()),
      rng_(seed) {}

DeployOutcome CdbInstance::DeployConfiguration(const Configuration& config) {
  DeployOutcome outcome;
  if (!engine_.ValidateBoot(config, nullptr)) {
    outcome.booted = false;
    outcome.deploy_seconds = kRestartDeploySeconds;  // failed boot attempt
    return outcome;
  }
  bool static_changed = false;
  for (size_t i = 0; i < catalog_->size(); ++i) {
    if (!catalog_->knob(i).dynamic && config[i] != config_[i]) {
      static_changed = true;
      break;
    }
  }
  config_ = config;
  if (static_changed) {
    outcome.restarted = true;
    ++restarts_;
    outcome.deploy_seconds = kRestartDeploySeconds + kWarmupSeconds;
    // The warm-up function reloads the buffer pool after the restart, so
    // the instance stays warm (at the cost of kWarmupSeconds above).
  } else {
    outcome.deploy_seconds = kDynamicDeploySeconds;
  }
  return outcome;
}

PerfResult CdbInstance::StressTest(const WorkloadProfile& workload) {
  PerfResult result = engine_.Run(config_, workload, warm_, &rng_);
  if (!result.boot_failed) warm_ = true;  // pool is hot after a run
  return result;
}

std::unique_ptr<CdbInstance> CdbInstance::Clone() {
  auto clone = std::make_unique<CdbInstance>(
      catalog_, engine_.instance(),
      EngineTuning{},  // placeholder, replaced below
      rng_.NextU64());
  // Copy the exact engine behaviour and configuration.
  clone->engine_ = engine_;
  clone->config_ = config_;
  clone->warm_ = false;  // a fresh clone starts cold
  return clone;
}

void CdbInstance::PointInTimeRecover() { warm_ = false; }

void CdbInstance::ResizeInstance(const InstanceType& new_type) {
  engine_.set_instance(new_type);
  warm_ = false;
  ++restarts_;
}

}  // namespace hunter::cdb
