#include "cdb/fitness.h"

#include <algorithm>
#include <cmath>

namespace hunter::cdb {

double Fitness(double alpha, const PerformanceSummary& current,
               const PerformanceSummary& defaults) {
  if (current.throughput_tps <= -1000.0 ||
      !std::isfinite(current.latency_p95_ms) ||
      !std::isfinite(current.throughput_tps)) {
    return kBootFailureFitness;
  }
  const double t_def = std::max(1e-9, defaults.throughput_tps);
  const double l_def = std::max(1e-9, defaults.latency_p95_ms);
  const double throughput_gain =
      (current.throughput_tps - defaults.throughput_tps) / t_def;
  const double latency_gain =
      (defaults.latency_p95_ms - current.latency_p95_ms) / l_def;
  const double fitness =
      alpha * throughput_gain + (1.0 - alpha) * latency_gain;
  return std::max(fitness, kBootFailureFitness);
}

}  // namespace hunter::cdb
