#include "cdb/metric_catalog.h"

#include <cmath>

namespace hunter::cdb {

namespace {

// One observed metric: an affine mixture of up to two latents. Weights are
// chosen so related counters co-vary (e.g., all flush counters track
// kLatFlushRate), which is exactly the redundancy PCA exploits.
struct MetricSpec {
  const char* name;
  LatentIndex primary;
  double primary_weight;
  LatentIndex secondary;
  double secondary_weight;
  double base;
};

constexpr MetricSpec kMetricSpecs[kNumMetrics] = {
    // Buffer pool family.
    {"buffer_pool_read_requests", kLatReadRowRate, 3.2, kLatHitRatio, 10.0, 50.0},
    {"buffer_pool_reads", kLatMissRate, 1.0, kLatReadRowRate, 0.002, 1.0},
    {"buffer_pool_hit_ratio", kLatHitRatio, 100.0, kLatMissRate, -0.0001, 0.0},
    {"buffer_pool_pages_total", kLatHitRatio, 5.0, kLatDirtyFraction, 0.2, 1000.0},
    {"buffer_pool_pages_free", kLatHitRatio, -4.0, kLatMissRate, -0.001, 900.0},
    {"buffer_pool_pages_dirty", kLatDirtyFraction, 800.0, kLatWriteRowRate, 0.01, 5.0},
    {"buffer_pool_bytes_dirty", kLatDirtyFraction, 13000.0, kLatWriteRowRate, 0.16, 80.0},
    {"buffer_pool_pages_data", kLatHitRatio, 900.0, kLatMissRate, 0.0005, 100.0},
    {"buffer_pool_wait_free", kLatDirtyFraction, 12.0, kLatIoUtil, 4.0, 0.0},
    {"buffer_pool_read_ahead", kLatMissRate, 0.12, kLatReadRowRate, 0.0005, 0.5},
    {"buffer_pool_read_ahead_evicted", kLatMissRate, 0.05, kLatDirtyFraction, 0.8, 0.1},
    {"buffer_pool_write_requests", kLatWriteRowRate, 2.4, kLatDirtyFraction, 3.0, 10.0},
    // Flushing / IO family.
    {"buffer_flush_batches", kLatFlushRate, 0.08, kLatIoUtil, 2.0, 0.2},
    {"buffer_flush_pages", kLatFlushRate, 1.0, kLatDirtyFraction, 10.0, 1.0},
    {"buffer_flush_neighbor_pages", kLatFlushRate, 0.3, kLatDirtyFraction, 4.0, 0.2},
    {"buffer_flush_adaptive_pages", kLatFlushRate, 0.55, kLatCheckpointRate, 30.0, 0.3},
    {"os_data_reads", kLatMissRate, 1.05, kLatIoUtil, 5.0, 2.0},
    {"os_data_writes", kLatFlushRate, 1.1, kLatWriteRowRate, 0.02, 3.0},
    {"os_data_fsyncs", kLatCommitRate, 0.4, kLatFlushRate, 0.05, 1.0},
    {"os_log_bytes_written", kLatWriteRowRate, 4.1, kLatCommitRate, 0.5, 8.0},
    {"os_log_fsyncs", kLatCommitRate, 0.9, kLatLogWait, 3.0, 0.5},
    {"os_log_pending_writes", kLatLogWait, 6.0, kLatCommitRate, 0.0002, 0.05},
    {"data_pending_reads", kLatMissRate, 0.004, kLatIoUtil, 3.0, 0.02},
    {"data_pending_writes", kLatFlushRate, 0.003, kLatIoUtil, 2.5, 0.02},
    // Log family.
    {"log_waits", kLatLogWait, 20.0, kLatCommitRate, 0.0001, 0.0},
    {"log_write_requests", kLatCommitRate, 1.6, kLatWriteRowRate, 0.4, 4.0},
    {"log_writes", kLatCommitRate, 1.1, kLatLogWait, 0.5, 2.0},
    {"log_padded", kLatCommitRate, 0.2, kLatLogWait, 1.5, 0.4},
    {"log_checkpoints", kLatCheckpointRate, 100.0, kLatFlushRate, 0.001, 0.01},
    {"log_lsn_checkpoint_age", kLatCheckpointRate, -500.0, kLatWriteRowRate, 0.9, 600.0},
    // Locking family.
    {"lock_deadlocks", kLatDeadlockRate, 10.0, kLatLockWait, 0.02, 0.0},
    {"lock_timeouts", kLatDeadlockRate, 4.0, kLatLockWait, 0.08, 0.0},
    {"lock_row_lock_waits", kLatLockWait, 6.0, kLatThreadsRunning, 0.2, 0.1},
    {"lock_row_lock_time_avg", kLatLockWait, 1.0, kLatDeadlockRate, 0.3, 0.05},
    {"lock_row_lock_time_max", kLatLockWait, 9.0, kLatDeadlockRate, 5.0, 0.5},
    {"lock_row_lock_current_waits", kLatLockWait, 0.9, kLatThreadsRunning, 0.12, 0.02},
    {"lock_rec_lock_requests", kLatWriteRowRate, 1.3, kLatLockWait, 0.4, 6.0},
    {"lock_table_lock_waits", kLatLockWait, 0.25, kLatConnChurn, 0.05, 0.01},
    // Throughput / row operation family.
    {"trx_commits", kLatCommitRate, 1.0, kLatThreadsRunning, 0.0, 0.0},
    {"trx_rollbacks", kLatDeadlockRate, 2.5, kLatCommitRate, 0.002, 0.05},
    {"trx_active", kLatThreadsRunning, 1.0, kLatLockWait, 0.2, 0.5},
    {"rows_read", kLatReadRowRate, 1.0, kLatHitRatio, 0.0, 5.0},
    {"rows_inserted", kLatWriteRowRate, 0.45, kLatCommitRate, 0.1, 1.0},
    {"rows_updated", kLatWriteRowRate, 0.4, kLatCommitRate, 0.15, 1.0},
    {"rows_deleted", kLatWriteRowRate, 0.12, kLatCommitRate, 0.02, 0.2},
    {"dml_reads_per_commit", kLatReadRowRate, 0.002, kLatCommitRate, -0.0004, 6.0},
    {"select_scans", kLatReadRowRate, 0.06, kLatTmpUsage, 0.8, 0.5},
    {"index_range_scans", kLatReadRowRate, 0.22, kLatHitRatio, 1.5, 1.0},
    // Threads / connections family.
    {"threads_running", kLatThreadsRunning, 1.0, kLatCpuUtil, 2.0, 1.0},
    {"threads_connected", kLatThreadsRunning, 1.8, kLatConnChurn, 0.4, 4.0},
    {"threads_created", kLatConnChurn, 1.0, kLatThreadsRunning, 0.02, 0.1},
    {"threads_cached", kLatConnChurn, -0.6, kLatThreadsRunning, 0.1, 8.0},
    {"connection_errors_max_conn", kLatConnChurn, 0.08, kLatThreadsRunning, 0.01, 0.0},
    {"aborted_clients", kLatConnChurn, 0.05, kLatDeadlockRate, 0.4, 0.01},
    // Resource utilization family.
    {"cpu_utilization_pct", kLatCpuUtil, 100.0, kLatThreadsRunning, 0.01, 0.0},
    {"io_utilization_pct", kLatIoUtil, 100.0, kLatMissRate, 0.0001, 0.0},
    {"cpu_system_pct", kLatCpuUtil, 22.0, kLatIoUtil, 8.0, 1.0},
    {"disk_queue_depth", kLatIoUtil, 14.0, kLatMissRate, 0.0008, 0.2},
    // Temp / sort / misc family.
    {"created_tmp_tables", kLatTmpUsage, 1.0, kLatReadRowRate, 0.001, 0.3},
    {"created_tmp_disk_tables", kLatTmpUsage, 0.25, kLatIoUtil, 0.5, 0.02},
    {"sort_merge_passes", kLatTmpUsage, 0.4, kLatIoUtil, 0.3, 0.05},
    {"table_open_cache_misses", kLatConnChurn, 0.3, kLatTmpUsage, 0.1, 0.1},
    {"adaptive_hash_searches", kLatReadRowRate, 0.8, kLatHitRatio, 6.0, 2.0},
};

static_assert(sizeof(kMetricSpecs) / sizeof(kMetricSpecs[0]) == kNumMetrics,
              "metric table must define exactly kNumMetrics entries");

}  // namespace

const std::vector<std::string>& MetricNames() {
  static const std::vector<std::string>* names = [] {
    auto* list = new std::vector<std::string>();
    list->reserve(kNumMetrics);
    for (const MetricSpec& spec : kMetricSpecs) list->emplace_back(spec.name);
    return list;
  }();
  return *names;
}

std::vector<double> LatentsToMetrics(
    const std::array<double, kNumLatents>& latents, common::Rng* rng) {
  std::vector<double> metrics(kNumMetrics);
  for (size_t i = 0; i < kNumMetrics; ++i) {
    const MetricSpec& spec = kMetricSpecs[i];
    double value = spec.base + spec.primary_weight * latents[spec.primary] +
                   spec.secondary_weight * latents[spec.secondary];
    if (rng != nullptr) {
      // ~4.5% relative observation noise plus a small absolute floor
      // (calibrated so PCA needs ~13 components for 90% variance, Fig. 7).
      value += rng->Gaussian(0.0, 0.045 * std::abs(value) + 0.02);
    }
    metrics[i] = value;
  }
  return metrics;
}

}  // namespace hunter::cdb
