// The simulated cloud DBMS.
//
// This is the substitution for the paper's real MySQL / PostgreSQL cloud
// instances (see DESIGN.md §1). One stress test = one call to Run(): the
// engine streams sampled page accesses through a real LRU buffer pool,
// replays transactions over a miniature lock table, prices the commit path
// with a group-commit WAL model, and resolves throughput via bottleneck
// analysis over four resources (worker threads, CPU with USL-style latch
// contention, the data device, and the serial log device). Latency follows
// from the closed-loop population (p95 with a variability inflation driven
// by stalls and conflicts). 63 metrics are emitted as mixtures of the
// engine's latent quantities.
//
// Every mechanism is knob-driven through KnobRole, so the same engine serves
// the MySQL-style and PostgreSQL-style catalogs.

#ifndef HUNTER_CDB_SIMULATED_ENGINE_H_
#define HUNTER_CDB_SIMULATED_ENGINE_H_

#include <array>
#include <vector>

#include "cdb/buffer_pool.h"
#include "cdb/instance_type.h"
#include "cdb/knob.h"
#include "cdb/lock_manager.h"
#include "cdb/metric_catalog.h"
#include "cdb/workload_profile.h"
#include "common/rng.h"

namespace hunter::cdb {

struct PerfResult {
  bool boot_failed = false;
  double throughput_tps = 0.0;   // committed transactions per second
  double latency_p95_ms = 0.0;   // 95th-percentile transaction latency
  double latency_p99_ms = 0.0;
  std::vector<double> metrics;   // the 63-metric state vector
  std::array<double, kNumLatents> latents{};  // engine internals (diagnostics)
};

// Sentinel performance for configurations that fail to boot (§2.1: the
// Actor records throughput -1000 and latency "infinity").
PerfResult BootFailureResult();

struct EngineTuning {
  // DBMS-flavor constants; PostgreSQL runs slightly leaner per operation in
  // the paper's numbers (77.8k vs 68.9k txn/min on TPC-C).
  double cpu_scale = 1.0;
  double latch_sigma = 0.008;    // USL contention coefficient
  double latch_kappa = 1.2e-6;   // USL coherency coefficient
  double io_read_ms = 0.35;      // network-attached storage read latency
  double fg_flush_ms = 0.35;     // foreground flush penalty per surplus page
  double noise_sigma = 0.006;    // multiplicative run-to-run noise
};

EngineTuning MySqlEngineTuning();
EngineTuning PostgresEngineTuning();

class SimulatedEngine {
 public:
  SimulatedEngine(const KnobCatalog* catalog, InstanceType instance,
                  EngineTuning tuning);

  // Returns true if the configuration can boot on this instance. A reason
  // string (for logs/tests) is written when provided.
  bool ValidateBoot(const Configuration& config, std::string* reason) const;

  // Runs one stress test of `workload` under `config`. `warm_start` models
  // the CDB warm-up function (buffer pool reloaded after restart, §5).
  PerfResult Run(const Configuration& config, const WorkloadProfile& workload,
                 bool warm_start, common::Rng* rng) const;

  const InstanceType& instance() const { return instance_; }
  void set_instance(const InstanceType& instance) { instance_ = instance; }
  const KnobCatalog& catalog() const { return *catalog_; }

  // Buffer-pool reuse accounting: how many times Run re-armed the pool, and
  // how many of those reused the existing slabs without reallocating.
  uint64_t pool_resets() const { return pool_.resets(); }
  uint64_t pool_slab_reuses() const { return pool_.slab_reuses(); }

 private:
  // Hash-derived response constants of one generic minor knob, computed
  // once at construction instead of re-hashing the knob name on every Run
  // (65 knobs x FNV over the name x thousands of stress tests per tuning
  // run). `opt_base` is the workload-independent part of the optimum
  // position; Run adds the read-fraction shift.
  struct GenericKnobEffect {
    size_t knob_index = 0;
    double weight = 0.0;
    double opt_base = 0.0;
  };

  double KnobValue(const Configuration& config, KnobRole role,
                   double fallback) const;

  // Replays the precomputed access stream through pool_: warmup accesses,
  // counter reset, then the measured window with periodic background
  // flushing. Factored out of Run so the hottest loop in the engine is a
  // single annotated function over flat arrays.
  void ReplayAccessStream(int warmup, double io_capacity) const;

  const KnobCatalog* catalog_;  // not owned
  InstanceType instance_;
  EngineTuning tuning_;
  std::vector<int> role_index_;  // role -> knob index (-1 if absent)
  std::vector<GenericKnobEffect> generic_knobs_;

  // Scratch for the precomputed page-access stream (pages + write flags in
  // the original interleaved draw order). An engine is driven by one actor
  // at a time, so reusing the buffers across Run calls is safe and keeps
  // the steady state allocation-free.
  mutable std::vector<uint64_t> access_pages_;
  mutable std::vector<uint8_t> access_is_write_;
  // One pool per engine, re-armed via Reset(capacity) at the top of every
  // Run instead of being reconstructed — the slabs survive across
  // evaluations (pool_.slab_reuses() counts the hits).
  mutable BufferPool pool_{1};
  // Per-purpose Zipf samplers. The page draws (data_pages, zipf_theta) and
  // the lock-row draws (hot_rows, lock_zipf_theta) alternate within every
  // Run; a single shared constants cache (the Rng's) would recompute both
  // zeta sums on every evaluation, so each stream keeps its own warm table.
  mutable common::ZipfTable access_zipf_;
  mutable common::ZipfTable lock_zipf_;
  // Scratch lock table handed to LockManager::Simulate so the row-entry
  // slab survives across evaluations too (reset, never reallocated, in
  // steady state).
  mutable LockManager::Table lock_table_;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_SIMULATED_ENGINE_H_
