// The paper's fitness / reward function (Equation 1):
//
//   f(K_i) = alpha * (T_cur - T_def) / T_def
//          + (1 - alpha) * (L_def - L_cur) / L_def
//
// shared verbatim between the GA Sample Factory's fitness and the DDPG
// Recommender's reward ("the reward function is calculated in the same way
// as the fitness function", §3.3). alpha is user-adjustable via Rules.

#ifndef HUNTER_CDB_FITNESS_H_
#define HUNTER_CDB_FITNESS_H_

namespace hunter::cdb {

struct PerformanceSummary {
  double throughput_tps = 0.0;
  double latency_p95_ms = 0.0;
};

// Equation 1. Boot failures (throughput <= -1000 or non-finite latency) are
// clamped to a large negative fitness so they are strongly avoided without
// destabilizing learning with infinities.
double Fitness(double alpha, const PerformanceSummary& current,
               const PerformanceSummary& defaults);

// Lower bound assigned to failed configurations.
inline constexpr double kBootFailureFitness = -2.0;

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_FITNESS_H_
