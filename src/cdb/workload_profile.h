// Engine-facing description of a workload's access pattern. The workload
// module (Sysbench/TPC-C/Production generators, DAG replay) produces these;
// the simulated engine consumes them. Keeping the profile here avoids a
// dependency cycle between the cdb and workload layers.

#ifndef HUNTER_CDB_WORKLOAD_PROFILE_H_
#define HUNTER_CDB_WORKLOAD_PROFILE_H_

#include <cstdint>
#include <string>

namespace hunter::cdb {

struct WorkloadProfile {
  std::string name = "unnamed";
  double data_size_gb = 8.0;       // logical data volume
  int client_threads = 32;         // offered (closed-loop) concurrency
  double read_fraction = 0.65;     // reads / (reads + writes) among row ops
  double scan_fraction = 0.05;     // fraction of reads that are range scans
  double zipf_theta = 0.8;         // page/row access skew
  double ops_per_txn = 30.0;       // row operations per transaction
  double write_rows_per_txn = 8.0; // write-locked rows per transaction
  // Conflict model: only `hot_writes_per_txn` of the writes land in the
  // `hot_rows` conflict-prone set (e.g., TPC-C's district rows); the rest
  // spread over a population too large to conflict.
  double hot_writes_per_txn = 2.0;
  uint64_t hot_rows = 2000000;     // conflict-prone row population
  double lock_zipf_theta = 0.2;    // skew within the hot set
  double redo_kb_per_txn = 4.0;    // redo volume per transaction
  double cpu_ms_per_op = 0.2;      // CPU cost per row operation (workload weight)
  // Concurrency ceiling imposed by the client (e.g., the transaction
  // dependency graph of a Production replay); 0 = unbounded.
  double max_replay_parallelism = 0.0;

  // Exact field-wise equality — the workload-spec component of the
  // simulated engine's steady-state memo key.
  friend bool operator==(const WorkloadProfile&,
                         const WorkloadProfile&) = default;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_WORKLOAD_PROFILE_H_
