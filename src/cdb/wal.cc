#include "cdb/wal.h"

#include <algorithm>
#include <cmath>

namespace hunter::cdb {

WalCost WalModel::Estimate(const WalConfig& config,
                           const WalWorkload& workload) {
  WalCost cost;

  // ---- Redo sync cost with group commit.
  // Commits arriving while one fsync is in flight join its group, so the
  // effective group size grows with the commit arrival rate.
  const double arrivals_per_fsync =
      workload.commit_rate_tps * config.fsync_ms / 1000.0;
  const double group = std::clamp(arrivals_per_fsync, 1.0,
                                  std::max(1.0, workload.concurrent_committers));
  switch (config.flush_policy) {
    case 0:  // write to log buffer only
      cost.commit_cost_ms += 0.005;
      break;
    case 1:  // fsync every commit (amortized across the commit group)
      cost.commit_cost_ms += config.fsync_ms / group + 0.01;
      break;
    default:  // write to OS cache per commit, background sync ~1/s
      cost.commit_cost_ms += 0.02;
      break;
  }

  // ---- Binlog / secondary log sync.
  if (config.binlog_sync_every > 0) {
    cost.commit_cost_ms += config.fsync_ms /
                           (static_cast<double>(config.binlog_sync_every) * group);
  }

  // ---- Log-buffer waits: if a second's worth of redo exceeds the buffer,
  // committers stall on synchronous buffer flushes.
  const double redo_mb_per_sec =
      workload.commit_rate_tps * workload.redo_kb_per_txn / 1024.0;
  const double buffer_turnovers_per_sec =
      redo_mb_per_sec / std::max(0.25, config.log_buffer_mb);
  if (buffer_turnovers_per_sec > 2.0) {
    // Each turnover beyond ~2/s adds a synchronous write the committers
    // share; cost grows smoothly with pressure.
    cost.log_wait_ms = 0.05 * (buffer_turnovers_per_sec - 2.0);
  }

  // ---- Checkpoint pressure: filling the redo log forces a sharp
  // checkpoint whose stall is amortized over the commits in between.
  if (redo_mb_per_sec > 0.0) {
    const double seconds_to_fill =
        std::max(1.0, config.log_file_mb / redo_mb_per_sec);
    cost.checkpoints_per_sec = 1.0 / seconds_to_fill;
    // A sharp checkpoint writes out the dirty tail; better io_capacity
    // absorbs it faster. Penalty spread over the interval's commits.
    const double checkpoint_pause_ms =
        250000.0 / std::max(100.0, config.io_capacity);
    cost.checkpoint_stall_ms =
        checkpoint_pause_ms /
        std::max(1.0, seconds_to_fill * workload.commit_rate_tps);
  }

  // ---- Write amplification from durability features.
  if (config.doublewrite) cost.write_amplification += 0.8;
  if (config.flush_method != 2) {
    // Buffered IO double-copies through the OS page cache.
    cost.write_amplification += 0.25;
    cost.commit_cost_ms *= 1.05;
  }

  return cost;
}

}  // namespace hunter::cdb
