#include "cdb/wal.h"

#include <algorithm>
#include <cmath>

namespace hunter::cdb {

WalCost WalModel::Estimate(const WalConfig& config,
                           const WalWorkload& workload) {
  return EstimateAtRate(Precompute(config, workload),
                        workload.commit_rate_tps);
}

WalInvariants WalModel::Precompute(const WalConfig& config,
                                   const WalWorkload& workload) {
  WalInvariants inv;
  inv.flush_policy = config.flush_policy;
  inv.fsync_ms = config.fsync_ms;
  inv.binlog_sync_every = static_cast<double>(config.binlog_sync_every);
  inv.redo_kb_per_txn = workload.redo_kb_per_txn;
  inv.log_buffer_denom_mb = std::max(0.25, config.log_buffer_mb);
  inv.log_file_mb = config.log_file_mb;
  inv.checkpoint_pause_ms = 250000.0 / std::max(100.0, config.io_capacity);
  inv.group_cap = std::max(1.0, workload.concurrent_committers);
  // ---- Write amplification from durability features (rate-independent).
  inv.base_write_amplification = 1.0;
  if (config.doublewrite) inv.base_write_amplification += 0.8;
  if (config.flush_method != 2) {
    // Buffered IO double-copies through the OS page cache.
    inv.base_write_amplification += 0.25;
    inv.commit_cost_multiplier = 1.05;
  }
  return inv;
}

WalCost WalModel::EstimateAtRate(const WalInvariants& inv,
                                 double commit_rate_tps) {
  WalCost cost;

  // ---- Redo sync cost with group commit.
  // Commits arriving while one fsync is in flight join its group, so the
  // effective group size grows with the commit arrival rate.
  const double arrivals_per_fsync = commit_rate_tps * inv.fsync_ms / 1000.0;
  const double group = std::clamp(arrivals_per_fsync, 1.0, inv.group_cap);
  switch (inv.flush_policy) {
    case 0:  // write to log buffer only
      cost.commit_cost_ms += 0.005;
      break;
    case 1:  // fsync every commit (amortized across the commit group)
      cost.commit_cost_ms += inv.fsync_ms / group + 0.01;
      break;
    default:  // write to OS cache per commit, background sync ~1/s
      cost.commit_cost_ms += 0.02;
      break;
  }

  // ---- Binlog / secondary log sync.
  if (inv.binlog_sync_every > 0) {
    cost.commit_cost_ms += inv.fsync_ms / (inv.binlog_sync_every * group);
  }

  // ---- Log-buffer waits: if a second's worth of redo exceeds the buffer,
  // committers stall on synchronous buffer flushes.
  const double redo_mb_per_sec =
      commit_rate_tps * inv.redo_kb_per_txn / 1024.0;
  const double buffer_turnovers_per_sec =
      redo_mb_per_sec / inv.log_buffer_denom_mb;
  if (buffer_turnovers_per_sec > 2.0) {
    // Each turnover beyond ~2/s adds a synchronous write the committers
    // share; cost grows smoothly with pressure.
    cost.log_wait_ms = 0.05 * (buffer_turnovers_per_sec - 2.0);
  }

  // ---- Checkpoint pressure: filling the redo log forces a sharp
  // checkpoint whose stall is amortized over the commits in between.
  if (redo_mb_per_sec > 0.0) {
    const double seconds_to_fill =
        std::max(1.0, inv.log_file_mb / redo_mb_per_sec);
    cost.checkpoints_per_sec = 1.0 / seconds_to_fill;
    // A sharp checkpoint writes out the dirty tail; better io_capacity
    // absorbs it faster. Penalty spread over the interval's commits.
    cost.checkpoint_stall_ms =
        inv.checkpoint_pause_ms /
        std::max(1.0, seconds_to_fill * commit_rate_tps);
  }

  cost.write_amplification = inv.base_write_amplification;
  cost.commit_cost_ms *= inv.commit_cost_multiplier;
  return cost;
}

}  // namespace hunter::cdb
