// Typed knob definitions and configurations.
//
// A KnobDef describes one tunable DBMS parameter: its domain (integer,
// double, enum, bool), range, default, whether it is *dynamic* (changeable
// without a restart — the paper's availability discussion hinges on this),
// and its *role*: the physical mechanism it drives inside the simulated
// engine. Roles let one engine implementation serve both the MySQL-style and
// PostgreSQL-style catalogs, mirroring how the paper tunes both systems with
// one tuner.
//
// All tuning algorithms operate on normalized configurations in [0,1]^m;
// KnobCatalog converts between normalized and raw values (log-scaled for
// knobs spanning orders of magnitude) and snaps integers/enums.

#ifndef HUNTER_CDB_KNOB_H_
#define HUNTER_CDB_KNOB_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace hunter::cdb {

enum class KnobType { kInteger, kDouble, kEnum, kBool };

// The physical mechanism a knob drives in the simulated engine. Knobs with
// kGeneric get a small, smooth, workload-dependent effect so that the long
// tail of 40+ minor knobs exists (needed for the Fig. 8 knob-sifting knee)
// without each one requiring bespoke physics.
enum class KnobRole {
  kBufferPoolSize,      // cache capacity (MB)
  kFlushPolicy,         // 0: no sync, 1: sync every commit, 2: sync ~1/s
  kBinlogSync,          // sync binlog every N commits (0 = never)
  kLogFileSize,         // redo capacity (MB) -> checkpoint pressure
  kLogBufferSize,       // log buffer (MB) -> log waits
  kIoCapacity,          // background flush IOPS
  kIoCapacityMax,       // burst flush IOPS
  kThreadConcurrency,   // kernel thread cap (0 = unlimited)
  kMaxConnections,      // connection cap
  kBufferPoolInstances, // latch partitioning
  kReadIoThreads,       // read IO parallelism
  kWriteIoThreads,      // write IO parallelism
  kThreadCache,         // connection/thread reuse
  kFlushMethod,         // 0 buffered, 1 dsync, 2 O_DIRECT
  kAdaptiveHash,        // bool: read CPU boost, write latch cost
  kChangeBuffering,     // bool-ish: secondary index write buffering
  kMaxDirtyPct,         // dirty-page stall threshold (%)
  kLruScanDepth,        // page-cleaner efficiency
  kLockWaitTimeout,     // seconds a txn waits for a row lock
  kDeadlockDetect,      // bool: active deadlock detection
  kTableCache,          // table/metadata cache entries
  kDoubleWrite,         // bool: doublewrite / full-page-writes overhead
  kGeneric,             // minor knob with a generic smooth effect
};

struct KnobDef {
  std::string name;
  KnobType type = KnobType::kDouble;
  KnobRole role = KnobRole::kGeneric;
  double min_value = 0.0;
  double max_value = 1.0;
  double default_value = 0.0;
  bool dynamic = true;       // false => restart required to take effect
  bool log_scale = false;    // normalize in log space (wide-range knobs)
  std::string unit;
  std::vector<std::string> enum_values;  // for kEnum (indices 0..n-1)
  std::string description;
};

// A raw configuration: one value per catalog knob, in catalog order.
using Configuration = std::vector<double>;

class KnobCatalog {
 public:
  KnobCatalog() = default;
  explicit KnobCatalog(std::string dbms_name, std::vector<KnobDef> knobs);

  const std::string& dbms_name() const { return dbms_name_; }
  size_t size() const { return knobs_.size(); }
  const KnobDef& knob(size_t index) const { return knobs_[index]; }
  const std::vector<KnobDef>& knobs() const { return knobs_; }

  // Index of a knob by name; -1 if absent.
  int IndexOf(const std::string& name) const;

  // First knob with the given role; -1 if absent.
  int IndexOfRole(KnobRole role) const;

  // The DBMS's default configuration.
  Configuration DefaultConfiguration() const;

  // Normalized [0,1] <-> raw conversions. Raw values are snapped to the
  // knob's domain (integers rounded, enums/bools floored into range).
  double Normalize(size_t index, double raw_value) const;
  double Denormalize(size_t index, double normalized) const;
  std::vector<double> NormalizeConfiguration(const Configuration& config) const;
  Configuration DenormalizeConfiguration(
      const std::vector<double>& normalized) const;

  // Snaps a raw value into the knob's domain and granularity.
  double Snap(size_t index, double raw_value) const;

 private:
  std::string dbms_name_;
  std::vector<KnobDef> knobs_;
  std::unordered_map<std::string, size_t> index_by_name_;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_KNOB_H_
