// Factory functions for the two knob catalogs used in the paper's
// evaluation: 65 MySQL 5.7-style knobs and 65 PostgreSQL 12-style knobs
// (the paper initializes 65 knobs "according to the settings of CDBTune").
// Ranges and defaults follow the real systems where the simulation models
// the mechanism, and sensible synthetic ranges for the generic minor knobs.

#ifndef HUNTER_CDB_KNOB_CATALOG_H_
#define HUNTER_CDB_KNOB_CATALOG_H_

#include "cdb/knob.h"

namespace hunter::cdb {

// 65-knob MySQL/InnoDB-style catalog.
KnobCatalog MySqlCatalog();

// 65-knob PostgreSQL-style catalog.
KnobCatalog PostgresCatalog();

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_KNOB_CATALOG_H_
