// Row-lock contention simulation.
//
// The engine calls this once per stress test to estimate lock waiting,
// deadlocks, and timeouts under the workload's conflict profile. Rather than
// a closed-form approximation, transactions are replayed over a miniature
// lock table on a simulated timeline so that conflict behaviour emerges from
// skew (Zipfian row choice), concurrency, and hold times — the mechanisms
// the lock-related knobs (innodb_lock_wait_timeout, innodb_deadlock_detect)
// actually manipulate.

#ifndef HUNTER_CDB_LOCK_MANAGER_H_
#define HUNTER_CDB_LOCK_MANAGER_H_

#include <cstddef>
#include <cstdint>

#include "common/flat_hash.h"
#include "common/rng.h"

namespace hunter::cdb {

struct LockSimConfig {
  size_t num_txns = 2000;          // transactions to replay
  double concurrency = 32;         // transactions in flight at once
  double writes_per_txn = 5;       // write-locked rows per transaction
  uint64_t hot_rows = 100000;      // size of the conflict-prone row set
  double zipf_theta = 0.8;         // row-choice skew
  double hold_time_ms = 5.0;       // average lock hold time
  double lock_wait_timeout_ms = 50000;
  bool deadlock_detect = true;
};

struct LockSimResult {
  double mean_wait_ms = 0.0;       // average wait added per transaction
  double conflict_rate = 0.0;      // fraction of txns that waited at all
  double deadlock_rate = 0.0;      // deadlocks per transaction
  double timeout_rate = 0.0;       // lock-wait timeouts per transaction
};

class LockManager {
 public:
  // One row's lock state on the simulated timeline.
  struct Entry {
    double release_time = 0.0;
    // End of the holder's acquisition phase; a waiter arriving before this
    // can form a cycle with the holder (both still collecting locks).
    double acquire_end = 0.0;
  };
  // The miniature lock table. Callers may own one and pass it to Simulate
  // so its slab is reused across calls.
  using Table = common::FlatHashMap64<Entry>;

  // Replays `config.num_txns` transactions over a miniature lock table.
  // `zipf` optionally supplies a caller-owned row sampler so its cached
  // (hot_rows, zipf_theta) constants survive across calls (the simulated
  // engine keeps one per instance); it is rebound to the config's
  // distribution here, and the draw stream is identical to the
  // rng->Zipf(hot_rows, zipf_theta) calls it replaces. `table` optionally
  // supplies a caller-owned scratch lock table (reset here), which skips
  // the per-call slab allocation. Pass nullptr for either to use
  // call-local state; the simulation's results are identical both ways.
  static LockSimResult Simulate(const LockSimConfig& config, common::Rng* rng,
                                common::ZipfTable* zipf = nullptr,
                                Table* table = nullptr);
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_LOCK_MANAGER_H_
