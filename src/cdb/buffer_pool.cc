#include "cdb/buffer_pool.h"

#include <algorithm>

namespace hunter::cdb {

void BufferPool::Reset(uint64_t capacity_pages) {
  capacity_ = std::max<uint64_t>(1, capacity_pages);
  bool reused = lru_.Reset(capacity_);
  if (dirty_.size() < capacity_) {
    // Stale dirty bits are never read: every insert writes its slot's bit
    // before any read, so the slab only needs to be large enough.
    dirty_.resize(capacity_);
    reused = false;
  }
  dirty_count_ = 0;
  hits_ = 0;
  misses_ = 0;
  dirty_evictions_ = 0;
  ++resets_;
  if (reused) ++slab_reuses_;
}

void BufferPool::EvictOne() {
  const uint32_t victim = lru_.back();
  if (dirty_[victim] != 0) {
    ++dirty_evictions_;
    --dirty_count_;
  }
  lru_.EvictBack();
}

// hunterlint: hot
uint64_t BufferPool::FlushDirty(uint64_t max_pages) {
  uint64_t cleaned = 0;
  // Clean from the cold end of the LRU, as page cleaners do. Stopping once
  // no dirty pages remain skips a provably no-op tail walk.
  for (uint32_t slot = lru_.back();
       slot != common::FlatLru::kNil && cleaned < max_pages &&
       dirty_count_ != 0;
       slot = lru_.Warmer(slot)) {
    if (dirty_[slot] != 0) {
      dirty_[slot] = 0;
      --dirty_count_;
      ++cleaned;
    }
  }
  return cleaned;
}

double BufferPool::HitRatio() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

double BufferPool::DirtyFraction() const {
  return lru_.size() == 0
             ? 0.0
             : static_cast<double>(dirty_count_) /
                   static_cast<double>(lru_.size());
}

void BufferPool::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
  dirty_evictions_ = 0;
}

void BufferPool::Prewarm(uint64_t n) {
  const uint64_t count = std::min(n, capacity_);
  for (uint64_t page = 0; page < count; ++page) {
    if (lru_.Find(page) == common::FlatLru::kNil) {
      if (lru_.size() >= capacity_) EvictOne();
      // Prewarmed pages are colder than live traffic.
      const uint32_t slot = lru_.InsertBack(page);
      dirty_[slot] = 0;
    }
  }
}

}  // namespace hunter::cdb
