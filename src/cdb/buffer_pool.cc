#include "cdb/buffer_pool.h"

#include <algorithm>

namespace hunter::cdb {

BufferPool::BufferPool(uint64_t capacity_pages)
    : capacity_(std::max<uint64_t>(1, capacity_pages)) {
  entries_.reserve(capacity_);
}

bool BufferPool::Access(uint64_t page_id, bool make_dirty) {
  auto it = entries_.find(page_id);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(page_id);
    it->second.lru_pos = lru_.begin();
    if (make_dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    return true;
  }
  ++misses_;
  if (entries_.size() >= capacity_) EvictOne();
  lru_.push_front(page_id);
  Entry entry;
  entry.lru_pos = lru_.begin();
  entry.dirty = make_dirty;
  if (make_dirty) ++dirty_count_;
  entries_.emplace(page_id, entry);
  return false;
}

void BufferPool::EvictOne() {
  const uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  if (it->second.dirty) {
    ++dirty_evictions_;
    --dirty_count_;
  }
  entries_.erase(it);
}

uint64_t BufferPool::FlushDirty(uint64_t max_pages) {
  uint64_t cleaned = 0;
  // Clean from the cold end of the LRU, as page cleaners do.
  for (auto it = lru_.rbegin(); it != lru_.rend() && cleaned < max_pages; ++it) {
    auto entry = entries_.find(*it);
    if (entry->second.dirty) {
      entry->second.dirty = false;
      --dirty_count_;
      ++cleaned;
    }
  }
  return cleaned;
}

double BufferPool::HitRatio() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

double BufferPool::DirtyFraction() const {
  return entries_.empty()
             ? 0.0
             : static_cast<double>(dirty_count_) /
                   static_cast<double>(entries_.size());
}

void BufferPool::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
  dirty_evictions_ = 0;
}

void BufferPool::Prewarm(uint64_t n) {
  const uint64_t count = std::min(n, capacity_);
  for (uint64_t page = 0; page < count; ++page) {
    if (entries_.find(page) == entries_.end()) {
      if (entries_.size() >= capacity_) EvictOne();
      lru_.push_back(page);  // prewarmed pages are colder than live traffic
      Entry entry;
      entry.lru_pos = std::prev(lru_.end());
      entries_.emplace(page, entry);
    }
  }
}

}  // namespace hunter::cdb
