// The 63 runtime metrics collected from the (simulated) DBMS — the paper
// follows CDBTune's 63-metric state vector, naming examples such as
// lock_deadlocks, buffer_pool_bytes_dirty, buffer_pool_pages_free.
//
// Each metric is a deterministic mixture of the engine's latent quantities
// (hit ratio, flush rate, lock waits, ...) plus small observation noise.
// Because ~16 latents span all 63 metrics, PCA over collected samples
// recovers a ~13-component representation at >=90% variance — the paper's
// Figure 7 behaviour — as an emergent property rather than by construction
// of the benchmark harness.

#ifndef HUNTER_CDB_METRIC_CATALOG_H_
#define HUNTER_CDB_METRIC_CATALOG_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace hunter::cdb {

inline constexpr size_t kNumMetrics = 63;
inline constexpr size_t kNumLatents = 16;

// Indices into the latent vector the engine produces.
enum LatentIndex : size_t {
  kLatHitRatio = 0,      // buffer pool hit ratio [0,1]
  kLatMissRate,          // page misses per second
  kLatDirtyFraction,     // dirty pages / resident pages
  kLatFlushRate,         // background page flushes per second
  kLatLogWait,           // per-commit log wait (ms)
  kLatLockWait,          // per-txn lock wait (ms)
  kLatDeadlockRate,      // deadlocks per 1000 txns
  kLatThreadsRunning,    // concurrently active threads
  kLatCpuUtil,           // CPU utilization [0,1]
  kLatIoUtil,            // IO utilization [0,1]
  kLatCommitRate,        // commits per second
  kLatReadRowRate,       // row reads per second
  kLatWriteRowRate,      // row writes per second
  kLatCheckpointRate,    // checkpoints per second
  kLatTmpUsage,          // temp/sort activity per second
  kLatConnChurn,         // connection/thread churn per second
};

// Names of the 63 metrics, in collection order.
const std::vector<std::string>& MetricNames();

// Maps a latent vector (length kNumLatents) to the 63 observed metrics.
// `rng` supplies the small observation noise; passing nullptr yields the
// noise-free expectation (used by tests).
std::vector<double> LatentsToMetrics(const std::array<double, kNumLatents>& latents,
                                     common::Rng* rng);

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_METRIC_CATALOG_H_
