#include "cdb/lock_manager.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace hunter::cdb {

// hunterlint: hot
LockSimResult LockManager::Simulate(const LockSimConfig& config,
                                    common::Rng* rng) {
  LockSimResult result;
  if (config.num_txns == 0 || config.writes_per_txn <= 0.0) return result;

  struct LockEntry {
    double release_time = 0.0;
    // End of the holder's acquisition phase; a waiter arriving before this
    // can form a cycle with the holder (both still collecting locks).
    double acquire_end = 0.0;
  };
  std::unordered_map<uint64_t, LockEntry> lock_table;
  lock_table.reserve(config.num_txns);

  // Transactions arrive so that `concurrency` of them overlap on average.
  const double inter_arrival =
      config.hold_time_ms / std::max(1.0, config.concurrency);
  // Locks are acquired over the first ~40% of the transaction's lifetime.
  const double acquire_phase = 0.4 * config.hold_time_ms;

  double total_wait = 0.0;
  size_t conflicted = 0, deadlocks = 0, timeouts = 0;

  for (size_t txn = 0; txn < config.num_txns; ++txn) {
    const double arrival = static_cast<double>(txn) * inter_arrival;
    const size_t writes = static_cast<size_t>(std::max(
        1.0, std::round(config.writes_per_txn + rng->Gaussian(0.0, 0.5))));
    double now = arrival;
    double txn_wait = 0.0;
    bool waited = false;
    bool dead = false;
    size_t held = 0;

    for (size_t w = 0; w < writes; ++w) {
      const uint64_t row = rng->Zipf(config.hot_rows, config.zipf_theta);
      now = arrival + acquire_phase * static_cast<double>(w + 1) /
                          static_cast<double>(writes) + txn_wait;
      auto it = lock_table.find(row);
      if (it != lock_table.end() && it->second.release_time > now) {
        waited = true;
        // Potential deadlock: we already hold locks and the holder is still
        // inside its own acquisition phase (it may come to wait on us). A
        // cycle only forms if the holder actually picks one of our rows,
        // which is itself roughly a conflict-probability event.
        if (held > 0 && now < it->second.acquire_end && rng->Bernoulli(0.25)) {
          ++deadlocks;
          dead = true;
          if (config.deadlock_detect) {
            // Detected immediately: this txn aborts, paying a small penalty.
            txn_wait += 1.0;
            break;
          }
          // Without detection the cycle only breaks via the wait timeout.
          txn_wait += config.lock_wait_timeout_ms;
          ++timeouts;
          break;
        }
        const double wait = it->second.release_time - now;
        if (wait > config.lock_wait_timeout_ms) {
          txn_wait += config.lock_wait_timeout_ms;
          ++timeouts;
          break;
        }
        txn_wait += wait;
        now += wait;
      }
      LockEntry entry;
      entry.release_time = arrival + txn_wait + config.hold_time_ms;
      entry.acquire_end = arrival + txn_wait + acquire_phase;
      lock_table[row] = entry;
      ++held;
    }

    total_wait += txn_wait;
    if (waited) ++conflicted;
    (void)dead;
  }

  const double n = static_cast<double>(config.num_txns);
  result.mean_wait_ms = total_wait / n;
  result.conflict_rate = static_cast<double>(conflicted) / n;
  result.deadlock_rate = static_cast<double>(deadlocks) / n;
  result.timeout_rate = static_cast<double>(timeouts) / n;
  return result;
}

}  // namespace hunter::cdb
