#include "cdb/lock_manager.h"

#include <algorithm>
#include <cmath>

#include "common/flat_hash.h"

namespace hunter::cdb {

// hunterlint: hot
LockSimResult LockManager::Simulate(const LockSimConfig& config,
                                    common::Rng* rng,
                                    common::ZipfTable* zipf,
                                    Table* table) {
  LockSimResult result;
  if (config.num_txns == 0 || config.writes_per_txn <= 0.0) return result;

  // Size the table for the expected distinct-row population, not the txn
  // count: with low skew nearly every drawn row is distinct, and a table
  // reserved only for num_txns rehashes (twice, for the default write mix)
  // in the middle of the replay. Capped by hot_rows, the whole row space.
  const size_t expected_rows = static_cast<size_t>(
      std::min<uint64_t>(config.hot_rows,
                         static_cast<uint64_t>(config.num_txns) *
                             (static_cast<uint64_t>(config.writes_per_txn) + 1)));
  Table local_table;
  Table* lock_table = table != nullptr ? table : &local_table;
  lock_table->Reset(expected_rows);

  // Bind the row sampler once — its cached constants replace the per-draw
  // (n, theta) check rng->Zipf did on every row pick, and when the caller
  // supplies the table they survive into the next Simulate call too.
  common::ZipfTable local_zipf;
  common::ZipfTable* rows = zipf != nullptr ? zipf : &local_zipf;
  rows->Rebind(config.hot_rows, config.zipf_theta);

  // Transactions arrive so that `concurrency` of them overlap on average.
  const double inter_arrival =
      config.hold_time_ms / std::max(1.0, config.concurrency);
  // Locks are acquired over the first ~40% of the transaction's lifetime.
  const double acquire_phase = 0.4 * config.hold_time_ms;
  // Loop-invariant config terms, read once instead of per lock probe.
  const double hold_time_ms = config.hold_time_ms;
  const double wait_timeout_ms = config.lock_wait_timeout_ms;
  const bool deadlock_detect = config.deadlock_detect;

  double total_wait = 0.0;
  size_t conflicted = 0, deadlocks = 0, timeouts = 0;

  for (size_t txn = 0; txn < config.num_txns; ++txn) {
    const double arrival = static_cast<double>(txn) * inter_arrival;
    const size_t writes = static_cast<size_t>(std::max(
        1.0, std::round(config.writes_per_txn + rng->Gaussian(0.0, 0.5))));
    double now = arrival;
    double txn_wait = 0.0;
    bool waited = false;
    bool dead = false;
    size_t held = 0;

    for (size_t w = 0; w < writes; ++w) {
      const uint64_t row = rows->Sample(rng);
      now = arrival + acquire_phase * static_cast<double>(w + 1) /
                          static_cast<double>(writes) + txn_wait;
      const Entry* holder = lock_table->Find(row);
      if (holder != nullptr && holder->release_time > now) {
        waited = true;
        // Potential deadlock: we already hold locks and the holder is still
        // inside its own acquisition phase (it may come to wait on us). A
        // cycle only forms if the holder actually picks one of our rows,
        // which is itself roughly a conflict-probability event.
        if (held > 0 && now < holder->acquire_end && rng->Bernoulli(0.25)) {
          ++deadlocks;
          dead = true;
          if (deadlock_detect) {
            // Detected immediately: this txn aborts, paying a small penalty.
            txn_wait += 1.0;
            break;
          }
          // Without detection the cycle only breaks via the wait timeout.
          txn_wait += wait_timeout_ms;
          ++timeouts;
          break;
        }
        const double wait = holder->release_time - now;
        if (wait > wait_timeout_ms) {
          txn_wait += wait_timeout_ms;
          ++timeouts;
          break;
        }
        txn_wait += wait;
        now += wait;
      }
      Entry entry;
      entry.release_time = arrival + txn_wait + hold_time_ms;
      entry.acquire_end = arrival + txn_wait + acquire_phase;
      lock_table->At(row) = entry;
      ++held;
    }

    total_wait += txn_wait;
    if (waited) ++conflicted;
    (void)dead;
  }

  const double n = static_cast<double>(config.num_txns);
  result.mean_wait_ms = total_wait / n;
  result.conflict_rate = static_cast<double>(conflicted) / n;
  result.deadlock_rate = static_cast<double>(deadlocks) / n;
  result.timeout_rate = static_cast<double>(timeouts) / n;
  return result;
}

}  // namespace hunter::cdb
