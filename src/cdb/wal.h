// Write-ahead-log cost model: group commit, log-buffer waits, and
// checkpoint pressure. These are the mechanisms behind the paper's most
// impactful write-side knobs (innodb_flush_log_at_trx_commit, sync_binlog,
// innodb_log_file_size, innodb_log_buffer_size).

#ifndef HUNTER_CDB_WAL_H_
#define HUNTER_CDB_WAL_H_

namespace hunter::cdb {

struct WalConfig {
  int flush_policy = 1;          // 0 = no sync, 1 = fsync per commit, 2 = per second
  int binlog_sync_every = 1;     // fsync binlog every N commits (0 = never)
  double log_file_mb = 48;       // redo capacity before checkpoint
  double log_buffer_mb = 16;     // in-memory redo buffer
  double fsync_ms = 0.4;         // device sync latency
  int flush_method = 0;          // 0 buffered, 1 dsync, 2 O_DIRECT
  bool doublewrite = true;
  double io_capacity = 200;      // background flush IOPS budget
};

struct WalWorkload {
  double commit_rate_tps = 1000;     // estimated commit throughput
  double redo_kb_per_txn = 4.0;      // redo bytes generated per transaction
  double concurrent_committers = 32; // txns overlapping in the commit path
};

struct WalCost {
  double commit_cost_ms = 0.0;      // per-commit log cost after group commit
  double log_wait_ms = 0.0;         // per-commit wait on a full log buffer
  double checkpoint_stall_ms = 0.0; // per-commit amortized checkpoint stall
  double write_amplification = 1.0; // extra data written per logical write
  double checkpoints_per_sec = 0.0;
};

class WalModel {
 public:
  static WalCost Estimate(const WalConfig& config, const WalWorkload& workload);
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_WAL_H_
