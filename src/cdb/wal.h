// Write-ahead-log cost model: group commit, log-buffer waits, and
// checkpoint pressure. These are the mechanisms behind the paper's most
// impactful write-side knobs (innodb_flush_log_at_trx_commit, sync_binlog,
// innodb_log_file_size, innodb_log_buffer_size).

#ifndef HUNTER_CDB_WAL_H_
#define HUNTER_CDB_WAL_H_

namespace hunter::cdb {

struct WalConfig {
  int flush_policy = 1;          // 0 = no sync, 1 = fsync per commit, 2 = per second
  int binlog_sync_every = 1;     // fsync binlog every N commits (0 = never)
  double log_file_mb = 48;       // redo capacity before checkpoint
  double log_buffer_mb = 16;     // in-memory redo buffer
  double fsync_ms = 0.4;         // device sync latency
  int flush_method = 0;          // 0 buffered, 1 dsync, 2 O_DIRECT
  bool doublewrite = true;
  double io_capacity = 200;      // background flush IOPS budget
};

struct WalWorkload {
  double commit_rate_tps = 1000;     // estimated commit throughput
  double redo_kb_per_txn = 4.0;      // redo bytes generated per transaction
  double concurrent_committers = 32; // txns overlapping in the commit path
};

struct WalCost {
  double commit_cost_ms = 0.0;      // per-commit log cost after group commit
  double log_wait_ms = 0.0;         // per-commit wait on a full log buffer
  double checkpoint_stall_ms = 0.0; // per-commit amortized checkpoint stall
  double write_amplification = 1.0; // extra data written per logical write
  double checkpoints_per_sec = 0.0;
};

// The pieces of Estimate that do not depend on the commit rate, precomputed
// once per stress test. The simulated engine's throughput fixed point calls
// the WAL model ~40 times per run with only `commit_rate_tps` changing, so
// everything else (clamps, casts, durability write-amplification, the
// checkpoint pause) is hoisted here. Each cached value is an unchanged
// subexpression of the original formulas — EstimateAtRate reproduces
// Estimate bit for bit.
struct WalInvariants {
  int flush_policy = 1;
  double fsync_ms = 0.4;
  double binlog_sync_every = 1.0;       // <= 0 disables the binlog term
  double redo_kb_per_txn = 4.0;
  double log_buffer_denom_mb = 16.0;    // max(0.25, log_buffer_mb)
  double log_file_mb = 48.0;
  double checkpoint_pause_ms = 2500.0;  // 250000 / max(100, io_capacity)
  double group_cap = 32.0;              // max(1, concurrent_committers)
  double base_write_amplification = 1.0;
  double commit_cost_multiplier = 1.0;  // buffered-IO double copy
};

class WalModel {
 public:
  static WalCost Estimate(const WalConfig& config, const WalWorkload& workload);

  // Split form used by the engine's fixed point: Precompute once, then
  // Estimate at each iterate's commit rate. EstimateAtRate(Precompute(c, w),
  // w.commit_rate_tps) == Estimate(c, w) exactly.
  static WalInvariants Precompute(const WalConfig& config,
                                  const WalWorkload& workload);
  static WalCost EstimateAtRate(const WalInvariants& inv,
                                double commit_rate_tps);
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_WAL_H_
