// Engine-level metrics for the observability layer: distils each collected
// 63-metric sample into the registry series the journal snapshots (buffer
// pool hit rate, WAL group-commit size, deadlock count).

#ifndef HUNTER_CDB_ENGINE_OBSERVER_H_
#define HUNTER_CDB_ENGINE_OBSERVER_H_

#include <cstddef>
#include <vector>

#include "obs/metrics.h"

namespace hunter::cdb {

class EngineMetrics {
 public:
  explicit EngineMetrics(obs::MetricsRegistry* registry);

  // Records one collected sample (a 63-metric vector in MetricNames()
  // order). Call in a deterministic order — the Controller feeds lanes in
  // lane-index order after each round.
  void Record(const std::vector<double>& metrics);

 private:
  obs::Histogram* hit_ratio_;
  obs::Histogram* group_commit_size_;
  obs::Counter* deadlocks_;
  size_t hit_ratio_index_;
  size_t log_writes_index_;
  size_t trx_commits_index_;
  size_t deadlocks_index_;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_ENGINE_OBSERVER_H_
