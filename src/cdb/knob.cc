#include "cdb/knob.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hunter::cdb {

KnobCatalog::KnobCatalog(std::string dbms_name, std::vector<KnobDef> knobs)
    : dbms_name_(std::move(dbms_name)), knobs_(std::move(knobs)) {
  for (size_t i = 0; i < knobs_.size(); ++i) {
    index_by_name_.emplace(knobs_[i].name, i);
  }
}

int KnobCatalog::IndexOf(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  return it == index_by_name_.end() ? -1 : static_cast<int>(it->second);
}

int KnobCatalog::IndexOfRole(KnobRole role) const {
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (knobs_[i].role == role) return static_cast<int>(i);
  }
  return -1;
}

Configuration KnobCatalog::DefaultConfiguration() const {
  Configuration config(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    config[i] = knobs_[i].default_value;
  }
  return config;
}

double KnobCatalog::Normalize(size_t index, double raw_value) const {
  const KnobDef& def = knobs_[index];
  const double clamped = std::clamp(raw_value, def.min_value, def.max_value);
  if (def.log_scale) {
    // Shift so the domain is >= 1 before taking logs.
    const double shift = 1.0 - def.min_value;
    const double lo = std::log(def.min_value + shift);
    const double hi = std::log(def.max_value + shift);
    if (hi <= lo) return 0.0;
    return (std::log(clamped + shift) - lo) / (hi - lo);
  }
  if (def.max_value <= def.min_value) return 0.0;
  return (clamped - def.min_value) / (def.max_value - def.min_value);
}

double KnobCatalog::Denormalize(size_t index, double normalized) const {
  const KnobDef& def = knobs_[index];
  const double t = std::clamp(normalized, 0.0, 1.0);
  double raw = 0.0;
  if (def.log_scale) {
    const double shift = 1.0 - def.min_value;
    const double lo = std::log(def.min_value + shift);
    const double hi = std::log(def.max_value + shift);
    raw = std::exp(lo + t * (hi - lo)) - shift;
  } else {
    raw = def.min_value + t * (def.max_value - def.min_value);
  }
  return Snap(index, raw);
}

double KnobCatalog::Snap(size_t index, double raw_value) const {
  const KnobDef& def = knobs_[index];
  double snapped = std::clamp(raw_value, def.min_value, def.max_value);
  switch (def.type) {
    case KnobType::kDouble:
      break;
    case KnobType::kInteger:
      snapped = std::round(snapped);
      break;
    case KnobType::kEnum:
    case KnobType::kBool:
      snapped = std::floor(snapped + 0.5);
      break;
  }
  return std::clamp(snapped, def.min_value, def.max_value);
}

std::vector<double> KnobCatalog::NormalizeConfiguration(
    const Configuration& config) const {
  assert(config.size() == knobs_.size());
  std::vector<double> normalized(config.size());
  for (size_t i = 0; i < config.size(); ++i) {
    normalized[i] = Normalize(i, config[i]);
  }
  return normalized;
}

Configuration KnobCatalog::DenormalizeConfiguration(
    const std::vector<double>& normalized) const {
  assert(normalized.size() == knobs_.size());
  Configuration config(normalized.size());
  for (size_t i = 0; i < normalized.size(); ++i) {
    config[i] = Denormalize(i, normalized[i]);
  }
  return config;
}

}  // namespace hunter::cdb
