#include "cdb/instance_type.h"

#include <cmath>
#include <string>
#include <utility>

namespace hunter::cdb {

namespace {

InstanceType Make(std::string name, int cores, double ram_gb) {
  // Takes the name as std::string (not const char*): assigning a string
  // literal through the char* overload trips GCC 12's -Wrestrict false
  // positive (PR105329) once inlined, and the CI build is -Werror.
  InstanceType type;
  type.name = std::move(name);
  type.cpu_cores = cores;
  type.ram_gb = ram_gb;
  // Larger cloud instances get proportionally better provisioned IO,
  // sublinearly (matching typical cloud volume tiers).
  const double scale = std::sqrt(static_cast<double>(cores) / 8.0);
  type.disk_read_iops = 40000 * scale;
  type.disk_write_iops = 20000 * scale;
  return type;
}

}  // namespace

std::vector<InstanceType> Table7InstanceTypes() {
  return {
      Make("A", 1, 2),  Make("B", 4, 8),  Make("C", 4, 12), Make("D", 4, 16),
      Make("E", 6, 24), Make("F", 8, 32), Make("G", 8, 48), Make("H", 16, 64),
  };
}

InstanceType InstanceTypeByName(const std::string& name) {
  for (const InstanceType& type : Table7InstanceTypes()) {
    if (type.name == name) return type;
  }
  return Make("F", 8, 32);
}

InstanceType MySqlEvaluationInstance() { return Make("F", 8, 32); }

InstanceType PostgresEvaluationInstance() {
  InstanceType type = Make("pg", 8, 16);
  return type;
}

InstanceType ProductionEvaluationInstance() { return Make("D", 4, 16); }

}  // namespace hunter::cdb
