// A real LRU buffer pool used by the simulated engine.
//
// The engine streams sampled page accesses through this structure to obtain
// an *emergent* hit ratio (rather than a closed-form one), so that buffer
// pool sizing shows the realistic concave improvement curve the tuners must
// discover, including skew effects (a small pool still captures a Zipfian
// head) and working-set plateaus.
//
// Storage is a flat intrusive LRU (common::FlatLru): recency links are
// uint32 index arrays over a slab sized to the capacity, and the page -> slot
// index is an open-addressing hash reserved so it never grows. An Access is
// allocation-free, and `Reset(capacity)` lets one pool instance be reused
// across engine evaluations, reusing the slabs whenever the new capacity
// fits (`slab_reuses()` counts how often that fast path was taken). The
// observable hit/miss/evict/flush sequence is bit-identical to the previous
// std::list + std::unordered_map implementation — pinned by the equivalence
// tests in tests/cdb/buffer_pool_test.cc.

#ifndef HUNTER_CDB_BUFFER_POOL_H_
#define HUNTER_CDB_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "common/flat_lru.h"

namespace hunter::cdb {

class BufferPool {
 public:
  explicit BufferPool(uint64_t capacity_pages) { Reset(capacity_pages); }

  // Empties the pool and re-sizes it for a new run, reusing the slabs when
  // the capacity fits. All counters (including dirty state) restart from
  // zero — equivalent to constructing a fresh pool, without the allocation.
  void Reset(uint64_t capacity_pages);

  // Touches a page: returns true on hit. On miss, the page is installed and
  // the LRU victim evicted (a dirty victim counts as a flush-on-evict).
  // `make_dirty` marks the page dirty (a write access). Defined inline: the
  // engine's replay loop is a tight sequence of these calls and the call
  // boundary was a measurable share of the per-access cost.
  // hunterlint: hot
  bool Access(uint64_t page_id, bool make_dirty) {
    const uint32_t slot = lru_.Find(page_id);
    if (slot != common::FlatLru::kNil) {
      ++hits_;
      lru_.MoveToFront(slot);
      if (make_dirty && dirty_[slot] == 0) {
        dirty_[slot] = 1;
        ++dirty_count_;
      }
      return true;
    }
    ++misses_;
    uint32_t fresh;
    if (lru_.size() >= capacity_) {
      // Fused evict + insert: account the victim, then reuse its slot for
      // the incoming page (same hit/miss/evict sequence as EvictOne +
      // InsertFront, without the free-list round trip).
      const uint32_t victim = lru_.back();
      if (dirty_[victim] != 0) {
        ++dirty_evictions_;
        --dirty_count_;
      }
      fresh = lru_.ReplaceBack(page_id);
    } else {
      fresh = lru_.InsertFront(page_id);
    }
    dirty_[fresh] = make_dirty ? 1 : 0;
    if (make_dirty) ++dirty_count_;
    return false;
  }

  // Background flushing: cleans up to `max_pages` dirty pages (oldest
  // first), returning how many were cleaned.
  uint64_t FlushDirty(uint64_t max_pages);

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return lru_.size(); }
  uint64_t dirty_pages() const { return dirty_count_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

  // Lifetime reuse accounting (not touched by Reset/ResetCounters): how
  // many times the pool was re-armed, and how many of those reused the
  // existing slabs without reallocating.
  uint64_t resets() const { return resets_; }
  uint64_t slab_reuses() const { return slab_reuses_; }

  double HitRatio() const;
  double DirtyFraction() const;

  void ResetCounters();

  // Pre-warms the pool with pages [0, n) — models the CDB warm-up function
  // that reloads the buffer pool from disk after a restart (§5).
  void Prewarm(uint64_t n);

 private:
  void EvictOne();

  uint64_t capacity_ = 1;
  common::FlatLru lru_;
  std::vector<uint8_t> dirty_;  // per-slot dirty bit, parallel to the slab
  uint64_t dirty_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dirty_evictions_ = 0;
  uint64_t resets_ = 0;
  uint64_t slab_reuses_ = 0;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_BUFFER_POOL_H_
