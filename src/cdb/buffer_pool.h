// A real LRU buffer pool used by the simulated engine.
//
// The engine streams sampled page accesses through this structure to obtain
// an *emergent* hit ratio (rather than a closed-form one), so that buffer
// pool sizing shows the realistic concave improvement curve the tuners must
// discover, including skew effects (a small pool still captures a Zipfian
// head) and working-set plateaus.

#ifndef HUNTER_CDB_BUFFER_POOL_H_
#define HUNTER_CDB_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace hunter::cdb {

class BufferPool {
 public:
  explicit BufferPool(uint64_t capacity_pages);

  // Touches a page: returns true on hit. On miss, the page is installed and
  // the LRU victim evicted (a dirty victim counts as a flush-on-evict).
  // `make_dirty` marks the page dirty (a write access).
  bool Access(uint64_t page_id, bool make_dirty);

  // Background flushing: cleans up to `max_pages` dirty pages (oldest
  // first), returning how many were cleaned.
  uint64_t FlushDirty(uint64_t max_pages);

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return entries_.size(); }
  uint64_t dirty_pages() const { return dirty_count_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t dirty_evictions() const { return dirty_evictions_; }

  double HitRatio() const;
  double DirtyFraction() const;

  void ResetCounters();

  // Pre-warms the pool with pages [0, n) — models the CDB warm-up function
  // that reloads the buffer pool from disk after a restart (§5).
  void Prewarm(uint64_t n);

 private:
  struct Entry {
    std::list<uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  void EvictOne();

  uint64_t capacity_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t dirty_count_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dirty_evictions_ = 0;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_BUFFER_POOL_H_
