// Cloud database instance types (the paper's Table 7, types A-H) plus the
// instance shapes used in the main evaluation (§6: MySQL 8c/32GB,
// PostgreSQL 8c/16GB, Production MySQL 4c/16GB).

#ifndef HUNTER_CDB_INSTANCE_TYPE_H_
#define HUNTER_CDB_INSTANCE_TYPE_H_

#include <string>
#include <vector>

namespace hunter::cdb {

struct InstanceType {
  std::string name;
  int cpu_cores = 8;
  double ram_gb = 32.0;
  // Storage characteristics are not varied in Table 7; the cloud SSD tier
  // is modeled as fixed per-instance bandwidth scaled mildly with size.
  double disk_read_iops = 40000;
  double disk_write_iops = 20000;
  double fsync_latency_ms = 0.8;  // network-attached cloud storage
};

// Table 7: A(1c,2G) B(4c,8G) C(4c,12G) D(4c,16G) E(6c,24G) F(8c,32G)
// G(8c,48G) H(16c,64G).
std::vector<InstanceType> Table7InstanceTypes();

// Named lookup into Table 7 ("A".."H"); falls back to F.
InstanceType InstanceTypeByName(const std::string& name);

// Instance shapes from §6's experimental setup.
InstanceType MySqlEvaluationInstance();      // 8 cores, 32 GB (type F)
InstanceType PostgresEvaluationInstance();   // 8 cores, 16 GB
InstanceType ProductionEvaluationInstance(); // 4 cores, 16 GB (type D)

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_INSTANCE_TYPE_H_
