#include "cdb/knob_catalog.h"

namespace hunter::cdb {

namespace {

// Shorthand builders keep the 130 knob definitions readable.

KnobDef IntKnob(const char* name, KnobRole role, double min, double max,
                double def, bool dynamic, bool log_scale, const char* unit,
                const char* description) {
  KnobDef knob;
  knob.name = name;
  knob.type = KnobType::kInteger;
  knob.role = role;
  knob.min_value = min;
  knob.max_value = max;
  knob.default_value = def;
  knob.dynamic = dynamic;
  knob.log_scale = log_scale;
  knob.unit = unit;
  knob.description = description;
  return knob;
}

KnobDef BoolKnob(const char* name, KnobRole role, bool def, bool dynamic,
                 const char* description) {
  KnobDef knob;
  knob.name = name;
  knob.type = KnobType::kBool;
  knob.role = role;
  knob.min_value = 0;
  knob.max_value = 1;
  knob.default_value = def ? 1 : 0;
  knob.dynamic = dynamic;
  knob.enum_values = {"OFF", "ON"};
  knob.description = description;
  return knob;
}

KnobDef EnumKnob(const char* name, KnobRole role,
                 std::vector<std::string> values, double def, bool dynamic,
                 const char* description) {
  KnobDef knob;
  knob.name = name;
  knob.type = KnobType::kEnum;
  knob.role = role;
  knob.min_value = 0;
  knob.max_value = static_cast<double>(values.size()) - 1;
  knob.default_value = def;
  knob.dynamic = dynamic;
  knob.enum_values = std::move(values);
  knob.description = description;
  return knob;
}

// A minor knob with the generic smooth effect (see SimulatedEngine).
KnobDef Minor(const char* name, double min, double max, double def,
              bool dynamic, bool log_scale, const char* unit) {
  return IntKnob(name, KnobRole::kGeneric, min, max, def, dynamic, log_scale,
                 unit, "minor knob with a small smooth performance effect");
}

}  // namespace

KnobCatalog MySqlCatalog() {
  std::vector<KnobDef> knobs;
  knobs.reserve(65);

  // ---- Knobs with bespoke physics in the simulated engine (22). ----
  knobs.push_back(IntKnob("innodb_buffer_pool_size", KnobRole::kBufferPoolSize,
                          128, 49152, 128, true, true, "MB",
                          "size of the InnoDB buffer pool"));
  knobs.push_back(EnumKnob("innodb_flush_log_at_trx_commit",
                           KnobRole::kFlushPolicy, {"0", "1", "2"}, 1, true,
                           "redo durability: 0 none, 1 fsync/commit, 2 per second"));
  knobs.push_back(IntKnob("sync_binlog", KnobRole::kBinlogSync, 0, 1000, 1,
                          true, true, "commits",
                          "fsync the binlog every N commits (0 = OS-managed)"));
  knobs.push_back(IntKnob("innodb_log_file_size", KnobRole::kLogFileSize, 48,
                          8192, 48, false, true, "MB",
                          "redo log segment size; small logs force checkpoints"));
  knobs.push_back(IntKnob("innodb_log_buffer_size", KnobRole::kLogBufferSize,
                          1, 1024, 16, false, true, "MB",
                          "in-memory redo buffer; undersizing causes log waits"));
  knobs.push_back(IntKnob("innodb_io_capacity", KnobRole::kIoCapacity, 100,
                          20000, 200, true, true, "IOPS",
                          "background flush rate budget"));
  knobs.push_back(IntKnob("innodb_io_capacity_max", KnobRole::kIoCapacityMax,
                          200, 40000, 2000, true, true, "IOPS",
                          "burst flush rate budget under pressure"));
  knobs.push_back(IntKnob("innodb_thread_concurrency",
                          KnobRole::kThreadConcurrency, 0, 256, 0, true, false,
                          "threads", "InnoDB kernel thread cap (0 = unlimited)"));
  knobs.push_back(IntKnob("max_connections", KnobRole::kMaxConnections, 100,
                          10000, 151, true, true, "conns",
                          "maximum simultaneous client connections"));
  knobs.push_back(IntKnob("innodb_buffer_pool_instances",
                          KnobRole::kBufferPoolInstances, 1, 64, 1, false,
                          false, "", "buffer pool latch partitions"));
  knobs.push_back(IntKnob("innodb_read_io_threads", KnobRole::kReadIoThreads,
                          1, 64, 4, false, false, "threads",
                          "background read IO threads"));
  knobs.push_back(IntKnob("innodb_write_io_threads", KnobRole::kWriteIoThreads,
                          1, 64, 4, false, false, "threads",
                          "background write IO threads"));
  knobs.push_back(IntKnob("thread_cache_size", KnobRole::kThreadCache, 0, 1000,
                          9, true, true, "threads",
                          "cached server threads for connection reuse"));
  knobs.push_back(EnumKnob("innodb_flush_method", KnobRole::kFlushMethod,
                           {"fsync", "O_DSYNC", "O_DIRECT"}, 0, false,
                           "data file flush method; O_DIRECT avoids double buffering"));
  knobs.push_back(BoolKnob("innodb_adaptive_hash_index",
                           KnobRole::kAdaptiveHash, true, true,
                           "hash index over hot B-tree pages (read boost, latch cost)"));
  knobs.push_back(EnumKnob("innodb_change_buffering",
                           KnobRole::kChangeBuffering,
                           {"none", "inserts", "all"}, 2, true,
                           "buffer secondary index changes"));
  knobs.push_back(IntKnob("innodb_max_dirty_pages_pct", KnobRole::kMaxDirtyPct,
                          5, 99, 75, true, false, "%",
                          "dirty-page ratio that triggers aggressive flushing"));
  knobs.push_back(IntKnob("innodb_lru_scan_depth", KnobRole::kLruScanDepth,
                          100, 10000, 1024, true, true, "pages",
                          "page-cleaner scan depth per pool instance"));
  knobs.push_back(IntKnob("innodb_lock_wait_timeout",
                          KnobRole::kLockWaitTimeout, 1, 300, 50, true, false,
                          "s", "row-lock wait timeout"));
  knobs.push_back(BoolKnob("innodb_deadlock_detect", KnobRole::kDeadlockDetect,
                           true, true,
                           "active deadlock detection (CPU cost at high conflict)"));
  knobs.push_back(IntKnob("table_open_cache", KnobRole::kTableCache, 100,
                          10000, 2000, true, true, "tables",
                          "open table descriptor cache"));
  knobs.push_back(BoolKnob("innodb_doublewrite", KnobRole::kDoubleWrite, true,
                           false, "doublewrite buffer (write amplification)"));

  // ---- Minor knobs with generic smooth effects (43). ----
  knobs.push_back(Minor("sort_buffer_size", 32, 16384, 256, true, true, "KB"));
  knobs.push_back(Minor("join_buffer_size", 128, 16384, 256, true, true, "KB"));
  knobs.push_back(Minor("read_buffer_size", 8, 2048, 128, true, true, "KB"));
  knobs.push_back(Minor("read_rnd_buffer_size", 8, 2048, 256, true, true, "KB"));
  knobs.push_back(Minor("tmp_table_size", 1, 1024, 16, true, true, "MB"));
  knobs.push_back(Minor("max_heap_table_size", 1, 1024, 16, true, true, "MB"));
  knobs.push_back(Minor("binlog_cache_size", 4, 4096, 32, true, true, "KB"));
  knobs.push_back(Minor("binlog_stmt_cache_size", 4, 4096, 32, true, true, "KB"));
  knobs.push_back(Minor("key_buffer_size", 8, 4096, 8, true, true, "MB"));
  knobs.push_back(Minor("bulk_insert_buffer_size", 0, 1024, 8, true, false, "MB"));
  knobs.push_back(Minor("open_files_limit", 1024, 65536, 5000, false, true, "files"));
  knobs.push_back(Minor("table_definition_cache", 400, 8192, 1400, true, true, "defs"));
  knobs.push_back(Minor("back_log", 50, 4096, 80, false, true, "conns"));
  knobs.push_back(Minor("thread_stack", 128, 2048, 256, false, false, "KB"));
  knobs.push_back(Minor("interactive_timeout", 60, 28800, 28800, true, true, "s"));
  knobs.push_back(Minor("wait_timeout", 60, 28800, 28800, true, true, "s"));
  knobs.push_back(Minor("net_buffer_length", 1, 1024, 16, true, true, "KB"));
  knobs.push_back(Minor("max_allowed_packet", 1, 1024, 4, true, true, "MB"));
  knobs.push_back(Minor("innodb_purge_threads", 1, 32, 4, false, false, "threads"));
  knobs.push_back(Minor("innodb_page_cleaners", 1, 64, 1, false, false, "threads"));
  knobs.push_back(Minor("innodb_sync_spin_loops", 0, 100, 30, true, false, "loops"));
  knobs.push_back(Minor("innodb_spin_wait_delay", 0, 60, 6, true, false, ""));
  knobs.push_back(Minor("innodb_autoinc_lock_mode", 0, 2, 1, false, false, ""));
  knobs.push_back(Minor("innodb_stats_persistent_sample_pages", 1, 200, 20, true, false, "pages"));
  knobs.push_back(Minor("innodb_old_blocks_pct", 5, 95, 37, true, false, "%"));
  knobs.push_back(Minor("innodb_old_blocks_time", 0, 10000, 1000, true, true, "ms"));
  knobs.push_back(Minor("innodb_read_ahead_threshold", 0, 64, 56, true, false, "pages"));
  knobs.push_back(Minor("innodb_random_read_ahead", 0, 1, 0, true, false, ""));
  knobs.push_back(Minor("innodb_flush_neighbors", 0, 2, 1, true, false, ""));
  knobs.push_back(Minor("innodb_fill_factor", 50, 100, 100, true, false, "%"));
  knobs.push_back(Minor("innodb_autoextend_increment", 1, 1000, 64, true, true, "MB"));
  knobs.push_back(Minor("innodb_concurrency_tickets", 1, 100000, 5000, true, true, "tickets"));
  knobs.push_back(Minor("innodb_commit_concurrency", 0, 1000, 0, false, false, "threads"));
  knobs.push_back(Minor("innodb_sync_array_size", 1, 1024, 1, false, true, ""));
  knobs.push_back(Minor("innodb_rollback_segments", 1, 128, 128, true, false, "segments"));
  knobs.push_back(Minor("innodb_purge_batch_size", 1, 5000, 300, false, true, "pages"));
  knobs.push_back(Minor("innodb_max_purge_lag", 0, 1000000, 0, true, true, "txns"));
  knobs.push_back(Minor("innodb_adaptive_flushing_lwm", 0, 70, 10, true, false, "%"));
  knobs.push_back(Minor("innodb_flushing_avg_loops", 1, 1000, 30, true, true, "loops"));
  knobs.push_back(Minor("innodb_change_buffer_max_size", 0, 50, 25, true, false, "%"));
  knobs.push_back(Minor("eq_range_index_dive_limit", 0, 1000, 200, true, false, ""));
  knobs.push_back(Minor("metadata_locks_cache_size", 1, 1048576, 1024, false, true, ""));
  knobs.push_back(Minor("query_prealloc_size", 8, 1024, 8, true, true, "KB"));

  return KnobCatalog("mysql", std::move(knobs));
}

KnobCatalog PostgresCatalog() {
  std::vector<KnobDef> knobs;
  knobs.reserve(65);

  // ---- Knobs with bespoke physics (22), mapped to the same roles. ----
  knobs.push_back(IntKnob("shared_buffers", KnobRole::kBufferPoolSize, 128,
                          24576, 128, false, true, "MB",
                          "shared buffer cache size"));
  knobs.push_back(EnumKnob("synchronous_commit", KnobRole::kFlushPolicy,
                           {"off", "on", "local"}, 1, true,
                           "WAL durability per commit"));
  knobs.push_back(IntKnob("commit_delay", KnobRole::kBinlogSync, 0, 1000, 0,
                          true, true, "us",
                          "group-commit delay before WAL flush"));
  knobs.push_back(IntKnob("max_wal_size", KnobRole::kLogFileSize, 64, 16384,
                          1024, true, true, "MB",
                          "WAL size that triggers a checkpoint"));
  knobs.push_back(IntKnob("wal_buffers", KnobRole::kLogBufferSize, 1, 1024, 4,
                          false, true, "MB", "in-memory WAL buffer"));
  knobs.push_back(IntKnob("bgwriter_lru_maxpages", KnobRole::kIoCapacity, 0,
                          10000, 100, true, true, "pages",
                          "background writer pages per round"));
  knobs.push_back(IntKnob("bgwriter_lru_multiplier_x10",
                          KnobRole::kIoCapacityMax, 1, 100, 20, true, false,
                          "x0.1", "background writer lookahead multiplier"));
  knobs.push_back(IntKnob("max_parallel_workers", KnobRole::kThreadConcurrency,
                          0, 128, 8, true, false, "workers",
                          "parallel worker cap (0 = serial only)"));
  knobs.push_back(IntKnob("max_connections", KnobRole::kMaxConnections, 100,
                          10000, 100, false, true, "conns",
                          "maximum simultaneous client connections"));
  knobs.push_back(IntKnob("num_buffer_partitions",
                          KnobRole::kBufferPoolInstances, 1, 128, 16, false,
                          false, "", "buffer mapping lock partitions"));
  knobs.push_back(IntKnob("effective_io_concurrency", KnobRole::kReadIoThreads,
                          1, 1000, 1, true, true, "",
                          "expected concurrent IO operations"));
  knobs.push_back(IntKnob("max_worker_processes", KnobRole::kWriteIoThreads, 1,
                          64, 8, false, false, "workers",
                          "background worker process cap"));
  knobs.push_back(IntKnob("superuser_reserved_connections",
                          KnobRole::kThreadCache, 0, 100, 3, false, false,
                          "conns", "reserved backend slots"));
  knobs.push_back(EnumKnob("wal_sync_method", KnobRole::kFlushMethod,
                           {"fsync", "fdatasync", "open_datasync"}, 1, false,
                           "how WAL is forced to disk"));
  knobs.push_back(BoolKnob("enable_indexonlyscan", KnobRole::kAdaptiveHash,
                           true, true, "index-only scan plans (read boost)"));
  knobs.push_back(BoolKnob("wal_compression", KnobRole::kChangeBuffering,
                           false, true, "compress WAL full-page images"));
  knobs.push_back(IntKnob("checkpoint_completion_target_pct",
                          KnobRole::kMaxDirtyPct, 10, 95, 50, true, false, "%",
                          "spread checkpoint writes over this fraction"));
  knobs.push_back(IntKnob("bgwriter_delay", KnobRole::kLruScanDepth, 10, 10000,
                          200, true, true, "ms",
                          "sleep between background writer rounds"));
  knobs.push_back(IntKnob("deadlock_timeout", KnobRole::kLockWaitTimeout, 1,
                          300, 1, true, false, "s",
                          "wait before running deadlock detection"));
  knobs.push_back(BoolKnob("log_lock_waits", KnobRole::kDeadlockDetect, false,
                           true, "instrument lock waits (CPU cost)"));
  knobs.push_back(IntKnob("max_files_per_process", KnobRole::kTableCache, 25,
                          10000, 1000, false, true, "files",
                          "kernel file descriptors per backend"));
  knobs.push_back(BoolKnob("full_page_writes", KnobRole::kDoubleWrite, true,
                           false, "write full pages after checkpoint"));

  // ---- Minor knobs (43). ----
  knobs.push_back(Minor("work_mem", 64, 2097152, 4096, true, true, "KB"));
  knobs.push_back(Minor("maintenance_work_mem", 1024, 2097152, 65536, true, true, "KB"));
  knobs.push_back(Minor("temp_buffers", 100, 65536, 1024, true, true, "8KB"));
  knobs.push_back(Minor("effective_cache_size", 128, 65536, 4096, true, true, "MB"));
  knobs.push_back(Minor("random_page_cost_x10", 10, 100, 40, true, false, "x0.1"));
  knobs.push_back(Minor("seq_page_cost_x10", 1, 100, 10, true, false, "x0.1"));
  knobs.push_back(Minor("cpu_tuple_cost_x1000", 1, 1000, 10, true, true, "x0.001"));
  knobs.push_back(Minor("cpu_index_tuple_cost_x1000", 1, 1000, 5, true, true, "x0.001"));
  knobs.push_back(Minor("cpu_operator_cost_x1000", 1, 1000, 2, true, true, "x0.001"));
  knobs.push_back(Minor("wal_writer_delay", 1, 10000, 200, true, true, "ms"));
  knobs.push_back(Minor("wal_writer_flush_after", 0, 65536, 1024, true, true, "8KB"));
  knobs.push_back(Minor("commit_siblings", 0, 100, 5, true, false, "txns"));
  knobs.push_back(Minor("checkpoint_timeout", 30, 86400, 300, true, true, "s"));
  knobs.push_back(Minor("checkpoint_flush_after", 0, 256, 32, true, false, "8KB"));
  knobs.push_back(Minor("autovacuum_naptime", 1, 2147483, 60, true, true, "s"));
  knobs.push_back(Minor("autovacuum_vacuum_threshold", 0, 2147483647, 50, true, true, "rows"));
  knobs.push_back(Minor("autovacuum_analyze_threshold", 0, 2147483647, 50, true, true, "rows"));
  knobs.push_back(Minor("autovacuum_vacuum_cost_delay", 0, 100, 2, true, false, "ms"));
  knobs.push_back(Minor("autovacuum_vacuum_cost_limit", 1, 10000, 200, true, true, ""));
  knobs.push_back(Minor("autovacuum_max_workers", 1, 64, 3, false, false, "workers"));
  knobs.push_back(Minor("vacuum_cost_page_hit", 0, 10000, 1, true, true, ""));
  knobs.push_back(Minor("vacuum_cost_page_miss", 0, 10000, 10, true, true, ""));
  knobs.push_back(Minor("vacuum_cost_page_dirty", 0, 10000, 20, true, true, ""));
  knobs.push_back(Minor("vacuum_cost_limit", 1, 10000, 200, true, true, ""));
  knobs.push_back(Minor("default_statistics_target", 1, 10000, 100, true, true, ""));
  knobs.push_back(Minor("from_collapse_limit", 1, 64, 8, true, false, ""));
  knobs.push_back(Minor("join_collapse_limit", 1, 64, 8, true, false, ""));
  knobs.push_back(Minor("geqo_threshold", 2, 64, 12, true, false, ""));
  knobs.push_back(Minor("geqo_effort", 1, 10, 5, true, false, ""));
  knobs.push_back(Minor("max_stack_depth", 100, 7680, 2048, true, true, "KB"));
  knobs.push_back(Minor("max_locks_per_transaction", 10, 4096, 64, false, true, "locks"));
  knobs.push_back(Minor("max_pred_locks_per_transaction", 10, 4096, 64, false, true, "locks"));
  knobs.push_back(Minor("wal_keep_segments", 0, 1000, 0, true, true, "segments"));
  knobs.push_back(Minor("max_standby_streaming_delay", -1, 600, 30, true, false, "s"));
  knobs.push_back(Minor("hot_standby_feedback", 0, 1, 0, true, false, ""));
  knobs.push_back(Minor("track_activity_query_size", 100, 102400, 1024, false, true, "B"));
  knobs.push_back(Minor("backend_flush_after", 0, 256, 0, true, false, "8KB"));
  knobs.push_back(Minor("old_snapshot_threshold", -1, 86400, -1, false, false, "s"));
  knobs.push_back(Minor("parallel_setup_cost", 0, 100000, 1000, true, true, ""));
  knobs.push_back(Minor("parallel_tuple_cost_x1000", 1, 10000, 100, true, true, "x0.001"));
  knobs.push_back(Minor("min_parallel_table_scan_size", 0, 65536, 1024, true, true, "8KB"));
  knobs.push_back(Minor("min_parallel_index_scan_size", 0, 65536, 64, true, true, "8KB"));
  knobs.push_back(Minor("tcp_keepalives_idle", 0, 7200, 0, true, true, "s"));

  return KnobCatalog("postgresql", std::move(knobs));
}

}  // namespace hunter::cdb
