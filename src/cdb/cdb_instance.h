// A (cloned) cloud database instance.
//
// Wraps the simulated engine with the lifecycle the paper's Actors manage:
// deploying a knob configuration (restart required when any non-dynamic knob
// changed — §2.1 availability discussion), boot failures for invalid
// configurations, the CDB warm-up function (buffer pool persisted across
// restarts, §5), cloning from a user instance, and point-in-time recovery
// (PITR) so that each replay round starts from the same state.

#ifndef HUNTER_CDB_CDB_INSTANCE_H_
#define HUNTER_CDB_CDB_INSTANCE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdb/knob.h"
#include "cdb/simulated_engine.h"
#include "cdb/workload_profile.h"
#include "common/rng.h"

namespace hunter::cdb {

struct DeployOutcome {
  bool booted = true;
  bool restarted = false;   // a static knob changed -> full restart
  double deploy_seconds = 0.0;
};

class CdbInstance {
 public:
  CdbInstance(const KnobCatalog* catalog, InstanceType instance_type,
              EngineTuning tuning, uint64_t seed);

  // Applies `config`. Restarts if any non-dynamic knob changed. Boot
  // failures leave the previous configuration active (as a real CDB's
  // supervisor would roll back) but are reported in the outcome.
  DeployOutcome DeployConfiguration(const Configuration& config);

  // Executes one stress test with the active configuration.
  PerfResult StressTest(const WorkloadProfile& workload);

  // Clones this instance (same catalog/instance type/config, fresh RNG
  // stream) — the Actor's "copy backup of user's instance" step.
  std::unique_ptr<CdbInstance> Clone();

  // Point-in-time recovery: resets transient state (warm buffer pool) so a
  // replay round starts from the recorded snapshot.
  void PointInTimeRecover();

  // Changing the instance type models the user's resize action (§6.5).
  void ResizeInstance(const InstanceType& new_type);

  const Configuration& active_configuration() const { return config_; }
  const KnobCatalog& catalog() const { return *catalog_; }
  const InstanceType& instance_type() const { return engine_.instance(); }
  bool warm() const { return warm_; }
  uint64_t restarts() const { return restarts_; }

  // ---- Pre-run state snapshots --------------------------------------
  // Everything a stress test consumes besides the (deployed) configuration
  // and the workload. The Actor captures one before each StressTest so a
  // cancelled attempt (straggler timeout) can be rolled back — the retry is
  // then an exact replay, which is also what makes it memoizable below.
  struct StateSnapshot {
    common::Rng rng;
    bool warm = false;
  };
  StateSnapshot CaptureState() const { return {rng_, warm_}; }
  void RestoreState(const StateSnapshot& snapshot) {
    rng_ = snapshot.rng;
    warm_ = snapshot.warm;
  }

  // ---- Steady-state memo cache --------------------------------------
  // StressTest memoizes on (active config, workload spec, warm flag, RNG
  // stream position): a repeat evaluation with an identical key is a
  // deterministic replay, so the cached PerfResult and post-run RNG state
  // are returned without re-running the engine. This caches *real CPU
  // only* — the caller still charges the same simulated deploy/execution/
  // collection time, and the key's RNG component guarantees the returned
  // result is byte-identical to what the engine would have produced.
  // Lookup and hit/miss accounting run even when disabled (the flag only
  // gates the short-circuit), so journals are byte-identical on vs off.
  struct EvalCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  void set_eval_cache_enabled(bool enabled) { eval_cache_enabled_ = enabled; }
  bool eval_cache_enabled() const { return eval_cache_enabled_; }
  const EvalCacheStats& eval_cache_stats() const { return eval_cache_stats_; }

  // ---- Buffer-pool reuse accounting ---------------------------------
  // The engine re-arms one long-lived pool per evaluation (Reset) instead
  // of constructing one; `slab_reuses` counts how many of those re-arms
  // reused the existing slabs without allocating. Accounted here rather
  // than read straight off the engine so the numbers are byte-identical
  // whether the eval cache is enabled or not: a served hit charges the
  // (1 reset, 1 reuse) the skipped replay would have produced — the first
  // occurrence of the same configuration already grew the slabs to size,
  // and slabs never shrink, so the replay's Reset is always a reuse.
  struct PoolStats {
    uint64_t resets = 0;
    uint64_t slab_reuses = 0;
  };
  const PoolStats& pool_stats() const { return pool_stats_; }

  // Deployment cost constants (simulated seconds, from the paper's
  // Table 1: knob deployment averages 21.3 s).
  static constexpr double kDynamicDeploySeconds = 3.0;
  static constexpr double kRestartDeploySeconds = 21.3;
  static constexpr double kWarmupSeconds = 5.0;  // §5: ~5 s for Sysbench

 private:
  struct EvalCacheEntry {
    Configuration config;
    WorkloadProfile workload;
    bool warm = false;
    std::array<uint64_t, 6> rng_fingerprint{};
    PerfResult result;
    common::Rng rng_after;
    // Whether the memoized run armed the pool (false for boot failures,
    // which return before touching it); a served hit replays this much.
    bool pool_reset = false;
  };
  // Retries arrive within a round, so a handful of entries is plenty.
  static constexpr size_t kEvalCacheCapacity = 8;

  const KnobCatalog* catalog_;  // not owned
  SimulatedEngine engine_;
  Configuration config_;
  common::Rng rng_;
  bool warm_ = false;  // buffer pool content survives via warm-up function
  uint64_t restarts_ = 0;

  std::vector<EvalCacheEntry> eval_cache_;
  size_t eval_cache_next_ = 0;  // ring-replacement cursor
  bool eval_cache_enabled_ = true;
  EvalCacheStats eval_cache_stats_;
  PoolStats pool_stats_;
};

}  // namespace hunter::cdb

#endif  // HUNTER_CDB_CDB_INSTANCE_H_
