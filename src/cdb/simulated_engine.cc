#include "cdb/simulated_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "cdb/buffer_pool.h"
#include "cdb/lock_manager.h"
#include "cdb/wal.h"

namespace hunter::cdb {

namespace {

// Per-connection server memory, used by the boot check (MB).
constexpr double kConnectionMemoryMb = 1.5;
// Boot fails when configured memory exceeds this fraction of RAM.
constexpr double kRamBudgetFraction = 0.95;
// Page accesses simulated per stress test.
constexpr int kWarmupAccesses = 2000;
constexpr int kMeasuredAccesses = 3000;
// Maximum page-space resolution of the scaled-down buffer pool simulation.
constexpr double kMaxDataPages = 8192.0;

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

double UnitHash(uint64_t h) {
  // Deterministic uniform in [0,1) from a hash.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

PerfResult BootFailureResult() {
  PerfResult result;
  result.boot_failed = true;
  result.throughput_tps = -1000.0;  // the paper's sentinel
  result.latency_p95_ms = std::numeric_limits<double>::infinity();
  result.latency_p99_ms = std::numeric_limits<double>::infinity();
  result.metrics.assign(kNumMetrics, 0.0);
  return result;
}

EngineTuning MySqlEngineTuning() { return EngineTuning{}; }

EngineTuning PostgresEngineTuning() {
  EngineTuning tuning;
  tuning.cpu_scale = 0.88;     // leaner executor per row in our calibration
  tuning.latch_sigma = 0.0075;
  return tuning;
}

SimulatedEngine::SimulatedEngine(const KnobCatalog* catalog,
                                 InstanceType instance, EngineTuning tuning)
    : catalog_(catalog), instance_(instance), tuning_(tuning) {
  constexpr size_t kNumRoles = static_cast<size_t>(KnobRole::kGeneric) + 1;
  role_index_.assign(kNumRoles, -1);
  for (size_t i = 0; i < catalog_->size(); ++i) {
    const KnobDef& def = catalog_->knob(i);
    if (def.role == KnobRole::kGeneric) {
      const uint64_t h = HashName(def.name);
      generic_knobs_.push_back({i, 0.0008 + 0.0045 * UnitHash(h),
                                0.15 + 0.7 * UnitHash(h ^ 0x5bd1e995u)});
    } else if (role_index_[static_cast<size_t>(def.role)] < 0) {
      role_index_[static_cast<size_t>(def.role)] = static_cast<int>(i);
    }
  }
}

double SimulatedEngine::KnobValue(const Configuration& config, KnobRole role,
                                  double fallback) const {
  const int index = role_index_[static_cast<size_t>(role)];
  if (index < 0) return fallback;
  return config[static_cast<size_t>(index)];
}

bool SimulatedEngine::ValidateBoot(const Configuration& config,
                                   std::string* reason) const {
  const double ram_mb = instance_.ram_gb * 1024.0;
  const double bp_mb = KnobValue(config, KnobRole::kBufferPoolSize, 128.0);
  const double max_conn = KnobValue(config, KnobRole::kMaxConnections, 151.0);
  const double log_buffer_mb = KnobValue(config, KnobRole::kLogBufferSize, 16.0);
  const double committed =
      bp_mb + max_conn * kConnectionMemoryMb + log_buffer_mb;
  if (committed > kRamBudgetFraction * ram_mb) {
    if (reason != nullptr) {
      *reason = "configured memory " + std::to_string(committed) +
                " MB exceeds budget of instance RAM " +
                std::to_string(ram_mb) + " MB";
    }
    return false;
  }
  return true;
}

// hunterlint: hot
void SimulatedEngine::ReplayAccessStream(int warmup, double io_capacity) const {
  for (int i = 0; i < warmup; ++i) {
    const size_t a = static_cast<size_t>(i);
    pool_.Access(access_pages_[a], access_is_write_[a] != 0);
  }
  pool_.ResetCounters();
  // Background page cleaning proportional to the io_capacity budget; the
  // per-flush budget is loop-invariant, so the division is hoisted.
  const uint64_t flush_budget = static_cast<uint64_t>(io_capacity / 256.0) + 1;
  for (int i = 0; i < kMeasuredAccesses; ++i) {
    const size_t a = static_cast<size_t>(warmup + i);
    pool_.Access(access_pages_[a], access_is_write_[a] != 0);
    if ((i & 255) == 0) pool_.FlushDirty(flush_budget);
  }
}

// hunterlint: hot
PerfResult SimulatedEngine::Run(const Configuration& config,
                                const WorkloadProfile& workload,
                                bool warm_start, common::Rng* rng) const {
  if (!ValidateBoot(config, nullptr)) return BootFailureResult();

  // ---- Knob extraction.
  const double bp_mb = KnobValue(config, KnobRole::kBufferPoolSize, 128.0);
  const int flush_policy =
      static_cast<int>(KnobValue(config, KnobRole::kFlushPolicy, 1.0));
  const double binlog_sync = KnobValue(config, KnobRole::kBinlogSync, 1.0);
  const double log_file_mb = KnobValue(config, KnobRole::kLogFileSize, 48.0);
  const double log_buffer_mb = KnobValue(config, KnobRole::kLogBufferSize, 16.0);
  const double io_capacity = KnobValue(config, KnobRole::kIoCapacity, 200.0);
  const double io_capacity_max =
      std::max(io_capacity, KnobValue(config, KnobRole::kIoCapacityMax, 2000.0));
  const double thread_concurrency =
      KnobValue(config, KnobRole::kThreadConcurrency, 0.0);
  const double max_conn = KnobValue(config, KnobRole::kMaxConnections, 151.0);
  const double bp_instances =
      std::max(1.0, KnobValue(config, KnobRole::kBufferPoolInstances, 1.0));
  const double read_io_threads =
      std::max(1.0, KnobValue(config, KnobRole::kReadIoThreads, 4.0));
  const double thread_cache = KnobValue(config, KnobRole::kThreadCache, 9.0);
  const int flush_method =
      static_cast<int>(KnobValue(config, KnobRole::kFlushMethod, 0.0));
  const bool adaptive_hash =
      KnobValue(config, KnobRole::kAdaptiveHash, 1.0) >= 0.5;
  const double change_buffering =
      KnobValue(config, KnobRole::kChangeBuffering, 2.0);
  const double max_dirty_pct = KnobValue(config, KnobRole::kMaxDirtyPct, 75.0);
  const double lru_scan_depth =
      KnobValue(config, KnobRole::kLruScanDepth, 1024.0);
  const double lock_wait_timeout_s =
      KnobValue(config, KnobRole::kLockWaitTimeout, 50.0);
  const bool deadlock_detect =
      KnobValue(config, KnobRole::kDeadlockDetect, 1.0) >= 0.5;
  const double table_cache = KnobValue(config, KnobRole::kTableCache, 2000.0);
  const bool doublewrite = KnobValue(config, KnobRole::kDoubleWrite, 1.0) >= 0.5;

  // ---- Effective concurrency.
  double n_clients =
      std::min<double>(workload.client_threads, std::max(1.0, max_conn));
  if (workload.max_replay_parallelism > 0.0) {
    n_clients = std::min(n_clients, workload.max_replay_parallelism);
  }
  const double n_exec = thread_concurrency > 0.5
                            ? std::min(n_clients, thread_concurrency)
                            : n_clients;

  // ---- Buffer pool simulation (real LRU over a scaled page space).
  const double data_mb = workload.data_size_gb * 1024.0;
  const double page_mb = std::max(1.0, std::ceil(data_mb / kMaxDataPages));
  const uint64_t data_pages =
      std::max<uint64_t>(16, static_cast<uint64_t>(data_mb / page_mb));
  const uint64_t bp_pages =
      std::max<uint64_t>(1, static_cast<uint64_t>(bp_mb / page_mb));
  pool_.Reset(bp_pages);
  if (warm_start) {
    // The CDB warm-up function restores the hottest pages (low Zipf ranks
    // map to low page ids in this simulation).
    pool_.Prewarm(std::min<uint64_t>(bp_pages, data_pages));
  }
  const double write_access_fraction = 1.0 - workload.read_fraction;
  const int warmup = warm_start ? kWarmupAccesses / 4 : kWarmupAccesses;
  // Draw the whole access stream up front (same interleaved draw order the
  // former per-access loops used, so the RNG stream is unchanged), then
  // replay it through the pool. The page sampler is a ZipfTable owned by
  // the engine: its constants stay warm across evaluations even though the
  // lock replay below draws from a different (n, theta).
  const size_t total_accesses =
      static_cast<size_t>(warmup) + static_cast<size_t>(kMeasuredAccesses);
  access_pages_.resize(total_accesses);
  access_is_write_.resize(total_accesses);
  access_zipf_.Rebind(data_pages, workload.zipf_theta);
  for (size_t i = 0; i < total_accesses; ++i) {
    access_pages_[i] = access_zipf_.Sample(rng);
    access_is_write_[i] = rng->Bernoulli(write_access_fraction) ? 1 : 0;
  }
  ReplayAccessStream(warmup, io_capacity);
  const double miss_ratio = 1.0 - pool_.HitRatio();
  const double dirty_fraction = pool_.DirtyFraction();

  // ---- Per-transaction demand components.
  const double read_ops =
      workload.ops_per_txn * workload.read_fraction;
  const double write_ops = workload.ops_per_txn - read_ops;
  const double point_reads = read_ops * (1.0 - workload.scan_fraction);
  const double scan_reads = read_ops * workload.scan_fraction;
  // A scan op touches ~16 pages with sequential readahead halving misses.
  const double page_reads_per_txn = point_reads + scan_reads * 16.0 * 0.5;
  const double misses_per_txn = page_reads_per_txn * miss_ratio;

  const double prefetch =
      std::clamp(std::sqrt(read_io_threads / 4.0), 0.7, 2.2);
  const double io_wait_ms = misses_per_txn * tuning_.io_read_ms / prefetch;

  // Unique dirty pages produced per transaction (row-to-page clustering),
  // reduced by change buffering of secondary-index writes.
  double dirty_pages_per_txn = workload.write_rows_per_txn * 0.4;
  if (change_buffering >= 1.5) {
    dirty_pages_per_txn *= 0.75;
  } else if (change_buffering >= 0.5) {
    dirty_pages_per_txn *= 0.88;
  }

  // CPU demand per transaction.
  double cpu_ms = workload.ops_per_txn * workload.cpu_ms_per_op *
                  tuning_.cpu_scale;
  if (adaptive_hash) cpu_ms *= 1.0 - 0.08 * workload.read_fraction;
  if (change_buffering >= 1.5) {
    // Merging buffered changes on reads costs a little read CPU.
    cpu_ms *= 1.0 + 0.02 * workload.read_fraction;
  }
  // Each background IO thread has bookkeeping cost; oversizing hurts.
  const double write_io_threads =
      std::max(1.0, KnobValue(config, KnobRole::kWriteIoThreads, 4.0));
  cpu_ms *= 1.0 + 0.0025 * (read_io_threads + write_io_threads);
  // Memory pressure: committing most of RAM to caches starves the OS and
  // connection arenas, so the buffer pool has an interior optimum coupled
  // with max_connections (both count against the same budget).
  {
    const double ram_mb = instance_.ram_gb * 1024.0;
    const double committed_fraction =
        (bp_mb + max_conn * kConnectionMemoryMb + log_buffer_mb) / ram_mb;
    if (committed_fraction > 0.80) {
      cpu_ms *= 1.0 + 3.0 * (committed_fraction - 0.80);
    }
  }
  // Generic minor knobs: each contributes a small smooth penalty with a
  // workload-dependent optimum position (see DESIGN.md §6).
  double generic_penalty = 0.0;
  for (const GenericKnobEffect& g : generic_knobs_) {
    const double opt = g.opt_base + 0.1 * (workload.read_fraction - 0.5);
    const double x = catalog_->Normalize(g.knob_index, config[g.knob_index]);
    const double d = x - std::clamp(opt, 0.05, 0.95);
    generic_penalty += g.weight * d * d;
  }
  cpu_ms *= 1.0 + generic_penalty;
  cpu_ms += misses_per_txn * 0.025;  // page fixing/IO completion CPU
  // Table-cache misses cost lookups below ~1500 cached tables.
  cpu_ms += 0.05 * std::max(0.0, 1.0 - table_cache / 1500.0);
  // Thread churn when the thread cache is undersized for the population.
  const double churn_prob =
      0.02 * std::max(0.0, 1.0 - thread_cache / (0.3 * n_clients + 1.0));
  cpu_ms += churn_prob * 2.0;

  // ---- Lock contention (miniature lock-table replay).
  const double base_service_ms = cpu_ms + io_wait_ms;
  LockSimConfig lock_config;
  lock_config.num_txns = 400;
  lock_config.concurrency = n_exec;
  lock_config.writes_per_txn = workload.hot_writes_per_txn;
  lock_config.hot_rows = workload.hot_rows;
  lock_config.zipf_theta = workload.lock_zipf_theta;
  lock_config.hold_time_ms = std::max(0.5, base_service_ms);
  lock_config.lock_wait_timeout_ms = lock_wait_timeout_s * 1000.0;
  lock_config.deadlock_detect = deadlock_detect;
  const LockSimResult locks =
      LockManager::Simulate(lock_config, rng, &lock_zipf_, &lock_table_);
  if (deadlock_detect) {
    // Active detection burns CPU proportional to the conflict rate.
    cpu_ms += 0.3 * locks.conflict_rate;
  }

  // ---- USL-style latch contention on the CPU path.
  const double bp_partition_factor =
      std::max(0.22, (1.0 + 4.0 / bp_instances) / 5.0);
  double sigma = tuning_.latch_sigma * bp_partition_factor;
  if (adaptive_hash) sigma += 0.0008 * (1.0 - workload.read_fraction);
  const double latch_eff =
      1.0 + sigma * (n_exec - 1.0) +
      tuning_.latch_kappa * n_exec * (n_exec - 1.0);

  // ---- Fixed point over throughput (group commit and flush pressure
  // depend on the rate they help determine).
  double throughput = n_clients / std::max(0.1, base_service_ms) * 1000.0;
  // The WAL config/workload (apart from the commit rate the fixed point is
  // solving for) never changes across iterations, so precompute the
  // rate-independent terms once and re-estimate only the rate-dependent
  // ones inside the loop — the costs are bit-identical to the full
  // re-estimation the loop used to do.
  WalConfig wal_config;
  wal_config.flush_policy = flush_policy;
  wal_config.binlog_sync_every = static_cast<int>(binlog_sync);
  wal_config.log_file_mb = log_file_mb;
  wal_config.log_buffer_mb = log_buffer_mb;
  wal_config.fsync_ms = instance_.fsync_latency_ms;
  wal_config.flush_method = flush_method;
  wal_config.doublewrite = doublewrite;
  wal_config.io_capacity = io_capacity;
  WalWorkload wal_workload;
  wal_workload.redo_kb_per_txn = workload.redo_kb_per_txn;
  wal_workload.concurrent_committers = n_exec;
  const WalInvariants wal_invariants =
      WalModel::Precompute(wal_config, wal_workload);
  // Read-mostly transactions generate (almost) no redo, so the commit
  // path's sync costs scale away with the redo volume.
  const double write_activity =
      std::clamp(workload.redo_kb_per_txn / 0.5, 0.0, 1.0);
  // Rate-independent pieces of the fixed point, hoisted out of the loop.
  // Every cached value is the identical subexpression the loop body used
  // to evaluate per iteration (the WAL write amplification is itself
  // rate-independent — EstimateAtRate always returns
  // inv.base_write_amplification — so everything derived from it is too),
  // which keeps the iterates bit-identical to the unhoisted loop.
  //
  // Dirty-page pressure: surplus production must be flushed by the
  // foreground threads (write stalls).
  const bool bursting = dirty_fraction * 100.0 > max_dirty_pct;
  const double cleaner_eff = std::clamp(lru_scan_depth / 1024.0, 0.5, 2.0);
  const double flush_capacity =
      (bursting ? io_capacity_max : io_capacity) * cleaner_eff;
  const double x_cpu = instance_.cpu_cores * 1000.0 / cpu_ms / latch_eff;
  const double wal_write_amp = wal_invariants.base_write_amplification;
  const double device_ops_per_txn =
      misses_per_txn + dirty_pages_per_txn * wal_write_amp * 0.5;
  // Sustained dirtying cannot outrun total cleaning capacity (background
  // cleaners plus the foreground share of the write device).
  const double fg_flush_capacity =
      instance_.disk_write_iops * 0.3 / wal_write_amp;
  const double x_dirty =
      dirty_pages_per_txn > 0.01
          ? (flush_capacity + fg_flush_capacity) / dirty_pages_per_txn
          : std::numeric_limits<double>::infinity();
  // Letting the pool run very dirty defers work into checkpoint storms.
  const double dirty_storm_ms = 0.02 * (max_dirty_pct - 90.0);
  // Deep LRU scans burn cleaner CPU whether or not pages need flushing.
  const double lru_scan_cpu_ms = 0.00002 * lru_scan_depth;
  WalCost wal;
  double stall_ms = 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    wal = WalModel::EstimateAtRate(wal_invariants, throughput);
    wal.commit_cost_ms *= write_activity;
    wal.log_wait_ms *= write_activity;

    const double dirty_rate = throughput * dirty_pages_per_txn;
    const double surplus = std::max(0.0, dirty_rate - flush_capacity);
    stall_ms = surplus / std::max(1.0, throughput) * tuning_.fg_flush_ms *
               wal_write_amp;
    if (bursting) stall_ms += 0.05;  // burst flushing competes with reads
    if (max_dirty_pct > 90.0) stall_ms += dirty_storm_ms;
    stall_ms += lru_scan_cpu_ms;

    const double service_ms = cpu_ms + io_wait_ms + wal.commit_cost_ms +
                              wal.log_wait_ms + wal.checkpoint_stall_ms +
                              locks.mean_wait_ms + stall_ms;
    // Only the threads admitted into the engine make progress; excess
    // clients queue outside (their wait shows up in latency, not rate).
    const double x_threads = n_exec / service_ms * 1000.0;
    // Over-provisioned background flushing steals read bandwidth: the
    // cleaner scans and rewrites pages it did not need to, so io_capacity
    // has a ridge (too low stalls writers, too high starves readers).
    const double excess_flush =
        std::max(0.0, flush_capacity - 2.0 * std::max(10.0, dirty_rate));
    const double read_iops_available =
        std::max(instance_.disk_read_iops * 0.2,
                 instance_.disk_read_iops - 0.5 * excess_flush);
    const double x_io =
        read_iops_available / std::max(0.01, device_ops_per_txn);
    const double x_log = 1000.0 / std::max(0.004, wal.commit_cost_ms);
    const double x_new = std::min(
        std::min(std::min(x_threads, x_cpu), std::min(x_io, x_log)), x_dirty);
    const double next = 0.5 * throughput + 0.5 * x_new;
    // Exit as soon as the iterate is *bit-exactly* stationary: if next ==
    // throughput, every further iteration recomputes the identical values,
    // so stopping cannot change the result. The historical relative
    // tolerance is kept verbatim alongside it — a stationary positive
    // iterate always satisfies it, so the disjunction changes no exit
    // decision, it only names the exact case explicitly.
    const bool converged = next == throughput ||
                           std::abs(next - throughput) < 0.002 * throughput;
    throughput = next;
    if (converged) break;
  }

  // ---- Latency from the closed-loop population.
  const double latency_avg_ms = n_clients / throughput * 1000.0;
  const double variability = 1.05 + 0.6 * locks.conflict_rate +
                             std::min(1.0, stall_ms / 2.0) +
                             std::min(0.5, wal.checkpoint_stall_ms * 10.0);
  double latency_p95 = latency_avg_ms * variability;
  double latency_p99 = latency_p95 * 1.35;

  // ---- Run-to-run noise.
  const double noise = 1.0 + rng->Gaussian(0.0, tuning_.noise_sigma);
  throughput *= std::max(0.5, noise);
  latency_p95 *= std::max(0.5, 2.0 - noise);
  latency_p99 *= std::max(0.5, 2.0 - noise);

  // ---- Latents and metrics.
  PerfResult result;
  result.throughput_tps = throughput;
  result.latency_p95_ms = latency_p95;
  result.latency_p99_ms = latency_p99;
  result.latents[kLatHitRatio] = 1.0 - miss_ratio;
  result.latents[kLatMissRate] = misses_per_txn * throughput;
  result.latents[kLatDirtyFraction] = dirty_fraction;
  result.latents[kLatFlushRate] =
      std::min(throughput * dirty_pages_per_txn,
               io_capacity_max * std::clamp(lru_scan_depth / 1024.0, 0.5, 2.0));
  result.latents[kLatLogWait] = wal.log_wait_ms + wal.commit_cost_ms;
  result.latents[kLatLockWait] = locks.mean_wait_ms;
  result.latents[kLatDeadlockRate] = locks.deadlock_rate * 1000.0;
  result.latents[kLatThreadsRunning] =
      std::min(n_exec, throughput * (cpu_ms + io_wait_ms) / 1000.0 + 1.0);
  result.latents[kLatCpuUtil] = std::clamp(
      throughput * cpu_ms / 1000.0 / instance_.cpu_cores, 0.0, 1.0);
  result.latents[kLatIoUtil] = std::clamp(
      throughput * (misses_per_txn + dirty_pages_per_txn) /
          instance_.disk_read_iops,
      0.0, 1.0);
  result.latents[kLatCommitRate] = throughput;
  result.latents[kLatReadRowRate] = throughput * read_ops;
  result.latents[kLatWriteRowRate] = throughput * write_ops;
  result.latents[kLatCheckpointRate] = wal.checkpoints_per_sec;
  result.latents[kLatTmpUsage] = throughput * scan_reads * 0.3;
  result.latents[kLatConnChurn] = churn_prob * throughput;
  result.metrics = LatentsToMetrics(result.latents, rng);
  return result;
}

}  // namespace hunter::cdb
