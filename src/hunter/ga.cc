#include "hunter/ga.h"

#include <algorithm>
#include <limits>

namespace hunter::core {

GeneticSampleFactory::GeneticSampleFactory(const cdb::KnobCatalog* catalog,
                                           const Rules* rules,
                                           const GaOptions& options,
                                           uint64_t seed)
    : catalog_(catalog),
      rules_(rules),
      options_(options),
      rng_(seed),
      best_fitness_(-std::numeric_limits<double>::infinity()) {
  // Initialization (Algorithm 1 line 1): a random population.
  for (size_t i = 0; i < options_.population; ++i) {
    queue_.push_back(RandomIndividual());
  }
}

std::vector<double> GeneticSampleFactory::RandomIndividual() {
  std::vector<double> knobs(catalog_->size());
  for (double& v : knobs) v = rng_.Uniform();
  return rules_->Apply(*catalog_, std::move(knobs));
}

size_t GeneticSampleFactory::Select() {
  // Roulette selection (Equation 2) over fitness shifted to be positive.
  double min_fitness = std::numeric_limits<double>::infinity();
  for (const Individual& ind : population_) {
    min_fitness = std::min(min_fitness, ind.fitness);
  }
  std::vector<double> weights(population_.size());
  for (size_t i = 0; i < population_.size(); ++i) {
    const double shifted = population_[i].fitness - min_fitness + 1e-3;
    // Squared shifted fitness sharpens selection pressure; plain Eq.-2
    // roulette is nearly uniform when fitness spreads are small relative
    // to the shift.
    weights[i] = shifted * shifted;
  }
  return rng_.Categorical(weights);
}

void GeneticSampleFactory::BreedGeneration() {
  if (population_.empty()) {
    for (size_t i = 0; i < options_.population; ++i) {
      queue_.push_back(RandomIndividual());
    }
    return;
  }
  ++generations_;
  const size_t m = catalog_->size();
  // Elitism: K_BEST survives into the next generation (Algorithm 1 line 3).
  if (!best_knobs_.empty()) queue_.push_back(best_knobs_);
  while (queue_.size() < options_.population) {
    // Selection (line 5), crossover (line 7), mutation (line 8).
    const Individual& a = population_[Select()];
    const Individual& b = population_[Select()];
    const size_t cut =
        static_cast<size_t>(rng_.UniformInt(1, static_cast<int64_t>(m) - 1));
    std::vector<double> child(m);
    for (size_t g = 0; g < m; ++g) {
      child[g] = g < cut ? a.knobs[g] : b.knobs[g];
    }
    for (double& gene : child) {
      if (rng_.Bernoulli(options_.mutation_prob)) gene = rng_.Uniform();
    }
    queue_.push_back(rules_->Apply(*catalog_, std::move(child)));
  }
  // POP = POP_i + POP_j (line 11): keep the strongest half of history so
  // selection pressure grows while memory stays bounded.
  std::sort(population_.begin(), population_.end(),
            [](const Individual& x, const Individual& y) {
              return x.fitness > y.fitness;
            });
  if (population_.size() > 2 * options_.population) {
    population_.resize(2 * options_.population);
  }
}

std::vector<std::vector<double>> GeneticSampleFactory::Propose(size_t count) {
  std::vector<std::vector<double>> proposals;
  const size_t budget = options_.target_samples - evaluated_;
  count = std::min(count, budget);
  while (proposals.size() < count) {
    if (queue_.empty()) BreedGeneration();
    proposals.push_back(queue_.back());
    queue_.pop_back();
  }
  return proposals;
}

void GeneticSampleFactory::Observe(
    const std::vector<controller::Sample>& samples) {
  for (const controller::Sample& sample : samples) {
    ++evaluated_;
    Individual individual;
    individual.knobs = sample.knobs;
    individual.fitness = sample.fitness;
    if (!sample.boot_failed && sample.fitness > best_fitness_) {
      best_fitness_ = sample.fitness;
      best_knobs_ = sample.knobs;
    }
    population_.push_back(std::move(individual));
  }
}

}  // namespace hunter::core
