#include "hunter/recommender.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hunter::core {

Recommender::Recommender(const cdb::KnobCatalog* catalog, const Rules* rules,
                         OptimizedSpace space,
                         const RecommenderOptions& options, uint64_t seed)
    : catalog_(catalog),
      rules_(rules),
      space_(std::move(space)),
      options_(options),
      rng_(seed),
      noise_(space_.selected_knobs.size(), 0.15, options.ou_sigma_start),
      best_fitness_(-std::numeric_limits<double>::infinity()) {
  options_.ddpg.state_dim = space_.state_dim;
  options_.ddpg.action_dim = space_.selected_knobs.size();
  agent_ = std::make_unique<ml::Ddpg>(options_.ddpg, &rng_);
  base_config_ = catalog_->NormalizeConfiguration(
      catalog_->DefaultConfiguration());
  state_.assign(space_.state_dim, 0.0);
  state_mean_.assign(space_.state_dim, 0.0);
  state_m2_.assign(space_.state_dim, 0.0);
}

std::vector<double> Recommender::ReducedAction(
    const std::vector<double>& full) const {
  std::vector<double> reduced(space_.selected_knobs.size());
  for (size_t i = 0; i < reduced.size(); ++i) {
    reduced[i] = full[space_.selected_knobs[i]];
  }
  return reduced;
}

std::vector<double> Recommender::ExpandAction(
    const std::vector<double>& reduced) const {
  std::vector<double> full = base_config_;
  for (size_t i = 0; i < reduced.size(); ++i) {
    full[space_.selected_knobs[i]] = reduced[i];
  }
  return rules_->Apply(*catalog_, std::move(full));
}

void Recommender::UpdateStateNormalization(
    const std::vector<double>& encoded) {
  ++state_count_;
  for (size_t i = 0; i < encoded.size(); ++i) {
    const double delta = encoded[i] - state_mean_[i];
    state_mean_[i] += delta / static_cast<double>(state_count_);
    state_m2_[i] += delta * (encoded[i] - state_mean_[i]);
  }
}

std::vector<double> Recommender::NormalizeState(
    const std::vector<double>& encoded) const {
  std::vector<double> normalized(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    double stddev = 1.0;
    if (state_count_ > 1) {
      stddev =
          std::sqrt(state_m2_[i] / static_cast<double>(state_count_ - 1));
    }
    const double z =
        stddev > 1e-9 ? (encoded[i] - state_mean_[i]) / stddev : 0.0;
    normalized[i] = std::clamp(z, -5.0, 5.0);
  }
  return normalized;
}

std::vector<double> Recommender::EncodeState(
    const std::vector<double>& metrics) {
  const std::vector<double> encoded = space_.EncodeState(metrics);
  UpdateStateNormalization(encoded);
  return NormalizeState(encoded);
}

void Recommender::WarmStart(const std::vector<controller::Sample>& pool,
                            const std::vector<double>& base_full_config) {
  if (!base_full_config.empty()) base_config_ = base_full_config;
  // Seed the replay buffer with the entire Shared Pool (the paper's key
  // hybrid-design decision: GA samples warm-start DDPG).
  std::vector<double> previous_state(space_.state_dim, 0.0);
  for (const controller::Sample& sample : pool) {
    std::vector<double> next_state = previous_state;
    if (!sample.boot_failed) next_state = EncodeState(sample.metrics);
    ml::Transition transition;
    transition.state = previous_state;
    transition.action = ReducedAction(sample.knobs);
    transition.reward = sample.fitness;
    transition.next_state = next_state;
    transition.terminal = true;
    agent_->AddTransition(std::move(transition));
    previous_state = next_state;
    if (!sample.boot_failed && sample.fitness > best_fitness_) {
      best_fitness_ = sample.fitness;
      best_action_ = ReducedAction(sample.knobs);
    }
  }
  state_ = previous_state;
  for (int i = 0; i < options_.warm_start_updates; ++i) agent_->TrainStep();
}

double Recommender::ProbabilityCurrent(size_t t) const {
  // Equations 5-7: P(A_c) + P(A_best) = 1, P(A_c) monotone increasing in t,
  // lim P(A_c) = 1, P(A_c)|_{t=0} = 0.3.
  const double start = options_.fes_p_current_start;
  const double p = 1.0 - (1.0 - start) * std::exp(-static_cast<double>(t) /
                                                  options_.fes_growth_steps);
  // A small share of A_best exploitation is kept alive indefinitely; the
  // limit of Eq. 6 is approached but the anchor-based local search never
  // fully vanishes (guards against policy drift in very long runs).
  return std::min(p, options_.fes_p_current_cap);
}

std::vector<std::vector<double>> Recommender::Propose(size_t count) {
  last_reduced_actions_.clear();
  std::vector<std::vector<double>> proposals;
  const size_t action_dim = space_.selected_knobs.size();
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> reduced;
    if (rng_.Bernoulli(options_.random_restart_prob)) {
      reduced.resize(action_dim);
      for (double& v : reduced) v = rng_.Uniform();
      last_reduced_actions_.push_back(reduced);
      proposals.push_back(ExpandAction(reduced));
      continue;
    }
    const bool fes_exploit =
        options_.use_fes && !best_action_.empty() &&
        !rng_.Bernoulli(ProbabilityCurrent(steps_));
    if (fes_exploit) {
      // A_best: the best-performing action plus a random value (Eq. 4).
      reduced = best_action_;
      for (double& v : reduced) {
        v = std::clamp(v + rng_.Gaussian(0.0, options_.fes_best_noise), 0.0,
                       1.0);
      }
    } else {
      reduced = agent_->Act(state_);
      const double t = std::min(
          1.0, static_cast<double>(steps_) / options_.ou_decay_steps);
      noise_.set_sigma(options_.ou_sigma_start +
                       t * (options_.ou_sigma_end - options_.ou_sigma_start));
      const std::vector<double>& n = noise_.Sample(&rng_);
      for (size_t d = 0; d < action_dim; ++d) {
        reduced[d] = std::clamp(reduced[d] + n[d], 0.0, 1.0);
      }
    }
    last_reduced_actions_.push_back(reduced);
    proposals.push_back(ExpandAction(reduced));
  }
  return proposals;
}

void Recommender::Observe(const std::vector<controller::Sample>& samples) {
  for (size_t i = 0; i < samples.size(); ++i) {
    const controller::Sample& sample = samples[i];
    std::vector<double> next_state = state_;
    if (!sample.boot_failed) next_state = EncodeState(sample.metrics);
    ml::Transition transition;
    transition.state = state_;
    transition.action = i < last_reduced_actions_.size()
                            ? last_reduced_actions_[i]
                            : ReducedAction(sample.knobs);
    transition.reward = sample.fitness;
    transition.next_state = next_state;
    transition.terminal = true;
    agent_->AddTransition(std::move(transition));
    state_ = next_state;
    ++steps_;
    if (!sample.boot_failed && sample.fitness > best_fitness_) {
      best_fitness_ = sample.fitness;
      best_action_ = i < last_reduced_actions_.size()
                         ? last_reduced_actions_[i]
                         : ReducedAction(sample.knobs);
      base_config_ = sample.knobs;  // frozen knobs track the incumbent
    }
  }
  // Training effort is bounded per observation round, not per sample: a
  // 20-clone batch must not train 20x harder per unit of new data, or the
  // policy overfits its replay and collapses late in long runs.
  const int updates = std::min<int>(
      options_.train_steps_per_sample * static_cast<int>(samples.size()),
      2 * options_.train_steps_per_sample);
  for (int k = 0; k < updates; ++k) agent_->TrainStep();
}

}  // namespace hunter::core
