#include "hunter/model_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/text.h"

namespace hunter::core {

namespace {

constexpr char kMagic[] = "HUNTER_MODEL_V1";

void WriteVector(std::ostream& os, const char* tag,
                 const std::vector<double>& values) {
  os << tag << " " << values.size();
  for (double v : values) os << " " << v;
  os << "\n";
}

bool ReadVector(std::istream& is, const std::string& expected_tag,
                std::vector<double>* values) {
  std::string tag;
  size_t count = 0;
  if (!(is >> tag >> count) || tag != expected_tag) return false;
  values->resize(count);
  for (double& v : *values) {
    if (!(is >> v)) return false;
  }
  return true;
}

}  // namespace

bool SaveModel(const HunterModel& model, std::ostream& os) {
  // Model files must be byte-stable across hosts: pin the "C" locale for
  // the duration of the write (a caller-imbued locale would otherwise
  // render decimal commas) alongside round-trip precision.
  common::ScopedClassicLocale pin(os);
  os << kMagic << "\n";
  os << std::setprecision(17);
  os << "state_dim " << model.space.state_dim << "\n";
  os << "use_pca " << (model.space.use_pca ? 1 : 0) << "\n";
  os << "signature " << (model.signature.empty() ? "-" : model.signature)
     << "\n";
  std::vector<double> knobs(model.space.selected_knobs.begin(),
                            model.space.selected_knobs.end());
  WriteVector(os, "selected_knobs", knobs);
  WriteVector(os, "knob_importance", model.space.knob_importance);
  WriteVector(os, "pca_state",
              model.space.use_pca ? model.space.pca.SaveState()
                                  : std::vector<double>{});
  WriteVector(os, "ddpg_parameters", model.ddpg_parameters);
  WriteVector(os, "base_config", model.base_config);
  return static_cast<bool>(os);
}

bool SaveModelToFile(const HunterModel& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  return SaveModel(model, os);
}

bool LoadModel(std::istream& is, HunterModel* model) {
  common::ScopedClassicLocale pin(is);  // parse "1.5" under any host locale
  std::string magic;
  if (!(is >> magic) || magic != kMagic) return false;
  std::string tag;
  size_t state_dim = 0;
  int use_pca = 0;
  std::string signature;
  if (!(is >> tag >> state_dim) || tag != "state_dim") return false;
  if (!(is >> tag >> use_pca) || tag != "use_pca") return false;
  if (!(is >> tag >> signature) || tag != "signature") return false;

  std::vector<double> knobs, importance, pca_state, params, base;
  if (!ReadVector(is, "selected_knobs", &knobs)) return false;
  if (!ReadVector(is, "knob_importance", &importance)) return false;
  if (!ReadVector(is, "pca_state", &pca_state)) return false;
  if (!ReadVector(is, "ddpg_parameters", &params)) return false;
  if (!ReadVector(is, "base_config", &base)) return false;

  model->space = OptimizedSpace();
  model->space.state_dim = state_dim;
  model->space.use_pca = use_pca != 0;
  model->space.selected_knobs.assign(knobs.begin(), knobs.end());
  model->space.knob_importance = std::move(importance);
  if (model->space.use_pca && !model->space.pca.LoadState(pca_state)) {
    return false;
  }
  model->ddpg_parameters = std::move(params);
  model->base_config = std::move(base);
  model->signature = signature == "-" ? std::string() : signature;
  return true;
}

bool LoadModelFromFile(const std::string& path, HunterModel* model) {
  std::ifstream is(path);
  if (!is) return false;
  return LoadModel(is, model);
}

}  // namespace hunter::core
