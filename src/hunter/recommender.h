// The Recommender (§3.3): DDPG over the reduced search space (PCA-encoded
// state, top-k sifted knobs), warm-started from the Shared Pool, exploring
// with the Fast Exploration Strategy (FES, Equations 4-7):
//
//   A = A_c (the policy's action + OU noise)   with probability P(A_c)
//     | A_best (best-known action + noise)     with probability 1 - P(A_c)
//
// with P(A_c) = 0.3 at t = 0, strictly increasing, and -> 1 as t -> inf,
// so early steps exploit the warm-start samples' best region while later
// steps trust the trained policy.

#ifndef HUNTER_HUNTER_RECOMMENDER_H_
#define HUNTER_HUNTER_RECOMMENDER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "cdb/knob.h"
#include "common/rng.h"
#include "controller/sample.h"
#include "hunter/rules.h"
#include "hunter/search_space_optimizer.h"
#include "ml/ddpg.h"
#include "ml/ou_noise.h"

namespace hunter::core {

struct RecommenderOptions {
  ml::DdpgOptions ddpg;        // state/action dims filled by the Recommender
  bool use_fes = true;
  double fes_p_current_start = 0.3;   // P(A_c) at t = 0 (§3.3)
  double fes_p_current_cap = 0.9;     // ceiling on P(A_c) (see .cc comment)
  double fes_growth_steps = 150.0;    // e-folding of 1 - P(A_c)
  double fes_best_noise = 0.05;       // sigma of the noise added to A_best
  // Fraction of proposals drawn uniformly at random (epsilon restarts keep
  // the recommender from locking into a local basin of the warm start).
  double random_restart_prob = 0.08;
  double ou_sigma_start = 0.25;
  double ou_sigma_end = 0.05;
  double ou_decay_steps = 300.0;
  int train_steps_per_sample = 2;
  int warm_start_updates = 300;       // gradient steps on the seeded buffer
};

class Recommender {
 public:
  Recommender(const cdb::KnobCatalog* catalog, const Rules* rules,
              OptimizedSpace space, const RecommenderOptions& options,
              uint64_t seed);

  // Seeds the replay buffer with every Shared Pool sample and pre-trains —
  // HUNTER's hybrid warm start. `base` becomes the frozen values of
  // non-selected knobs (the best configuration found by the factory).
  void WarmStart(const std::vector<controller::Sample>& pool,
                 const std::vector<double>& base_full_config);

  // Full-dimension proposals (selected knobs driven by the agent/FES,
  // frozen knobs from the base config, rules applied last).
  std::vector<std::vector<double>> Propose(size_t count);

  void Observe(const std::vector<controller::Sample>& samples);

  // P(A_c) after `t` observed steps (exposed for tests; Equations 5-7).
  double ProbabilityCurrent(size_t t) const;

  const OptimizedSpace& space() const { return space_; }
  double best_fitness() const { return best_fitness_; }
  const std::vector<double>& best_full_config() const { return base_config_; }

  // Model (de)serialization for the reuse schemes (§4).
  std::vector<double> SaveModel() const { return agent_->SaveParameters(); }
  void LoadModel(const std::vector<double>& params) {
    agent_->LoadParameters(params);
  }

 private:
  std::vector<double> EncodeState(const std::vector<double>& metrics);
  std::vector<double> ReducedAction(const std::vector<double>& full) const;
  std::vector<double> ExpandAction(const std::vector<double>& reduced) const;
  void UpdateStateNormalization(const std::vector<double>& encoded);
  std::vector<double> NormalizeState(const std::vector<double>& encoded) const;

  const cdb::KnobCatalog* catalog_;
  const Rules* rules_;
  OptimizedSpace space_;
  RecommenderOptions options_;
  common::Rng rng_;
  std::unique_ptr<ml::Ddpg> agent_;
  ml::OuNoise noise_;

  std::vector<double> base_config_;   // full-dim; frozen knobs come from here
  std::vector<double> best_action_;   // reduced-dim best action (for FES)
  double best_fitness_;
  std::vector<double> state_;         // normalized encoded state
  std::vector<std::vector<double>> last_reduced_actions_;

  // Running normalization of the encoded state.
  std::vector<double> state_mean_;
  std::vector<double> state_m2_;
  size_t state_count_ = 0;
  size_t steps_ = 0;
};

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_RECOMMENDER_H_
