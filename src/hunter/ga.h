// The Sample Factory's Genetic Algorithm (§3.1, Algorithm 1).
//
// Individuals are normalized configurations K_i; fitness is Equation 1
// (computed by the Actor and carried on the Sample). Each generation keeps
// K_BEST (elitism, line 3 of Algorithm 1) and fills the rest by roulette
// selection, single-point crossover, and per-gene mutation. The factory
// stops after `target_samples` evaluations (140 in the paper, the Figure 6
// plateau).

#ifndef HUNTER_HUNTER_GA_H_
#define HUNTER_HUNTER_GA_H_

#include <cstddef>
#include <vector>

#include "cdb/knob.h"
#include "common/rng.h"
#include "controller/sample.h"
#include "hunter/rules.h"

namespace hunter::core {

struct GaOptions {
  size_t population = 20;       // individuals per generation
  double mutation_prob = 0.10;  // beta: per-gene mutation probability
  size_t target_samples = 140;  // total stress tests the factory performs
};

class GeneticSampleFactory {
 public:
  GeneticSampleFactory(const cdb::KnobCatalog* catalog, const Rules* rules,
                       const GaOptions& options, uint64_t seed);

  // Next individuals to stress-test (never exceeds the remaining budget).
  std::vector<std::vector<double>> Propose(size_t count);

  // Feeds back evaluated samples (matched to proposals in order).
  void Observe(const std::vector<controller::Sample>& samples);

  // True once target_samples evaluations have been consumed.
  bool Done() const { return evaluated_ >= options_.target_samples; }

  size_t evaluated() const { return evaluated_; }
  // Generations bred so far (the initial random population is generation 0).
  size_t generations() const { return generations_; }
  const std::vector<double>& best_individual() const { return best_knobs_; }
  double best_fitness() const { return best_fitness_; }

 private:
  std::vector<double> RandomIndividual();
  void BreedGeneration();
  size_t Select();  // roulette index into population_

  const cdb::KnobCatalog* catalog_;
  const Rules* rules_;
  GaOptions options_;
  common::Rng rng_;

  struct Individual {
    std::vector<double> knobs;
    double fitness = 0.0;
  };
  std::vector<Individual> population_;      // evaluated individuals (POP)
  std::vector<std::vector<double>> queue_;  // awaiting evaluation
  std::vector<double> best_knobs_;
  double best_fitness_;
  size_t evaluated_ = 0;
  size_t generations_ = 0;
};

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_GA_H_
