// The Search Space Optimizer (§3.2): metrics compression via PCA (keep the
// fewest components whose cumulative variance exceeds 90% — 13 on TPC-C in
// the paper's Fig. 7) and knob sifting via a 200-tree Random Forest whose
// impurity-based importances rank knobs (keep the top 20 — the paper's
// Fig. 8 knee).

#ifndef HUNTER_HUNTER_SEARCH_SPACE_OPTIMIZER_H_
#define HUNTER_HUNTER_SEARCH_SPACE_OPTIMIZER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cdb/knob.h"
#include "common/rng.h"
#include "controller/sample.h"
#include "hunter/rules.h"
#include "ml/pca.h"
#include "ml/random_forest.h"

namespace hunter::core {

struct OptimizerOptions {
  bool use_pca = true;
  bool use_rf = true;
  double variance_threshold = 0.90;  // PCA CDF cut (Fig. 7: 91% at 13)
  size_t top_knobs = 20;             // knobs kept after sifting (Fig. 8)
  ml::RandomForestOptions forest;    // 200 CARTs by default
  // Threads for the forest fit (0 or 1 = serial). The fit forks per-tree
  // RNGs up front, so the result is bit-identical at any thread count.
  size_t rf_fit_threads = 0;
};

// The reduced search space handed to the Recommender.
struct OptimizedSpace {
  ml::Pca pca;
  size_t state_dim = 0;               // components kept (or 63 w/o PCA)
  bool use_pca = false;
  std::vector<size_t> selected_knobs; // indices into the catalog
  std::vector<double> knob_importance;  // full-length importance vector

  // Encodes a raw 63-metric vector into the reduced state.
  std::vector<double> EncodeState(const std::vector<double>& metrics) const;

  // Signature used by the online model-reuse matching module (§4): two
  // workloads match when they share key knobs and compressed-state size.
  std::string Signature() const;
};

class SearchSpaceOptimizer {
 public:
  // Fits PCA on the pool's metric matrix and the forest on
  // (knobs -> fitness); boot-failed samples are excluded from PCA (their
  // metrics are meaningless) but kept for the forest (the failure is real
  // signal about those knobs). Only `rules`-tunable knobs are eligible.
  static OptimizedSpace Optimize(const std::vector<controller::Sample>& pool,
                                 const cdb::KnobCatalog& catalog,
                                 const Rules& rules,
                                 const OptimizerOptions& options,
                                 common::Rng* rng);
};

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_SEARCH_SPACE_OPTIMIZER_H_
