// Persistence for HUNTER models (§4 model reuse across sessions).
//
// A HunterModel (search space + DDPG parameters + incumbent configuration)
// is written as a line-oriented text format so models trained in one
// process can warm-start tuning in another — the cross-session counterpart
// of the in-memory ModelRegistry. PCA state is reconstructed by re-fitting
// on the stored (compact) statistics-free projection: we persist the full
// transformation (means, scales, components) explicitly.

#ifndef HUNTER_HUNTER_MODEL_IO_H_
#define HUNTER_HUNTER_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "hunter/hunter.h"

namespace hunter::core {

// Serializes `model` to a stream / file. Returns false on I/O failure.
bool SaveModel(const HunterModel& model, std::ostream& os);
bool SaveModelToFile(const HunterModel& model, const std::string& path);

// Deserializes a model; returns false on parse failure (leaving `model`
// unspecified).
bool LoadModel(std::istream& is, HunterModel* model);
bool LoadModelFromFile(const std::string& path, HunterModel* model);

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_MODEL_IO_H_
