#include "hunter/search_space_optimizer.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/thread_pool.h"

namespace hunter::core {

std::vector<double> OptimizedSpace::EncodeState(
    const std::vector<double>& metrics) const {
  if (use_pca) return pca.Transform(metrics, state_dim);
  return metrics;
}

std::string OptimizedSpace::Signature() const {
  std::vector<size_t> sorted = selected_knobs;
  std::sort(sorted.begin(), sorted.end());
  // Built with += rather than operator+ chains: GCC 12's -Wrestrict issues
  // a false-positive overlap warning when the temporaries of a + chain are
  // inlined (PR105329), and the CI build promotes warnings to errors.
  std::string signature = "v";
  signature += std::to_string(state_dim);
  signature += ':';
  for (size_t knob : sorted) {
    signature += std::to_string(knob);
    signature += ',';
  }
  return signature;
}

OptimizedSpace SearchSpaceOptimizer::Optimize(
    const std::vector<controller::Sample>& pool,
    const cdb::KnobCatalog& catalog, const Rules& rules,
    const OptimizerOptions& options, common::Rng* rng) {
  OptimizedSpace space;
  const std::vector<size_t> tunable = rules.TunableKnobs(catalog);

  // ---- Metrics compression (PCA).
  std::vector<std::vector<double>> metric_rows;
  for (const controller::Sample& sample : pool) {
    if (!sample.boot_failed) metric_rows.push_back(sample.metrics);
  }
  if (options.use_pca && metric_rows.size() >= 8) {
    space.pca.Fit(linalg::Matrix(metric_rows), /*standardize=*/true);
    space.state_dim =
        space.pca.ComponentsForVariance(options.variance_threshold);
    space.use_pca = true;
  } else {
    space.state_dim = metric_rows.empty() ? 0 : metric_rows[0].size();
    space.use_pca = false;
  }

  // ---- Knob sifting (Random Forest importance).
  if (options.use_rf && pool.size() >= 16 && !tunable.empty()) {
    linalg::Matrix x(pool.size(), tunable.size());
    std::vector<double> y(pool.size());
    for (size_t r = 0; r < pool.size(); ++r) {
      for (size_t c = 0; c < tunable.size(); ++c) {
        x.At(r, c) = pool[r].knobs[tunable[c]];
      }
      y[r] = pool[r].fitness;
    }
    ml::RandomForest forest;
    std::unique_ptr<common::ThreadPool> fit_pool;
    if (options.rf_fit_threads > 1) {
      fit_pool = std::make_unique<common::ThreadPool>(options.rf_fit_threads);
    }
    forest.Fit(x, y, options.forest, rng, fit_pool.get());
    const std::vector<size_t> ranking = forest.RankFeatures();
    const size_t keep = std::min(options.top_knobs, tunable.size());
    space.selected_knobs.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      space.selected_knobs.push_back(tunable[ranking[i]]);
    }
    space.knob_importance.assign(catalog.size(), 0.0);
    const std::vector<double>& importance = forest.feature_importance();
    for (size_t c = 0; c < tunable.size(); ++c) {
      space.knob_importance[tunable[c]] = importance[c];
    }
  } else {
    space.selected_knobs = tunable;
    space.knob_importance.assign(catalog.size(), 0.0);
    for (size_t knob : tunable) {
      space.knob_importance[knob] = 1.0 / static_cast<double>(tunable.size());
    }
  }
  return space;
}

}  // namespace hunter::core
