// HUNTER: the three-phase hybrid tuning workflow (§2.1).
//
//   Phase 1 — Sample Factory: the GA stress-tests configurations under the
//             user's Rules until the Shared Pool holds `ga_samples` samples
//             (140 in the paper).
//   Phase 2 — Search Space Optimizer: PCA compresses the 63 metrics, the
//             Random Forest sifts the knobs to the top-k.
//   Phase 3 — Recommender: DDPG warm-started with every Shared Pool sample,
//             exploring with FES, proposes configurations until the budget
//             elapses; the best verified configuration is deployed on the
//             user's instance by the Controller.
//
// Ablation flags (use_ga / use_pca / use_rf / use_fes) regenerate the
// paper's Tables 3-5; with all four disabled HUNTER degenerates to the
// CDBTune-style pure-DDPG tuner. ExportModel/ImportModel implement the §4
// model-reuse schemes; ModelRegistry implements the online matching module.

#ifndef HUNTER_HUNTER_HUNTER_H_
#define HUNTER_HUNTER_HUNTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdb/knob.h"
#include "controller/shared_pool.h"
#include "hunter/ga.h"
#include "hunter/recommender.h"
#include "hunter/rules.h"
#include "hunter/search_space_optimizer.h"
#include "tuners/tuner.h"

namespace hunter::core {

struct HunterOptions {
  bool use_ga = true;
  bool use_pca = true;
  bool use_rf = true;
  bool use_fes = true;
  GaOptions ga;                 // ga.target_samples = 140 by default
  OptimizerOptions optimizer;
  RecommenderOptions recommender;
  // Without GA, this many random samples seed the pool before the
  // recommender starts (CDBTune-style cold start).
  size_t random_warmup_without_ga = 10;
  // Re-run the Search Space Optimizer over the grown Shared Pool every this
  // many recommender samples (0 disables). A fresh forest over more samples
  // can rescue an unlucky initial knob sift; the rebuilt Recommender is
  // warm-started from the full pool.
  size_t reoptimize_every = 400;
};

// A serialized Recommender + search space, reusable across workloads with
// matching signatures (§4 Online Model Reuse) or across instance types
// (§4 Model Reuse / §6.5).
struct HunterModel {
  OptimizedSpace space;
  std::vector<double> ddpg_parameters;
  std::vector<double> base_config;  // full-dim normalized incumbent
  std::string signature;
};

class HunterTuner : public tuners::Tuner {
 public:
  HunterTuner(const cdb::KnobCatalog* catalog, Rules rules,
              const HunterOptions& options, uint64_t seed);

  std::string name() const override { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::vector<std::vector<double>> Propose(size_t count) override;
  void Observe(const std::vector<controller::Sample>& samples) override;
  // Registers hunter.* metric series (GA generations, search-space
  // refreshes, DDPG train steps, pool size) and emits phase events.
  void BindObservability(obs::Journal* journal) override;

  enum class Phase { kSampleFactory, kRecommend };
  Phase phase() const { return phase_; }

  const controller::SharedPool& shared_pool() const { return pool_; }
  const Rules& rules() const { return rules_; }

  // Available after phase 2 ran (null during the sample-factory phase).
  const Recommender* recommender() const { return recommender_.get(); }

  // §4 model reuse: exports the trained Recommender; importing one skips
  // the Sample Factory and Optimizer entirely and fine-tunes instead.
  std::optional<HunterModel> ExportModel() const;
  void ImportModel(const HunterModel& model);

 private:
  void MaybeTransitionToRecommend();

  std::string name_ = "HUNTER";
  const cdb::KnobCatalog* catalog_;
  Rules rules_;
  HunterOptions options_;
  common::Rng rng_;
  controller::SharedPool pool_;
  Phase phase_ = Phase::kSampleFactory;
  std::unique_ptr<GeneticSampleFactory> factory_;
  std::unique_ptr<Recommender> recommender_;
  size_t warmup_proposed_ = 0;
  size_t recommend_samples_ = 0;

  // Observability (null until BindObservability; instruments live in the
  // journal's registry).
  obs::Journal* journal_ = nullptr;
  obs::Counter* ga_generations_counter_ = nullptr;
  obs::Counter* sso_refreshes_counter_ = nullptr;
  obs::Counter* ddpg_train_steps_counter_ = nullptr;
  obs::Gauge* pool_size_gauge_ = nullptr;
  size_t reported_ga_generations_ = 0;
};

// The §4 matching module: stores models keyed by search-space signature;
// a new tuning task with the same key knobs and compressed-state dimension
// loads the stored Recommender and fine-tunes.
class ModelRegistry {
 public:
  void Store(const HunterModel& model);
  std::optional<HunterModel> Match(const std::string& signature) const;
  size_t size() const { return models_.size(); }

 private:
  std::map<std::string, HunterModel> models_;
};

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_HUNTER_H_
