#include "hunter/hunter.h"

#include <string>

#include "linalg/simd/simd.h"

namespace hunter::core {

HunterTuner::HunterTuner(const cdb::KnobCatalog* catalog, Rules rules,
                         const HunterOptions& options, uint64_t seed)
    : catalog_(catalog),
      rules_(std::move(rules)),
      options_(options),
      rng_(seed) {
  if (options_.use_ga) {
    factory_ = std::make_unique<GeneticSampleFactory>(
        catalog_, &rules_, options_.ga, rng_.NextU64());
  }
  options_.optimizer.use_pca = options_.use_pca;
  options_.optimizer.use_rf = options_.use_rf;
  options_.recommender.use_fes = options_.use_fes;
}

void HunterTuner::BindObservability(obs::Journal* journal) {
  journal_ = journal;
  obs::MetricsRegistry* registry =
      journal != nullptr ? journal->registry() : nullptr;
  if (registry == nullptr) return;
  ga_generations_counter_ =
      registry->RegisterCounter("hunter.ga_generations");
  sso_refreshes_counter_ = registry->RegisterCounter("hunter.sso_refreshes");
  ddpg_train_steps_counter_ =
      registry->RegisterCounter("hunter.ddpg_train_steps");
  pool_size_gauge_ = registry->RegisterGauge("hunter.pool_size");
  // Which vector-kernel tier this process dispatches at (0 = scalar,
  // 1 = avx2+fma; see linalg/simd/simd.h). Recorded once per bind so a run
  // journal pins down the ISA its numbers were produced on — the kernels
  // are bit-exact across tiers, so this explains timing, never results.
  obs::Gauge* simd_tier_gauge = registry->RegisterGauge("linalg.simd_tier");
  simd_tier_gauge->Set(static_cast<double>(linalg::simd::ActiveTierIndex()));
}

std::vector<std::vector<double>> HunterTuner::Propose(size_t count) {
  if (phase_ == Phase::kSampleFactory) {
    if (options_.use_ga) {
      std::vector<std::vector<double>> proposals = factory_->Propose(count);
      if (!proposals.empty()) return proposals;
      // Factory exhausted its budget but the transition happens on Observe;
      // fall through to the recommender after transitioning now.
      MaybeTransitionToRecommend();
    } else {
      // Cold start without GA: a short random warm-up (CDBTune-style).
      if (warmup_proposed_ < options_.random_warmup_without_ga) {
        std::vector<std::vector<double>> proposals;
        for (size_t i = 0;
             i < count && warmup_proposed_ < options_.random_warmup_without_ga;
             ++i, ++warmup_proposed_) {
          std::vector<double> random(catalog_->size());
          for (double& v : random) v = rng_.Uniform();
          proposals.push_back(rules_.Apply(*catalog_, std::move(random)));
        }
        return proposals;
      }
      MaybeTransitionToRecommend();
    }
  }
  return recommender_->Propose(count);
}

void HunterTuner::Observe(const std::vector<controller::Sample>& samples) {
  // Samples the clone fleet gave up on (infrastructure faults, not boot
  // failures) carry no information about their configuration: keep them out
  // of the Shared Pool and away from the GA/DDPG learners entirely.
  std::vector<controller::Sample> usable;
  usable.reserve(samples.size());
  for (const controller::Sample& sample : samples) {
    if (!sample.evaluation_failed) usable.push_back(sample);
  }
  pool_.AddBatch(usable);
  if (pool_size_gauge_ != nullptr) {
    pool_size_gauge_->Set(static_cast<double>(pool_.size()));
  }
  if (phase_ == Phase::kSampleFactory) {
    if (options_.use_ga) {
      factory_->Observe(usable);
      if (ga_generations_counter_ != nullptr &&
          factory_->generations() > reported_ga_generations_) {
        const size_t generations = factory_->generations();
        ga_generations_counter_->Increment(
            static_cast<double>(generations - reported_ga_generations_));
        reported_ga_generations_ = generations;
        journal_->tracer().Event(
            "ga_generation", {{"generation", std::to_string(generations)}});
      }
      if (factory_->Done()) MaybeTransitionToRecommend();
    } else if (warmup_proposed_ >= options_.random_warmup_without_ga) {
      MaybeTransitionToRecommend();
    }
    return;
  }
  recommender_->Observe(usable);
  if (ddpg_train_steps_counter_ != nullptr) {
    ddpg_train_steps_counter_->Increment(static_cast<double>(
        usable.size() *
        static_cast<size_t>(options_.recommender.train_steps_per_sample)));
  }
  recommend_samples_ += usable.size();
  if (options_.reoptimize_every > 0 &&
      recommend_samples_ >= options_.reoptimize_every) {
    recommend_samples_ = 0;
    phase_ = Phase::kSampleFactory;  // force a rebuild
    MaybeTransitionToRecommend();
  }
}

void HunterTuner::MaybeTransitionToRecommend() {
  if (phase_ == Phase::kRecommend) return;
  // Phase 2: optimize the search space over the whole Shared Pool.
  const std::vector<controller::Sample> snapshot = pool_.Snapshot();
  const OptimizedSpace space = SearchSpaceOptimizer::Optimize(
      snapshot, *catalog_, rules_, options_.optimizer, &rng_);
  if (sso_refreshes_counter_ != nullptr) {
    sso_refreshes_counter_->Increment();
    journal_->tracer().Event(
        "search_space_optimized",
        {{"state_dim", std::to_string(space.state_dim)},
         {"selected_knobs", std::to_string(space.selected_knobs.size())},
         {"pool_samples", std::to_string(snapshot.size())}});
  }
  // Phase 3: build the Recommender and warm-start it from the pool.
  recommender_ = std::make_unique<Recommender>(
      catalog_, &rules_, space, options_.recommender, rng_.NextU64());
  controller::Sample best;
  std::vector<double> base;
  if (pool_.Best(&best)) base = best.knobs;
  recommender_->WarmStart(snapshot, base);
  phase_ = Phase::kRecommend;
}

std::optional<HunterModel> HunterTuner::ExportModel() const {
  if (recommender_ == nullptr) return std::nullopt;
  HunterModel model;
  model.space = recommender_->space();
  model.ddpg_parameters = recommender_->SaveModel();
  model.base_config = recommender_->best_full_config();
  model.signature = model.space.Signature();
  return model;
}

void HunterTuner::ImportModel(const HunterModel& model) {
  recommender_ = std::make_unique<Recommender>(
      catalog_, &rules_, model.space, options_.recommender, rng_.NextU64());
  recommender_->LoadModel(model.ddpg_parameters);
  // Fine-tuning starts from the imported incumbent; no Sample Factory run.
  recommender_->WarmStart({}, model.base_config);
  phase_ = Phase::kRecommend;
}

void ModelRegistry::Store(const HunterModel& model) {
  models_[model.signature] = model;
}

std::optional<HunterModel> ModelRegistry::Match(
    const std::string& signature) const {
  const auto it = models_.find(signature);
  if (it == models_.end()) return std::nullopt;
  return it->second;
}

}  // namespace hunter::core
