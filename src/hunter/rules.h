// Rules: the user's personalized requirements (§2.1 / §3.1).
//
// Rules capture which knobs are fixed, the permitted range of the others,
// conditional constraints (the paper's example: thread_handling =
// pool-of-threads if connections > 100), and the Equation-1 preference
// alpha. The Sample Factory, Search Space Optimizer and Recommender all
// project their candidate configurations through the Rules, which is why a
// pre-trained model cannot simply be reused: the feasible region differs
// per user ("the path to the optimal value may be blocked").

#ifndef HUNTER_HUNTER_RULES_H_
#define HUNTER_HUNTER_RULES_H_

#include <string>
#include <vector>

#include "cdb/knob.h"

namespace hunter::core {

class Rules {
 public:
  // Pins a knob to a raw value; it is excluded from tuning.
  void FixKnob(const std::string& name, double raw_value);

  // Restricts a knob's adjustable range to [raw_min, raw_max].
  void RestrictRange(const std::string& name, double raw_min, double raw_max);

  // If `cond_knob`'s raw value >= threshold, force `then_knob` to
  // `then_raw_value`.
  void AddConditional(const std::string& cond_knob, double threshold,
                      const std::string& then_knob, double then_raw_value);

  void set_alpha(double alpha) { alpha_ = alpha; }
  double alpha() const { return alpha_; }

  // Projects a normalized configuration into the feasible region: range
  // clamps first, then fixed knobs, then conditionals (in insertion order).
  std::vector<double> Apply(const cdb::KnobCatalog& catalog,
                            std::vector<double> normalized) const;

  // Whether a knob may be tuned (not pinned by FixKnob).
  bool IsTunable(const cdb::KnobCatalog& catalog, size_t knob_index) const;

  // Indices of tunable knobs under this rule set.
  std::vector<size_t> TunableKnobs(const cdb::KnobCatalog& catalog) const;

  size_t num_constraints() const {
    return fixed_.size() + ranges_.size() + conditionals_.size();
  }

 private:
  struct Fixed {
    std::string name;
    double raw_value;
  };
  struct Range {
    std::string name;
    double raw_min;
    double raw_max;
  };
  struct Conditional {
    std::string cond_knob;
    double threshold;
    std::string then_knob;
    double then_raw_value;
  };

  std::vector<Fixed> fixed_;
  std::vector<Range> ranges_;
  std::vector<Conditional> conditionals_;
  double alpha_ = 0.5;  // the paper's default: equal attention to T and L
};

}  // namespace hunter::core

#endif  // HUNTER_HUNTER_RULES_H_
