#include "hunter/rules.h"

#include <algorithm>

namespace hunter::core {

void Rules::FixKnob(const std::string& name, double raw_value) {
  fixed_.push_back({name, raw_value});
}

void Rules::RestrictRange(const std::string& name, double raw_min,
                          double raw_max) {
  ranges_.push_back({name, raw_min, raw_max});
}

void Rules::AddConditional(const std::string& cond_knob, double threshold,
                           const std::string& then_knob,
                           double then_raw_value) {
  conditionals_.push_back({cond_knob, threshold, then_knob, then_raw_value});
}

std::vector<double> Rules::Apply(const cdb::KnobCatalog& catalog,
                                 std::vector<double> normalized) const {
  for (const Range& range : ranges_) {
    const int index = catalog.IndexOf(range.name);
    if (index < 0) continue;
    const size_t i = static_cast<size_t>(index);
    const double lo = catalog.Normalize(i, range.raw_min);
    const double hi = catalog.Normalize(i, range.raw_max);
    normalized[i] = std::clamp(normalized[i], std::min(lo, hi),
                               std::max(lo, hi));
  }
  for (const Fixed& fixed : fixed_) {
    const int index = catalog.IndexOf(fixed.name);
    if (index < 0) continue;
    const size_t i = static_cast<size_t>(index);
    normalized[i] = catalog.Normalize(i, fixed.raw_value);
  }
  for (const Conditional& conditional : conditionals_) {
    const int cond = catalog.IndexOf(conditional.cond_knob);
    const int then = catalog.IndexOf(conditional.then_knob);
    if (cond < 0 || then < 0) continue;
    const size_t ci = static_cast<size_t>(cond);
    const double raw = catalog.Denormalize(ci, normalized[ci]);
    if (raw >= conditional.threshold) {
      const size_t ti = static_cast<size_t>(then);
      normalized[ti] = catalog.Normalize(ti, conditional.then_raw_value);
    }
  }
  return normalized;
}

bool Rules::IsTunable(const cdb::KnobCatalog& catalog,
                      size_t knob_index) const {
  const std::string& name = catalog.knob(knob_index).name;
  return std::none_of(fixed_.begin(), fixed_.end(),
                      [&](const Fixed& f) { return f.name == name; });
}

std::vector<size_t> Rules::TunableKnobs(const cdb::KnobCatalog& catalog) const {
  std::vector<size_t> tunable;
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (IsTunable(catalog, i)) tunable.push_back(i);
  }
  return tunable;
}

}  // namespace hunter::core
