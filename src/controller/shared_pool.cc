#include "controller/shared_pool.h"

namespace hunter::controller {

void SharedPool::Add(Sample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(sample));
}

void SharedPool::AddBatch(const std::vector<Sample>& samples) {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

std::vector<Sample> SharedPool::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

size_t SharedPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_.size();
}

void SharedPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
}

bool SharedPool::Best(Sample* best) const {
  std::lock_guard<std::mutex> lock(mutex_);
  bool found = false;
  for (const Sample& sample : samples_) {
    if (sample.boot_failed) continue;
    if (!found || sample.fitness > best->fitness) {
      *best = sample;
      found = true;
    }
  }
  return found;
}

}  // namespace hunter::controller
