// The Controller (§2.1): clones the user's instance onto k idle CDBs,
// fans configuration batches out across the clones' Actors (the
// parallelization scheme), charges simulated tuning time per Table 1, and
// finally deploys the best verified configuration on the user's instance —
// the availability story: the user's instance never runs experiments.
//
// The fleet is fault-tolerant: attempts that fail transiently are retried
// with exponential backoff, stragglers past a timeout are cancelled and
// requeued onto a healthy clone, crashed clones pay a recovery restart, and
// permanently dead clones are replaced by re-cloning the user instance. All
// of it is charged to the simulated clock so Table-1-style time accounting
// stays honest under faults.

#ifndef HUNTER_CONTROLLER_CONTROLLER_H_
#define HUNTER_CONTROLLER_CONTROLLER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "cdb/cdb_instance.h"
#include "cdb/engine_observer.h"
#include "cdb/fitness.h"
#include "cdb/knob.h"
#include "cdb/workload_profile.h"
#include "common/fault_injector.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "controller/actor.h"
#include "controller/sample.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace hunter::controller {

struct ControllerOptions {
  int num_clones = 1;          // the user's maximal degree of parallelization
  double alpha = 0.5;          // Equation-1 throughput/latency preference
  int default_repeats = 2;     // runs used to measure the Eq-1 baseline
  uint64_t seed = 1;
  bool concurrent_actors = true;  // stress-test clones on real threads
  // Worker threads backing concurrent actors. 0 = one per clone, bounded by
  // hardware_concurrency() (a fixed cap of 8 would silently serialize the
  // paper's 20-clone Fig. 12 configuration).
  size_t max_pool_threads = 0;

  // --- fault tolerance ---
  common::FaultInjectorOptions faults;  // disabled by default
  // Re-dispatches allowed per configuration beyond the first attempt.
  int max_retries = 3;
  // Backoff before the n-th retry: retry_backoff_seconds * 2^(n-1),
  // charged to the retrying clone's lane on the sim clock.
  double retry_backoff_seconds = 2.0;
  // Cancel and requeue a stress test whose execution exceeds this (0
  // disables). On the final allowed attempt the slow result is accepted
  // instead, so a persistent straggler cannot starve a configuration.
  double straggler_timeout_seconds = 0.0;
  // Recovery restart after a mid-run crash (restart + warm-up).
  double crash_recovery_seconds =
      cdb::CdbInstance::kRestartDeploySeconds + cdb::CdbInstance::kWarmupSeconds;
  // Provisioning a replacement clone from the user instance (§2.1 copy
  // backup). Dominated by data copy, so well above a plain restart.
  double reclone_seconds = 180.0;

  // Steady-state memo cache on the clones: a cancelled (straggling) attempt
  // is rolled back and its retry — an exact replay — is served from the
  // cache instead of re-running the engine. Saves real CPU only; simulated
  // time and journal bytes are identical either way.
  bool engine_memo_cache = true;
};

// Counters for everything the resilience layer had to absorb.
struct FaultStats {
  size_t transient_deploy_failures = 0;
  size_t crashes = 0;
  size_t straggler_timeouts = 0;
  size_t permanent_deaths = 0;
  size_t reclones = 0;
  size_t retries = 0;          // re-dispatches (any cause)
  size_t failed_samples = 0;   // configurations given up on after retries
};

class Controller {
 public:
  // `user_instance` is the instance being tuned; the controller clones it
  // `num_clones` times for exploration.
  Controller(std::unique_ptr<cdb::CdbInstance> user_instance,
             cdb::WorkloadProfile workload, const ControllerOptions& options);

  // T_def / L_def measured on a clone with the default configuration
  // (computed lazily on first use; charges sim time for the deploy that
  // resets the clone to defaults plus the measurement runs).
  const cdb::PerformanceSummary& DefaultPerformance();

  // Stress-tests a batch of normalized configurations. Configurations run
  // `num_clones` at a time; the clock advances by the slowest member of
  // each round (plus per-step metric collection), which is what makes 20
  // clones ~20x faster per configuration. Faulty attempts are retried /
  // requeued per the options; a configuration whose retries are exhausted
  // comes back marked `evaluation_failed` with the boot-failure clamp.
  std::vector<Sample> EvaluateBatch(
      const std::vector<std::vector<double>>& normalized_configs);

  // Charges tuner-side time (model update + recommendation, Table 1).
  void ChargeModelTime(double seconds);

  // Deploys a configuration on the *user's* instance (end of workflow).
  void DeployToUser(const std::vector<double>& normalized);

  // Workload drift (Fig. 10): swap the replayed workload; the Eq-1 baseline
  // is re-measured on next use.
  void SetWorkload(cdb::WorkloadProfile workload);

  const cdb::WorkloadProfile& workload() const { return workload_; }
  const common::SimClock& clock() const { return clock_; }
  common::SimClock& mutable_clock() { return clock_; }
  const cdb::KnobCatalog& catalog() const { return user_instance_->catalog(); }
  int num_clones() const { return static_cast<int>(actors_.size()); }
  const cdb::CdbInstance& user_instance() const { return *user_instance_; }
  // Stress-test attempts dispatched (retries included).
  size_t total_stress_tests() const { return total_stress_tests_; }
  const FaultStats& fault_stats() const { return fault_stats_; }
  const common::FaultInjector& fault_injector() const { return injector_; }
  size_t pool_threads() const {
    return pool_ != nullptr ? pool_->num_threads() : 0;
  }

  // Observability. Every simulated-clock advance goes through the journal's
  // tracer, so the journal's charged spans partition clock().seconds()
  // exactly (DESIGN.md §10); the registry carries engine/controller/tuner
  // metric series and is snapshotted after every EvaluateBatch.
  obs::Journal& journal() { return journal_; }
  obs::Tracer& tracer() { return journal_.tracer(); }
  obs::MetricsRegistry& metrics_registry() { return metrics_registry_; }

 private:
  // One queued evaluation: which config, how many dispatches so far, and
  // the backoff to charge before the next attempt runs. A cancelled
  // straggler prefers its original lane: the clone there was rolled back to
  // its pre-run state, so re-running the attempt on it is an exact replay
  // the engine memo cache serves without real CPU.
  struct WorkItem {
    size_t index = 0;
    int attempt = 0;
    double backoff_seconds = 0.0;
    int preferred_lane = -1;
  };

  // Replaces the dead actor in lane `lane` with a fresh clone of the user
  // instance under a new clone id (new deterministic fault stream).
  void ReplaceActor(size_t lane);

  // Sweeps each lane's engine eval-cache stats into the registry counters
  // (delta since last sweep). Runs on the coordination thread between
  // rounds, after all lane futures have completed.
  void HarvestEvalCacheStats();

  // Stamps `sample` with the boot-failure clamp and marks it as an
  // infrastructure failure (§2.1 sentinel; learners skip it).
  static void MarkEvaluationFailed(Sample* sample,
                                   const std::vector<double>& knobs,
                                   int attempts);

  std::unique_ptr<cdb::CdbInstance> user_instance_;
  cdb::WorkloadProfile workload_;
  ControllerOptions options_;
  common::FaultInjector injector_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::unique_ptr<common::ThreadPool> pool_;
  common::SimClock clock_;
  obs::MetricsRegistry metrics_registry_;
  obs::Journal journal_;  // after clock_/metrics_registry_: holds pointers
  cdb::EngineMetrics engine_metrics_;
  cdb::PerformanceSummary default_performance_;
  bool defaults_measured_ = false;
  size_t total_stress_tests_ = 0;
  FaultStats fault_stats_;
  int next_clone_id_ = 0;
  size_t batch_serial_ = 0;  // labels the per-batch metric snapshots

  // Controller-level instruments (owned by the registry).
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* attempts_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* transient_failures_counter_ = nullptr;
  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* straggler_counter_ = nullptr;
  obs::Counter* permanent_deaths_counter_ = nullptr;
  obs::Counter* reclones_counter_ = nullptr;
  obs::Counter* failed_samples_counter_ = nullptr;
  obs::Histogram* round_seconds_hist_ = nullptr;
  obs::Histogram* clone_utilization_hist_ = nullptr;
  obs::Counter* eval_cache_hits_counter_ = nullptr;
  obs::Counter* eval_cache_misses_counter_ = nullptr;
  obs::Counter* pool_resets_counter_ = nullptr;
  obs::Counter* pool_slab_reuses_counter_ = nullptr;
  // Per-lane stats already swept into the counters (delta tracking; an
  // entry resets when its lane's actor is replaced).
  std::vector<cdb::CdbInstance::EvalCacheStats> lane_cache_seen_;
  std::vector<cdb::CdbInstance::PoolStats> lane_pool_seen_;
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_CONTROLLER_H_
