// The Controller (§2.1): clones the user's instance onto k idle CDBs,
// fans configuration batches out across the clones' Actors (the
// parallelization scheme), charges simulated tuning time per Table 1, and
// finally deploys the best verified configuration on the user's instance —
// the availability story: the user's instance never runs experiments.

#ifndef HUNTER_CONTROLLER_CONTROLLER_H_
#define HUNTER_CONTROLLER_CONTROLLER_H_

#include <memory>
#include <vector>

#include "cdb/cdb_instance.h"
#include "cdb/fitness.h"
#include "cdb/knob.h"
#include "cdb/workload_profile.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "controller/actor.h"
#include "controller/sample.h"

namespace hunter::controller {

struct ControllerOptions {
  int num_clones = 1;          // the user's maximal degree of parallelization
  double alpha = 0.5;          // Equation-1 throughput/latency preference
  int default_repeats = 2;     // runs used to measure the Eq-1 baseline
  uint64_t seed = 1;
  bool concurrent_actors = true;  // stress-test clones on real threads
};

class Controller {
 public:
  // `user_instance` is the instance being tuned; the controller clones it
  // `num_clones` times for exploration.
  Controller(std::unique_ptr<cdb::CdbInstance> user_instance,
             cdb::WorkloadProfile workload, const ControllerOptions& options);

  // T_def / L_def measured on a clone with the default configuration
  // (computed lazily on first use; charges sim time for the runs).
  const cdb::PerformanceSummary& DefaultPerformance();

  // Stress-tests a batch of normalized configurations. Configurations run
  // `num_clones` at a time; the clock advances by the slowest member of
  // each round (plus per-step metric collection), which is what makes 20
  // clones ~20x faster per configuration.
  std::vector<Sample> EvaluateBatch(
      const std::vector<std::vector<double>>& normalized_configs);

  // Charges tuner-side time (model update + recommendation, Table 1).
  void ChargeModelTime(double seconds) { clock_.Advance(seconds); }

  // Deploys a configuration on the *user's* instance (end of workflow).
  void DeployToUser(const std::vector<double>& normalized);

  // Workload drift (Fig. 10): swap the replayed workload; the Eq-1 baseline
  // is re-measured on next use.
  void SetWorkload(cdb::WorkloadProfile workload);

  const cdb::WorkloadProfile& workload() const { return workload_; }
  const common::SimClock& clock() const { return clock_; }
  common::SimClock& mutable_clock() { return clock_; }
  const cdb::KnobCatalog& catalog() const { return user_instance_->catalog(); }
  int num_clones() const { return static_cast<int>(actors_.size()); }
  const cdb::CdbInstance& user_instance() const { return *user_instance_; }
  size_t total_stress_tests() const { return total_stress_tests_; }

 private:
  std::unique_ptr<cdb::CdbInstance> user_instance_;
  cdb::WorkloadProfile workload_;
  ControllerOptions options_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::unique_ptr<common::ThreadPool> pool_;
  common::SimClock clock_;
  cdb::PerformanceSummary default_performance_;
  bool defaults_measured_ = false;
  size_t total_stress_tests_ = 0;
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_CONTROLLER_H_
