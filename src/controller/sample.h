// A Shared Pool sample {S_i, A_i, P_i} (§2.1): the metric vector S, the
// (normalized) configuration A, and the measured performance P with its
// Equation-1 fitness.

#ifndef HUNTER_CONTROLLER_SAMPLE_H_
#define HUNTER_CONTROLLER_SAMPLE_H_

#include <vector>

namespace hunter::controller {

struct Sample {
  std::vector<double> metrics;   // S: the 63-metric state vector
  std::vector<double> knobs;     // A: normalized configuration in [0,1]^m
  double throughput_tps = 0.0;   // P: throughput
  double latency_p95_ms = 0.0;   // P: 95%-tail latency
  double fitness = 0.0;          // Equation-1 score vs the default config
  bool boot_failed = false;
  // The clone fleet gave up on this configuration after exhausting retries
  // (infrastructure fault, not a property of the config). Such samples carry
  // the boot-failure clamp values so existing consumers handle them, but
  // learners should skip them: they say nothing about the configuration.
  bool evaluation_failed = false;
  // Dispatches this sample needed (1 = succeeded first try).
  int attempts = 1;
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_SAMPLE_H_
