// The Shared Pool of stress-test samples (§2.1). The Sample Factory fills
// it during phase 1; the Search Space Optimizer consumes all of it in phase
// 2; the Recommender warm-starts its replay buffer from it in phase 3.
// Thread-safe because Actors may stress-test clones concurrently.

#ifndef HUNTER_CONTROLLER_SHARED_POOL_H_
#define HUNTER_CONTROLLER_SHARED_POOL_H_

#include <cstddef>
#include <mutex>
#include <vector>

#include "controller/sample.h"

namespace hunter::controller {

class SharedPool {
 public:
  void Add(Sample sample);
  void AddBatch(const std::vector<Sample>& samples);

  // Snapshot of all samples (copy; the pool keeps growing concurrently).
  std::vector<Sample> Snapshot() const;

  size_t size() const;
  void Clear();

  // The best sample by fitness; returns false if the pool is empty or every
  // sample failed to boot.
  bool Best(Sample* best) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Sample> samples_;  // hunterlint: guarded_by(mutex_)
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_SHARED_POOL_H_
