// An Actor (§2.1/§2.2): manages a set of CDB instances cloned from the
// user's instance, deploys configurations on them, stress-tests the target
// workload, and collects metrics and performance. One Actor per clone in
// this implementation; the Controller fans work out across Actors.

#ifndef HUNTER_CONTROLLER_ACTOR_H_
#define HUNTER_CONTROLLER_ACTOR_H_

#include <memory>
#include <string>

#include "cdb/cdb_instance.h"
#include "cdb/fitness.h"
#include "cdb/workload_profile.h"
#include "controller/sample.h"

namespace hunter::controller {

struct StressTestTiming {
  double deploy_seconds = 0.0;
  double execution_seconds = 0.0;
  double collection_seconds = 0.0;
  double total() const {
    return deploy_seconds + execution_seconds + collection_seconds;
  }
};

class Actor {
 public:
  // Takes ownership of a cloned CDB instance.
  Actor(std::unique_ptr<cdb::CdbInstance> clone, double alpha);

  // Deploys `normalized` knobs, replays the workload, and collects a Shared
  // Pool sample. `defaults` supplies T_def / L_def for Equation 1. `timing`
  // (optional) receives the simulated cost of each step (the paper's
  // Table 1 breakdown: execution dominates at ~142.7 s).
  Sample StressTest(const std::vector<double>& normalized,
                    const cdb::WorkloadProfile& workload,
                    const cdb::PerformanceSummary& defaults,
                    StressTestTiming* timing);

  // Measures the default configuration's performance (averaged over
  // `repeats` runs) to establish the Equation-1 baseline.
  cdb::PerformanceSummary MeasureDefaults(const cdb::WorkloadProfile& workload,
                                          int repeats);

  cdb::CdbInstance& instance() { return *clone_; }

  // Simulated workload-execution time per stress test (Table 1).
  static constexpr double kExecutionSeconds = 142.7;
  static constexpr double kCollectionSeconds = 0.0002;

 private:
  std::unique_ptr<cdb::CdbInstance> clone_;
  double alpha_;
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_ACTOR_H_
