// An Actor (§2.1/§2.2): manages a set of CDB instances cloned from the
// user's instance, deploys configurations on them, stress-tests the target
// workload, and collects metrics and performance. One Actor per clone in
// this implementation; the Controller fans work out across Actors and
// handles the fault outcomes an attempt can report (transient deploy
// failures, mid-run crashes, permanent clone death, straggling).

#ifndef HUNTER_CONTROLLER_ACTOR_H_
#define HUNTER_CONTROLLER_ACTOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cdb/cdb_instance.h"
#include "cdb/fitness.h"
#include "cdb/workload_profile.h"
#include "common/fault_injector.h"
#include "controller/sample.h"

namespace hunter::controller {

struct StressTestTiming {
  double deploy_seconds = 0.0;
  double execution_seconds = 0.0;
  double collection_seconds = 0.0;
  double total() const {
    return deploy_seconds + execution_seconds + collection_seconds;
  }
};

class Actor {
 public:
  // How one attempt at stress-testing a configuration ended. Boot failures
  // are a property of the configuration (deterministic, not retryable); the
  // other failures are clone-side faults the Controller retries or repairs.
  enum class AttemptStatus {
    kOk,                      // sample is valid (possibly straggling)
    kBootFailure,             // config cannot boot: terminal, §2.1 sentinel
    kTransientDeployFailure,  // deploy failed transiently: retryable
    kCrash,                   // clone crashed mid-run: recover and retry
    kPermanentDeath,          // clone is gone: replace it and re-dispatch
  };

  struct AttemptOutcome {
    AttemptStatus status = AttemptStatus::kOk;
    Sample sample;            // valid only for kOk / kBootFailure
    StressTestTiming timing;  // simulated cost of the attempt so far
  };

  // Takes ownership of a cloned CDB instance. `clone_id` keys this clone's
  // deterministic fault stream; `injector` (nullable, not owned) supplies
  // the fault schedule.
  Actor(std::unique_ptr<cdb::CdbInstance> clone, double alpha,
        int clone_id = 0, const common::FaultInjector* injector = nullptr);

  // Deploys `normalized` knobs, replays the workload, and collects a Shared
  // Pool sample, consulting the fault injector at each step. `defaults`
  // supplies T_def / L_def for Equation 1. The timing carries the simulated
  // cost of each step (the paper's Table 1 breakdown: execution dominates
  // at ~142.7 s); faulty attempts charge the work wasted before the fault.
  AttemptOutcome Attempt(const std::vector<double>& normalized,
                         const cdb::WorkloadProfile& workload,
                         const cdb::PerformanceSummary& defaults);

  // Measures the default configuration's performance (averaged over
  // `repeats` runs) to establish the Equation-1 baseline. `deploy_seconds`
  // (optional) receives the cost of resetting the clone to the default
  // configuration, which the caller must charge to the sim clock. The
  // baseline measurement is fault-free by design.
  cdb::PerformanceSummary MeasureDefaults(const cdb::WorkloadProfile& workload,
                                          int repeats,
                                          double* deploy_seconds = nullptr);

  // Rolls the clone back to its state just before the last StressTest.
  // The Controller calls this when it cancels a straggling attempt: a
  // cancelled run's random draws should not consume the clone's stream, so
  // the retry replays the identical evaluation — which also makes it
  // servable by the instance's steady-state memo cache.
  void RollbackLastRun();

  cdb::CdbInstance& instance() { return *clone_; }
  int clone_id() const { return clone_id_; }
  uint64_t ops() const { return op_serial_; }

  // Simulated workload-execution time per stress test (Table 1).
  static constexpr double kExecutionSeconds = 142.7;
  static constexpr double kCollectionSeconds = 0.0002;

 private:
  std::unique_ptr<cdb::CdbInstance> clone_;
  double alpha_;
  int clone_id_ = 0;
  const common::FaultInjector* injector_ = nullptr;  // not owned
  uint64_t op_serial_ = 0;  // per-clone operation counter (fault stream key)
  cdb::CdbInstance::StateSnapshot pre_run_state_;
  bool has_pre_run_state_ = false;
};

}  // namespace hunter::controller

#endif  // HUNTER_CONTROLLER_ACTOR_H_
