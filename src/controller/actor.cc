#include "controller/actor.h"

namespace hunter::controller {

Actor::Actor(std::unique_ptr<cdb::CdbInstance> clone, double alpha)
    : clone_(std::move(clone)), alpha_(alpha) {}

Sample Actor::StressTest(const std::vector<double>& normalized,
                         const cdb::WorkloadProfile& workload,
                         const cdb::PerformanceSummary& defaults,
                         StressTestTiming* timing) {
  const cdb::Configuration config =
      clone_->catalog().DenormalizeConfiguration(normalized);
  const cdb::DeployOutcome deploy = clone_->DeployConfiguration(config);

  Sample sample;
  sample.knobs = normalized;
  StressTestTiming local;
  local.deploy_seconds = deploy.deploy_seconds;

  if (!deploy.booted) {
    // §2.1: a configuration that cannot boot is skipped and recorded with
    // throughput -1000 and "infinite" latency.
    const cdb::PerfResult failure = cdb::BootFailureResult();
    sample.metrics = failure.metrics;
    sample.throughput_tps = failure.throughput_tps;
    sample.latency_p95_ms = failure.latency_p95_ms;
    sample.boot_failed = true;
    sample.fitness = cdb::kBootFailureFitness;
  } else {
    const cdb::PerfResult result = clone_->StressTest(workload);
    local.execution_seconds = kExecutionSeconds;
    local.collection_seconds = kCollectionSeconds;
    sample.metrics = result.metrics;
    sample.throughput_tps = result.throughput_tps;
    sample.latency_p95_ms = result.latency_p95_ms;
    sample.boot_failed = result.boot_failed;
    sample.fitness = cdb::Fitness(
        alpha_, {result.throughput_tps, result.latency_p95_ms}, defaults);
  }
  if (timing != nullptr) *timing = local;
  return sample;
}

cdb::PerformanceSummary Actor::MeasureDefaults(
    const cdb::WorkloadProfile& workload, int repeats) {
  const cdb::Configuration defaults =
      clone_->catalog().DefaultConfiguration();
  clone_->DeployConfiguration(defaults);
  cdb::PerformanceSummary summary;
  for (int i = 0; i < repeats; ++i) {
    const cdb::PerfResult result = clone_->StressTest(workload);
    summary.throughput_tps += result.throughput_tps;
    summary.latency_p95_ms += result.latency_p95_ms;
  }
  if (repeats > 0) {
    summary.throughput_tps /= repeats;
    summary.latency_p95_ms /= repeats;
  }
  return summary;
}

}  // namespace hunter::controller
