#include "controller/actor.h"

namespace hunter::controller {

Actor::Actor(std::unique_ptr<cdb::CdbInstance> clone, double alpha,
             int clone_id, const common::FaultInjector* injector)
    : clone_(std::move(clone)),
      alpha_(alpha),
      clone_id_(clone_id),
      injector_(injector) {}

Actor::AttemptOutcome Actor::Attempt(const std::vector<double>& normalized,
                                     const cdb::WorkloadProfile& workload,
                                     const cdb::PerformanceSummary& defaults) {
  const uint64_t op = op_serial_++;
  AttemptOutcome out;

  if (injector_ != nullptr && injector_->DiesPermanently(clone_id_, op)) {
    // The clone is unrecoverable (host loss). It gets partway into the run
    // before the loss is detected; the Controller replaces it. The attempt
    // still performed a (now aborted) deployment before dying — charge it
    // like the transient-failure path does, or the episode undercounts by a
    // restart (a missed charge the journal's clock-partition check caught).
    out.status = AttemptStatus::kPermanentDeath;
    out.timing.deploy_seconds = cdb::CdbInstance::kRestartDeploySeconds;
    out.timing.execution_seconds =
        injector_->CrashFraction(clone_id_, op) * kExecutionSeconds;
    return out;
  }

  if (injector_ != nullptr &&
      injector_->TransientDeployFailure(clone_id_, op)) {
    // The deployment attempt fails like an aborted restart; the previous
    // configuration stays active and the attempt can be retried.
    out.status = AttemptStatus::kTransientDeployFailure;
    out.timing.deploy_seconds = cdb::CdbInstance::kRestartDeploySeconds;
    return out;
  }

  const cdb::Configuration config =
      clone_->catalog().DenormalizeConfiguration(normalized);
  const cdb::DeployOutcome deploy = clone_->DeployConfiguration(config);
  out.timing.deploy_seconds = deploy.deploy_seconds;
  out.sample.knobs = normalized;

  if (!deploy.booted) {
    // §2.1: a configuration that cannot boot is skipped and recorded with
    // throughput -1000 and "infinite" latency.
    const cdb::PerfResult failure = cdb::BootFailureResult();
    out.status = AttemptStatus::kBootFailure;
    out.sample.metrics = failure.metrics;
    out.sample.throughput_tps = failure.throughput_tps;
    out.sample.latency_p95_ms = failure.latency_p95_ms;
    out.sample.boot_failed = true;
    out.sample.fitness = cdb::kBootFailureFitness;
    return out;
  }

  if (injector_ != nullptr && injector_->CrashesDuringRun(clone_id_, op)) {
    // Crash partway through the workload replay: the sample is lost and the
    // instance needs a recovery restart (charged by the Controller).
    out.status = AttemptStatus::kCrash;
    out.timing.execution_seconds =
        injector_->CrashFraction(clone_id_, op) * kExecutionSeconds;
    return out;
  }

  pre_run_state_ = clone_->CaptureState();
  has_pre_run_state_ = true;
  const cdb::PerfResult result = clone_->StressTest(workload);
  const double slowdown =
      injector_ != nullptr ? injector_->ExecutionSlowdown(clone_id_, op) : 1.0;
  out.timing.execution_seconds = kExecutionSeconds * slowdown;
  out.timing.collection_seconds = kCollectionSeconds;
  out.sample.metrics = result.metrics;
  out.sample.throughput_tps = result.throughput_tps;
  out.sample.latency_p95_ms = result.latency_p95_ms;
  out.sample.boot_failed = result.boot_failed;
  out.sample.fitness = cdb::Fitness(
      alpha_, {result.throughput_tps, result.latency_p95_ms}, defaults);
  return out;
}

void Actor::RollbackLastRun() {
  if (has_pre_run_state_) clone_->RestoreState(pre_run_state_);
}

cdb::PerformanceSummary Actor::MeasureDefaults(
    const cdb::WorkloadProfile& workload, int repeats,
    double* deploy_seconds) {
  const cdb::Configuration defaults =
      clone_->catalog().DefaultConfiguration();
  const cdb::DeployOutcome outcome = clone_->DeployConfiguration(defaults);
  if (deploy_seconds != nullptr) *deploy_seconds = outcome.deploy_seconds;
  cdb::PerformanceSummary summary;
  for (int i = 0; i < repeats; ++i) {
    const cdb::PerfResult result = clone_->StressTest(workload);
    summary.throughput_tps += result.throughput_tps;
    summary.latency_p95_ms += result.latency_p95_ms;
  }
  if (repeats > 0) {
    summary.throughput_tps /= repeats;
    summary.latency_p95_ms /= repeats;
  }
  return summary;
}

}  // namespace hunter::controller
