#include "controller/controller.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <utility>

#include "common/text.h"

namespace hunter::controller {
namespace {

// One component of a lane's cost in a stress round, staged for emission:
// the critical lane's components are charged to the clock in order, the
// other lanes' become uncharged detail spans stacked from the round start.
struct LaneCharge {
  std::string stage;
  std::string name;
  double seconds = 0.0;
  std::vector<obs::Attr> attrs;
};

}  // namespace

Controller::Controller(std::unique_ptr<cdb::CdbInstance> user_instance,
                       cdb::WorkloadProfile workload,
                       const ControllerOptions& options)
    : user_instance_(std::move(user_instance)),
      workload_(std::move(workload)),
      options_(options),
      injector_(options.faults),
      journal_(&clock_, &metrics_registry_,
               {{"seed", std::to_string(options.seed)},
                {"num_clones",
                 std::to_string(std::max(1, options.num_clones))},
                {"alpha", common::FormatDouble17(options.alpha)}}),
      engine_metrics_(&metrics_registry_) {
  const int clones = std::max(1, options.num_clones);
  const common::FaultInjector* injector =
      injector_.enabled() ? &injector_ : nullptr;
  // Clones inherit the memo-cache policy from the user instance.
  user_instance_->set_eval_cache_enabled(options.engine_memo_cache);
  actors_.reserve(static_cast<size_t>(clones));
  for (int i = 0; i < clones; ++i) {
    actors_.push_back(std::make_unique<Actor>(
        user_instance_->Clone(), options.alpha, next_clone_id_++, injector));
  }
  if (options_.concurrent_actors && clones > 1) {
    size_t threads = options_.max_pool_threads;
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = std::min<size_t>(static_cast<size_t>(clones),
                                 hw == 0 ? static_cast<size_t>(clones) : hw);
    }
    pool_ = std::make_unique<common::ThreadPool>(threads);
  }

  // Registration order is the journal's metric schema: engine series first
  // (registered by engine_metrics_ above), then the controller's.
  rounds_counter_ = metrics_registry_.RegisterCounter("controller.rounds");
  attempts_counter_ = metrics_registry_.RegisterCounter("controller.attempts");
  retries_counter_ = metrics_registry_.RegisterCounter("controller.retries");
  transient_failures_counter_ =
      metrics_registry_.RegisterCounter("controller.transient_deploy_failures");
  crashes_counter_ = metrics_registry_.RegisterCounter("controller.crashes");
  straggler_counter_ =
      metrics_registry_.RegisterCounter("controller.straggler_timeouts");
  permanent_deaths_counter_ =
      metrics_registry_.RegisterCounter("controller.permanent_deaths");
  reclones_counter_ = metrics_registry_.RegisterCounter("controller.reclones");
  failed_samples_counter_ =
      metrics_registry_.RegisterCounter("controller.failed_samples");
  round_seconds_hist_ =
      metrics_registry_.RegisterHistogram("controller.round_seconds");
  clone_utilization_hist_ =
      metrics_registry_.RegisterHistogram("controller.clone_utilization");
  eval_cache_hits_counter_ =
      metrics_registry_.RegisterCounter("engine.eval_cache_hits");
  eval_cache_misses_counter_ =
      metrics_registry_.RegisterCounter("engine.eval_cache_misses");
  pool_resets_counter_ =
      metrics_registry_.RegisterCounter("engine.pool_resets");
  pool_slab_reuses_counter_ =
      metrics_registry_.RegisterCounter("engine.pool_slab_reuses");
  lane_cache_seen_.resize(actors_.size());
  lane_pool_seen_.resize(actors_.size());
}

const cdb::PerformanceSummary& Controller::DefaultPerformance() {
  if (!defaults_measured_) {
    double deploy_seconds = 0.0;
    default_performance_ = actors_[0]->MeasureDefaults(
        workload_, options_.default_repeats, &deploy_seconds);
    // Resetting the clone to the default configuration is real work (a
    // deploy, possibly a restart) and must hit the Table-1 accounting too.
    // Each measurement run pays execution plus metric collection — the
    // collection term used to be dropped here (while EvaluateBatch charged
    // it), silently undercounting the baseline.
    obs::Tracer& tracer = journal_.tracer();
    tracer.Charge("deploy", "baseline_reset", deploy_seconds);
    tracer.Charge("execution", "baseline_runs",
                  options_.default_repeats * Actor::kExecutionSeconds,
                  {{"repeats", std::to_string(options_.default_repeats)}});
    tracer.Charge("collection", "baseline_collect",
                  options_.default_repeats * Actor::kCollectionSeconds);
    defaults_measured_ = true;
  }
  return default_performance_;
}

void Controller::ChargeModelTime(double seconds) {
  journal_.tracer().Charge("model_update", "model_step", seconds);
}

void Controller::ReplaceActor(size_t lane) {
  const common::FaultInjector* injector =
      injector_.enabled() ? &injector_ : nullptr;
  actors_[lane] = std::make_unique<Actor>(
      user_instance_->Clone(), options_.alpha, next_clone_id_++, injector);
  lane_cache_seen_[lane] = {};  // fresh clone, fresh cache stats
  lane_pool_seen_[lane] = {};
  ++fault_stats_.reclones;
  reclones_counter_->Increment();
}

void Controller::HarvestEvalCacheStats() {
  for (size_t l = 0; l < actors_.size(); ++l) {
    const cdb::CdbInstance::EvalCacheStats& now =
        actors_[l]->instance().eval_cache_stats();
    cdb::CdbInstance::EvalCacheStats& seen = lane_cache_seen_[l];
    if (now.hits > seen.hits) {
      eval_cache_hits_counter_->Increment(
          static_cast<double>(now.hits - seen.hits));
    }
    if (now.misses > seen.misses) {
      eval_cache_misses_counter_->Increment(
          static_cast<double>(now.misses - seen.misses));
    }
    seen = now;

    const cdb::CdbInstance::PoolStats& pool_now =
        actors_[l]->instance().pool_stats();
    cdb::CdbInstance::PoolStats& pool_seen = lane_pool_seen_[l];
    if (pool_now.resets > pool_seen.resets) {
      pool_resets_counter_->Increment(
          static_cast<double>(pool_now.resets - pool_seen.resets));
    }
    if (pool_now.slab_reuses > pool_seen.slab_reuses) {
      pool_slab_reuses_counter_->Increment(
          static_cast<double>(pool_now.slab_reuses - pool_seen.slab_reuses));
    }
    pool_seen = pool_now;
  }
}

void Controller::MarkEvaluationFailed(Sample* sample,
                                      const std::vector<double>& knobs,
                                      int attempts) {
  const cdb::PerfResult failure = cdb::BootFailureResult();
  sample->knobs = knobs;
  sample->metrics = failure.metrics;
  sample->throughput_tps = failure.throughput_tps;
  sample->latency_p95_ms = failure.latency_p95_ms;
  sample->boot_failed = true;
  sample->evaluation_failed = true;
  sample->fitness = cdb::kBootFailureFitness;
  sample->attempts = attempts;
}

std::vector<Sample> Controller::EvaluateBatch(
    const std::vector<std::vector<double>>& normalized_configs) {
  const cdb::PerformanceSummary& defaults = DefaultPerformance();
  std::vector<Sample> samples(normalized_configs.size());
  obs::Tracer& tracer = journal_.tracer();

  std::deque<WorkItem> queue;
  for (size_t i = 0; i < normalized_configs.size(); ++i) {
    queue.push_back(WorkItem{i, 0, 0.0});
  }

  while (!queue.empty()) {
    const size_t lanes = std::min(queue.size(), actors_.size());
    std::vector<WorkItem> items(queue.begin(),
                                queue.begin() + static_cast<long>(lanes));
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(lanes));

    // Honor lane affinity: a rolled-back straggler retry must land on the
    // clone that was rolled back for the replay (and thus the memo hit) to
    // materialize. First claimant wins a contested lane.
    for (size_t i = 0; i < lanes; ++i) {
      const int p = items[i].preferred_lane;
      if (p >= 0 && static_cast<size_t>(p) < lanes &&
          static_cast<size_t>(p) != i &&
          items[static_cast<size_t>(p)].preferred_lane < 0) {
        std::swap(items[i], items[static_cast<size_t>(p)]);
      }
    }

    // The lane names key on the clone that ran the attempt; capture before
    // any permanent death swaps the actor out.
    std::vector<int> clone_ids(lanes);
    for (size_t l = 0; l < lanes; ++l) clone_ids[l] = actors_[l]->clone_id();

    std::vector<Actor::AttemptOutcome> outcomes(lanes);
    if (pool_ != nullptr) {
      std::vector<std::future<void>> futures;
      futures.reserve(lanes);
      for (size_t l = 0; l < lanes; ++l) {
        Actor* actor = actors_[l].get();
        const std::vector<double>* config =
            &normalized_configs[items[l].index];
        Actor::AttemptOutcome* out = &outcomes[l];
        futures.push_back(pool_->Submit([actor, config, out, &defaults, this] {
          *out = actor->Attempt(*config, workload_, defaults);
        }));
      }
      for (auto& future : futures) future.get();
    } else {
      for (size_t l = 0; l < lanes; ++l) {
        outcomes[l] =
            actors_[l]->Attempt(normalized_configs[items[l].index], workload_,
                                defaults);
      }
    }
    // Sweep cache stats before any permanent death swaps an actor out (its
    // final attempt must still be counted).
    HarvestEvalCacheStats();

    // The round costs as much as its slowest lane (all clones run in
    // parallel); each lane additionally pays its item's backoff and any
    // recovery/replacement work it triggered. Each lane's cost is built as
    // an ordered list of components so the journal can attribute every
    // second to a Table-1 stage.
    std::vector<std::vector<LaneCharge>> lane_charges(lanes);
    std::vector<double> lane_totals(lanes, 0.0);
    double round_seconds = 0.0;
    for (size_t l = 0; l < lanes; ++l) {
      const WorkItem& item = items[l];
      Actor::AttemptOutcome& out = outcomes[l];
      const std::string lane_name = "clone" + std::to_string(clone_ids[l]);
      const std::vector<obs::Attr> span_attrs = {
          {"config", std::to_string(item.index)},
          {"attempt", std::to_string(item.attempt + 1)}};
      auto add = [&](const char* stage, const std::string& suffix,
                     double seconds) {
        if (seconds <= 0.0) return;
        lane_charges[l].push_back(
            {stage, lane_name + suffix, seconds, span_attrs});
      };
      auto fault_event = [&](const char* name) {
        std::vector<obs::Attr> attrs = span_attrs;
        attrs.insert(attrs.begin(), {"clone", std::to_string(clone_ids[l])});
        tracer.Event(name, std::move(attrs));
      };
      add("backoff", "_backoff", item.backoff_seconds);

      bool requeue = false;
      bool requeue_front = false;  // stragglers retry first, on their lane
      int preferred_lane = -1;
      int next_attempt = item.attempt;
      switch (out.status) {
        case Actor::AttemptStatus::kOk: {
          const bool timed_out =
              options_.straggler_timeout_seconds > 0.0 &&
              out.timing.execution_seconds >
                  options_.straggler_timeout_seconds &&
              item.attempt < options_.max_retries;
          if (timed_out) {
            // Cancel at the timeout and requeue at the front of the queue
            // with affinity for this lane; the abandoned run cost deploy +
            // timeout.
            // Roll the clone back to its pre-run state: a cancelled run
            // consumes no random draws, so the retry is an exact replay —
            // which the engine's memo cache then serves without real CPU.
            actors_[l]->RollbackLastRun();
            add("deploy", "_deploy", out.timing.deploy_seconds);
            add("execution", "_stress_cancelled",
                options_.straggler_timeout_seconds);
            ++fault_stats_.straggler_timeouts;
            straggler_counter_->Increment();
            fault_event("straggler_timeout");
            requeue = true;
            requeue_front = true;
            preferred_lane = static_cast<int>(l);
            next_attempt = item.attempt + 1;
          } else {
            add("deploy", "_deploy", out.timing.deploy_seconds);
            add("execution", "_stress", out.timing.execution_seconds);
            add("collection", "_collect", out.timing.collection_seconds);
            out.sample.attempts = item.attempt + 1;
            if (!out.sample.boot_failed) {
              engine_metrics_.Record(out.sample.metrics);
            }
            samples[item.index] = std::move(out.sample);
          }
          break;
        }
        case Actor::AttemptStatus::kBootFailure: {
          // Deterministic property of the configuration: never retried.
          add("deploy", "_deploy", out.timing.deploy_seconds);
          add("execution", "_stress", out.timing.execution_seconds);
          add("collection", "_collect", out.timing.collection_seconds);
          out.sample.attempts = item.attempt + 1;
          samples[item.index] = std::move(out.sample);
          break;
        }
        case Actor::AttemptStatus::kTransientDeployFailure: {
          add("deploy", "_deploy_aborted", out.timing.deploy_seconds);
          ++fault_stats_.transient_deploy_failures;
          transient_failures_counter_->Increment();
          fault_event("transient_deploy_failure");
          if (item.attempt < options_.max_retries) {
            requeue = true;
            next_attempt = item.attempt + 1;
          } else {
            MarkEvaluationFailed(&samples[item.index],
                                 normalized_configs[item.index],
                                 item.attempt + 1);
            ++fault_stats_.failed_samples;
            failed_samples_counter_->Increment();
          }
          break;
        }
        case Actor::AttemptStatus::kCrash: {
          add("deploy", "_deploy", out.timing.deploy_seconds);
          add("execution", "_stress_crashed", out.timing.execution_seconds);
          add("recovery", "_crash_recovery", options_.crash_recovery_seconds);
          ++fault_stats_.crashes;
          crashes_counter_->Increment();
          fault_event("crash");
          // The recovery restart comes back with a cold buffer pool.
          actors_[l]->instance().PointInTimeRecover();
          if (item.attempt < options_.max_retries) {
            requeue = true;
            next_attempt = item.attempt + 1;
          } else {
            MarkEvaluationFailed(&samples[item.index],
                                 normalized_configs[item.index],
                                 item.attempt + 1);
            ++fault_stats_.failed_samples;
            failed_samples_counter_->Increment();
          }
          break;
        }
        case Actor::AttemptStatus::kPermanentDeath: {
          add("deploy", "_deploy_aborted", out.timing.deploy_seconds);
          add("execution", "_stress_lost", out.timing.execution_seconds);
          add("recovery", "_reclone", options_.reclone_seconds);
          ++fault_stats_.permanent_deaths;
          permanent_deaths_counter_->Increment();
          fault_event("permanent_death");
          ReplaceActor(l);
          fault_event("reclone");
          // The clone died, not the configuration: re-dispatch without
          // burning the item's retry budget or backing off.
          requeue = true;
          break;
        }
      }

      if (requeue) {
        ++fault_stats_.retries;
        retries_counter_->Increment();
        double backoff = 0.0;
        if (next_attempt > item.attempt) {
          backoff = options_.retry_backoff_seconds *
                    std::pow(2.0, static_cast<double>(next_attempt - 1));
        }
        const WorkItem retry{item.index, next_attempt, backoff,
                             preferred_lane};
        if (requeue_front) {
          queue.push_front(retry);
        } else {
          queue.push_back(retry);
        }
      }
      double lane_seconds = 0.0;
      for (const LaneCharge& c : lane_charges[l]) lane_seconds += c.seconds;
      lane_totals[l] = lane_seconds;
      round_seconds = std::max(round_seconds, lane_seconds);
    }

    // Charge the critical lane (the first slowest one) component by
    // component — the same left-to-right fold that produced lane_totals, so
    // the clock advances by exactly round_seconds and the journal's charged
    // spans stay a bit-exact partition of the clock. The other lanes ran
    // concurrently inside the same window: uncharged detail spans.
    size_t critical = 0;
    for (size_t l = 0; l < lanes; ++l) {
      if (lane_totals[l] == round_seconds) {
        critical = l;
        break;
      }
    }
    const double round_start = clock_.seconds();
    for (size_t l = 0; l < lanes; ++l) {
      if (l == critical) {
        for (const LaneCharge& c : lane_charges[l]) {
          tracer.Charge(c.stage, c.name, c.seconds, c.attrs);
        }
      } else {
        double t = round_start;
        for (const LaneCharge& c : lane_charges[l]) {
          tracer.Span(c.stage, c.name, t, c.seconds, c.attrs);
          t += c.seconds;
        }
      }
    }
    total_stress_tests_ += lanes;
    rounds_counter_->Increment();
    attempts_counter_->Increment(static_cast<double>(lanes));
    round_seconds_hist_->Observe(round_seconds);
    if (round_seconds > 0.0) {
      double busy = 0.0;
      for (size_t l = 0; l < lanes; ++l) busy += lane_totals[l];
      clone_utilization_hist_->Observe(
          busy / (static_cast<double>(lanes) * round_seconds));
    }
  }
  journal_.SnapshotMetrics("batch" + std::to_string(batch_serial_++));
  return samples;
}

void Controller::DeployToUser(const std::vector<double>& normalized) {
  const cdb::Configuration config =
      catalog().DenormalizeConfiguration(normalized);
  const cdb::DeployOutcome outcome =
      user_instance_->DeployConfiguration(config);
  journal_.tracer().Charge("deploy", "deploy_to_user", outcome.deploy_seconds);
}

void Controller::SetWorkload(cdb::WorkloadProfile workload) {
  workload_ = std::move(workload);
  defaults_measured_ = false;  // Eq-1 baseline is workload-specific
}

}  // namespace hunter::controller
