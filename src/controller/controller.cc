#include "controller/controller.h"

#include <algorithm>
#include <future>

namespace hunter::controller {

Controller::Controller(std::unique_ptr<cdb::CdbInstance> user_instance,
                       cdb::WorkloadProfile workload,
                       const ControllerOptions& options)
    : user_instance_(std::move(user_instance)),
      workload_(std::move(workload)),
      options_(options) {
  const int clones = std::max(1, options.num_clones);
  actors_.reserve(static_cast<size_t>(clones));
  for (int i = 0; i < clones; ++i) {
    actors_.push_back(
        std::make_unique<Actor>(user_instance_->Clone(), options.alpha));
  }
  if (options_.concurrent_actors && clones > 1) {
    pool_ = std::make_unique<common::ThreadPool>(
        std::min<size_t>(static_cast<size_t>(clones), 8));
  }
}

const cdb::PerformanceSummary& Controller::DefaultPerformance() {
  if (!defaults_measured_) {
    default_performance_ =
        actors_[0]->MeasureDefaults(workload_, options_.default_repeats);
    clock_.Advance(options_.default_repeats * Actor::kExecutionSeconds);
    defaults_measured_ = true;
  }
  return default_performance_;
}

std::vector<Sample> Controller::EvaluateBatch(
    const std::vector<std::vector<double>>& normalized_configs) {
  const cdb::PerformanceSummary& defaults = DefaultPerformance();
  std::vector<Sample> samples(normalized_configs.size());

  const size_t k = actors_.size();
  for (size_t round_start = 0; round_start < normalized_configs.size();
       round_start += k) {
    const size_t round_end =
        std::min(normalized_configs.size(), round_start + k);
    std::vector<StressTestTiming> timings(round_end - round_start);

    if (pool_ != nullptr) {
      std::vector<std::future<Sample>> futures;
      futures.reserve(round_end - round_start);
      for (size_t i = round_start; i < round_end; ++i) {
        Actor* actor = actors_[i - round_start].get();
        const std::vector<double>* config = &normalized_configs[i];
        StressTestTiming* timing = &timings[i - round_start];
        futures.push_back(pool_->Submit([this, actor, config, timing, &defaults] {
          return actor->StressTest(*config, workload_, defaults, timing);
        }));
      }
      for (size_t i = round_start; i < round_end; ++i) {
        samples[i] = futures[i - round_start].get();
      }
    } else {
      for (size_t i = round_start; i < round_end; ++i) {
        samples[i] = actors_[i - round_start]->StressTest(
            normalized_configs[i], workload_, defaults,
            &timings[i - round_start]);
      }
    }

    // The round costs as much as its slowest clone (all run in parallel).
    double round_seconds = 0.0;
    for (const StressTestTiming& timing : timings) {
      round_seconds = std::max(round_seconds, timing.total());
    }
    clock_.Advance(round_seconds);
    total_stress_tests_ += round_end - round_start;
  }
  return samples;
}

void Controller::DeployToUser(const std::vector<double>& normalized) {
  const cdb::Configuration config =
      catalog().DenormalizeConfiguration(normalized);
  const cdb::DeployOutcome outcome =
      user_instance_->DeployConfiguration(config);
  clock_.Advance(outcome.deploy_seconds);
}

void Controller::SetWorkload(cdb::WorkloadProfile workload) {
  workload_ = std::move(workload);
  defaults_measured_ = false;  // Eq-1 baseline is workload-specific
}

}  // namespace hunter::controller
