#include "controller/controller.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <thread>
#include <utility>

namespace hunter::controller {

Controller::Controller(std::unique_ptr<cdb::CdbInstance> user_instance,
                       cdb::WorkloadProfile workload,
                       const ControllerOptions& options)
    : user_instance_(std::move(user_instance)),
      workload_(std::move(workload)),
      options_(options),
      injector_(options.faults) {
  const int clones = std::max(1, options.num_clones);
  const common::FaultInjector* injector =
      injector_.enabled() ? &injector_ : nullptr;
  actors_.reserve(static_cast<size_t>(clones));
  for (int i = 0; i < clones; ++i) {
    actors_.push_back(std::make_unique<Actor>(
        user_instance_->Clone(), options.alpha, next_clone_id_++, injector));
  }
  if (options_.concurrent_actors && clones > 1) {
    size_t threads = options_.max_pool_threads;
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = std::min<size_t>(static_cast<size_t>(clones),
                                 hw == 0 ? static_cast<size_t>(clones) : hw);
    }
    pool_ = std::make_unique<common::ThreadPool>(threads);
  }
}

const cdb::PerformanceSummary& Controller::DefaultPerformance() {
  if (!defaults_measured_) {
    double deploy_seconds = 0.0;
    default_performance_ = actors_[0]->MeasureDefaults(
        workload_, options_.default_repeats, &deploy_seconds);
    // Resetting the clone to the default configuration is real work (a
    // deploy, possibly a restart) and must hit the Table-1 accounting too.
    clock_.Advance(deploy_seconds +
                   options_.default_repeats * Actor::kExecutionSeconds);
    defaults_measured_ = true;
  }
  return default_performance_;
}

void Controller::ReplaceActor(size_t lane) {
  const common::FaultInjector* injector =
      injector_.enabled() ? &injector_ : nullptr;
  actors_[lane] = std::make_unique<Actor>(
      user_instance_->Clone(), options_.alpha, next_clone_id_++, injector);
  ++fault_stats_.reclones;
}

void Controller::MarkEvaluationFailed(Sample* sample,
                                      const std::vector<double>& knobs,
                                      int attempts) {
  const cdb::PerfResult failure = cdb::BootFailureResult();
  sample->knobs = knobs;
  sample->metrics = failure.metrics;
  sample->throughput_tps = failure.throughput_tps;
  sample->latency_p95_ms = failure.latency_p95_ms;
  sample->boot_failed = true;
  sample->evaluation_failed = true;
  sample->fitness = cdb::kBootFailureFitness;
  sample->attempts = attempts;
}

std::vector<Sample> Controller::EvaluateBatch(
    const std::vector<std::vector<double>>& normalized_configs) {
  const cdb::PerformanceSummary& defaults = DefaultPerformance();
  std::vector<Sample> samples(normalized_configs.size());

  std::deque<WorkItem> queue;
  for (size_t i = 0; i < normalized_configs.size(); ++i) {
    queue.push_back(WorkItem{i, 0, 0.0});
  }

  while (!queue.empty()) {
    const size_t lanes = std::min(queue.size(), actors_.size());
    std::vector<WorkItem> items(queue.begin(),
                                queue.begin() + static_cast<long>(lanes));
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(lanes));

    std::vector<Actor::AttemptOutcome> outcomes(lanes);
    if (pool_ != nullptr) {
      std::vector<std::future<void>> futures;
      futures.reserve(lanes);
      for (size_t l = 0; l < lanes; ++l) {
        Actor* actor = actors_[l].get();
        const std::vector<double>* config =
            &normalized_configs[items[l].index];
        Actor::AttemptOutcome* out = &outcomes[l];
        futures.push_back(pool_->Submit([actor, config, out, &defaults, this] {
          *out = actor->Attempt(*config, workload_, defaults);
        }));
      }
      for (auto& future : futures) future.get();
    } else {
      for (size_t l = 0; l < lanes; ++l) {
        outcomes[l] =
            actors_[l]->Attempt(normalized_configs[items[l].index], workload_,
                                defaults);
      }
    }

    // The round costs as much as its slowest lane (all clones run in
    // parallel); each lane additionally pays its item's backoff and any
    // recovery/replacement work it triggered.
    double round_seconds = 0.0;
    for (size_t l = 0; l < lanes; ++l) {
      const WorkItem& item = items[l];
      Actor::AttemptOutcome& out = outcomes[l];
      double lane_seconds = item.backoff_seconds;
      bool requeue = false;
      int next_attempt = item.attempt;

      switch (out.status) {
        case Actor::AttemptStatus::kOk: {
          const bool timed_out =
              options_.straggler_timeout_seconds > 0.0 &&
              out.timing.execution_seconds >
                  options_.straggler_timeout_seconds &&
              item.attempt < options_.max_retries;
          if (timed_out) {
            // Cancel at the timeout and requeue onto whichever clone is
            // free next round; the abandoned run cost deploy + timeout.
            lane_seconds += out.timing.deploy_seconds +
                            options_.straggler_timeout_seconds;
            ++fault_stats_.straggler_timeouts;
            requeue = true;
            next_attempt = item.attempt + 1;
          } else {
            lane_seconds += out.timing.total();
            out.sample.attempts = item.attempt + 1;
            samples[item.index] = std::move(out.sample);
          }
          break;
        }
        case Actor::AttemptStatus::kBootFailure: {
          // Deterministic property of the configuration: never retried.
          lane_seconds += out.timing.total();
          out.sample.attempts = item.attempt + 1;
          samples[item.index] = std::move(out.sample);
          break;
        }
        case Actor::AttemptStatus::kTransientDeployFailure: {
          lane_seconds += out.timing.total();
          ++fault_stats_.transient_deploy_failures;
          if (item.attempt < options_.max_retries) {
            requeue = true;
            next_attempt = item.attempt + 1;
          } else {
            MarkEvaluationFailed(&samples[item.index],
                                 normalized_configs[item.index],
                                 item.attempt + 1);
            ++fault_stats_.failed_samples;
          }
          break;
        }
        case Actor::AttemptStatus::kCrash: {
          lane_seconds += out.timing.total() + options_.crash_recovery_seconds;
          ++fault_stats_.crashes;
          // The recovery restart comes back with a cold buffer pool.
          actors_[l]->instance().PointInTimeRecover();
          if (item.attempt < options_.max_retries) {
            requeue = true;
            next_attempt = item.attempt + 1;
          } else {
            MarkEvaluationFailed(&samples[item.index],
                                 normalized_configs[item.index],
                                 item.attempt + 1);
            ++fault_stats_.failed_samples;
          }
          break;
        }
        case Actor::AttemptStatus::kPermanentDeath: {
          lane_seconds += out.timing.total() + options_.reclone_seconds;
          ++fault_stats_.permanent_deaths;
          ReplaceActor(l);
          // The clone died, not the configuration: re-dispatch without
          // burning the item's retry budget or backing off.
          requeue = true;
          break;
        }
      }

      if (requeue) {
        ++fault_stats_.retries;
        double backoff = 0.0;
        if (next_attempt > item.attempt) {
          backoff = options_.retry_backoff_seconds *
                    std::pow(2.0, static_cast<double>(next_attempt - 1));
        }
        queue.push_back(WorkItem{item.index, next_attempt, backoff});
      }
      round_seconds = std::max(round_seconds, lane_seconds);
    }
    clock_.Advance(round_seconds);
    total_stress_tests_ += lanes;
  }
  return samples;
}

void Controller::DeployToUser(const std::vector<double>& normalized) {
  const cdb::Configuration config =
      catalog().DenormalizeConfiguration(normalized);
  const cdb::DeployOutcome outcome =
      user_instance_->DeployConfiguration(config);
  clock_.Advance(outcome.deploy_seconds);
}

void Controller::SetWorkload(cdb::WorkloadProfile workload) {
  workload_ = std::move(workload);
  defaults_measured_ = false;  // Eq-1 baseline is workload-specific
}

}  // namespace hunter::controller
