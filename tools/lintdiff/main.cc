// lintdiff — diffs two `hunterlint --format=json` reports.
//
// Usage:
//   lintdiff OLD.json NEW.json
//
// Prints one line per difference: `- path:line: [rule] message` for a
// violation present in OLD but not NEW (resolved), `+ ...` for one present
// in NEW but not OLD (introduced). Identical multiplicities cancel, so a
// violation reported twice in OLD and once in NEW shows one `-` line.
//
// Exit status: 0 when the reports are identical, 1 when they differ, 2 on
// usage/IO/parse errors. check.sh uses the 0 case as a determinism gate
// (two runs over the same tree must produce the same report) and the 1
// case to compare a run against the last known-good report.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hunterlint/hunterlint.h"
#include "hunterlint/report.h"

namespace {

bool LoadReport(const char* path, std::vector<hunter::lint::Violation>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "lintdiff: cannot open '%s'\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!hunter::lint::ParseViolationsJson(buf.str(), out, &error)) {
    std::fprintf(stderr, "lintdiff: malformed report '%s': %s\n", path,
                 error.c_str());
    return false;
  }
  return true;
}

// Violations keyed by their full identity, with multiplicity.
std::map<std::string, int> Multiset(
    const std::vector<hunter::lint::Violation>& violations) {
  std::map<std::string, int> out;
  for (const hunter::lint::Violation& v : violations) {
    out[hunter::lint::FormatViolation(v)] += 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: lintdiff OLD.json NEW.json\n");
    return 2;
  }
  std::vector<hunter::lint::Violation> old_violations, new_violations;
  if (!LoadReport(argv[1], &old_violations) ||
      !LoadReport(argv[2], &new_violations)) {
    return 2;
  }

  const std::map<std::string, int> old_set = Multiset(old_violations);
  const std::map<std::string, int> new_set = Multiset(new_violations);

  int resolved = 0, introduced = 0;
  std::vector<std::string> lines;
  for (const auto& [key, count] : old_set) {
    const auto it = new_set.find(key);
    const int remaining = (it == new_set.end()) ? 0 : it->second;
    for (int k = remaining; k < count; ++k) {
      lines.push_back("- " + key);
      ++resolved;
    }
  }
  for (const auto& [key, count] : new_set) {
    const auto it = old_set.find(key);
    const int previous = (it == old_set.end()) ? 0 : it->second;
    for (int k = previous; k < count; ++k) {
      lines.push_back("+ " + key);
      ++introduced;
    }
  }
  // `-` lines first, then `+`, each in report order (the keys sort by path
  // then line lexically close enough; keep the map order for stability).
  std::stable_sort(lines.begin(), lines.end(),
                   [](const std::string& a, const std::string& b) {
                     return a[0] == '-' && b[0] == '+';
                   });
  for (const std::string& l : lines) std::printf("%s\n", l.c_str());

  if (resolved == 0 && introduced == 0) {
    std::printf("lintdiff: reports identical (%zu violation(s))\n",
                new_violations.size());
    return 0;
  }
  std::printf("lintdiff: %d resolved, %d introduced\n", resolved, introduced);
  return 1;
}
