#include "tracecat/tracecat.h"

#include <sstream>

#include "common/table_printer.h"
#include "common/text.h"

namespace hunter::tracecat {
namespace {

StageCost* FindStage(std::vector<StageCost>* stages,
                     const std::string& stage) {
  for (StageCost& s : *stages) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

double StageSeconds(const Breakdown& b, const std::string& stage) {
  for (const StageCost& s : b.stages) {
    if (s.stage == stage) return s.seconds;
  }
  return 0.0;
}

}  // namespace

Breakdown ComputeBreakdown(const obs::ParsedJournal& journal) {
  Breakdown out;
  for (const obs::Record& record : journal.records) {
    switch (record.type) {
      case obs::Record::Type::kSpan: {
        const obs::SpanRecord& span = record.span;
        if (!span.charged) {
          ++out.detail_spans;
          break;
        }
        ++out.charged_spans;
        out.total_seconds += span.duration_seconds;
        StageCost* cost = FindStage(&out.stages, span.stage);
        if (cost == nullptr) {
          out.stages.push_back({span.stage, 0.0, 0});
          cost = &out.stages.back();
        }
        cost->seconds += span.duration_seconds;
        ++cost->spans;
        break;
      }
      case obs::Record::Type::kEvent:
        ++out.events;
        break;
      case obs::Record::Type::kMetrics:
        ++out.metric_snapshots;
        break;
    }
  }
  return out;
}

std::string RenderBreakdown(const obs::ParsedJournal& journal) {
  const Breakdown b = ComputeBreakdown(journal);
  std::ostringstream os;
  common::TablePrinter table({"stage", "seconds", "share %", "spans"});
  for (const StageCost& s : b.stages) {
    const double share =
        b.total_seconds > 0.0 ? 100.0 * s.seconds / b.total_seconds : 0.0;
    table.AddRow({s.stage, common::FormatDouble(s.seconds, 3),
                  common::FormatDouble(share, 2), std::to_string(s.spans)});
  }
  table.Print(os);
  os << "total simulated time: " << common::FormatDouble(b.total_seconds, 4)
     << " s (" << common::FormatDouble(b.total_seconds / 3600.0, 3)
     << " h) across " << b.charged_spans << " charged spans\n";
  os << "detail spans: " << b.detail_spans << ", events: " << b.events
     << ", metric snapshots: " << b.metric_snapshots << "\n";
  return os.str();
}

std::string RenderDiff(const obs::ParsedJournal& a,
                       const obs::ParsedJournal& b) {
  const Breakdown ba = ComputeBreakdown(a);
  const Breakdown bb = ComputeBreakdown(b);
  std::vector<std::string> stages;
  for (const StageCost& s : ba.stages) stages.push_back(s.stage);
  for (const StageCost& s : bb.stages) {
    bool seen = false;
    for (const std::string& name : stages) {
      if (name == s.stage) {
        seen = true;
        break;
      }
    }
    if (!seen) stages.push_back(s.stage);
  }

  std::ostringstream os;
  common::TablePrinter table({"stage", "a seconds", "b seconds", "delta"});
  for (const std::string& stage : stages) {
    const double sa = StageSeconds(ba, stage);
    const double sb = StageSeconds(bb, stage);
    table.AddRow({stage, common::FormatDouble(sa, 3),
                  common::FormatDouble(sb, 3),
                  common::FormatDouble(sb - sa, 3)});
  }
  table.Print(os);
  os << "total: " << common::FormatDouble(ba.total_seconds, 4) << " s -> "
     << common::FormatDouble(bb.total_seconds, 4) << " s (delta "
     << common::FormatDouble(bb.total_seconds - ba.total_seconds, 4)
     << " s)\n";
  return os.str();
}

}  // namespace hunter::tracecat
