// tracecat CLI: per-stage cost breakdowns and diffs over run journals.
//
//   tracecat breakdown <journal.jsonl>
//   tracecat diff <a.jsonl> <b.jsonl>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "tracecat/tracecat.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s breakdown <journal.jsonl>\n"
               "       %s diff <a.jsonl> <b.jsonl>\n",
               argv0, argv0);
  return 2;
}

bool LoadJournal(const std::string& path, hunter::obs::ParsedJournal* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "tracecat: cannot open %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!hunter::obs::ParseJournal(in, out, &error)) {
    std::fprintf(stderr, "tracecat: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string command = argv[1];
  if (command == "breakdown" && argc == 3) {
    hunter::obs::ParsedJournal journal;
    if (!LoadJournal(argv[2], &journal)) return 1;
    std::cout << hunter::tracecat::RenderBreakdown(journal);
    return 0;
  }
  if (command == "diff" && argc == 4) {
    hunter::obs::ParsedJournal a;
    hunter::obs::ParsedJournal b;
    if (!LoadJournal(argv[2], &a) || !LoadJournal(argv[3], &b)) return 1;
    std::cout << hunter::tracecat::RenderDiff(a, b);
    return 0;
  }
  return Usage(argv[0]);
}
