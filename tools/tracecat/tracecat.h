// tracecat: renders a Table-1-style per-stage cost breakdown from a run
// journal (obs::Journal JSONL) and diffs two journals stage by stage.
// Library half of the tools/tracecat CLI; pulled into ctest golden tests.

#ifndef HUNTER_TOOLS_TRACECAT_TRACECAT_H_
#define HUNTER_TOOLS_TRACECAT_TRACECAT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/journal.h"

namespace hunter::tracecat {

struct StageCost {
  std::string stage;
  double seconds = 0.0;  // sum of charged-span durations in record order
  size_t spans = 0;      // charged spans only
};

struct Breakdown {
  // Stages in order of first appearance among charged spans.
  std::vector<StageCost> stages;
  // Fold of every charged span's duration in record order — reproduces the
  // run's simulated clock total bit-exactly (the obs determinism contract).
  double total_seconds = 0.0;
  size_t charged_spans = 0;
  size_t detail_spans = 0;
  size_t events = 0;
  size_t metric_snapshots = 0;
};

Breakdown ComputeBreakdown(const obs::ParsedJournal& journal);

// Markdown table of per-stage costs plus a totals footer.
std::string RenderBreakdown(const obs::ParsedJournal& journal);

// Stage-by-stage time deltas between two journals (union of stages, `a`'s
// first-appearance order first, then stages only `b` has).
std::string RenderDiff(const obs::ParsedJournal& a,
                       const obs::ParsedJournal& b);

}  // namespace hunter::tracecat

#endif  // HUNTER_TOOLS_TRACECAT_TRACECAT_H_
