#include "tracecat/tracecat.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace hunter::tracecat {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(TRACECAT_TESTDATA_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing test data file: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

obs::ParsedJournal LoadFixture(const std::string& name) {
  std::ifstream in(TestDataPath(name), std::ios::binary);
  obs::ParsedJournal journal;
  std::string error;
  EXPECT_TRUE(obs::ParseJournal(in, &journal, &error)) << error;
  return journal;
}

TEST(TracecatTest, BreakdownFoldsChargedSpansOnly) {
  const obs::ParsedJournal journal = LoadFixture("example_a.jsonl");
  const Breakdown b = ComputeBreakdown(journal);
  // 3 + 142.5 + 0.25 + 2 + 26.5, all exactly representable.
  EXPECT_DOUBLE_EQ(b.total_seconds, 174.25);
  EXPECT_EQ(b.charged_spans, 5u);
  EXPECT_EQ(b.detail_spans, 2u);  // the non-critical lane
  EXPECT_EQ(b.events, 1u);
  EXPECT_EQ(b.metric_snapshots, 1u);
  ASSERT_EQ(b.stages.size(), 5u);  // first-appearance order
  EXPECT_EQ(b.stages[0].stage, "deploy");
  EXPECT_EQ(b.stages[1].stage, "execution");
  EXPECT_EQ(b.stages[2].stage, "collection");
  EXPECT_EQ(b.stages[3].stage, "backoff");
  EXPECT_EQ(b.stages[4].stage, "recovery");
}

TEST(TracecatTest, BreakdownStagesCoverRecovery) {
  const obs::ParsedJournal journal = LoadFixture("example_a.jsonl");
  const Breakdown b = ComputeBreakdown(journal);
  bool has_recovery = false;
  for (const StageCost& s : b.stages) {
    if (s.stage == "recovery") {
      has_recovery = true;
      EXPECT_DOUBLE_EQ(s.seconds, 26.5);
      EXPECT_EQ(s.spans, 1u);
    }
  }
  EXPECT_TRUE(has_recovery);
}

// Golden-output tests: the rendered bytes are pinned in testdata/. If an
// intentional format change breaks these, regenerate with
//   tracecat breakdown testdata/example_a.jsonl > testdata/golden_breakdown_a.txt
//   tracecat diff testdata/example_a.jsonl testdata/example_b.jsonl
//       > testdata/golden_diff_ab.txt
TEST(TracecatTest, BreakdownMatchesGolden) {
  const obs::ParsedJournal journal = LoadFixture("example_a.jsonl");
  EXPECT_EQ(RenderBreakdown(journal), ReadFile(TestDataPath(
                                          "golden_breakdown_a.txt")));
}

TEST(TracecatTest, DiffMatchesGolden) {
  const obs::ParsedJournal a = LoadFixture("example_a.jsonl");
  const obs::ParsedJournal b = LoadFixture("example_b.jsonl");
  EXPECT_EQ(RenderDiff(a, b), ReadFile(TestDataPath("golden_diff_ab.txt")));
}

TEST(TracecatTest, ParseWriteRoundTripIsByteIdentical) {
  const std::string original = ReadFile(TestDataPath("example_a.jsonl"));
  std::istringstream in(original);
  obs::ParsedJournal journal;
  std::string error;
  ASSERT_TRUE(obs::ParseJournal(in, &journal, &error)) << error;
  std::ostringstream out;
  obs::WriteParsed(journal, out);
  EXPECT_EQ(out.str(), original);
}

TEST(TracecatTest, ParseReportsLineNumbersOnMalformedInput) {
  std::istringstream in(
      "{\"type\":\"meta\",\"schema\":\"hunter.journal.v1\",\"attrs\":{}}\n"
      "not json\n");
  obs::ParsedJournal journal;
  std::string error;
  EXPECT_FALSE(obs::ParseJournal(in, &journal, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(TracecatTest, ParseRejectsJournalWithoutMeta) {
  std::istringstream in(
      "{\"type\":\"event\",\"seq\":0,\"name\":\"x\",\"t\":0,\"attrs\":{}}\n");
  obs::ParsedJournal journal;
  std::string error;
  EXPECT_FALSE(obs::ParseJournal(in, &journal, &error));
  EXPECT_NE(error.find("meta"), std::string::npos) << error;
}

}  // namespace
}  // namespace hunter::tracecat
