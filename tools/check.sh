#!/usr/bin/env bash
# Single pre-PR gate for this repository (the "CI configuration"):
#
#   1. configure + build with HUNTER_WERROR=ON (-Werror -Wshadow -Wconversion
#      on top of the always-on -Wall -Wextra)
#   2. hunterlint over src/ tests/ bench/ examples/
#   3. the full tier-1 ctest suite (includes the `lint` and `perf` labels)
#   4. the hot-path micro-benchmarks in smoke mode: one rep per benchmark,
#      gating on the golden equivalence checks (optimized paths must match
#      their seed-faithful reference implementations), not on timings
#   5. a tracecat smoke: emit two same-seed run journals, require them
#      byte-identical, and render a breakdown + a cross-seed diff
#   6. a sanitizer smoke: `ctest -L concurrency` under TSan
#
# Run from anywhere: paths are resolved relative to the repo root. Build
# trees land in build-check/ and build-check-tsan/ (both gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/6] configure + build (HUNTER_WERROR=ON) =="
cmake -B build-check -S . -DHUNTER_WERROR=ON
cmake --build build-check -j "$JOBS"

echo "== [2/6] hunterlint =="
./build-check/tools/hunterlint/hunterlint --root . src tests bench examples

echo "== [3/6] tier-1 tests =="
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "== [4/6] bench equivalence smoke =="
( cd build-check && ./bench/bench_micro_hotpaths --mode=smoke \
    --out bench_hotpaths_smoke.json )

echo "== [5/6] tracecat smoke =="
SMOKE_DIR="build-check/tracecat-smoke"
mkdir -p "$SMOKE_DIR"
./build-check/examples/trace_journal "$SMOKE_DIR/seed42_a.jsonl" 42
./build-check/examples/trace_journal "$SMOKE_DIR/seed42_b.jsonl" 42
./build-check/examples/trace_journal "$SMOKE_DIR/seed43.jsonl" 43
cmp "$SMOKE_DIR/seed42_a.jsonl" "$SMOKE_DIR/seed42_b.jsonl" || {
  echo "tracecat smoke: same-seed journals differ" >&2
  exit 1
}
./build-check/tools/tracecat/tracecat breakdown "$SMOKE_DIR/seed42_a.jsonl"
./build-check/tools/tracecat/tracecat diff \
  "$SMOKE_DIR/seed42_a.jsonl" "$SMOKE_DIR/seed43.jsonl"

echo "== [6/6] TSan concurrency smoke =="
cmake -B build-check-tsan -S . -DHUNTER_SANITIZE=thread
cmake --build build-check-tsan -j "$JOBS"
ctest --test-dir build-check-tsan -L concurrency --output-on-failure -j "$JOBS"

echo "check.sh: all gates passed"
