#!/usr/bin/env bash
# Single pre-PR gate for this repository (the "CI configuration"):
#
#   1. configure + build with HUNTER_WERROR=ON (-Werror -Wshadow -Wconversion
#      on top of the always-on -Wall -Wextra)
#   2. hunterlint over src/ tests/ bench/ examples/ against the checked-in
#      debt baseline (empty, and ratcheted non-increasing)
#   3. the full tier-1 ctest suite (includes the `lint` and `perf` labels)
#   4. the hot-path micro-benchmarks in smoke mode: one rep per benchmark,
#      gating on the golden equivalence checks (optimized paths must match
#      their seed-faithful reference implementations — the *_simd gates at
#      bit-identity tolerance 0.0), not on timings
#   5. the whole suite again with HUNTER_FORCE_SCALAR=1, pinning the
#      vector-kernel dispatch (linalg/simd/) to the scalar fallbacks; the
#      `force_scalar`-labeled duplicates already ran in stage 3, so this
#      stage covers the remaining tests (-LE force_scalar)
#   6. a tracecat smoke: emit two same-seed run journals, require them
#      byte-identical, and render a breakdown + a cross-seed diff
#   7. a lint-report smoke: two `hunterlint --format=json` runs over the
#      tree must be byte-identical (lintdiff exit 0), and lintdiff must
#      report a real difference (exit 1) between the tree and the
#      violation fixtures
#   8. a sanitizer smoke: `ctest -L concurrency` under TSan
#   9. a sanitizer smoke: `ctest -L concurrency` under ASan+LSan with
#      ASAN_OPTIONS=detect_leaks=1 so leaks fail at exit
#
# Run from anywhere: paths are resolved relative to the repo root. Build
# trees land in build-check/, build-check-tsan/, and build-check-asan/
# (all gitignored).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== [1/9] configure + build (HUNTER_WERROR=ON) =="
cmake -B build-check -S . -DHUNTER_WERROR=ON
cmake --build build-check -j "$JOBS"

echo "== [2/9] hunterlint (baseline ratchet) =="
./build-check/tools/hunterlint/hunterlint --root . \
    --baseline tools/hunterlint/baseline.json src tests bench examples

echo "== [3/9] tier-1 tests =="
ctest --test-dir build-check --output-on-failure -j "$JOBS"

echo "== [4/9] bench equivalence smoke =="
( cd build-check && ./bench/bench_micro_hotpaths --mode=smoke \
    --out bench_hotpaths_smoke.json )
# The engine fast-path and SIMD bit-identity gates must actually have run:
# a refactor that silently dropped one of the seed-equivalence checks would
# otherwise pass this stage on timings alone.
for gate in zipf_stream_vs_seed bufferpool_replay_vs_seed \
    engine_cold_vs_seed engine_cold_rng_stream \
    gemm_simd_vs_scalar gp_kernel_simd_vs_scalar \
    mlp_forward_simd_vs_scalar; do
  grep -q "\"$gate\"" build-check/bench_hotpaths_smoke.json || {
    echo "bench smoke: equivalence gate '$gate' missing from report" >&2
    exit 1
  }
done

echo "== [5/9] forced-scalar tier-1 tests (HUNTER_FORCE_SCALAR=1) =="
# Stage 3 already ran every test's force_scalar-labeled duplicate; this run
# pins the dispatch for the remaining tests (lint, perf, examples, and the
# unlabeled originals) so the whole suite is proven green at the scalar tier.
HUNTER_FORCE_SCALAR=1 ctest --test-dir build-check -LE force_scalar \
    --output-on-failure -j "$JOBS"

echo "== [6/9] tracecat smoke =="
SMOKE_DIR="build-check/tracecat-smoke"
mkdir -p "$SMOKE_DIR"
./build-check/examples/trace_journal "$SMOKE_DIR/seed42_a.jsonl" 42
./build-check/examples/trace_journal "$SMOKE_DIR/seed42_b.jsonl" 42
./build-check/examples/trace_journal "$SMOKE_DIR/seed43.jsonl" 43
cmp "$SMOKE_DIR/seed42_a.jsonl" "$SMOKE_DIR/seed42_b.jsonl" || {
  echo "tracecat smoke: same-seed journals differ" >&2
  exit 1
}
./build-check/tools/tracecat/tracecat breakdown "$SMOKE_DIR/seed42_a.jsonl"
./build-check/tools/tracecat/tracecat diff \
  "$SMOKE_DIR/seed42_a.jsonl" "$SMOKE_DIR/seed43.jsonl"

echo "== [7/9] lint-report determinism (lintdiff) =="
LINT_DIR="build-check/lint-smoke"
mkdir -p "$LINT_DIR"
./build-check/tools/hunterlint/hunterlint --root . --format=json \
    src tests bench examples > "$LINT_DIR/tree_a.json"
./build-check/tools/hunterlint/hunterlint --root . --format=json \
    src tests bench examples > "$LINT_DIR/tree_b.json"
./build-check/tools/lintdiff/lintdiff "$LINT_DIR/tree_a.json" \
    "$LINT_DIR/tree_b.json"
# The fixture report must differ from the clean tree: a non-empty diff is
# lintdiff exit 1, so the gate FAILS if it claims the reports are identical.
./build-check/tools/hunterlint/hunterlint \
    --root tools/hunterlint/testdata --format=json violations \
    > "$LINT_DIR/fixtures.json" || true
if ./build-check/tools/lintdiff/lintdiff "$LINT_DIR/tree_a.json" \
    "$LINT_DIR/fixtures.json" > /dev/null; then
  echo "lintdiff smoke: failed to distinguish tree from fixtures" >&2
  exit 1
fi

echo "== [8/9] TSan concurrency smoke =="
cmake -B build-check-tsan -S . -DHUNTER_SANITIZE=thread
cmake --build build-check-tsan -j "$JOBS"
ctest --test-dir build-check-tsan -L concurrency --output-on-failure -j "$JOBS"

echo "== [9/9] ASan+LSan concurrency smoke =="
cmake -B build-check-asan -S . -DHUNTER_SANITIZE=address
cmake --build build-check-asan -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-check-asan -L concurrency --output-on-failure \
      -j "$JOBS"

echo "check.sh: all gates passed"
