// hunterlint driver: lint files, apply suppression annotations, walk trees.
//
// Suppression syntax, matched inside any comment:
//
//   // hunterlint: allow(rule-name) reason the violation is intentional
//
// An annotation suppresses `rule-name` on its own line; when the comment is
// alone on its line it suppresses the immediately following line instead.
// The reason text is mandatory — an annotation without one is itself
// reported (rule `suppression-needs-reason`), as is an annotation naming a
// rule that does not exist (rule `unknown-rule`). The two meta rules cannot
// be suppressed.

#ifndef HUNTER_TOOLS_HUNTERLINT_HUNTERLINT_H_
#define HUNTER_TOOLS_HUNTERLINT_HUNTERLINT_H_

#include <string>
#include <vector>

#include "hunterlint/rules.h"

namespace hunter::lint {

// Lints a single in-memory file. `rel_path` selects per-path rule
// exemptions (e.g. src/common/sim_clock.*) and is echoed into violations.
std::vector<Violation> LintFile(const std::string& rel_path,
                                const std::string& source);

// Recursively collects lintable files (.h .hpp .cc .cpp .cxx) under each of
// `paths` (files are taken as-is), resolved against `root`. The returned
// repo-relative paths are sorted so reports and exit codes are stable
// across filesystems.
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths);

// Lints files on disk (repo-relative paths, resolved against root).
// IO errors are reported as violations of pseudo-rule "io-error".
std::vector<Violation> LintTree(const std::string& root,
                                const std::vector<std::string>& rel_paths);

// "path:line: [rule] message" — the single line format printed per finding.
std::string FormatViolation(const Violation& v);

}  // namespace hunter::lint

#endif  // HUNTER_TOOLS_HUNTERLINT_HUNTERLINT_H_
