#include "hunterlint/report.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <utility>

namespace hunter::lint {

namespace {

// ---------------------------------------------------------------------------
// Canonical writer

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(c >> 4) & 0xF]);
          out->push_back(kHex[c & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, integers) — just enough to
// read back what the writers above produce, independent of key order and
// whitespace so hand-edited baselines still load.

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& error() const { return error_; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool ReadString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          int code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("bad \\u escape");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            // The writers only emit \u00XX; anything larger is foreign.
            return Fail("unsupported \\u escape");
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ReadInt(long* out) {
    SkipWs();
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected integer");
    }
    *out = std::stol(text_.substr(start, pos_ - start));
    return true;
  }

  // Skips any JSON value (used for unknown keys, e.g. a future "files"
  // field), so old lintdiff binaries keep reading newer reports.
  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return ReadString(&ignored);
    }
    if (c == '{' || c == '[') {
      const char open = c;
      const char close = (c == '{') ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      while (pos_ < text_.size()) {
        const char d = text_[pos_++];
        if (in_string) {
          if (d == '\\') { if (pos_ < text_.size()) ++pos_; }
          else if (d == '"') in_string = false;
          continue;
        }
        if (d == '"') in_string = true;
        else if (d == open) ++depth;
        else if (d == close && --depth == 0) return true;
      }
      return Fail("unterminated composite");
    }
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return true;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// Reads `{"k": v, ...}` invoking `field(reader, key)` per pair.
template <typename FieldFn>
bool ReadObject(JsonReader* r, FieldFn field) {
  if (!r->Consume('{')) return false;
  if (r->Peek('}')) return r->Consume('}');
  while (true) {
    std::string key;
    if (!r->ReadString(&key)) return false;
    if (!r->Consume(':')) return false;
    if (!field(r, key)) return false;
    if (r->Peek(',')) {
      r->Consume(',');
      continue;
    }
    return r->Consume('}');
  }
}

template <typename ElemFn>
bool ReadArray(JsonReader* r, ElemFn elem) {
  if (!r->Consume('[')) return false;
  if (r->Peek(']')) return r->Consume(']');
  while (true) {
    if (!elem(r)) return false;
    if (r->Peek(',')) {
      r->Consume(',');
      continue;
    }
    return r->Consume(']');
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Violation reports

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::string out = "{\n  \"tool\": \"hunterlint\",\n  \"version\": 1,\n"
                    "  \"violations\": [";
  bool first = true;
  for (const Violation& v : violations) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": ";
    AppendJsonString(v.path, &out);
    out += ", \"line\": " + std::to_string(v.line) + ", \"rule\": ";
    AppendJsonString(v.rule, &out);
    out += ", \"message\": ";
    AppendJsonString(v.message, &out);
    out += "}";
  }
  out += violations.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool ParseViolationsJson(const std::string& text,
                         std::vector<Violation>* out, std::string* error) {
  out->clear();
  JsonReader r(text);
  const bool ok = ReadObject(&r, [&](JsonReader* rr, const std::string& key) {
    if (key != "violations") return rr->SkipValue();
    return ReadArray(rr, [&](JsonReader* ar) {
      Violation v;
      const bool vok =
          ReadObject(ar, [&](JsonReader* vr, const std::string& k) {
            if (k == "path") return vr->ReadString(&v.path);
            if (k == "rule") return vr->ReadString(&v.rule);
            if (k == "message") return vr->ReadString(&v.message);
            if (k == "line") {
              long line = 0;
              if (!vr->ReadInt(&line)) return false;
              v.line = static_cast<int>(line);
              return true;
            }
            return vr->SkipValue();
          });
      if (vok) out->push_back(std::move(v));
      return vok;
    });
  });
  if (!ok && error != nullptr) *error = r.error();
  return ok;
}

// ---------------------------------------------------------------------------
// Baseline

std::vector<BaselineEntry> BaselineFromViolations(
    const std::vector<Violation>& violations) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Violation& v : violations) {
    counts[{v.path, v.rule}] += 1;
  }
  std::vector<BaselineEntry> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    out.push_back({key.first, key.second, count});
  }
  return out;  // std::map iteration is already (path, rule)-sorted
}

std::string BaselineToJson(const std::vector<BaselineEntry>& entries) {
  std::vector<BaselineEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.rule < b.rule;
            });
  std::string out = "{\n  \"tool\": \"hunterlint\",\n  \"version\": 1,\n"
                    "  \"entries\": [";
  bool first = true;
  for (const BaselineEntry& e : sorted) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": ";
    AppendJsonString(e.path, &out);
    out += ", \"rule\": ";
    AppendJsonString(e.rule, &out);
    out += ", \"count\": " + std::to_string(e.count) + "}";
  }
  out += sorted.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool ParseBaselineJson(const std::string& text,
                       std::vector<BaselineEntry>* out, std::string* error) {
  out->clear();
  JsonReader r(text);
  const bool ok = ReadObject(&r, [&](JsonReader* rr, const std::string& key) {
    if (key != "entries") return rr->SkipValue();
    return ReadArray(rr, [&](JsonReader* ar) {
      BaselineEntry e;
      const bool eok =
          ReadObject(ar, [&](JsonReader* er, const std::string& k) {
            if (k == "path") return er->ReadString(&e.path);
            if (k == "rule") return er->ReadString(&e.rule);
            if (k == "count") {
              long count = 0;
              if (!er->ReadInt(&count)) return false;
              e.count = static_cast<int>(count);
              return true;
            }
            return er->SkipValue();
          });
      if (eok) out->push_back(std::move(e));
      return eok;
    });
  });
  if (!ok && error != nullptr) *error = r.error();
  return ok;
}

std::vector<Violation> ApplyBaseline(
    const std::vector<Violation>& violations,
    const std::vector<BaselineEntry>& baseline) {
  std::map<std::pair<std::string, std::string>, int> budget;
  for (const BaselineEntry& e : baseline) {
    budget[{e.path, e.rule}] += e.count;
  }
  std::vector<Violation> out;
  for (const Violation& v : violations) {
    auto it = budget.find({v.path, v.rule});
    if (it != budget.end() && it->second > 0) {
      it->second -= 1;
      continue;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace hunter::lint
