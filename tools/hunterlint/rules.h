// hunterlint rule definitions.
//
// Each rule is a named, individually suppressible check over a lexed file.
// The rules encode project invariants that the compiler cannot see but that
// HUNTER's reproducibility contract depends on (see DESIGN.md §9):
//
//   no-wall-clock              all time flows through common::SimClock
//   no-unseeded-rng            all randomness flows through common::Rng
//   no-naked-thread            all parallelism flows through common::ThreadPool
//   no-unordered-iteration-emit  files that produce ordered output must not
//                              range-for over unordered containers
//   no-matrix-row-copy-in-loop  ml/linalg hot loops must not call the
//                              allocating Matrix::Row() per iteration —
//                              they take the non-allocating RowView/RowSpan
//   guarded-by                 fields annotated `guarded_by(mu_)` are only
//                              accessed with mu_ held (semantic; sem.h)
//   no-alloc-in-hot-loop       no new/push_back/resize/vector construction
//                              in loops of `hot` functions (semantic)
//   deadlock-order             the cross-file lock-acquisition graph has
//                              no cycles (semantic)
//   header-guard               headers carry #pragma once or a matched
//                              #ifndef/#define include guard
//   no-using-namespace-header  headers must not inject namespaces
//   include-style              quoted includes are source-root-relative
//                              ("dir/file.h"), never "file.h", "../x.h",
//                              or absolute
//
// Two meta rules police the suppression mechanism itself and cannot be
// suppressed: suppression-needs-reason and unknown-rule.

#ifndef HUNTER_TOOLS_HUNTERLINT_RULES_H_
#define HUNTER_TOOLS_HUNTERLINT_RULES_H_

#include <string>
#include <vector>

#include "hunterlint/lexer.h"

namespace hunter::lint {

struct Violation {
  std::string rule;
  std::string path;  // repo-relative, forward slashes
  int line = 0;
  std::string message;
};

struct FileCtx {
  std::string rel_path;  // repo-relative, forward slashes
  const LexedFile* lex = nullptr;
  bool is_header = false;
};

// Names of all substantive rules, in reporting order. Does not include the
// meta rules (which exist only to police annotations).
const std::vector<std::string>& AllRuleNames();

// One-line description for --list-rules; empty string for unknown names.
std::string RuleDescription(const std::string& rule);

// True for substantive rules and meta rules alike (valid in allow(...)
// only for substantive ones, but recognized so the error is precise).
bool IsKnownRule(const std::string& rule);

// Runs every token-level rule over the file. The semantic rule families
// (guarded-by, no-alloc-in-hot-loop, deadlock-order) live in sem.h and need
// the cross-file ProjectModel; the driver runs both sets. Suppressions are
// NOT applied here; the driver matches them against annotations.
std::vector<Violation> RunRules(const FileCtx& ctx);

}  // namespace hunter::lint

#endif  // HUNTER_TOOLS_HUNTERLINT_RULES_H_
