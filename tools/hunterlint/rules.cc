#include "hunterlint/rules.h"

#include <algorithm>
#include <cstddef>
#include <unordered_set>

namespace hunter::lint {

namespace {

using TokenVec = std::vector<Token>;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

const std::string& TokText(const TokenVec& toks, size_t i) {
  static const std::string kEmpty;
  if (i >= toks.size()) return kEmpty;
  return toks[i].text;
}

bool IsIdent(const TokenVec& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdentifier;
}

// True when toks[i] is a free-function call: `name(` not reached through
// `.`, `->`, or a non-std `::` qualifier. `std::name(` still counts.
bool IsFreeCall(const TokenVec& toks, size_t i) {
  if (TokText(toks, i + 1) != "(") return false;
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") {
    return i >= 2 && toks[i - 2].text == "std";
  }
  return true;
}

bool QualifiedStd(const TokenVec& toks, size_t i) {
  return i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "std";
}

// True when `name(` at toks[i] is a function declaration or definition
// rather than a call: the token after the matching `)` is a definition
// body, cv/ref/noexcept qualifier, trailing return, or `= default/delete`.
// Lets a project member accessor legally be named `clock()` or `time()`.
bool LooksLikeFunctionDecl(const TokenVec& toks, size_t i) {
  size_t j = i + 1;
  int depth = 0;
  for (; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    else if (toks[j].text == ")" && --depth == 0) break;
  }
  const std::string& after = TokText(toks, j + 1);
  return after == "{" || after == "const" || after == "override" ||
         after == "noexcept" || after == "final" || after == "->" ||
         after == "=" || after == "&" || after == "&&";
}

// ---------------------------------------------------------------------------
// no-wall-clock

// Clock sources banned outright wherever they appear as identifiers.
const std::unordered_set<std::string>& BannedClockTypes() {
  static const std::unordered_set<std::string> kSet = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "utc_clock",     "tai_clock",    "gps_clock",
      "file_clock",    "gettimeofday", "clock_gettime",
      "timespec_get",
  };
  return kSet;
}

// C time functions banned in free-call position only, so member functions
// and fields that happen to be called `time` stay legal.
const std::unordered_set<std::string>& BannedClockCalls() {
  static const std::unordered_set<std::string> kSet = {
      "time",   "clock",     "localtime", "gmtime",
      "mktime", "asctime",   "ctime",     "difftime",
  };
  return kSet;
}

void CheckWallClock(const FileCtx& ctx, std::vector<Violation>* out) {
  if (StartsWith(ctx.rel_path, "src/common/sim_clock.")) return;
  const TokenVec& toks = ctx.lex->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (BannedClockTypes().count(toks[i].text)) {
      out->push_back({"no-wall-clock", ctx.rel_path, toks[i].line,
                      "wall-clock source '" + toks[i].text +
                          "' — tuning time must flow through "
                          "common::SimClock"});
    } else if (BannedClockCalls().count(toks[i].text) &&
               IsFreeCall(toks, i) &&
               !(!QualifiedStd(toks, i) && LooksLikeFunctionDecl(toks, i))) {
      out->push_back({"no-wall-clock", ctx.rel_path, toks[i].line,
                      "wall-clock call '" + toks[i].text +
                          "()' — tuning time must flow through "
                          "common::SimClock"});
    }
  }
}

// ---------------------------------------------------------------------------
// no-unseeded-rng

const std::unordered_set<std::string>& RandomEngineTypes() {
  static const std::unordered_set<std::string> kSet = {
      "mt19937",       "mt19937_64",    "default_random_engine",
      "minstd_rand",   "minstd_rand0",  "ranlux24",
      "ranlux48",      "ranlux24_base", "ranlux48_base",
      "knuth_b",
  };
  return kSet;
}

void CheckUnseededRng(const FileCtx& ctx, std::vector<Violation>* out) {
  if (StartsWith(ctx.rel_path, "src/common/rng.")) return;
  const TokenVec& toks = ctx.lex->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& text = toks[i].text;

    if (text == "random_device") {
      out->push_back({"no-unseeded-rng", ctx.rel_path, toks[i].line,
                      "std::random_device is nondeterministic — derive "
                      "seeds from common::Rng::Fork()"});
      continue;
    }
    if ((text == "rand" || text == "srand" || text == "drand48" ||
         text == "lrand48" || text == "srand48") &&
        IsFreeCall(toks, i)) {
      out->push_back({"no-unseeded-rng", ctx.rel_path, toks[i].line,
                      "'" + text + "()' bypasses the seeded common::Rng"});
      continue;
    }
    if (RandomEngineTypes().count(text)) {
      // Flag default construction only: `mt19937 g;`, `mt19937 g{};`,
      // `mt19937 g();`, or a default-constructed temporary. Seeded uses
      // and references/pointers to an engine are legal.
      size_t j = i + 1;
      const std::string& next = TokText(toks, j);
      bool flagged = false;
      if (next == "(" || next == "{") {
        const std::string closer = (next == "(") ? ")" : "}";
        flagged = TokText(toks, j + 1) == closer;
      } else if (IsIdent(toks, j)) {
        const std::string& after = TokText(toks, j + 1);
        flagged = after == ";" ||
                  (after == "{" && TokText(toks, j + 2) == "}") ||
                  (after == "(" && TokText(toks, j + 2) == ")");
      }
      if (flagged) {
        out->push_back({"no-unseeded-rng", ctx.rel_path, toks[i].line,
                        "default-constructed std::" + text +
                            " is unseeded — use common::Rng (or seed "
                            "explicitly from a forked Rng stream)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// no-naked-thread

void CheckNakedThread(const FileCtx& ctx, std::vector<Violation>* out) {
  if (StartsWith(ctx.rel_path, "src/common/thread_pool.")) return;
  const TokenVec& toks = ctx.lex->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& text = toks[i].text;
    if ((text == "thread" || text == "jthread") && QualifiedStd(toks, i)) {
      // `std::thread::hardware_concurrency()` (and other statics/nested
      // types) query the platform without spawning; only the object itself
      // is a rogue execution agent.
      if (TokText(toks, i + 1) == "::") continue;
      out->push_back({"no-naked-thread", ctx.rel_path, toks[i].line,
                      "std::" + text +
                          " outside common::ThreadPool — parallel sections "
                          "must go through the pool to keep deterministic "
                          "work order"});
    } else if (text == "async" && QualifiedStd(toks, i)) {
      out->push_back({"no-naked-thread", ctx.rel_path, toks[i].line,
                      "std::async outside common::ThreadPool — parallel "
                      "sections must go through the pool"});
    } else if ((text == "pthread_create" || text == "pthread_detach") &&
               IsFreeCall(toks, i)) {
      out->push_back({"no-naked-thread", ctx.rel_path, toks[i].line,
                      "'" + text + "' outside common::ThreadPool"});
    }
  }
}

// ---------------------------------------------------------------------------
// no-unordered-iteration-emit

const std::unordered_set<std::string>& UnorderedContainerTypes() {
  static const std::unordered_set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

// Output sinks whose presence marks a file as producing ordered output.
const std::unordered_set<std::string>& EmitSinks() {
  static const std::unordered_set<std::string> kSet = {
      "printf", "fprintf", "puts",     "fputs",        "fwrite",
      "cout",   "cerr",    "ofstream", "TablePrinter",
  };
  return kSet;
}

// Advances past a balanced template argument list starting at toks[i]=="<".
// Returns the index just after the closing ">". `>>` closes two levels.
size_t SkipTemplateArgs(const TokenVec& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") depth += 1;
    else if (t == ">") depth -= 1;
    else if (t == ">>") depth -= 2;
    else if (t == ";") return i;  // malformed; bail out
    if (depth <= 0) return i + 1;
  }
  return i;
}

void CheckUnorderedIterationEmit(const FileCtx& ctx,
                                 std::vector<Violation>* out) {
  const TokenVec& toks = ctx.lex->tokens;

  bool emits = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdentifier && EmitSinks().count(t.text)) {
      emits = true;
      break;
    }
  }
  if (!emits) return;

  // Pass 1: names whose iteration order is unordered — type aliases of
  // unordered containers and variables/members declared with them.
  std::unordered_set<std::string> unordered_aliases;
  std::unordered_set<std::string> unordered_vars;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    const std::string& text = toks[i].text;
    if (text == "using" && IsIdent(toks, i + 1) &&
        TokText(toks, i + 2) == "=") {
      for (size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
        if (UnorderedContainerTypes().count(toks[j].text)) {
          unordered_aliases.insert(toks[i + 1].text);
          break;
        }
      }
    } else if (text == "typedef") {
      size_t j = i + 1;
      bool unordered = false;
      while (j < toks.size() && toks[j].text != ";") {
        if (UnorderedContainerTypes().count(toks[j].text)) unordered = true;
        ++j;
      }
      if (unordered && j > i + 1 && IsIdent(toks, j - 1)) {
        unordered_aliases.insert(toks[j - 1].text);
      }
    }
  }
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (!UnorderedContainerTypes().count(toks[i].text) &&
        !unordered_aliases.count(toks[i].text)) {
      continue;
    }
    size_t j = i + 1;
    if (TokText(toks, j) == "<") j = SkipTemplateArgs(toks, j);
    while (TokText(toks, j) == "*" || TokText(toks, j) == "&" ||
           TokText(toks, j) == "&&" || TokText(toks, j) == "const") {
      ++j;
    }
    while (IsIdent(toks, j)) {
      unordered_vars.insert(toks[j].text);
      if (TokText(toks, j + 1) != ",") break;
      j += 2;
    }
  }
  if (unordered_vars.empty() && unordered_aliases.empty()) return;

  // Pass 2: range-for statements whose range expression names one of them.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || toks[i].text != "for" ||
        toks[i + 1].text != "(") {
      continue;
    }
    int depth = 0;
    size_t colon = 0, close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      else if (t == ")") {
        --depth;
        if (depth == 0) { close = j; break; }
      } else if (t == ":" && depth == 1 && colon == 0) {
        colon = j;
      } else if (t == ";" && depth == 1) {
        colon = 0;  // classic for loop
        break;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdentifier) continue;
      if (unordered_vars.count(toks[j].text) ||
          unordered_aliases.count(toks[j].text) ||
          UnorderedContainerTypes().count(toks[j].text)) {
        out->push_back(
            {"no-unordered-iteration-emit", ctx.rel_path, toks[i].line,
             "range-for over unordered container '" + toks[j].text +
                 "' in a file that produces ordered output — iterate a "
                 "sorted key list (or use an ordered container) so emitted "
                 "output is deterministic"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// journal-emit-through-obs

// A string literal that spells out a journal record by hand. The lexer
// keeps escape backslashes in the token text, so the `"type"` key appears
// either raw (inside a raw string literal) or as \"type\" (inside an
// ordinary literal); match both spellings.
bool ContainsJournalMarker(const std::string& s) {
  static const char* kRecordTypes[] = {"span", "event", "metrics", "meta"};
  for (const char* type : kRecordTypes) {
    if (s.find(std::string("\"type\":\"") + type + "\"") !=
        std::string::npos) {
      return true;
    }
    if (s.find(std::string("\\\"type\\\":\\\"") + type + "\\\"") !=
        std::string::npos) {
      return true;
    }
  }
  return s.find("hunter.journal") != std::string::npos;
}

void CheckJournalEmit(const FileCtx& ctx, std::vector<Violation>* out) {
  // The obs layer is the one legitimate producer of journal bytes.
  if (StartsWith(ctx.rel_path, "src/obs/")) return;
  const TokenVec& toks = ctx.lex->tokens;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kString) continue;
    if (ContainsJournalMarker(t.text)) {
      out->push_back(
          {"journal-emit-through-obs", ctx.rel_path, t.line,
           "hand-rolled journal record bytes — emit through obs::Journal "
           "(and parse through obs::ParseJournal) so the schema and "
           "byte-stability contract stay in one place"});
    }
  }
}

// ---------------------------------------------------------------------------
// no-matrix-row-copy-in-loop

// linalg::Matrix::Row() allocates a fresh std::vector per call; inside a
// loop body in the ml/linalg hot paths that is an O(iterations) allocation
// churn the non-allocating RowView/RowSpan exists to avoid. The directory
// scope is substring-matched ("src/ml/", "src/linalg/") so test fixtures
// that mirror the tree under testdata/ stay in scope.
void CheckNoMatrixRowCopyInLoop(const FileCtx& ctx,
                                std::vector<Violation>* out) {
  if (ctx.rel_path.find("src/ml/") == std::string::npos &&
      ctx.rel_path.find("src/linalg/") == std::string::npos) {
    return;
  }
  const TokenVec& toks = ctx.lex->tokens;
  // Token indices already flagged — a `.Row(` inside nested loops falls in
  // several bodies but must be reported once.
  std::unordered_set<size_t> flagged;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier || toks[i].text != "for" ||
        toks[i + 1].text != "(") {
      continue;
    }
    // Matching close paren of the for header.
    size_t close = 0;
    int depth = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      else if (toks[j].text == ")" && --depth == 0) { close = j; break; }
    }
    if (close == 0 || close + 1 >= toks.size()) continue;
    // Body token range: a braced block, or a single statement up to its
    // `;`. (A nested braced loop as the single statement is still covered:
    // the outer scan visits every `for` token independently.)
    const size_t begin = close + 1;
    size_t end = 0;
    if (toks[begin].text == "{") {
      int braces = 0;
      for (size_t j = begin; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++braces;
        else if (toks[j].text == "}" && --braces == 0) { end = j; break; }
      }
    } else {
      for (size_t j = begin; j < toks.size(); ++j) {
        if (toks[j].text == ";") { end = j; break; }
      }
    }
    if (end == 0) continue;
    for (size_t j = begin; j + 2 <= end; ++j) {
      if ((toks[j].text == "." || toks[j].text == "->") &&
          TokText(toks, j + 1) == "Row" && IsIdent(toks, j + 1) &&
          TokText(toks, j + 2) == "(" && flagged.insert(j + 1).second) {
        out->push_back(
            {"no-matrix-row-copy-in-loop", ctx.rel_path, toks[j + 1].line,
             "Matrix::Row() allocates a fresh vector every iteration — use "
             "the non-allocating RowView()/RowSpan in hot loops, or hoist "
             "the copy out of the loop"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// no-raw-intrinsics-outside-simd

// An x86 vector intrinsic or register-type identifier: _mm_*, _mm256_*,
// _mm512_*, __m128/__m256d/__m512i, ... The prefix check keeps ordinary
// identifiers like _mmap_size or __members out of scope.
bool IsRawSimdToken(const std::string& t) {
  if (t.size() > 3 && t.compare(0, 3, "_mm") == 0 &&
      (t[3] == '_' || (t[3] >= '0' && t[3] <= '9'))) {
    return true;
  }
  if (t.size() > 3 && t.compare(0, 3, "__m") == 0 && t[3] >= '0' &&
      t[3] <= '9') {
    return true;
  }
  return false;
}

// Vector code is quarantined: kernels live in src/linalg/simd/ and the two
// CPUID scan kernels in common/cpu.h; everything else calls the dispatched
// linalg::simd entry points. The paths are substring-matched so test
// fixtures that mirror the tree under testdata/ stay in scope.
void CheckRawIntrinsics(const FileCtx& ctx, std::vector<Violation>* out) {
  if (ctx.rel_path.find("src/linalg/simd/") != std::string::npos ||
      ctx.rel_path.find("common/cpu.h") != std::string::npos) {
    return;
  }
  for (const Token& t : ctx.lex->tokens) {
    if (t.kind != TokKind::kIdentifier) continue;
    if (IsRawSimdToken(t.text)) {
      out->push_back(
          {"no-raw-intrinsics-outside-simd", ctx.rel_path, t.line,
           "raw SIMD token '" + t.text +
               "' — vector kernels are quarantined in src/linalg/simd/ "
               "(plus the scan kernels in common/cpu.h); call the "
               "dispatched linalg::simd entry points instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// header hygiene

void CheckHeaderGuard(const FileCtx& ctx, std::vector<Violation>* out) {
  const TokenVec& toks = ctx.lex->tokens;
  if (toks.empty()) return;
  if (TokText(toks, 0) == "#" && TokText(toks, 1) == "pragma" &&
      TokText(toks, 2) == "once") {
    return;
  }
  if (TokText(toks, 0) == "#" && TokText(toks, 1) == "ifndef" &&
      IsIdent(toks, 2) && TokText(toks, 3) == "#" &&
      TokText(toks, 4) == "define") {
    if (TokText(toks, 5) == TokText(toks, 2)) return;
    out->push_back({"header-guard", ctx.rel_path, toks[4].line,
                    "include guard #define '" + TokText(toks, 5) +
                        "' does not match #ifndef '" + TokText(toks, 2) +
                        "'"});
    return;
  }
  out->push_back({"header-guard", ctx.rel_path, toks[0].line,
                  "header must start with '#pragma once' or a matched "
                  "#ifndef/#define include guard"});
}

void CheckUsingNamespaceHeader(const FileCtx& ctx,
                               std::vector<Violation>* out) {
  const TokenVec& toks = ctx.lex->tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == "using" &&
        toks[i + 1].text == "namespace") {
      out->push_back({"no-using-namespace-header", ctx.rel_path,
                      toks[i].line,
                      "'using namespace' in a header leaks into every "
                      "includer — qualify names instead"});
    }
  }
}

void CheckIncludeStyle(const FileCtx& ctx, std::vector<Violation>* out) {
  for (const IncludeDirective& inc : ctx.lex->includes) {
    if (inc.path.find("..") != std::string::npos) {
      out->push_back({"include-style", ctx.rel_path, inc.line,
                      "#include path '" + inc.path +
                          "' uses '..' — include source-root-relative "
                          "paths instead"});
      continue;
    }
    if (inc.angled) continue;
    if (!inc.path.empty() && inc.path.front() == '/') {
      out->push_back({"include-style", ctx.rel_path, inc.line,
                      "#include path '" + inc.path + "' is absolute"});
    } else if (inc.path.find('/') == std::string::npos) {
      out->push_back({"include-style", ctx.rel_path, inc.line,
                      "#include \"" + inc.path +
                          "\" is not source-root-relative — spell it as "
                          "\"<dir>/" +
                          inc.path + "\""});
    }
  }
}

}  // namespace

const std::vector<std::string>& AllRuleNames() {
  static const std::vector<std::string> kNames = {
      "no-wall-clock",
      "no-unseeded-rng",
      "no-naked-thread",
      "no-unordered-iteration-emit",
      "journal-emit-through-obs",
      "no-matrix-row-copy-in-loop",
      "no-raw-intrinsics-outside-simd",
      "guarded-by",
      "no-alloc-in-hot-loop",
      "deadlock-order",
      "header-guard",
      "no-using-namespace-header",
      "include-style",
  };
  return kNames;
}

std::string RuleDescription(const std::string& rule) {
  if (rule == "no-wall-clock") {
    return "bans system_clock/steady_clock/time()/... outside "
           "common/sim_clock.* (time must flow through common::SimClock)";
  }
  if (rule == "no-unseeded-rng") {
    return "bans std::random_device, rand(), and default-constructed "
           "engines outside common/rng.* (randomness flows through "
           "common::Rng)";
  }
  if (rule == "no-naked-thread") {
    return "bans std::thread/std::async outside common/thread_pool.* "
           "(parallelism flows through common::ThreadPool)";
  }
  if (rule == "no-unordered-iteration-emit") {
    return "flags range-for over unordered containers in files that "
           "produce ordered output";
  }
  if (rule == "journal-emit-through-obs") {
    return "flags string literals that hand-roll run-journal records "
           "(\"type\":\"span\"/... or the hunter.journal schema tag) "
           "outside src/obs/ — journal bytes must go through obs::Journal";
  }
  if (rule == "no-matrix-row-copy-in-loop") {
    return "flags allocating Matrix::Row() calls inside for-loop bodies "
           "under src/ml/ and src/linalg/ — hot loops take the "
           "non-allocating RowView()/RowSpan instead";
  }
  if (rule == "no-raw-intrinsics-outside-simd") {
    return "bans raw vector intrinsics and register types (_mm*/__m128/"
           "__m256d/...) outside src/linalg/simd/ and common/cpu.h — hot "
           "paths call the runtime-dispatched linalg::simd kernels";
  }
  if (rule == "guarded-by") {
    return "fields annotated '// hunterlint: guarded_by(mu_)' must only be "
           "accessed with mu_ held (lock_guard/scoped_lock/unique_lock "
           "scope tracking; '// hunterlint: requires(mu_)' for helpers)";
  }
  if (rule == "no-alloc-in-hot-loop") {
    return "bans new/push_back/emplace_back/resize/std::vector "
           "construction inside loops of functions annotated "
           "'// hunterlint: hot'";
  }
  if (rule == "deadlock-order") {
    return "builds the cross-file lock-acquisition order graph and fails "
           "on cycles (and on re-acquiring a held lock)";
  }
  if (rule == "header-guard") {
    return "headers must start with #pragma once or a matched "
           "#ifndef/#define guard";
  }
  if (rule == "no-using-namespace-header") {
    return "bans 'using namespace' in headers";
  }
  if (rule == "include-style") {
    return "quoted includes must be source-root-relative "
           "(\"dir/file.h\"), never \"file.h\", \"../x.h\", or absolute";
  }
  return "";
}

bool IsKnownRule(const std::string& rule) {
  const std::vector<std::string>& names = AllRuleNames();
  return std::find(names.begin(), names.end(), rule) != names.end() ||
         rule == "suppression-needs-reason" || rule == "unknown-rule";
}

std::vector<Violation> RunRules(const FileCtx& ctx) {
  std::vector<Violation> out;
  CheckWallClock(ctx, &out);
  CheckUnseededRng(ctx, &out);
  CheckNakedThread(ctx, &out);
  CheckUnorderedIterationEmit(ctx, &out);
  CheckJournalEmit(ctx, &out);
  CheckNoMatrixRowCopyInLoop(ctx, &out);
  CheckRawIntrinsics(ctx, &out);
  if (ctx.is_header) {
    CheckHeaderGuard(ctx, &out);
    CheckUsingNamespaceHeader(ctx, &out);
  }
  CheckIncludeStyle(ctx, &out);
  std::stable_sort(
      out.begin(), out.end(),
      [](const Violation& a, const Violation& b) { return a.line < b.line; });
  return out;
}

}  // namespace hunter::lint
