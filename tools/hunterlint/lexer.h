// Minimal C++ lexer for hunterlint.
//
// hunterlint does not need a full C++ front end: every project invariant it
// enforces is visible at the token level (banned identifiers in call
// position, qualified names, declaration shapes, preprocessor directives).
// The lexer therefore produces a flat token stream with line numbers,
// skipping the interiors of string/char literals (so banned names inside
// test fixtures' string literals never fire) while recording comments
// separately so the suppression syntax (`// hunterlint: allow(rule) reason`)
// can be matched against violations, and `#include` directives specially so
// the include-style rule sees the raw header-name spelling.

#ifndef HUNTER_TOOLS_HUNTERLINT_LEXER_H_
#define HUNTER_TOOLS_HUNTERLINT_LEXER_H_

#include <string>
#include <vector>

namespace hunter::lint {

enum class TokKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*
  kNumber,      // pp-number (123, 0x1F, 1.5e-3, ...)
  kString,      // "..." or R"(...)" (text is the literal's *contents*)
  kCharLit,     // '...'
  kPunct,       // operators and punctuation; multi-char ops kept together
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  int line = 0;       // 1-based line where the comment starts
  std::string text;   // contents, without the // or /* */ markers
  bool owns_line = false;  // only whitespace precedes it on its line
};

struct IncludeDirective {
  int line = 0;
  std::string path;  // header-name without the quotes / angle brackets
  bool angled = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

// Tokenizes `source`. Never fails: malformed input degrades to punct tokens.
LexedFile Lex(const std::string& source);

}  // namespace hunter::lint

#endif  // HUNTER_TOOLS_HUNTERLINT_LEXER_H_
