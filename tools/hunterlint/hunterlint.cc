#include "hunterlint/hunterlint.h"

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "hunterlint/lexer.h"
#include "hunterlint/sem.h"

namespace hunter::lint {

namespace {

struct Suppression {
  std::string rule;
  int line = 0;         // line the annotation comment starts on
  bool owns_line = false;
  bool has_reason = false;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Parses every `hunterlint: allow(rule) reason` directive out of a comment.
// Malformed directives (no parenthesized rule) are ignored — they read as
// prose mentioning hunterlint, not as annotations. The semantic directives
// (guarded_by/requires/hot) are parsed separately in sem.cc.
void ParseAnnotations(const Comment& comment,
                      std::vector<Suppression>* out) {
  const std::string kMarker = "hunterlint:";
  size_t pos = 0;
  while ((pos = comment.text.find(kMarker, pos)) != std::string::npos) {
    pos += kMarker.size();
    size_t cursor = comment.text.find_first_not_of(" \t", pos);
    if (cursor == std::string::npos ||
        comment.text.compare(cursor, 5, "allow") != 0) {
      continue;
    }
    cursor = comment.text.find_first_not_of(" \t", cursor + 5);
    if (cursor == std::string::npos || comment.text[cursor] != '(') continue;
    const size_t close = comment.text.find(')', cursor);
    if (close == std::string::npos) continue;
    Suppression sup;
    sup.rule = Trim(comment.text.substr(cursor + 1, close - cursor - 1));
    sup.line = comment.line;
    sup.owns_line = comment.owns_line;
    // The reason runs to the end of the comment (or the next directive).
    size_t reason_end = comment.text.find(kMarker, close);
    if (reason_end == std::string::npos) reason_end = comment.text.size();
    sup.has_reason = !Trim(comment.text.substr(close + 1,
                                               reason_end - close - 1))
                          .empty();
    out->push_back(std::move(sup));
    pos = close;
  }
}

bool IsLintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

// One lexed + parsed file, held across the two LintTree phases so the
// merged ProjectModel (phase 1) can inform every file's rules (phase 2).
struct ParsedFile {
  std::string rel_path;
  bool is_header = false;
  LexedFile lex;
  FileModel model;
  std::vector<Suppression> sups;
};

ParsedFile ParseSource(const std::string& rel_path,
                       const std::string& source) {
  ParsedFile pf;
  pf.rel_path = rel_path;
  const size_t dot = rel_path.find_last_of('.');
  const std::string ext =
      (dot == std::string::npos) ? "" : rel_path.substr(dot);
  pf.is_header = (ext == ".h" || ext == ".hpp");
  pf.lex = Lex(source);
  pf.model = BuildFileModel(pf.lex);
  for (const Comment& comment : pf.lex.comments) {
    ParseAnnotations(comment, &pf.sups);
  }
  return pf;
}

// Token + semantic rules for one file against the merged project model.
// `extra` carries violations computed globally but attributed to this file
// (deadlock-order cycle edges).
std::vector<Violation> RunFileRules(const ParsedFile& pf,
                                    const ProjectModel& project,
                                    std::vector<LockEdge>* edges,
                                    std::vector<Violation> extra) {
  FileCtx ctx;
  ctx.rel_path = pf.rel_path;
  ctx.lex = &pf.lex;
  ctx.is_header = pf.is_header;
  std::vector<Violation> out = RunRules(ctx);
  RunSemanticRules(ctx, pf.model, project, &out, edges);
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

// Applies `allow(...)` suppressions, then polices the annotations
// themselves, then orders by line.
std::vector<Violation> ApplySuppressions(const ParsedFile& pf,
                                         const std::vector<Violation>& raw) {
  std::vector<Violation> out;
  for (const Violation& v : raw) {
    bool suppressed = false;
    for (const Suppression& sup : pf.sups) {
      if (sup.rule != v.rule || !sup.has_reason) continue;
      if (sup.line == v.line || (sup.owns_line && sup.line + 1 == v.line)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(v);
  }

  // Police the annotations themselves. These meta findings are never
  // suppressible: an escape hatch only stays trustworthy if every use of
  // it carries a reviewable reason.
  for (const Suppression& sup : pf.sups) {
    if (!IsKnownRule(sup.rule)) {
      out.push_back({"unknown-rule", pf.rel_path, sup.line,
                     "hunterlint annotation names unknown rule '" +
                         sup.rule + "' (see hunterlint --list-rules)"});
    } else if (!sup.has_reason) {
      out.push_back({"suppression-needs-reason", pf.rel_path, sup.line,
                     "hunterlint: allow(" + sup.rule +
                         ") must be followed by a written reason"});
    }
  }

  std::stable_sort(
      out.begin(), out.end(),
      [](const Violation& a, const Violation& b) { return a.line < b.line; });
  return out;
}

}  // namespace

std::vector<Violation> LintFile(const std::string& rel_path,
                                const std::string& source) {
  const ParsedFile pf = ParseSource(rel_path, source);
  ProjectModel project;
  MergeFileModel(pf.model, &project);
  std::vector<LockEdge> edges;
  std::vector<Violation> raw = RunFileRules(pf, project, &edges, {});
  CheckDeadlockOrder(edges, &raw);
  return ApplySuppressions(pf, raw);
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  const fs::path root_path(root);
  for (const std::string& p : paths) {
    const fs::path abs = fs::path(p).is_absolute() ? fs::path(p)
                                                   : root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && IsLintableExtension(it->path())) {
          files.push_back(
              fs::relative(it->path(), root_path).generic_string());
        }
      }
    } else if (fs::is_regular_file(abs, ec)) {
      files.push_back(fs::relative(abs, root_path).generic_string());
    } else {
      // Nonexistent input: surface as-is; LintTree reports the IO error.
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Violation> LintTree(const std::string& root,
                                const std::vector<std::string>& rel_paths) {
  // Phase 1: lex and parse everything, merging each file's symbol table
  // into the project model. `guarded_by` annotations live on field
  // declarations in headers while the guarded accesses live in .cc files,
  // so the rules cannot run until every file has been parsed.
  std::vector<Violation> out;
  std::vector<ParsedFile> parsed;
  ProjectModel project;
  for (const std::string& rel : rel_paths) {
    const std::filesystem::path abs = std::filesystem::path(root) / rel;
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      out.push_back({"io-error", rel, 0, "cannot open file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    parsed.push_back(ParseSource(rel, buf.str()));
    MergeFileModel(parsed.back().model, &project);
  }

  // Phase 2: run every rule per file against the merged model, collecting
  // the lock-order edges globally; then attribute each deadlock-order
  // finding back to the file that acquired the lock, so suppressions and
  // per-file reporting behave exactly like any other rule.
  std::vector<LockEdge> edges;
  std::vector<std::vector<Violation>> per_file(parsed.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    per_file[i] = RunFileRules(parsed[i], project, &edges, {});
  }
  std::vector<Violation> deadlocks;
  CheckDeadlockOrder(edges, &deadlocks);
  for (size_t i = 0; i < parsed.size(); ++i) {
    for (const Violation& v : deadlocks) {
      if (v.path == parsed[i].rel_path) per_file[i].push_back(v);
    }
    std::vector<Violation> final_violations =
        ApplySuppressions(parsed[i], per_file[i]);
    out.insert(out.end(), final_violations.begin(), final_violations.end());
  }
  return out;
}

std::string FormatViolation(const Violation& v) {
  return v.path + ":" + std::to_string(v.line) + ": [" + v.rule + "] " +
         v.message;
}

}  // namespace hunter::lint
