// Fixture: nondeterministic iteration order reaching ordered output; must
// be flagged by no-unordered-iteration-emit.
// Line numbers are pinned by hunterlint_test.cc — edit with care.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

using ScoreTable = std::unordered_map<std::string, double>;

void DumpScores(const ScoreTable& scores) {
  for (const auto& [name, score] : scores) {  // line 12: unordered order
    std::printf("%s %.3f\n", name.c_str(), score);
  }
}

void DumpSorted(const std::vector<std::string>& names) {
  for (const std::string& name : names) {  // fine: vector order is stable
    std::printf("%s\n", name.c_str());
  }
}
