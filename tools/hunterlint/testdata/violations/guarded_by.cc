// Violation fixture: fields annotated `// hunterlint: guarded_by(mu)` may
// only be touched while `mu` is held, and `// hunterlint: requires(mu)`
// helpers may only be called with the lock in hand. Every unguarded access
// below must be reported by rule `guarded-by` (see DESIGN.md §12).

#include <mutex>

namespace fixture {

class Counter {
 public:
  void Ok() {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;  // guarded: legal
  }

  void Bad() {
    ++hits_;  // unguarded write
  }

  void BadHelperCall() {
    Bump();  // requires(mu_), but mu_ is not held here
  }

  void AfterScope() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++hits_;
    }
    ++hits_;  // the guard released mu_ at the brace above
  }

 private:
  // hunterlint: requires(mu_)
  void Bump() { ++hits_; }

  std::mutex mu_;
  long hits_ = 0;  // hunterlint: guarded_by(mu_)
};

}  // namespace fixture
