// Violation fixture: raw vector intrinsics outside src/linalg/simd/ (and
// common/cpu.h) are quarantined — hot paths call the runtime-dispatched
// linalg::simd kernels instead.

namespace fixture {

void Axpy(double* y, const double* x, double a, unsigned long n) {
  __m256d av = _mm256_set1_pd(a);
  for (unsigned long i = 0; i + 4 <= n; i += 4) {
    __m256d sum = _mm256_add_pd(_mm256_loadu_pd(y + i),
                                _mm256_mul_pd(av, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, sum);
  }
}

}  // namespace fixture
