// Fixture: wall-clock sources that must be flagged by no-wall-clock.
// Line numbers are pinned by hunterlint_test.cc — edit with care.
#include <chrono>
#include <ctime>

double SampleWallClock() {
  const auto a = std::chrono::steady_clock::now();  // line 7
  const auto b = std::chrono::system_clock::now();  // line 8
  const std::time_t t = std::time(nullptr);         // line 9
  (void)a;
  (void)b;
  return static_cast<double>(t) + std::chrono::duration<double>(a - b).count();
}
