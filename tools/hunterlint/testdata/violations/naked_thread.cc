// Fixture: rogue execution agents that must be flagged by no-naked-thread.
// Line numbers are pinned by hunterlint_test.cc — edit with care.
#include <future>
#include <thread>

int Work();

void RunDetached() {
  std::thread worker(Work);                             // line 9
  auto future = std::async(std::launch::async, Work);   // line 10
  worker.join();
  future.get();
  (void)std::thread::hardware_concurrency();  // fine: queries, never spawns
}
