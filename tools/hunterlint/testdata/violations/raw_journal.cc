// Fixture: hand-rolled run-journal record bytes outside src/obs/; must be
// flagged by journal-emit-through-obs.
// Line numbers are pinned by hunterlint_test.cc — edit with care.
#include <cstdio>

void EmitSpanByHand(std::FILE* out) {
  std::fprintf(out, "{\"type\":\"span\",\"seq\":0,\"stage\":\"deploy\"}\n");
}

const char* kMetaLine =
    R"({"type":"meta","schema":"hunter.journal.v1","attrs":{}})";

// hunterlint: allow(journal-emit-through-obs) pinned golden bytes for a parser test
const char* kGolden = "{\"type\":\"event\",\"name\":\"boot\"}";

const char* kPlain = "{\"type\":\"config\"}";  // fine: not a journal record
