// Violation fixture: functions annotated `// hunterlint: hot` must not
// allocate per loop iteration. Each allocation in Accumulate's loop must be
// reported by rule `no-alloc-in-hot-loop`; the identical body in the cold
// function below is legal.

#include <vector>

namespace fixture {

// hunterlint: hot
inline void Accumulate(const std::vector<double>& in,
                       std::vector<double>* out) {
  for (double v : in) {
    out->push_back(v);           // per-iteration growth
    std::vector<double> tmp(4);  // per-iteration construction
    tmp[0] = v;
    double* p = new double[4];   // raw allocation
    delete[] p;
    out->resize(out->size());    // resize inside the loop
  }
}

// Not annotated hot: the same shape is legal in a cold function.
inline void Cold(const std::vector<double>& in, std::vector<double>* out) {
  for (double v : in) out->push_back(v);
}

}  // namespace fixture
