// Violation fixture: methods that acquire the same mutexes in opposite
// orders form a cycle in the lock-order graph; rule `deadlock-order`
// reports the cycle at every acquisition site that contributes an edge,
// and re-acquiring a mutex already held is reported as a self-deadlock.

#include <mutex>

namespace fixture {

class TwoLocks {
 public:
  void Forward() {
    std::lock_guard<std::mutex> a(a_);
    std::lock_guard<std::mutex> b(b_);  // edge a_ -> b_
  }

  void Backward() {
    std::lock_guard<std::mutex> b(b_);
    std::lock_guard<std::mutex> a(a_);  // edge b_ -> a_ closes the cycle
  }

  void Reacquire() {
    std::lock_guard<std::mutex> first(a_);
    std::lock_guard<std::mutex> again(a_);  // a_ is already held
  }

 private:
  std::mutex a_;
  std::mutex b_;
};

}  // namespace fixture
