// Fixture: unseeded randomness that must be flagged by no-unseeded-rng.
// Line numbers are pinned by hunterlint_test.cc — edit with care.
#include <cstdlib>
#include <random>

int RollDice() {
  std::random_device rd;       // line 7: nondeterministic seed source
  std::mt19937 unseeded;       // line 8: default-constructed engine
  std::mt19937 seeded(42);     // fine: explicitly seeded, not flagged
  (void)unseeded;
  (void)seeded;
  return std::rand() % 6 + static_cast<int>(rd() % 2);  // line 12: rand()
}
