// Fixture: allocating Matrix::Row() copies inside for-loop bodies. The
// rule's directory scope is substring-matched, so this file (under
// .../violations/src/ml/) is in scope even though it lives in testdata/.

#include "linalg/matrix.h"

double SumRows(const hunter::linalg::Matrix& m) {
  double total = 0.0;
  for (size_t r = 0; r < m.rows(); ++r) {
    const std::vector<double> row = m.Row(r);  // flagged: copy per iteration
    for (double v : row) total += v;
  }
  for (size_t r = 0; r < m.rows(); ++r)
    total += m.Row(r)[0];  // flagged: single-statement body
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      total += m.Row(r)[c];  // flagged once, not once per enclosing loop
    }
  }
  const std::vector<double> outside = m.Row(0);  // legal: not in a loop
  // hunterlint: allow(no-matrix-row-copy-in-loop) fixture: copy is mutated
  for (size_t r = 0; r < m.rows(); ++r) total += m.Row(r)[1];
  return total + outside[0];
}
