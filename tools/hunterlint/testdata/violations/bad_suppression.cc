// Fixture: suppression-mechanism misuse. A reason-less allow() must NOT
// suppress the line below it and must itself be reported; an allow()
// naming a nonexistent rule must be reported too. Line numbers are pinned
// by hunterlint_test.cc — edit with care.
#include <chrono>

void Probe() {
  // hunterlint: allow(no-wall-clock)
  const auto t = std::chrono::steady_clock::now();  // line 9: NOT suppressed
  (void)t;
  // hunterlint: allow(not-a-real-rule) misspelled rule names must not pass
  const int x = 0;
  (void)x;
}
