// Fixture: header-hygiene violations (no guard, namespace injection,
// directory-less include). Line numbers pinned by hunterlint_test.cc.
#include "strings.h"

using namespace std;

inline int Twice(int x) { return x * 2; }
