// Fixture: a file that uses banned constructs only behind well-formed
// suppressions (both the preceding-own-line and same-line forms), so the
// linter must report it clean.
#include <chrono>

double TimeBlockMs() {
  // hunterlint: allow(no-wall-clock) fixture exercises the own-line form
  const auto start = std::chrono::steady_clock::now();
  const auto stop =
      std::chrono::steady_clock::now();  // hunterlint: allow(no-wall-clock) fixture exercises the same-line form
  return std::chrono::duration<double, std::milli>(stop - start).count();
}
