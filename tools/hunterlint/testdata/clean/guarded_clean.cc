// Clean fixture: the annotation vocabulary used correctly. Guarded fields
// are only touched under their mutex (via lock_guard scopes and a deferred
// unique_lock that locks before use), the requires() helper is called with
// the lock held, locks are always taken in the same order, and the hot
// function keeps its loop allocation-free.

#include <cstddef>
#include <mutex>
#include <vector>

namespace fixture {

class Queue {
 public:
  void Push(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(v);
    BumpLocked();
  }

  double Drain() {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    lock.lock();
    double sum = 0.0;
    for (double v : items_) sum += v;
    items_.clear();
    lock.unlock();
    return sum;
  }

  void Transfer(Queue* other) {
    std::lock_guard<std::mutex> lock(mu_);
    std::lock_guard<std::mutex> other_lock(other->mu_);
    for (double v : items_) other->items_.push_back(v);
  }

 private:
  // hunterlint: requires(mu_)
  void BumpLocked() { ++pushes_; }

  std::mutex mu_;
  std::vector<double> items_;  // hunterlint: guarded_by(mu_)
  long pushes_ = 0;            // hunterlint: guarded_by(mu_)
};

// hunterlint: hot
inline double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace fixture
