// Clean fixture: this file sits under src/linalg/simd/, the one directory
// (plus the scan kernels in common/cpu.h) where raw vector intrinsics are
// legal, so the same tokens that fire in violations/raw_intrinsics.cc are
// quiet here.

#include <immintrin.h>

namespace fixture {

void ScaleInto(const double* x, double factor, double* out,
               unsigned long n) {
  const __m256d f = _mm256_set1_pd(factor);
  unsigned long i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), f));
  }
  for (; i < n; ++i) out[i] = x[i] * factor;
}

}  // namespace fixture
