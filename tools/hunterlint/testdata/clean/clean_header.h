// Fixture: a header obeying every hunterlint header-hygiene rule.

#ifndef HUNTER_TOOLS_HUNTERLINT_TESTDATA_CLEAN_CLEAN_HEADER_H_
#define HUNTER_TOOLS_HUNTERLINT_TESTDATA_CLEAN_CLEAN_HEADER_H_

#include <vector>

#include "common/rng.h"

namespace hunter::lint_fixture {

inline double Sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double value : values) total += value;
  return total;
}

}  // namespace hunter::lint_fixture

#endif  // HUNTER_TOOLS_HUNTERLINT_TESTDATA_CLEAN_CLEAN_HEADER_H_
