// Fixture: #pragma once is the other accepted header-guard spelling.

#pragma once

#include <cstddef>

namespace hunter::lint_fixture {

inline size_t Doubled(size_t n) { return 2 * n; }

}  // namespace hunter::lint_fixture
