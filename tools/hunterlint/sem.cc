#include "hunterlint/sem.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

namespace hunter::lint {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

// ---------------------------------------------------------------------------
// Annotation directives (guarded_by / requires / hot)

struct Directive {
  enum Kind { kGuardedBy, kRequires, kHot };
  Kind kind = kHot;
  std::string arg;
  int target_line = 0;  // line of the declaration the directive attaches to
};

std::string TrimWs(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Mirrors the `allow(...)` parsing in hunterlint.cc: `hunterlint:` followed
// by a verb; unknown verbs (including `allow`, which the driver owns) are
// skipped. A comment alone on its line annotates the next line.
void ParseDirectives(const std::vector<Comment>& comments,
                     std::vector<Directive>* out) {
  static const std::string kMarker = "hunterlint:";
  for (const Comment& comment : comments) {
    size_t pos = 0;
    while ((pos = comment.text.find(kMarker, pos)) != std::string::npos) {
      pos += kMarker.size();
      size_t cursor = comment.text.find_first_not_of(" \t", pos);
      if (cursor == std::string::npos) break;
      size_t vend = cursor;
      while (vend < comment.text.size() &&
             (std::isalnum(static_cast<unsigned char>(comment.text[vend])) ||
              comment.text[vend] == '_')) {
        ++vend;
      }
      const std::string verb = comment.text.substr(cursor, vend - cursor);
      Directive d;
      bool want_arg = true;
      if (verb == "guarded_by") {
        d.kind = Directive::kGuardedBy;
      } else if (verb == "requires") {
        d.kind = Directive::kRequires;
      } else if (verb == "hot") {
        d.kind = Directive::kHot;
        want_arg = false;
      } else {
        pos = cursor;
        continue;
      }
      d.target_line = comment.owns_line ? comment.line + 1 : comment.line;
      if (want_arg) {
        const size_t open = comment.text.find_first_not_of(" \t", vend);
        if (open == std::string::npos || comment.text[open] != '(') {
          pos = vend;
          continue;
        }
        const size_t close = comment.text.find(')', open);
        if (close == std::string::npos) {
          pos = vend;
          continue;
        }
        d.arg = TrimWs(comment.text.substr(open + 1, close - open - 1));
        pos = close;
        if (d.arg.empty()) continue;
      } else {
        pos = vend;
      }
      out->push_back(std::move(d));
    }
  }
}

bool HasDirective(const std::vector<Directive>& dirs, Directive::Kind kind,
                  int first_line, int last_line) {
  for (const Directive& d : dirs) {
    if (d.kind == kind && d.target_line >= first_line &&
        d.target_line <= last_line) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> DirectiveArgs(const std::vector<Directive>& dirs,
                                       Directive::Kind kind, int first_line,
                                       int last_line) {
  std::vector<std::string> args;
  for (const Directive& d : dirs) {
    if (d.kind == kind && d.target_line >= first_line &&
        d.target_line <= last_line) {
      args.push_back(d.arg);
    }
  }
  std::sort(args.begin(), args.end());
  args.erase(std::unique(args.begin(), args.end()), args.end());
  return args;
}

// ---------------------------------------------------------------------------
// Parser: token stream -> FileModel

bool IsStatementKeyword(const std::string& s) {
  static const std::unordered_set<std::string> kSet = {
      "if",     "for",      "while",  "switch",           "return",
      "catch",  "sizeof",   "new",    "delete",           "throw",
      "do",     "else",     "case",   "default",          "alignof",
      "assert", "decltype", "co_await",
      "static_cast",        "dynamic_cast",
      "const_cast",         "reinterpret_cast",
  };
  return kSet.count(s) != 0;
}

class Parser {
 public:
  explicit Parser(const LexedFile& lex) {
    // Preprocessor awareness: a directive occupies its line; dropping those
    // tokens keeps `#ifndef FOO_H_` guards and `#define` constants out of
    // the declaration grammar. (The tree bans multi-line macros de facto —
    // none exist — so per-line stripping is exact here.)
    const std::vector<Token>& toks = lex.tokens;
    size_t i = 0;
    while (i < toks.size()) {
      if (toks[i].kind == TokKind::kPunct && toks[i].text == "#") {
        const int line = toks[i].line;
        while (i < toks.size() && toks[i].line == line) ++i;
        continue;
      }
      model_.code.push_back(toks[i]);
      ++i;
    }
    ParseDirectives(lex.comments, &dirs_);
  }

  FileModel Take() {
    ParseScope(0, model_.code.size(), "", kNpos);
    return std::move(model_);
  }

 private:
  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    if (i >= model_.code.size()) return kEmpty;
    return model_.code[i].text;
  }

  bool IsId(size_t i) const {
    return i < model_.code.size() &&
           model_.code[i].kind == TokKind::kIdentifier;
  }

  int Line(size_t i) const {
    if (model_.code.empty()) return 0;
    if (i >= model_.code.size()) i = model_.code.size() - 1;
    return model_.code[i].line;
  }

  // Balanced skip helpers. All return an index <= limit and make progress.
  size_t MatchParen(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (Text(j) == "(") ++depth;
      else if (Text(j) == ")" && --depth == 0) return j;
    }
    return limit;
  }

  size_t MatchBrace(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (Text(j) == "{") ++depth;
      else if (Text(j) == "}" && --depth == 0) return j;
    }
    return limit;
  }

  size_t MatchBracket(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (Text(j) == "[") ++depth;
      else if (Text(j) == "]" && --depth == 0) return j;
    }
    return limit;
  }

  // If Text(from) == "<" and a balanced close exists before any ; { },
  // returns the index just past the closing >; otherwise returns `from`
  // (the < was a comparison, not template args).
  size_t TrySkipAngles(size_t from, size_t limit) const {
    if (Text(from) != "<") return from;
    int depth = 0;
    for (size_t j = from; j < limit; ++j) {
      const std::string& t = Text(j);
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == ">>") depth -= 2;
      else if (t == ";" || t == "{" || t == "}") return from;
      if (depth <= 0) return j + 1;
    }
    return from;
  }

  // Consumes one statement we do not model: to the first top-level `;`, or
  // past a top-level braced block (plus its trailing `;` if present).
  size_t SkipStatement(size_t from, size_t limit) const {
    size_t j = from;
    while (j < limit) {
      const std::string& t = Text(j);
      if (t == ";") return j + 1;
      if (t == "(") { j = MatchParen(j, limit) + 1; continue; }
      if (t == "[") { j = MatchBracket(j, limit) + 1; continue; }
      if (t == "{") {
        j = MatchBrace(j, limit) + 1;
        if (j < limit && Text(j) == ";") return j + 1;
        return j;
      }
      ++j;
    }
    return limit;
  }

  void ParseScope(size_t begin, size_t end, const std::string& class_name,
                  size_t cls_idx) {
    size_t s = begin;
    while (s < end) {
      const size_t stmt_start = s;
      const std::string& t = Text(s);
      if (t == ";" || t == "}") { ++s; continue; }
      if (t == "{") { s = MatchBrace(s, end) + 1; continue; }
      if (IsId(s)) {
        if ((t == "public" || t == "private" || t == "protected") &&
            Text(s + 1) == ":") {
          s += 2;
          continue;
        }
        if (t == "namespace") {
          size_t j = s + 1;
          while (j < end && Text(j) != "{" && Text(j) != ";" &&
                 Text(j) != "=") {
            ++j;
          }
          if (j < end && Text(j) == "{") {
            const size_t close = MatchBrace(j, end);
            ParseScope(j + 1, close, "", kNpos);
            s = close + 1;
          } else {
            s = SkipStatement(j, end);
          }
          continue;
        }
        if (t == "using" || t == "typedef" || t == "static_assert") {
          s = SkipStatement(s + 1, end);
          continue;
        }
        if (t == "enum") {
          size_t j = s + 1;
          while (j < end && Text(j) != "{" && Text(j) != ";") ++j;
          if (j < end && Text(j) == "{") j = MatchBrace(j, end) + 1;
          s = SkipStatement(j, end);
          continue;
        }
        if (t == "template") {
          const size_t j = TrySkipAngles(s + 1, end);
          if (j == s + 1) {
            s = SkipStatement(s + 1, end);
          } else {
            s = ParseDeclaration(stmt_start, j, end, class_name, cls_idx);
          }
          continue;
        }
        if (t == "class" || t == "struct" || t == "union") {
          s = ParseClass(s, end);
          continue;
        }
      }
      s = ParseDeclaration(stmt_start, stmt_start, end, class_name, cls_idx);
    }
  }

  size_t ParseClass(size_t s, size_t end) {
    size_t j = s + 1;
    if (!IsId(j)) return SkipStatement(j, end);  // anonymous aggregate
    const std::string name = Text(j);
    ++j;
    j = std::max(j, TrySkipAngles(j, end));
    if (IsId(j) && Text(j) == "final") ++j;
    // Scan past any base clause for the body `{` or a fwd-decl `;`.
    while (j < end) {
      const std::string& t = Text(j);
      if (t == "{") break;
      if (t == ";") return j + 1;
      if (t == "(") { j = MatchParen(j, end) + 1; continue; }
      if (t == "<") {
        const size_t k = TrySkipAngles(j, end);
        j = (k == j) ? j + 1 : k;
        continue;
      }
      ++j;
    }
    if (j >= end) return end;
    const size_t close = MatchBrace(j, end);
    model_.classes.push_back(ClassInfo{name, {}});
    // Recursion may push nested classes and reallocate, so hold the index.
    const size_t cls_idx = model_.classes.size() - 1;
    ParseScope(j + 1, close, name, cls_idx);
    return SkipStatement(close + 1, end);
  }

  // Generic declaration: scan for the first top-level `(` (a candidate
  // function declarator), `=`/`{`/`;` (a data member / variable).
  size_t ParseDeclaration(size_t stmt_start, size_t from, size_t end,
                          const std::string& class_name, size_t cls_idx) {
    size_t j = from;
    while (j < end) {
      const std::string& t = Text(j);
      if (t == ";") {
        RecordFields(stmt_start, j, cls_idx);
        return j + 1;
      }
      if (t == "=") {
        RecordFields(stmt_start, j, cls_idx);
        return SkipStatement(j + 1, end);
      }
      if (t == "{") {
        RecordFields(stmt_start, j, cls_idx);
        return SkipStatement(j, end);
      }
      if (t == "(") {
        return ParseMaybeFunction(stmt_start, j, end, class_name);
      }
      if (t == "[") { j = MatchBracket(j, end) + 1; continue; }
      if (IsId(j) && t != "operator") {
        const size_t k = TrySkipAngles(j + 1, end);
        j = (k == j + 1) ? j + 1 : k;
        continue;
      }
      ++j;
    }
    return end;
  }

  // Declarator name ending just before the parameter `(` at `params`.
  // Handles `name`, `Class::name`, `~Name`, `Class::~Name`, `operator+`,
  // and `operator()`. Returns false when no function name is present.
  bool DeclaratorName(size_t stmt_start, size_t* params, std::string* name,
                      std::string* qualifier, size_t* name_idx) const {
    const size_t paren = *params;
    if (paren == 0 || paren <= stmt_start) return false;
    size_t p = paren - 1;
    if (IsId(p)) {
      if (Text(p) == "operator") {
        // operator()(...): the scan stopped at the operator's own parens.
        if (Text(paren + 1) == ")" && Text(paren + 2) == "(") {
          *name = "operator()";
          *name_idx = p;
          *params = paren + 2;
          return true;
        }
        return false;
      }
      if (IsStatementKeyword(Text(p))) return false;
      *name = Text(p);
      *name_idx = p;
      size_t q = p;
      if (q > stmt_start && Text(q - 1) == "~") {
        *name = "~" + *name;
        --q;
      }
      if (q >= stmt_start + 2 && Text(q - 1) == "::" && IsId(q - 2)) {
        *qualifier = Text(q - 2);
      }
      return true;
    }
    // `operator==` and friends: punct preceded by the operator keyword.
    if (p > stmt_start && IsId(p - 1) && Text(p - 1) == "operator") {
      *name = "operator" + Text(p);
      *name_idx = p - 1;
      return true;
    }
    return false;
  }

  size_t ParseMaybeFunction(size_t stmt_start, size_t paren, size_t end,
                            const std::string& class_name) {
    std::string name, qualifier;
    size_t name_idx = kNpos;
    size_t params = paren;
    if (!DeclaratorName(stmt_start, &params, &name, &qualifier, &name_idx)) {
      return SkipStatement(stmt_start, end);
    }
    const size_t close = MatchParen(params, end);
    if (close >= end) return end;

    // Classify the tokens after the parameter list: qualifiers and either a
    // body `{`, a ctor-init list `: member(...) ... {`, or a declaration
    // terminator (`;`, `= default;`, `= 0;`).
    size_t j = close + 1;
    size_t body = kNoBody;
    bool is_decl = false;
    while (j < end) {
      const std::string& t = Text(j);
      if (t == "{") { body = j; break; }
      if (t == ";") { is_decl = true; break; }
      if (t == "const" || t == "override" || t == "final" || t == "&" ||
          t == "&&" || t == "mutable" || t == "try" || t == "volatile") {
        ++j;
        continue;
      }
      if (t == "noexcept") {
        ++j;
        if (Text(j) == "(") j = MatchParen(j, end) + 1;
        continue;
      }
      if (t == "->") {  // trailing return type
        ++j;
        while (j < end && Text(j) != "{" && Text(j) != ";") {
          if (Text(j) == "(") { j = MatchParen(j, end) + 1; continue; }
          if (Text(j) == "<") {
            const size_t k = TrySkipAngles(j, end);
            j = (k == j) ? j + 1 : k;
            continue;
          }
          ++j;
        }
        continue;
      }
      if (t == "=") { is_decl = true; break; }
      if (t == ":") {  // ctor-init list
        ++j;
        while (j < end) {
          while (j < end && (Text(j) == "::" ||
                             (IsId(j) && Text(j + 1) != "(" &&
                              Text(j + 1) != "{" && Text(j + 1) != "<"))) {
            ++j;
          }
          if (IsId(j)) {
            ++j;
            const size_t k = TrySkipAngles(j, end);
            j = std::max(j, k);
          }
          if (Text(j) == "(") j = MatchParen(j, end) + 1;
          else if (Text(j) == "{") j = MatchBrace(j, end) + 1;
          else break;
          if (Text(j) == ",") { ++j; continue; }
          if (Text(j) == "{") body = j;
          break;
        }
        break;
      }
      break;  // anything else: not a function declarator
    }
    if (body == kNoBody && !is_decl) return SkipStatement(stmt_start, end);

    FunctionInfo fn;
    fn.name = name;
    fn.class_name = !qualifier.empty() ? qualifier : class_name;
    fn.line = Line(name_idx);
    fn.is_ctor_or_dtor =
        !fn.class_name.empty() &&
        (fn.name == fn.class_name || fn.name == "~" + fn.class_name);
    const int first_line = Line(stmt_start);
    const int last_line = Line(body != kNoBody ? body : j);
    fn.hot = HasDirective(dirs_, Directive::kHot, first_line, last_line);
    fn.requires_locks =
        DirectiveArgs(dirs_, Directive::kRequires, first_line, last_line);
    if (body != kNoBody) {
      fn.body_begin = body;
      fn.body_end = MatchBrace(body, end);
      const size_t next = fn.body_end + 1;
      model_.functions.push_back(std::move(fn));
      return next;
    }
    model_.functions.push_back(std::move(fn));
    return SkipStatement(j, end);
  }

  // Declared names of a data-member statement spanning [stmt_begin, term).
  // Splits at top-level commas; within a declarator the name is the last
  // identifier before any array extent or bitfield width.
  void RecordFields(size_t stmt_begin, size_t term, size_t cls_idx) {
    if (cls_idx == kNpos || term <= stmt_begin) return;
    for (size_t j = stmt_begin; j < term; ++j) {
      const std::string& t = Text(j);
      if (t == "using" || t == "typedef" || t == "friend" || t == "class" ||
          t == "struct" || t == "enum" || t == "namespace" ||
          t == "operator") {
        return;
      }
    }
    const std::string guard = [&] {
      const std::vector<std::string> args =
          DirectiveArgs(dirs_, Directive::kGuardedBy, Line(stmt_begin),
                        Line(term < model_.code.size() ? term : term - 1));
      return args.empty() ? std::string() : args.front();
    }();
    std::string last_ident;
    int last_line = 0;
    bool stop_names = false;
    auto flush = [&] {
      if (!last_ident.empty()) {
        model_.classes[cls_idx].fields.push_back(
            FieldInfo{last_ident, last_line, guard});
      }
      last_ident.clear();
      stop_names = false;
    };
    size_t j = stmt_begin;
    while (j < term) {
      const std::string& t = Text(j);
      if (t == ",") { flush(); ++j; continue; }
      if (t == "[") { stop_names = true; j = MatchBracket(j, term) + 1; continue; }
      if (t == ":") { stop_names = true; ++j; continue; }
      if (IsId(j)) {
        if (!stop_names) {
          last_ident = t;
          last_line = Line(j);
        }
        const size_t k = TrySkipAngles(j + 1, term);
        j = (k == j + 1) ? j + 1 : k;
        continue;
      }
      ++j;
    }
    flush();
  }

  FileModel model_;
  std::vector<Directive> dirs_;
};

// ---------------------------------------------------------------------------
// Body walker: lock model, guarded-by, hot loops, deadlock edges

const std::unordered_set<std::string>& LockWrapperTypes() {
  static const std::unordered_set<std::string> kSet = {
      "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};
  return kSet;
}

const std::unordered_set<std::string>& HotAllocMembers() {
  static const std::unordered_set<std::string> kSet = {
      "push_back", "emplace_back", "resize"};
  return kSet;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class BodyWalker {
 public:
  BodyWalker(const FileCtx& ctx, const FileModel& model,
             const ProjectModel& project, const FunctionInfo& fn,
             std::vector<Violation>* out, std::vector<LockEdge>* edges)
      : ctx_(ctx), model_(model), fn_(fn), out_(out), edges_(edges) {
    const auto git = project.guarded_fields.find(fn.class_name);
    if (!fn.class_name.empty() && git != project.guarded_fields.end()) {
      guard_map_ = &git->second;
    }
    const auto fit = project.fn_annos.find(fn.class_name);
    if (fit != project.fn_annos.end()) {
      methods_ = &fit->second;
      const auto ait = fit->second.find(fn.name);
      if (ait != fit->second.end()) {
        hot_ = ait->second.hot;
        requires_ = ait->second.requires_locks;
      }
    }
    hot_ = hot_ || fn.hot;
    for (const std::string& r : fn.requires_locks) requires_.push_back(r);
    std::sort(requires_.begin(), requires_.end());
    requires_.erase(std::unique(requires_.begin(), requires_.end()),
                    requires_.end());
    check_guards_ = guard_map_ != nullptr && !fn.is_ctor_or_dtor;
  }

  void Run() {
    for (const std::string& r : requires_) held_[r] += 1;
    frames_.push_back({});
    const size_t begin = fn_.body_begin + 1;
    const size_t end = fn_.body_end;
    for (size_t i = begin; i < end; ++i) {
      const Token& tok = model_.code[i];
      if (tok.kind == TokKind::kPunct) {
        if (tok.text == "{") frames_.push_back({});
        else if (tok.text == "}") PopFrame();
        continue;
      }
      if (tok.kind != TokKind::kIdentifier) continue;
      const std::string& t = tok.text;

      if (LockWrapperTypes().count(t)) {
        const size_t consumed = HandleWrapperDecl(i, end);
        if (consumed != kNpos) { i = consumed; continue; }
      }
      if ((t == "lock" || t == "unlock") && i > begin && Text(i + 1) == "(" &&
          Text(i + 2) == ")" &&
          (Text(i - 1) == "." || Text(i - 1) == "->")) {
        const std::string base = ChainBefore(i - 1, begin);
        if (!base.empty()) {
          const auto vit = guard_vars_.find(base);
          const std::string lock_name =
              vit != guard_vars_.end() ? vit->second : base;
          if (t == "lock") Acquire(lock_name, tok.line, /*make_edges=*/true);
          else Release(lock_name);
        }
        i += 2;
        continue;
      }
      if (check_guards_ && guard_map_->count(t) && IsSelfMember(i, begin)) {
        const std::string& mu = guard_map_->at(t);
        const auto hit = held_.find(mu);
        if ((hit == held_.end() || hit->second == 0) &&
            reported_.insert({t, tok.line}).second) {
          out_->push_back(
              {"guarded-by", ctx_.rel_path, tok.line,
               "field '" + t + "' is annotated guarded_by(" + mu +
                   ") but is accessed without '" + mu +
                   "' held — take a std::lock_guard, or annotate the "
                   "function '// hunterlint: requires(" + mu + ")'"});
        }
        continue;
      }
      if (methods_ != nullptr && !fn_.is_ctor_or_dtor &&
          Text(i + 1) == "(" && IsSelfCall(i, begin) && t != fn_.name) {
        const auto mit = methods_->find(t);
        if (mit != methods_->end()) {
          for (const std::string& r : mit->second.requires_locks) {
            const auto hit = held_.find(r);
            if ((hit == held_.end() || hit->second == 0) &&
                reported_.insert({t + "()", tok.line}).second) {
              out_->push_back(
                  {"guarded-by", ctx_.rel_path, tok.line,
                   "call to '" + t + "()' which requires '" + r +
                       "' — the caller does not hold it"});
            }
          }
        }
      }
    }
    if (hot_) CheckHotLoops();
  }

 private:
  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    if (i >= model_.code.size()) return kEmpty;
    return model_.code[i].text;
  }

  bool IsId(size_t i) const {
    return i < model_.code.size() &&
           model_.code[i].kind == TokKind::kIdentifier;
  }

  size_t MatchParen(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (Text(j) == "(") ++depth;
      else if (Text(j) == ")" && --depth == 0) return j;
    }
    return limit;
  }

  size_t MatchBrace(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (Text(j) == "{") ++depth;
      else if (Text(j) == "}" && --depth == 0) return j;
    }
    return limit;
  }

  size_t TrySkipAngles(size_t from, size_t limit) const {
    if (Text(from) != "<") return from;
    int depth = 0;
    for (size_t j = from; j < limit; ++j) {
      const std::string& t = Text(j);
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == ">>") depth -= 2;
      else if (t == ";" || t == "{" || t == "}") return from;
      if (depth <= 0) return j + 1;
    }
    return from;
  }

  // The `a.b->c` identifier chain whose last separator sits at `sep`;
  // returns the joined spelling with any leading `this->` stripped.
  std::string ChainBefore(size_t sep, size_t begin) const {
    std::vector<std::string> parts;
    size_t j = sep;
    while (j > begin) {
      const std::string& s = Text(j);
      if (s != "." && s != "->" && s != "::") break;
      if (!IsId(j - 1)) break;
      parts.push_back(s);
      parts.push_back(Text(j - 1));
      if (j < 2) break;
      j -= 2;
    }
    if (parts.empty()) return "";
    std::reverse(parts.begin(), parts.end());
    parts.pop_back();  // drop the trailing separator at `sep`
    std::string joined;
    for (const std::string& p : parts) joined += p;
    if (joined.rfind("this->", 0) == 0) joined = joined.substr(6);
    return joined;
  }

  bool IsSelfMember(size_t i, size_t begin) const {
    if (i == begin) return true;
    const std::string& prev = Text(i - 1);
    if (prev == ".") return false;
    if (prev == "::") return false;
    if (prev == "->") {
      return i >= begin + 2 && Text(i - 2) == "this";
    }
    return true;
  }

  bool IsSelfCall(size_t i, size_t begin) const {
    return IsSelfMember(i, begin);
  }

  std::string Qualify(const std::string& lock_name) const {
    if (fn_.class_name.empty()) return lock_name;
    if (lock_name.find('.') != std::string::npos ||
        lock_name.find("->") != std::string::npos ||
        lock_name.find("::") != std::string::npos) {
      return lock_name;
    }
    return fn_.class_name + "::" + lock_name;
  }

  void Acquire(const std::string& lock_name, int line, bool make_edges) {
    if (make_edges) {
      for (const auto& [h, cnt] : held_) {
        if (cnt > 0) {
          edges_->push_back(
              {Qualify(h), Qualify(lock_name), ctx_.rel_path, line});
        }
      }
    }
    held_[lock_name] += 1;
    frames_.back().push_back(lock_name);
  }

  void Release(const std::string& lock_name) {
    auto hit = held_.find(lock_name);
    if (hit == held_.end() || hit->second == 0) return;
    hit->second -= 1;
    for (auto f = frames_.rbegin(); f != frames_.rend(); ++f) {
      auto pos = std::find(f->begin(), f->end(), lock_name);
      if (pos != f->end()) { f->erase(pos); return; }
    }
  }

  void PopFrame() {
    if (frames_.size() <= 1) return;  // keep the function-body frame
    for (const std::string& lock_name : frames_.back()) {
      auto hit = held_.find(lock_name);
      if (hit != held_.end() && hit->second > 0) hit->second -= 1;
    }
    frames_.pop_back();
  }

  // `lock_guard<std::mutex> g(mu_);` and friends, starting at the wrapper
  // type identifier. Returns the index of the init's closing token, or
  // kNpos when the tokens do not form a guard declaration.
  size_t HandleWrapperDecl(size_t i, size_t limit) {
    const std::string& wrapper = Text(i);
    size_t j = i + 1;
    j = std::max(j, TrySkipAngles(j, limit));
    if (!IsId(j)) return kNpos;
    const std::string var = Text(j);
    ++j;
    if (Text(j) != "(" && Text(j) != "{") return kNpos;
    const size_t close =
        Text(j) == "(" ? MatchParen(j, limit) : MatchBrace(j, limit);
    // Split the init args at top-level commas, joined without spaces.
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (size_t k = j + 1; k < close; ++k) {
      const std::string& t = Text(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      if (t == "," && depth == 0) {
        args.push_back(cur);
        cur.clear();
        continue;
      }
      cur += t;
    }
    if (!cur.empty()) args.push_back(cur);
    for (std::string& a : args) {
      if (a.rfind("this->", 0) == 0) a = a.substr(6);
    }
    const bool defer = !args.empty() && EndsWith(args.back(), "defer_lock");
    const bool adopt = !args.empty() && EndsWith(args.back(), "adopt_lock");
    const bool try_to = !args.empty() && EndsWith(args.back(), "try_to_lock");
    if (defer || adopt || try_to) args.pop_back();
    const int line = model_.code[i].line;
    if (wrapper == "unique_lock" || wrapper == "shared_lock") {
      if (!args.empty()) {
        guard_vars_[var] = args[0];
        if (!defer) Acquire(args[0], line, /*make_edges=*/!adopt);
      }
    } else {
      for (const std::string& a : args) {
        if (a.empty()) continue;
        Acquire(a, line, /*make_edges=*/!adopt);
      }
    }
    return close;
  }

  // no-alloc-in-hot-loop: loop bodies inside the function, then the banned
  // allocation shapes inside them.
  void CheckHotLoops() {
    std::vector<std::pair<size_t, size_t>> loops;
    const size_t end = fn_.body_end;
    for (size_t i = fn_.body_begin; i < end; ++i) {
      if (!IsId(i)) continue;
      const std::string& t = Text(i);
      size_t body_begin = kNpos;
      if ((t == "for" || t == "while") && Text(i + 1) == "(") {
        body_begin = MatchParen(i + 1, end) + 1;
      } else if (t == "do" && Text(i + 1) == "{") {
        body_begin = i + 1;
      } else {
        continue;
      }
      if (body_begin >= end) continue;
      size_t body_end;
      if (Text(body_begin) == "{") {
        body_end = MatchBrace(body_begin, end);
      } else {
        body_end = body_begin;
        while (body_end < end && Text(body_end) != ";") ++body_end;
      }
      loops.push_back({body_begin, body_end});
    }
    std::set<size_t> flagged;
    for (const auto& [lb, le] : loops) {
      for (size_t i = lb; i < le; ++i) {
        if (!IsId(i)) continue;
        const std::string& t = Text(i);
        if (t == "new") {
          Flag(&flagged, i, "'new'");
        } else if (HotAllocMembers().count(t) && i > lb &&
                   (Text(i - 1) == "." || Text(i - 1) == "->") &&
                   Text(i + 1) == "(") {
          Flag(&flagged, i, "'" + t + "'");
        } else if (t == "vector" && Text(i + 1) == "<") {
          // A declaration or temporary constructs (and so allocates); a
          // reference or pointer to an existing vector does not.
          const size_t after = TrySkipAngles(i + 1, le);
          if (after != i + 1 && Text(after) != "&" && Text(after) != "*" &&
              Text(after) != "::") {
            Flag(&flagged, i, "std::vector construction");
          }
        }
      }
    }
  }

  void Flag(std::set<size_t>* flagged, size_t i, const std::string& what) {
    if (!flagged->insert(i).second) return;
    out_->push_back(
        {"no-alloc-in-hot-loop", ctx_.rel_path, model_.code[i].line,
         what + " inside a loop of '" + fn_.name +
             "' which is annotated '// hunterlint: hot' — hot paths must "
             "not allocate per iteration; hoist the buffer out of the "
             "loop"});
  }

  const FileCtx& ctx_;
  const FileModel& model_;
  const FunctionInfo& fn_;
  std::vector<Violation>* out_;
  std::vector<LockEdge>* edges_;

  const std::map<std::string, std::string>* guard_map_ = nullptr;
  const std::map<std::string, ProjectModel::FnAnno>* methods_ = nullptr;
  bool check_guards_ = false;
  bool hot_ = false;
  std::vector<std::string> requires_;

  std::map<std::string, int> held_;
  std::vector<std::vector<std::string>> frames_;
  std::map<std::string, std::string> guard_vars_;
  std::set<std::pair<std::string, int>> reported_;
};

}  // namespace

FileModel BuildFileModel(const LexedFile& lex) {
  return Parser(lex).Take();
}

void MergeFileModel(const FileModel& model, ProjectModel* project) {
  for (const ClassInfo& cls : model.classes) {
    for (const FieldInfo& field : cls.fields) {
      if (!field.guarded_by.empty()) {
        project->guarded_fields[cls.name][field.name] = field.guarded_by;
      }
    }
  }
  for (const FunctionInfo& fn : model.functions) {
    if (!fn.hot && fn.requires_locks.empty()) continue;
    ProjectModel::FnAnno& anno = project->fn_annos[fn.class_name][fn.name];
    anno.hot = anno.hot || fn.hot;
    anno.requires_locks.insert(anno.requires_locks.end(),
                               fn.requires_locks.begin(),
                               fn.requires_locks.end());
    std::sort(anno.requires_locks.begin(), anno.requires_locks.end());
    anno.requires_locks.erase(
        std::unique(anno.requires_locks.begin(), anno.requires_locks.end()),
        anno.requires_locks.end());
  }
}

void RunSemanticRules(const FileCtx& ctx, const FileModel& model,
                      const ProjectModel& project,
                      std::vector<Violation>* out,
                      std::vector<LockEdge>* edges) {
  for (const FunctionInfo& fn : model.functions) {
    if (fn.body_begin == kNoBody) continue;
    BodyWalker(ctx, model, project, fn, out, edges).Run();
  }
}

void CheckDeadlockOrder(const std::vector<LockEdge>& edges,
                        std::vector<Violation>* out) {
  // Unique directed pairs, each with every site it was observed at.
  std::map<std::pair<std::string, std::string>,
           std::set<std::pair<std::string, int>>>
      sites;
  std::set<std::string> node_set;
  for (const LockEdge& e : edges) {
    sites[{e.held, e.acquired}].insert({e.path, e.line});
    node_set.insert(e.held);
    node_set.insert(e.acquired);
  }

  // Tarjan SCC over the sorted node list: deterministic component ids.
  const std::vector<std::string> nodes(node_set.begin(), node_set.end());
  std::map<std::string, size_t> id;
  for (size_t i = 0; i < nodes.size(); ++i) id[nodes[i]] = i;
  std::vector<std::vector<size_t>> adj(nodes.size());
  for (const auto& [pair, _] : sites) {
    adj[id[pair.first]].push_back(id[pair.second]);
  }
  const size_t n = nodes.size();
  std::vector<size_t> index(n, kNpos), low(n, 0), comp(n, kNpos);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0, next_comp = 0;
  // Iterative Tarjan (explicit frame stack; fixture cycles are tiny but the
  // tree-wide graph is unbounded).
  struct Frame { size_t v; size_t child; };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != kNpos) continue;
    std::vector<Frame> call{{root, 0}};
    while (!call.empty()) {
      Frame& fr = call.back();
      const size_t v = fr.v;
      if (fr.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (fr.child < adj[v].size()) {
        const size_t w = adj[v][fr.child++];
        if (index[w] == kNpos) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        const size_t parent = call.back().v;
        low[parent] = std::min(low[parent], low[v]);
      }
    }
  }
  std::vector<size_t> comp_size(next_comp, 0);
  for (size_t v = 0; v < n; ++v) comp_size[comp[v]] += 1;

  std::vector<Violation> found;
  for (const auto& [pair, edge_sites] : sites) {
    const std::string& a = pair.first;
    const std::string& b = pair.second;
    std::string cycle;
    if (a == b) {
      cycle = "'" + a + "' is re-acquired while already held";
    } else if (comp[id[a]] == comp[id[b]] && comp_size[comp[id[a]]] > 1) {
      std::string members;
      for (size_t v = 0; v < n; ++v) {
        if (comp[v] != comp[id[a]]) continue;
        if (!members.empty()) members += ", ";
        members += nodes[v];
      }
      cycle = "cycle among {" + members + "}";
    } else {
      continue;
    }
    for (const auto& [path, line] : edge_sites) {
      found.push_back(
          {"deadlock-order", path, line,
           "acquiring '" + b + "' while holding '" + a + "' — " + cycle +
               "; every thread must take these locks in one global order"});
    }
  }
  std::stable_sort(found.begin(), found.end(),
                   [](const Violation& x, const Violation& y) {
                     if (x.path != y.path) return x.path < y.path;
                     if (x.line != y.line) return x.line < y.line;
                     return x.message < y.message;
                   });
  out->insert(out->end(), found.begin(), found.end());
}

}  // namespace hunter::lint
