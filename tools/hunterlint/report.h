// Machine-readable hunterlint output: a canonical JSON report format
// (`hunterlint --format=json`, consumed by tools/lintdiff) and the baseline
// ratchet (`--baseline` / `--write-baseline`).
//
// Both serializers are canonical: fixed key order, sorted entries, minimal
// escaping, trailing newline. Parse(Write(x)) == x and Write(Parse(bytes))
// == bytes for any bytes this module wrote, which is what lets check.sh
// gate on byte-identical reports across runs and lets the baseline file
// round-trip through review diffs unchanged.
//
// The baseline maps (path, rule) -> violation count. Applying it drops the
// first `count` violations per key (in line order) and reports the rest, so
// existing debt is frozen while any *new* violation — or an old one moving
// to a new file — still fails. The repo's checked-in baseline is empty and
// must stay empty; the mechanism exists so a future rule can land before
// its sweep finishes without going unenforced.

#ifndef HUNTER_TOOLS_HUNTERLINT_REPORT_H_
#define HUNTER_TOOLS_HUNTERLINT_REPORT_H_

#include <string>
#include <vector>

#include "hunterlint/rules.h"

namespace hunter::lint {

// ---- JSON violation reports ----

// Canonical report: {"tool":"hunterlint","version":1,"violations":[...]}
// with one {"path","line","rule","message"} object per violation, in the
// given order.
std::string ViolationsToJson(const std::vector<Violation>& violations);

// Parses a report produced by ViolationsToJson (tolerant of whitespace and
// key order). Returns false and sets *error on malformed input.
bool ParseViolationsJson(const std::string& text,
                         std::vector<Violation>* out, std::string* error);

// ---- Baseline ratchet ----

struct BaselineEntry {
  std::string path;
  std::string rule;
  int count = 0;
};

inline bool operator==(const BaselineEntry& a, const BaselineEntry& b) {
  return a.path == b.path && a.rule == b.rule && a.count == b.count;
}

// Per-(path, rule) counts of `violations`, sorted by path then rule.
std::vector<BaselineEntry> BaselineFromViolations(
    const std::vector<Violation>& violations);

// Canonical baseline bytes: {"tool":"hunterlint","version":1,"entries":[...]}.
std::string BaselineToJson(const std::vector<BaselineEntry>& entries);

bool ParseBaselineJson(const std::string& text,
                       std::vector<BaselineEntry>* out, std::string* error);

// Violations in excess of the baseline: for each (path, rule) the first
// `count` violations (in input order) are forgiven, the rest returned.
std::vector<Violation> ApplyBaseline(
    const std::vector<Violation>& violations,
    const std::vector<BaselineEntry>& baseline);

}  // namespace hunter::lint

#endif  // HUNTER_TOOLS_HUNTERLINT_REPORT_H_
